//! The "always predict" baseline: only large facilities.
//!
//! The §2 discussion shows prediction is *necessary*; this baseline is the
//! opposite extreme of the per-commodity decomposition — it treats every
//! request as demanding all of `S` and runs a single-commodity engine on the
//! collapsed instance priced at `f^S_m`. It is good when demands are broad
//! (bundles near `S`) and pays a `Θ(f^S / f^{e})` overhead when demands are
//! narrow, which the `decomp-cross` experiment makes visible.

use crate::fotakis::FotakisOfl;
use crate::meyerson::MeyersonOfl;
use crate::project::collapsed_instance;
use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::{OnlineAlgorithm, ServeOutcome};
use omfl_core::heavy::SharedMetric;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::{FacilityId, Solution};
use omfl_core::CoreError;
use omfl_metric::Metric;
use std::sync::Arc;

/// The original instance plus its collapsed projection.
pub struct AllLargeParts {
    /// The undecomposed instance.
    pub original: Instance,
    /// Single-commodity instance priced at `f^S_m`.
    pub collapsed: Instance,
}

impl AllLargeParts {
    /// Builds both views over a shared metric.
    pub fn build(metric: Arc<dyn Metric>, cost: CostModel) -> Result<Self, CoreError> {
        let original = Instance::with_cost_fn(
            Box::new(SharedMetric(Arc::clone(&metric))),
            Box::new(cost.clone()),
        )?;
        let collapsed = collapsed_instance(metric, cost)?;
        Ok(Self {
            original,
            collapsed,
        })
    }
}

/// The always-predict baseline, generic over the engine run on the
/// collapsed instance.
pub struct AllLarge<'a, E> {
    parts: &'a AllLargeParts,
    engine: E,
    fmap: Vec<FacilityId>,
    sol: Solution,
    label: &'static str,
}

impl<'a> AllLarge<'a, FotakisOfl<'a>> {
    /// Deterministic variant (Fotakis engine).
    pub fn new_fotakis(parts: &'a AllLargeParts) -> Result<Self, CoreError> {
        Ok(Self {
            parts,
            engine: FotakisOfl::new(&parts.collapsed)?,
            fmap: Vec::new(),
            sol: Solution::new(),
            label: "all-large-fotakis",
        })
    }
}

impl<'a> AllLarge<'a, MeyersonOfl<'a>> {
    /// Randomized variant (Meyerson engine).
    pub fn new_meyerson(parts: &'a AllLargeParts, seed: u64) -> Result<Self, CoreError> {
        Ok(Self {
            parts,
            engine: MeyersonOfl::new(&parts.collapsed, seed)?,
            fmap: Vec::new(),
            sol: Solution::new(),
            label: "all-large-meyerson",
        })
    }
}

impl<'a, E: OnlineAlgorithm> OnlineAlgorithm for AllLarge<'a, E> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        let orig = &self.parts.original;
        request.validate(orig)?;
        let start_con = self.sol.construction_cost();
        let sub_req = Request::new(
            request.location(),
            CommoditySet::full(self.parts.collapsed.universe()),
        );
        let out = self.engine.serve(&sub_req)?;
        for fid in out.opened {
            let f = &self.engine.solution().facilities()[fid.index()];
            let own = self
                .sol
                .open_facility(orig, f.location, CommoditySet::full(orig.universe()));
            debug_assert_eq!(fid.index(), self.fmap.len());
            self.fmap.push(own);
        }
        let assigned: Vec<FacilityId> = out
            .assigned_to
            .iter()
            .map(|fid| self.fmap[fid.index()])
            .collect();
        let before_assign = self.sol.num_requests();
        let opened: Vec<FacilityId> = self
            .sol
            .facilities()
            .iter()
            .filter(|f| f.opened_at == before_assign)
            .map(|f| f.id)
            .collect();
        let assignment = self.sol.assign(orig, request.clone(), &assigned);
        Ok(ServeOutcome {
            opened,
            assigned_to: assignment.facilities.clone(),
            connection_cost: assignment.connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large: true,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_core::algorithm::run_online_verified;
    use omfl_metric::line::LineMetric;
    use omfl_metric::PointId;

    fn parts(s: u16) -> AllLargeParts {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
        AllLargeParts::build(metric, CostModel::ceil_sqrt(s)).unwrap()
    }

    fn req(inst: &Instance, ids: &[u16]) -> Request {
        Request::new(
            PointId(0),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn opens_one_large_facility_and_serves_everything() {
        let parts = parts(16);
        let inst = &parts.original;
        let mut alg = AllLarge::new_fotakis(&parts).unwrap();
        for e in 0..16u16 {
            alg.serve(&req(inst, &[e])).unwrap();
        }
        alg.solution().verify(inst).unwrap();
        assert_eq!(alg.solution().num_large_facilities(), 1);
        assert_eq!(alg.solution().num_small_facilities(), 0);
        // One large facility at f^S = 4, zero distance.
        assert!((alg.solution().total_cost() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overpays_on_narrow_demands() {
        // A single singleton request: AllLarge pays f^S = 4 where a small
        // facility costs 1 — the always-predict overhead.
        let parts = parts(16);
        let inst = &parts.original;
        let mut alg = AllLarge::new_fotakis(&parts).unwrap();
        alg.serve(&req(inst, &[3])).unwrap();
        assert!((alg.solution().total_cost() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn meyerson_variant_feasible_and_reproducible() {
        let parts = parts(9);
        let inst = &parts.original;
        let reqs: Vec<Request> = (0..15u32).map(|i| req(inst, &[(i % 9) as u16])).collect();
        let mut a = AllLarge::new_meyerson(&parts, 2).unwrap();
        let ca = run_online_verified(&mut a, inst, &reqs).unwrap();
        let mut b = AllLarge::new_meyerson(&parts, 2).unwrap();
        let cb = run_online_verified(&mut b, inst, &reqs).unwrap();
        assert_eq!(ca, cb);
    }
}
