//! A deterministic primal–dual single-commodity online facility location
//! algorithm in the style of Fotakis \[5\] (as presented primal–dually in
//! \[14\]) — the `O(log n)`-competitive ancestor of PD-OMFLP.
//!
//! Each arriving request raises a dual `a_r` until either
//!
//! * `a_r = d(F, r)` — connect to the nearest open facility, or
//! * `(a_r − d(m,r))⁺ + Σ_j (min{a_j, d(F, j)} − d(m,j))⁺ = f_m` — open a
//!   facility at `m` and connect there.
//!
//! This implementation is deliberately *independent* of [`omfl_core::pd`]
//! (bids are recomputed from scratch each arrival instead of maintained
//! incrementally), so it doubles as a differential-testing oracle:
//! PD-OMFLP restricted to `|S| = 1` must produce the same costs.
//!
//! The nearest-open-facility queries do share the
//! [`omfl_core::index::FacilityIndex`] cache (the per-arrival cap
//! recomputation asks `d(F, j)` for *every* past request, which the old
//! linear scan made `O(n·|F|)` per arrival); the cache returns bit-identical
//! distances and winners, so the oracle property is unaffected.

use omfl_commodity::CommoditySet;
use omfl_core::algorithm::{OnlineAlgorithm, ServeOutcome};
use omfl_core::index::FacilityIndex;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::{FacilityId, Solution};
use omfl_core::CoreError;
use omfl_metric::PointId;

/// Deterministic primal–dual OFL over a **single-commodity** instance.
pub struct FotakisOfl<'a> {
    inst: &'a Instance,
    sol: Solution,
    /// Nearest-open-facility cache; every facility here is full-universe
    /// (`|S| = 1`), so only the large side of the index is used.
    index: FacilityIndex,
    /// Frozen duals `a_j` in arrival order, with request locations.
    duals: Vec<(PointId, f64)>,
}

impl<'a> FotakisOfl<'a> {
    /// Creates the algorithm. Fails unless `|S| = 1`.
    pub fn new(inst: &'a Instance) -> Result<Self, CoreError> {
        if inst.num_commodities() != 1 {
            return Err(CoreError::BadInstance(format!(
                "FotakisOfl requires a single-commodity instance, got |S| = {}",
                inst.num_commodities()
            )));
        }
        Ok(Self {
            inst,
            sol: Solution::new(),
            index: FacilityIndex::for_instance(inst),
            duals: Vec::new(),
        })
    }

    /// `Σ_j a_j`, for analysis-style assertions in tests.
    pub fn dual_sum(&self) -> f64 {
        self.duals.iter().map(|&(_, a)| a).sum()
    }

    fn nearest_open(&self, from: PointId) -> Option<(FacilityId, f64)> {
        self.index.nearest_large(from)
    }
}

impl OnlineAlgorithm for FotakisOfl<'_> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        request.validate(self.inst)?;
        let loc = request.location();
        let start_con = self.sol.construction_cost();

        // Fresh bids: caps against the *current* facility set.
        let caps: Vec<(PointId, f64)> = self
            .duals
            .iter()
            .map(|&(jloc, aj)| {
                let dj = self
                    .nearest_open(jloc)
                    .map(|(_, d)| d)
                    .unwrap_or(f64::INFINITY);
                (jloc, aj.min(dj))
            })
            .collect();

        let d_open = self.nearest_open(loc);
        let mut t_open = f64::INFINITY;
        let mut open_at = PointId(0);
        for p in 0..self.inst.num_points() {
            let m = PointId(p as u32);
            let f = self.inst.large_cost(m);
            let b: f64 = caps
                .iter()
                .map(|&(jloc, cap)| (cap - self.inst.distance(m, jloc)).max(0.0))
                .sum();
            let t = (f - b).max(0.0) + self.inst.distance(m, loc);
            if t < t_open {
                t_open = t;
                open_at = m;
            }
        }

        let d_conn = d_open.map(|(_, d)| d).unwrap_or(f64::INFINITY);
        let mut opened = Vec::new();
        let (fid, a_r) = if d_conn <= t_open {
            (
                d_open.expect("finite distance implies a facility").0,
                d_conn,
            )
        } else {
            let fid = self.sol.open_facility(
                self.inst,
                open_at,
                CommoditySet::full(self.inst.universe()),
            );
            self.index.note_large_opening(self.inst, open_at, fid);
            opened.push(fid);
            (fid, t_open)
        };
        self.duals.push((loc, a_r));
        let assignment = self.sol.assign(self.inst, request.clone(), &[fid]);
        Ok(ServeOutcome {
            opened,
            assigned_to: assignment.facilities.clone(),
            connection_cost: assignment.connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large: true,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "fotakis-ofl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::single_commodity_instance;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::CommodityId;
    use omfl_core::algorithm::run_online_verified;
    use omfl_core::pd::PdOmflp;
    use omfl_metric::line::LineMetric;
    use omfl_metric::Metric;
    use std::sync::Arc;

    fn sub_instance(positions: Vec<f64>, fcost: f64) -> Instance {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(positions).unwrap());
        single_commodity_instance(metric, CostModel::power(1, 2.0, fcost), CommodityId(0)).unwrap()
    }

    fn req(inst: &Instance, loc: u32) -> Request {
        Request::new(PointId(loc), CommoditySet::full(inst.universe()))
    }

    #[test]
    fn first_request_opens_at_cheapest_reachable_point() {
        let inst = sub_instance(vec![0.0, 10.0], 5.0);
        let mut alg = FotakisOfl::new(&inst).unwrap();
        let out = alg.serve(&req(&inst, 0)).unwrap();
        assert_eq!(out.opened.len(), 1);
        // Facility at the request point (f = 5 there vs 5 + 10 across).
        assert_eq!(alg.solution().facilities()[0].location, PointId(0));
        assert!((alg.solution().total_cost() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn nearby_requests_connect_instead_of_opening() {
        let inst = sub_instance(vec![0.0, 0.5], 5.0);
        let mut alg = FotakisOfl::new(&inst).unwrap();
        alg.serve(&req(&inst, 0)).unwrap();
        let out = alg.serve(&req(&inst, 1)).unwrap();
        assert!(out.opened.is_empty());
        assert!((out.connection_cost - 0.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_far_requests_eventually_open_second_facility() {
        let inst = sub_instance(vec![0.0, 100.0], 5.0);
        let mut alg = FotakisOfl::new(&inst).unwrap();
        alg.serve(&req(&inst, 0)).unwrap();
        // Requests at the far point: connecting costs 100 each; opening
        // costs 5, so the second far request must open locally.
        let out1 = alg.serve(&req(&inst, 1)).unwrap();
        assert_eq!(out1.opened.len(), 1, "far request opens its own facility");
        let out2 = alg.serve(&req(&inst, 1)).unwrap();
        assert!(out2.opened.is_empty());
        assert_eq!(out2.connection_cost, 0.0);
        alg.solution().verify(&inst).unwrap();
    }

    #[test]
    fn matches_pd_omflp_on_single_commodity() {
        // Differential test: PD-OMFLP restricted to |S| = 1 implements the
        // same primal–dual process, so total costs must agree.
        let positions: Vec<f64> = vec![0.0, 1.0, 2.5, 4.0, 7.0, 11.0];
        let inst = sub_instance(positions, 3.0);
        let reqs: Vec<Request> = (0..24u32).map(|i| req(&inst, (i * 5) % 6)).collect();

        let mut fot = FotakisOfl::new(&inst).unwrap();
        run_online_verified(&mut fot, &inst, &reqs).unwrap();

        let mut pd = PdOmflp::new(&inst);
        run_online_verified(&mut pd, &inst, &reqs).unwrap();

        let cf = fot.solution().total_cost();
        let cp = pd.solution().total_cost();
        assert!(
            (cf - cp).abs() < 1e-6 * (1.0 + cf.abs()),
            "Fotakis = {cf} vs PD(|S|=1) = {cp}"
        );
        assert!((fot.dual_sum() - pd.dual_sum()).abs() < 1e-6);
    }
}
