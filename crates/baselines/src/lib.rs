//! Baselines and reference solvers for OMFLP.
//!
//! The paper's yardsticks (§1.3, related work) that every experiment
//! compares against:
//!
//! * [`meyerson::MeyersonOfl`] — Meyerson's randomized single-commodity
//!   online facility location \[13\], the basis of RAND-OMFLP;
//! * [`fotakis::FotakisOfl`] — a deterministic primal–dual single-commodity
//!   algorithm in the style of Fotakis \[5\], the basis of PD-OMFLP;
//! * [`per_commodity::PerCommodity`] — the trivial
//!   `O(|S| · log n / log log n)` decomposition: one independent
//!   single-commodity instance per commodity (§1.3). This algorithm *never
//!   predicts*, so the Theorem 2 adversary forces `Ω(|S|)` facilities on it;
//! * [`all_large::AllLarge`] — the opposite extreme: *always* predict, only
//!   large facilities;
//! * [`offline`] — offline reference solvers bracketing OPT: exact
//!   branch-and-bound for tiny instances, greedy + local search upper
//!   bounds, and two lower bounds (PD's scaled duals and a per-request
//!   serve-alone bound).

pub mod all_large;
pub mod fotakis;
pub mod meyerson;
pub mod offline;
pub mod per_commodity;
pub mod project;
