//! Meyerson's randomized online facility location \[13\] for a single
//! commodity — the ancestor of RAND-OMFLP and the engine of the
//! per-commodity decomposition baseline.
//!
//! Non-uniform facility costs are handled with the same power-of-two cost
//! classes as RAND-OMFLP; with uniform costs the algorithm degenerates to
//! the classic "open at the request point with probability `min(1, d/f)`"
//! rule (up to the class rounding). The expected competitive ratio is
//! `O(log n / log log n)`.

use omfl_commodity::CommoditySet;
use omfl_core::algorithm::{OnlineAlgorithm, ServeOutcome};
use omfl_core::index::FacilityIndex;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::{FacilityId, Solution};
use omfl_core::CoreError;
use omfl_metric::PointId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Meyerson's algorithm over a **single-commodity** instance
/// (`|S| = 1`; construct one with
/// [`crate::project::single_commodity_instance`]).
pub struct MeyersonOfl<'a, R: Rng = StdRng> {
    inst: &'a Instance,
    rng: R,
    sol: Solution,
    /// Ascending (rounded cost, members) classes over `f_m`.
    classes: Vec<(f64, Vec<PointId>)>,
    /// Nearest-open-facility cache (all facilities are full-universe here,
    /// so only the large side is used).
    index: FacilityIndex,
}

impl<'a> MeyersonOfl<'a, StdRng> {
    /// Creates the algorithm with a seeded RNG.
    pub fn new(inst: &'a Instance, seed: u64) -> Result<Self, CoreError> {
        Self::with_rng(inst, StdRng::seed_from_u64(seed))
    }
}

impl<'a, R: Rng> MeyersonOfl<'a, R> {
    /// Creates the algorithm with an explicit RNG. Fails unless `|S| = 1`.
    pub fn with_rng(inst: &'a Instance, rng: R) -> Result<Self, CoreError> {
        if inst.num_commodities() != 1 {
            return Err(CoreError::BadInstance(format!(
                "MeyersonOfl requires a single-commodity instance, got |S| = {}",
                inst.num_commodities()
            )));
        }
        // Build cost classes (round down to powers of two).
        let mut rounded: Vec<(f64, u32)> = (0..inst.num_points())
            .map(|p| {
                let c = inst.large_cost(PointId(p as u32));
                debug_assert!(c > 0.0);
                (2f64.powi(c.log2().floor() as i32), p as u32)
            })
            .collect();
        rounded.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        let mut classes: Vec<(f64, Vec<PointId>)> = Vec::new();
        for (c, p) in rounded {
            match classes.last_mut() {
                Some((cc, pts)) if *cc == c => pts.push(PointId(p)),
                _ => classes.push((c, vec![PointId(p)])),
            }
        }
        Ok(Self {
            inst,
            rng,
            sol: Solution::new(),
            classes,
            index: FacilityIndex::for_instance(inst),
        })
    }

    fn nearest_open(&self, from: PointId) -> Option<(FacilityId, f64)> {
        self.index.nearest_large(from)
    }

    fn open_at(&mut self, at: PointId, opened: &mut Vec<FacilityId>) {
        let fid = self
            .sol
            .open_facility(self.inst, at, CommoditySet::full(self.inst.universe()));
        self.index.note_large_opening(self.inst, at, fid);
        opened.push(fid);
    }
}

impl<R: Rng> OnlineAlgorithm for MeyersonOfl<'_, R> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        request.validate(self.inst)?;
        let loc = request.location();
        let start_con = self.sol.construction_cost();
        let mut opened = Vec::new();

        // Budget X = min(d(F, r), min_i (C_i + d(C_i, r))).
        let d_open = self.nearest_open(loc).map(|(_, d)| d);
        let mut class_near = Vec::with_capacity(self.classes.len());
        let mut best_open = f64::INFINITY;
        let mut best_open_at = PointId(0);
        for (c, pts) in &self.classes {
            let (p, d) = pts
                .iter()
                .map(|&p| (p, self.inst.distance(loc, p)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("classes are non-empty");
            class_near.push((*c, p, d));
            if c + d < best_open {
                best_open = c + d;
                best_open_at = p;
            }
        }
        let x = d_open.unwrap_or(f64::INFINITY).min(best_open);

        // Coin flips per class (telescoping distances, virtual d(C_0) = X).
        let mut prev_d = x;
        let flips: Vec<(f64, PointId, f64)> = class_near;
        for (c, p, d) in flips {
            let pr = ((prev_d - d) / c).clamp(0.0, 1.0);
            if pr > 0.0 && self.rng.gen::<f64>() < pr {
                self.open_at(p, &mut opened);
            }
            prev_d = d;
        }

        // Guarantee service (Meyerson's first-request rule generalized).
        if self.index.openings() == 0 {
            self.open_at(best_open_at, &mut opened);
        }
        let (fid, _) = self.nearest_open(loc).expect("at least one open facility");
        let assignment = self.sol.assign(self.inst, request.clone(), &[fid]);
        Ok(ServeOutcome {
            opened,
            assigned_to: assignment.facilities.clone(),
            connection_cost: assignment.connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large: true,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "meyerson-ofl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::single_commodity_instance;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::CommodityId;
    use omfl_core::algorithm::run_online_verified;
    use omfl_metric::line::LineMetric;
    use omfl_metric::Metric;
    use std::sync::Arc;

    fn sub_instance(positions: Vec<f64>, fcost: f64) -> Instance {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(positions).unwrap());
        single_commodity_instance(metric, CostModel::power(1, 2.0, fcost), CommodityId(0)).unwrap()
    }

    fn req(inst: &Instance, loc: u32) -> Request {
        Request::new(PointId(loc), CommoditySet::full(inst.universe()))
    }

    #[test]
    fn rejects_multi_commodity_instances() {
        let inst = omfl_core::instance::Instance::new(
            Box::new(LineMetric::single_point()),
            3,
            CostModel::power(3, 1.0, 1.0),
        )
        .unwrap();
        assert!(MeyersonOfl::new(&inst, 1).is_err());
    }

    #[test]
    fn first_request_always_opens() {
        let inst = sub_instance(vec![0.0, 5.0], 4.0);
        for seed in 0..10 {
            let mut alg = MeyersonOfl::new(&inst, seed).unwrap();
            let out = alg.serve(&req(&inst, 1)).unwrap();
            assert!(!out.opened.is_empty());
            alg.solution().verify(&inst).unwrap();
        }
    }

    #[test]
    fn colocated_requests_reuse_the_facility() {
        let inst = sub_instance(vec![0.0], 10.0);
        let mut alg = MeyersonOfl::new(&inst, 7).unwrap();
        for _ in 0..50 {
            alg.serve(&req(&inst, 0)).unwrap();
        }
        alg.solution().verify(&inst).unwrap();
        // All requests at the facility point: zero connection cost and
        // exactly one facility (X = 0 after the first, so no more coins).
        assert_eq!(alg.solution().facilities().len(), 1);
        assert_eq!(alg.solution().connection_cost(), 0.0);
    }

    #[test]
    fn feasible_on_spread_requests() {
        let inst = sub_instance((0..20).map(|i| i as f64).collect(), 3.0);
        let reqs: Vec<Request> = (0..20u32).map(|i| req(&inst, (i * 7) % 20)).collect();
        for seed in [0u64, 3, 11] {
            let mut alg = MeyersonOfl::new(&inst, seed).unwrap();
            run_online_verified(&mut alg, &inst, &reqs).unwrap();
        }
    }

    #[test]
    fn cost_is_reasonable_vs_opt_on_cluster() {
        // 30 requests at one point, facility cost 8: OPT = 8. Meyerson's
        // expected cost is O(8) here; check a generous multiple.
        let inst = sub_instance(vec![0.0], 8.0);
        let mut total = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let mut alg = MeyersonOfl::new(&inst, seed).unwrap();
            for _ in 0..30 {
                alg.serve(&req(&inst, 0)).unwrap();
            }
            total += alg.solution().total_cost();
        }
        let mean = total / trials as f64;
        assert!(mean < 4.0 * 8.0, "mean {mean} should be O(OPT = 8)");
    }
}
