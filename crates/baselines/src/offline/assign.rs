//! Optimal assignment of one request to a fixed set of open facilities.
//!
//! Given open facilities, the best way to serve a request is a minimum-cost
//! cover of its demand where facility `(m, σ)` covers `sr ∩ σ` at price
//! `d(r, m)` (paid once). That is weighted set cover — NP-hard in general
//! but exactly solvable here by subset DP because demands are small
//! (`|sr| ≤ 20` enforced).

use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_metric::PointId;

/// Largest demand size the subset-cover DP supports (`2^k` states).
///
/// Callers that accept untrusted request streams must check demands against
/// this limit and surface a typed error; [`assign_optimal`] itself enforces
/// it with an assert because it sits on hot solver paths.
pub const MAX_DEMAND: usize = 20;

/// A facility as the offline solvers see it: location + configuration.
#[derive(Debug, Clone)]
pub struct OpenFacility {
    /// Location `m`.
    pub location: PointId,
    /// Configuration `σ`.
    pub config: CommoditySet,
}

/// Minimum-cost cover of `request.demand()` by `facilities`.
///
/// Returns `(indices into facilities, connection cost)`, or `None` when the
/// demand cannot be covered. Each facility is used at most once (using it
/// twice would pay its distance twice for no extra coverage).
pub fn assign_optimal(
    inst: &Instance,
    facilities: &[OpenFacility],
    request: &Request,
) -> Option<(Vec<usize>, f64)> {
    let members: Vec<_> = request.demand().iter().collect();
    let k = members.len();
    assert!(
        k <= MAX_DEMAND,
        "assign_optimal supports |sr| <= {MAX_DEMAND}, got {k}"
    );
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };

    // Per-facility: (cover mask over demand members, distance).
    let mut covers: Vec<(u32, f64)> = Vec::with_capacity(facilities.len());
    for f in facilities {
        let mut mask = 0u32;
        for (b, &e) in members.iter().enumerate() {
            if f.config.contains(e) {
                mask |= 1 << b;
            }
        }
        let d = inst.distance(request.location(), f.location);
        covers.push((mask, d));
    }

    const UNREACHED: f64 = f64::INFINITY;
    let mut dp = vec![UNREACHED; (full as usize) + 1];
    let mut parent: Vec<Option<(u32, usize)>> = vec![None; (full as usize) + 1];
    dp[0] = 0.0;
    // Process states in increasing mask order; always extend via the lowest
    // uncovered member, which visits each optimal cover exactly once.
    for mask in 0..=full {
        if dp[mask as usize] == UNREACHED {
            continue;
        }
        if mask == full {
            break;
        }
        let lowest = (!mask & full).trailing_zeros();
        for (i, &(cover, d)) in covers.iter().enumerate() {
            if cover & (1 << lowest) != 0 {
                let next = mask | cover;
                let c = dp[mask as usize] + d;
                if c < dp[next as usize] {
                    dp[next as usize] = c;
                    parent[next as usize] = Some((mask, i));
                }
            }
        }
    }
    if dp[full as usize] == UNREACHED {
        return None;
    }
    // Reconstruct.
    let mut used = Vec::new();
    let mut cur = full;
    while cur != 0 {
        let (prev, i) = parent[cur as usize].expect("reached states have parents");
        used.push(i);
        cur = prev;
    }
    used.reverse();
    used.dedup();
    Some((used, dp[full as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::Universe;
    use omfl_core::request::Request;
    use omfl_metric::line::LineMetric;

    fn inst() -> Instance {
        Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0, 3.0, 10.0]).unwrap()),
            4,
            CostModel::power(4, 1.0, 1.0),
        )
        .unwrap()
    }

    fn fac(u: Universe, loc: u32, ids: &[u16]) -> OpenFacility {
        OpenFacility {
            location: PointId(loc),
            config: CommoditySet::from_ids(u, ids).unwrap(),
        }
    }

    #[test]
    fn picks_single_covering_facility_when_cheapest() {
        let inst = inst();
        let u = inst.universe();
        let facs = vec![
            fac(u, 3, &[0, 1]), // distance 10, covers everything
            fac(u, 1, &[0]),    // distance 1
            fac(u, 2, &[1]),    // distance 3
        ];
        let r = Request::new(PointId(0), CommoditySet::from_ids(u, &[0, 1]).unwrap());
        let (used, cost) = assign_optimal(&inst, &facs, &r).unwrap();
        // 1 + 3 = 4 < 10: two near facilities beat the far full one.
        assert_eq!(used, vec![1, 2]);
        assert!((cost - 4.0).abs() < 1e-12);
    }

    #[test]
    fn shared_facility_distance_paid_once() {
        let inst = inst();
        let u = inst.universe();
        let facs = vec![
            fac(u, 1, &[0, 1, 2]), // distance 1, covers all three
            fac(u, 0, &[0]),       // distance 0 but only commodity 0
        ];
        let r = Request::new(PointId(0), CommoditySet::from_ids(u, &[0, 1, 2]).unwrap());
        let (used, cost) = assign_optimal(&inst, &facs, &r).unwrap();
        // Either {facility 0} at cost 1, or {0, 1} at cost 1 + 0 = 1; the DP
        // must find cost 1.
        assert!((cost - 1.0).abs() < 1e-12);
        assert!(used.contains(&0));
    }

    #[test]
    fn uncoverable_demand_returns_none() {
        let inst = inst();
        let u = inst.universe();
        let facs = vec![fac(u, 0, &[0])];
        let r = Request::new(PointId(0), CommoditySet::from_ids(u, &[1]).unwrap());
        assert!(assign_optimal(&inst, &facs, &r).is_none());
    }

    #[test]
    fn empty_facility_list_is_uncoverable() {
        let inst = inst();
        let u = inst.universe();
        let r = Request::new(PointId(0), CommoditySet::from_ids(u, &[0]).unwrap());
        assert!(assign_optimal(&inst, &[], &r).is_none());
    }

    #[test]
    fn exhaustive_check_against_brute_force() {
        // Compare DP against brute-force subsets of facilities on a dense
        // random-ish configuration.
        let inst = inst();
        let u = inst.universe();
        let facs = vec![
            fac(u, 0, &[0, 2]),
            fac(u, 1, &[1]),
            fac(u, 2, &[2, 3]),
            fac(u, 3, &[0, 1, 2, 3]),
            fac(u, 1, &[3]),
        ];
        let r = Request::new(
            PointId(2),
            CommoditySet::from_ids(u, &[0, 1, 2, 3]).unwrap(),
        );
        let (_, dp_cost) = assign_optimal(&inst, &facs, &r).unwrap();
        // Brute force over the 2^5 facility subsets.
        let mut best = f64::INFINITY;
        for mask in 1u32..32 {
            let mut covered = CommoditySet::empty(u);
            let mut cost = 0.0;
            for (i, f) in facs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    covered.union_with(&f.config).unwrap();
                    cost += inst.distance(r.location(), f.location);
                }
            }
            if r.demand().is_subset_of(&covered) {
                best = best.min(cost);
            }
        }
        assert!(
            (dp_cost - best).abs() < 1e-12,
            "dp {dp_cost} vs brute {best}"
        );
    }
}
