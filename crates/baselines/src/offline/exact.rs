//! Exact OPT by Lagrangian-bounded best-first branch-and-bound.
//!
//! Soundness rests on a WLOG fact the paper establishes in §1.1: under
//! subadditive costs an optimal solution never opens two facilities at one
//! location (merge them: construction cost cannot rise, connection cost
//! cannot rise either because one connection replaces two). The search
//! therefore assigns each location a configuration in `{∅} ∪ 2^S∖{∅}`.
//!
//! Each node fixes a subset of locations to a configuration (or closed) and
//! is bounded by the certified Lagrangian dual of
//! [`super::lagrangian`] — a deterministic, fixed-schedule subgradient
//! ascent warm-started from the parent's multipliers. Branching picks the
//! undecided location with the most negative reduced cost and creates one
//! child per configuration (plus closed): an exact partition of the node's
//! subspace, each child priced by the parent's final multipliers. Leaves are
//! evaluated with the exact per-request subset-cover DP
//! ([`assign_optimal`]). A primal heuristic at every expansion rounds the
//! Lagrangian argmin into a feasible solution so the incumbent tightens
//! long before leaves are reached.
//!
//! # Deterministic parallel frontier
//!
//! Node expansion is sharded over [`omfl_par::TaskPool`]: each wave pops a
//! *fixed-size* batch (independent of thread count) from a min-heap keyed
//! `(bound, node id)` (ties by id), expands the batch in parallel into
//! disjoint result slots, then merges the slots **sequentially in slot
//! order** — incumbent updates, node-id assignment, and heap pushes all
//! happen in the merge. Every quantity that feeds back into the search is
//! therefore a pure function of the wave contents, and node counts,
//! certified optima, and `BoundOnly` gaps are bit-identical at 1, 2, 7, or
//! 16 threads.
//!
//! # Certification
//!
//! The search prunes against `incumbent − tol` with
//! `tol = 1e-9 · (1 + greedy cost)`. When the frontier empties, the
//! incumbent is the optimum up to that additive tolerance (`gap = 0`). When
//! the node budget runs out first, the result is a typed
//! [`ExactOutcome::BoundOnly`] carrying the certified Lagrangian gap
//! `upper − min(frontier bounds)`.

use super::assign::{assign_optimal, OpenFacility, MAX_DEMAND};
use super::greedy::GreedyOffline;
use super::lagrangian::{ascend, config_scores, CollapsedInstance, CLOSED, UNDECIDED};
use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::Solution;
use omfl_core::CoreError;
use omfl_metric::PointId;
use omfl_par::{ScatterWriter, TaskPool};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Subgradient iterations at the root (cold start from zeros).
const ROOT_ITERS: usize = 72;
/// Subgradient iterations per interior node (warm-started).
const NODE_ITERS: usize = 12;
/// Nodes popped per expansion wave — fixed, so the search trajectory is
/// independent of the thread count.
const WAVE: usize = 16;

/// Best-first branch-and-bound exact solver with Lagrangian bounds.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// Maximum `|S|` (configurations per location = `2^|S|`).
    pub max_commodities: u16,
    /// Maximum `|M|`.
    pub max_points: usize,
    /// Maximum nodes expanded before falling back to `BoundOnly`.
    pub node_budget: u64,
    /// Worker threads for wave expansion (1 = inline, still deterministic).
    pub threads: usize,
    /// Optional wall-clock cap, checked at wave boundaries. **Breaks
    /// node-count determinism when it fires** — leave `None` (the default)
    /// on every path that must be reproducible (sweeps, benches, CI).
    pub time_budget: Option<std::time::Duration>,
}

impl Default for ExactSolver {
    fn default() -> Self {
        Self {
            max_commodities: 12,
            max_points: 512,
            node_budget: 50_000,
            threads: 1,
            time_budget: None,
        }
    }
}

/// How a bounded solve ended.
#[derive(Debug, Clone)]
pub enum ExactOutcome {
    /// The frontier emptied: the solution is optimal up to the pruning
    /// tolerance.
    Certified(Solution),
    /// The node (or time) budget ran out; the incumbent — when one better
    /// than greedy's rounding was found — is feasible but not certified.
    BoundOnly {
        /// Best feasible solution found.
        incumbent: Box<Solution>,
    },
}

/// Result of [`ExactSolver::solve_bounded`]: outcome plus the certified
/// bracket and search statistics.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Certified or bound-only outcome.
    pub outcome: ExactOutcome,
    /// Certified lower bound on OPT (equals `upper_bound` when certified).
    pub lower_bound: f64,
    /// Cost of the best feasible solution found.
    pub upper_bound: f64,
    /// The root Lagrangian bound before any branching.
    pub root_bound: f64,
    /// Nodes expanded (= Lagrangian ascents run on popped nodes).
    pub nodes_expanded: u64,
    /// `max(0, upper_bound − lower_bound)`; exactly 0 when certified.
    pub gap: f64,
}

impl ExactResult {
    /// True when the optimum was certified within tolerance.
    pub fn certified(&self) -> bool {
        matches!(self.outcome, ExactOutcome::Certified(_))
    }

    /// The best feasible solution (always present).
    pub fn solution(&self) -> &Solution {
        match &self.outcome {
            ExactOutcome::Certified(s) => s,
            ExactOutcome::BoundOnly { incumbent } => incumbent,
        }
    }

    /// The certified optimum, when certified.
    pub fn optimum(&self) -> Option<f64> {
        self.certified().then_some(self.upper_bound)
    }
}

/// Heap entry for the best-first frontier: min by `(bound, id)`.
#[derive(Debug, Clone, Copy)]
struct FrontierKey {
    bound: f64,
    id: u64,
}

impl PartialEq for FrontierKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for FrontierKey {}
impl PartialOrd for FrontierKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the least bound (ties
        // by lowest id) on top.
        other
            .bound
            .total_cmp(&self.bound)
            .then(other.id.cmp(&self.id))
    }
}

/// A frontier node: per-location decisions + warm-start multipliers.
struct Node {
    decisions: Vec<u16>,
    warm: Arc<Vec<f64>>,
    bound: f64,
}

/// What one wave slot produced, merged sequentially in slot order.
enum Expansion {
    /// Refined bound met the incumbent: subspace closed.
    Pruned,
    /// All locations decided: exact evaluation.
    Leaf { cost: f64, choice: Vec<u16> },
    /// Branched on one location.
    Branched {
        lambda: Arc<Vec<f64>>,
        branch: usize,
        /// `(config mask or CLOSED, certified child bound)`, in fixed order.
        children: Vec<(u16, f64)>,
        /// Rounded primal candidate, when feasible.
        primal: Option<(f64, Vec<u16>)>,
    },
}

impl ExactSolver {
    /// Default budget envelope (`|S| ≤ 12`, `|M| ≤ 512`, 50k nodes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (results are identical at any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the node budget.
    pub fn with_node_budget(mut self, nodes: u64) -> Self {
        self.node_budget = nodes;
        self
    }

    /// Solves exactly, requiring certification. Errors when the instance
    /// exceeds the limits, a demand exceeds [`MAX_DEMAND`], or the node
    /// budget ran out before the frontier emptied.
    pub fn solve(&self, inst: &Instance, requests: &[Request]) -> Result<Solution, CoreError> {
        let res = self.solve_bounded(inst, requests)?;
        match res.outcome {
            ExactOutcome::Certified(sol) => Ok(sol),
            ExactOutcome::BoundOnly { .. } => Err(CoreError::BadInstance(format!(
                "node budget {} exhausted: certified gap {:.6} (lower {:.6}, upper {:.6})",
                self.node_budget, res.gap, res.lower_bound, res.upper_bound
            ))),
        }
    }

    /// Runs the branch-and-bound and reports the outcome with its certified
    /// bracket, instead of erroring when the budget runs out.
    pub fn solve_bounded(
        &self,
        inst: &Instance,
        requests: &[Request],
    ) -> Result<ExactResult, CoreError> {
        let s = inst.num_commodities();
        let m = inst.num_points();
        if s > self.max_commodities as usize || m > self.max_points {
            return Err(CoreError::BadInstance(format!(
                "ExactSolver limits exceeded: |S| = {s} (max {}), |M| = {m} (max {})",
                self.max_commodities, self.max_points
            )));
        }
        // Typed demand check before anything can reach the DP's assert.
        for r in requests {
            let k = r.demand().len();
            if k > MAX_DEMAND {
                return Err(CoreError::BadRequest(format!(
                    "demand has {k} commodities; the subset-cover DP supports |sr| <= {MAX_DEMAND}"
                )));
            }
        }

        if requests.is_empty() {
            let sol = Solution::new();
            return Ok(ExactResult {
                outcome: ExactOutcome::Certified(sol),
                lower_bound: 0.0,
                upper_bound: 0.0,
                root_bound: 0.0,
                nodes_expanded: 0,
                gap: 0.0,
            });
        }

        let ci = CollapsedInstance::build(inst, requests)?;

        // Greedy rounding seeds the incumbent, so `ub_ref` is always finite
        // and the certified optimum never exceeds greedy.
        let greedy = GreedyOffline::new().solve(inst, requests)?;
        let mut choice = vec![CLOSED; m];
        for f in greedy.facilities() {
            let p = f.location.0 as usize;
            choice[p] |= f.config.to_mask() as u16;
        }
        let mut inc_cost = evaluate_choice(&ci, inst, &choice)
            .ok_or_else(|| CoreError::Infeasible("greedy produced no feasible cover".into()))?;
        let mut inc_choice = choice;
        let tol = 1e-9 * (1.0 + inc_cost);

        let start = std::time::Instant::now();
        let all_open = vec![UNDECIDED; m];
        let root = ascend(&ci, &all_open, &[], ROOT_ITERS, inc_cost);
        let root_bound = root.bound;

        let mut heap: BinaryHeap<FrontierKey> = BinaryHeap::new();
        let mut nodes: Vec<Option<Node>> = Vec::new();
        if root_bound < inc_cost - tol {
            nodes.push(Some(Node {
                decisions: all_open,
                warm: Arc::new(root.lambda),
                bound: root_bound,
            }));
            heap.push(FrontierKey {
                bound: root_bound,
                id: 0,
            });
        }

        let pool = TaskPool::new(self.threads.max(1));
        let mut nodes_expanded: u64 = 0;
        let mut out_of_budget = false;

        loop {
            if heap.is_empty() {
                break; // certified
            }
            if nodes_expanded >= self.node_budget {
                out_of_budget = true;
                break;
            }
            if let Some(cap) = self.time_budget {
                if start.elapsed() >= cap {
                    out_of_budget = true;
                    break;
                }
            }

            // Pop a fixed-size wave (thread-count independent), discarding
            // nodes the current incumbent already prunes.
            let cap = WAVE.min((self.node_budget - nodes_expanded) as usize);
            let mut wave: Vec<Node> = Vec::with_capacity(cap);
            while wave.len() < cap {
                let Some(top) = heap.pop() else { break };
                let node = nodes[top.id as usize]
                    .take()
                    .expect("frontier node present");
                if node.bound < inc_cost - tol {
                    wave.push(node);
                }
            }
            if wave.is_empty() {
                continue;
            }

            let inc_snapshot = inc_cost;
            let mut results: Vec<Option<Expansion>> = (0..wave.len()).map(|_| None).collect();
            {
                let writer = ScatterWriter::new(&mut results);
                let ci_ref = &ci;
                let wave_ref = &wave;
                pool.run(wave_ref.len(), |i| {
                    let exp = expand(ci_ref, inst, &wave_ref[i], inc_snapshot, tol);
                    // SAFETY: each task writes only its own slot `i`.
                    *unsafe { writer.slot(i) } = Some(exp);
                })
                .map_err(|e| CoreError::BadInstance(format!("exact solver worker failed: {e}")))?;
            }

            // Sequential merge in slot order: the only place incumbent,
            // node ids, and the heap mutate.
            for (i, exp) in results.into_iter().enumerate() {
                nodes_expanded += 1;
                match exp.expect("every slot written") {
                    Expansion::Pruned => {}
                    Expansion::Leaf { cost, choice } => {
                        if cost < inc_cost {
                            inc_cost = cost;
                            inc_choice = choice;
                        }
                    }
                    Expansion::Branched {
                        lambda,
                        branch,
                        children,
                        primal,
                    } => {
                        if let Some((cost, choice)) = primal {
                            if cost < inc_cost {
                                inc_cost = cost;
                                inc_choice = choice;
                            }
                        }
                        for (mask, bound) in children {
                            if bound >= inc_cost - tol {
                                continue;
                            }
                            let mut decisions = wave[i].decisions.clone();
                            decisions[branch] = mask;
                            let id = nodes.len() as u64;
                            nodes.push(Some(Node {
                                decisions,
                                warm: Arc::clone(&lambda),
                                bound,
                            }));
                            heap.push(FrontierKey { bound, id });
                        }
                    }
                }
            }
        }

        let (lower_bound, gap) = if out_of_budget {
            let frontier_min = heap
                .peek()
                .map(|k| k.bound)
                .unwrap_or(inc_cost)
                .min(inc_cost);
            (frontier_min, (inc_cost - frontier_min).max(0.0))
        } else {
            (inc_cost, 0.0)
        };

        let sol = materialize(&ci, inst, requests, &inc_choice)?;
        let outcome = if out_of_budget {
            ExactOutcome::BoundOnly {
                incumbent: Box::new(sol),
            }
        } else {
            ExactOutcome::Certified(sol)
        };
        Ok(ExactResult {
            outcome,
            lower_bound,
            upper_bound: inc_cost,
            root_bound,
            nodes_expanded,
            gap,
        })
    }
}

/// Expands one node: refine its bound by warm-started ascent, then prune,
/// evaluate (leaf), or branch. Pure function of its arguments — safe to run
/// in any wave slot on any thread.
fn expand(ci: &CollapsedInstance, inst: &Instance, node: &Node, inc: f64, tol: f64) -> Expansion {
    let art = ascend(ci, &node.decisions, &node.warm, NODE_ITERS, inc);
    // The heap bound was certified too; never regress below it.
    let bound = art.bound.max(node.bound);
    if bound >= inc - tol {
        return Expansion::Pruned;
    }

    // Branch location: most negative reduced cost (ties: lowest id).
    let mut branch = usize::MAX;
    let mut best_rc = f64::INFINITY;
    for (m, &d) in node.decisions.iter().enumerate() {
        if d == UNDECIDED && art.min_rc[m] < best_rc {
            best_rc = art.min_rc[m];
            branch = m;
        }
    }
    if branch == usize::MAX {
        // All locations decided: exact leaf evaluation.
        return match evaluate_choice(ci, inst, &node.decisions) {
            Some(cost) => Expansion::Leaf {
                cost,
                choice: node.decisions.clone(),
            },
            None => Expansion::Pruned, // infeasible subspace
        };
    }

    // Primal heuristic: round the Lagrangian argmin (fixed decisions as-is,
    // undecided locations open their argmin config when its reduced cost is
    // negative), then repair coverage of globally missing commodities.
    let mut rounded: Vec<u16> = node
        .decisions
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            if d == UNDECIDED {
                if art.min_rc[m] < 0.0 {
                    art.arg_rc[m]
                } else {
                    CLOSED
                }
            } else {
                d
            }
        })
        .collect();
    repair_coverage(ci, &mut rounded);
    let primal = evaluate_choice(ci, inst, &rounded).map(|c| (c, rounded));

    // Price all children of the branch location at the refined multipliers:
    // L_child = L − min(0, min_rc(b)) + rc(b, σ). Exact partition of the
    // node's subspace, each bound certified at art.lambda.
    let rc = config_scores(ci, &art.lambda, branch);
    let base = art.bound - art.min_rc[branch].min(0.0);
    let mut children: Vec<(u16, f64)> = Vec::with_capacity(ci.nconf);
    children.push((CLOSED, base.max(node.bound)));
    for (mask, &r) in rc.iter().enumerate().skip(1) {
        children.push((mask as u16, (base + r).max(node.bound)));
    }

    Expansion::Branched {
        lambda: Arc::new(art.lambda),
        branch,
        children,
        primal,
    }
}

/// Ensures every demanded commodity is open somewhere: for each missing
/// commodity, add it to the location with the cheapest marginal
/// construction cost (ties: lowest location id).
fn repair_coverage(ci: &CollapsedInstance, choice: &mut [u16]) {
    let mut demanded: u64 = 0;
    for mr in &ci.requests {
        demanded |= mr.mask;
    }
    let mut open: u64 = 0;
    for &c in choice.iter() {
        open |= c as u64;
    }
    let mut missing = demanded & !open;
    while missing != 0 {
        let e = missing.trailing_zeros() as usize;
        let bit = 1u16 << e;
        let mut best = f64::INFINITY;
        let mut best_m = 0usize;
        for (m, &c) in choice.iter().enumerate() {
            let cur = c as usize;
            let marginal =
                ci.fcost[m * ci.nconf + (cur | (bit as usize))] - ci.fcost[m * ci.nconf + cur];
            if marginal < best {
                best = marginal;
                best_m = m;
            }
        }
        choice[best_m] |= bit;
        missing &= missing - 1;
    }
}

/// Exact cost of a full per-location configuration choice, `None` when some
/// demand cannot be covered.
fn evaluate_choice(ci: &CollapsedInstance, inst: &Instance, choice: &[u16]) -> Option<f64> {
    let mut total = 0.0;
    let mut facs: Vec<OpenFacility> = Vec::new();
    for (m, &mask) in choice.iter().enumerate() {
        if mask != CLOSED && mask != UNDECIDED {
            total += ci.fcost[m * ci.nconf + mask as usize];
            facs.push(OpenFacility {
                location: PointId(m as u32),
                config: ci.configs[mask as usize].clone(),
            });
        }
    }
    for mr in &ci.requests {
        let (_, c) = assign_optimal(inst, &facs, &mr.representative)?;
        total += mr.weight * c;
    }
    Some(total)
}

/// Materializes a configuration choice into a verified [`Solution`] over
/// the *original* (un-merged) request list.
fn materialize(
    ci: &CollapsedInstance,
    inst: &Instance,
    requests: &[Request],
    choice: &[u16],
) -> Result<Solution, CoreError> {
    let facs: Vec<OpenFacility> = choice
        .iter()
        .enumerate()
        .filter(|&(_, &mask)| mask != CLOSED && mask != UNDECIDED)
        .map(|(m, &mask)| OpenFacility {
            location: PointId(m as u32),
            config: ci.configs[mask as usize].clone(),
        })
        .collect();
    let mut sol = Solution::new();
    let fids: Vec<_> = facs
        .iter()
        .map(|f| sol.open_facility(inst, f.location, f.config.clone()))
        .collect();
    for r in requests {
        let (used, _) = assign_optimal(inst, &facs, r)
            .ok_or_else(|| CoreError::Infeasible("incumbent fails to cover a demand".into()))?;
        let assigned: Vec<_> = used.iter().map(|&i| fids[i]).collect();
        sol.assign(inst, r.clone(), &assigned);
    }
    sol.verify(inst)?;
    Ok(sol)
}

/// The pre-Lagrangian exhaustive solver, kept as a differential oracle for
/// the branch-and-bound: plain depth-first search over per-location
/// configurations with construction-cost pruning. Same §1.1 WLOG soundness
/// argument, much smaller limits (defaults: `|S| ≤ 4`, `|M| ≤ 5`).
#[derive(Debug, Clone)]
pub struct ExhaustiveSolver {
    /// Maximum `|S|` (configurations per location = `2^|S|`).
    pub max_commodities: u16,
    /// Maximum `|M|`.
    pub max_points: usize,
}

impl Default for ExhaustiveSolver {
    fn default() -> Self {
        Self {
            max_commodities: 4,
            max_points: 5,
        }
    }
}

impl ExhaustiveSolver {
    /// Default limits (`|S| ≤ 4`, `|M| ≤ 5`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves exactly. Errors when the instance exceeds the limits.
    pub fn solve(&self, inst: &Instance, requests: &[Request]) -> Result<Solution, CoreError> {
        let s = inst.num_commodities();
        let m = inst.num_points();
        if s > self.max_commodities as usize || m > self.max_points {
            return Err(CoreError::BadInstance(format!(
                "ExhaustiveSolver limits exceeded: |S| = {s} (max {}), |M| = {m} (max {})",
                self.max_commodities, self.max_points
            )));
        }
        for r in requests {
            r.validate(inst)?;
        }

        // Precompute all configuration costs per location.
        let nconf = 1usize << s;
        let u = inst.universe();
        let configs: Vec<CommoditySet> = (0..nconf)
            .map(|mask| CommoditySet::from_mask(u, mask as u64).expect("mask in range"))
            .collect();
        let mut cost = vec![vec![0.0; nconf]; m];
        for (p, row) in cost.iter_mut().enumerate() {
            for (mask, c) in row.iter_mut().enumerate() {
                *c = if mask == 0 {
                    0.0
                } else {
                    inst.facility_cost(PointId(p as u32), &configs[mask])
                };
            }
        }

        let mut best_cost = f64::INFINITY;
        let mut best_choice: Option<Vec<usize>> = None;
        let mut choice = vec![0usize; m];

        // Depth-first over locations with construction-cost pruning.
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            depth: usize,
            con_so_far: f64,
            choice: &mut Vec<usize>,
            cost: &[Vec<f64>],
            configs: &[CommoditySet],
            inst: &Instance,
            requests: &[Request],
            best_cost: &mut f64,
            best_choice: &mut Option<Vec<usize>>,
        ) {
            if con_so_far >= *best_cost {
                return; // prune: construction alone already too expensive
            }
            if depth == choice.len() {
                // Evaluate the assignment at this leaf.
                let facs: Vec<OpenFacility> = choice
                    .iter()
                    .enumerate()
                    .filter(|&(_, &mask)| mask != 0)
                    .map(|(p, &mask)| OpenFacility {
                        location: PointId(p as u32),
                        config: configs[mask].clone(),
                    })
                    .collect();
                let mut total = con_so_far;
                for r in requests {
                    match assign_optimal(inst, &facs, r) {
                        Some((_, c)) => total += c,
                        None => return, // infeasible leaf
                    }
                    if total >= *best_cost {
                        return;
                    }
                }
                *best_cost = total;
                *best_choice = Some(choice.clone());
                return;
            }
            for mask in 0..configs.len() {
                choice[depth] = mask;
                dfs(
                    depth + 1,
                    con_so_far + cost[depth][mask],
                    choice,
                    cost,
                    configs,
                    inst,
                    requests,
                    best_cost,
                    best_choice,
                );
            }
            choice[depth] = 0;
        }

        dfs(
            0,
            0.0,
            &mut choice,
            &cost,
            &configs,
            inst,
            requests,
            &mut best_cost,
            &mut best_choice,
        );

        let best_choice = best_choice
            .ok_or_else(|| CoreError::Infeasible("no feasible facility placement exists".into()))?;
        // Materialize.
        let facs: Vec<OpenFacility> = best_choice
            .iter()
            .enumerate()
            .filter(|&(_, &mask)| mask != 0)
            .map(|(p, &mask)| OpenFacility {
                location: PointId(p as u32),
                config: configs[mask].clone(),
            })
            .collect();
        let mut sol = Solution::new();
        let fids: Vec<_> = facs
            .iter()
            .map(|f| sol.open_facility(inst, f.location, f.config.clone()))
            .collect();
        for r in requests {
            let (used, _) = assign_optimal(inst, &facs, r).expect("best leaf is feasible");
            let assigned: Vec<_> = used.iter().map(|&i| fids[i]).collect();
            sol.assign(inst, r.clone(), &assigned);
        }
        sol.verify(inst)?;
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{GreedyOffline, LocalSearch};
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn single_request_opens_exactly_its_demand() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            3,
            CostModel::power(3, 1.0, 2.0),
        )
        .unwrap();
        let reqs = vec![req(&inst, 0, &[0, 2])];
        let sol = ExactSolver::new().solve(&inst, &reqs).unwrap();
        // OPT: one facility {0,2} at cost 2·sqrt(2) ≈ 2.828 < two singletons
        // (4) or full S (2·sqrt 3 ≈ 3.46).
        assert!((sol.total_cost() - 2.0 * 2f64.sqrt()).abs() < 1e-9);
        assert_eq!(sol.facilities().len(), 1);
        assert_eq!(sol.facilities()[0].config.len(), 2);
    }

    #[test]
    fn chooses_location_trading_construction_for_distance() {
        // Two points 1 apart; facility 3x cheaper at point 1.
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0]).unwrap()),
            2,
            CostModel::power(2, 2.0, 3.0)
                .location_scaled(vec![1.0, 1.0 / 3.0])
                .unwrap(),
        )
        .unwrap();
        let reqs = vec![req(&inst, 0, &[0])];
        let sol = ExactSolver::new().solve(&inst, &reqs).unwrap();
        // At p0: cost 3. At p1: cost 1 + distance 1 = 2. Exact picks p1.
        assert!((sol.total_cost() - 2.0).abs() < 1e-9);
        assert_eq!(sol.facilities()[0].location, PointId(1));
    }

    #[test]
    fn exact_lower_bounds_greedy_and_local_search() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 2.0, 4.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.5),
        )
        .unwrap();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 2, &[0, 2]),
            req(&inst, 1, &[0]),
        ];
        let exact = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let greedy = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        assert!(exact <= greedy.total_cost() + 1e-9);
        let ls = LocalSearch::new().improve(&inst, &greedy, &reqs).unwrap();
        assert!(exact <= ls.total_cost() + 1e-9);
        assert!(ls.total_cost() <= greedy.total_cost() + 1e-9);
    }

    #[test]
    fn agrees_with_exhaustive_oracle() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0, 2.5, 5.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.2),
        )
        .unwrap();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 3, &[2]),
            req(&inst, 1, &[0, 2]),
            req(&inst, 2, &[1]),
        ];
        let bnb = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let dfs = ExhaustiveSolver::new()
            .solve(&inst, &reqs)
            .unwrap()
            .total_cost();
        assert!(
            (bnb - dfs).abs() < 1e-9 * (1.0 + dfs),
            "bnb {bnb} vs exhaustive {dfs}"
        );
    }

    #[test]
    fn certifies_with_bracket_and_stats() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 2.0, 4.0, 7.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.5),
        )
        .unwrap();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 3, &[0]),
        ];
        let res = ExactSolver::new().solve_bounded(&inst, &reqs).unwrap();
        assert!(res.certified());
        assert_eq!(res.gap, 0.0);
        assert_eq!(res.lower_bound, res.upper_bound);
        assert!(res.root_bound <= res.upper_bound + 1e-9);
        assert!((res.solution().total_cost() - res.upper_bound).abs() < 1e-9);
        assert_eq!(res.optimum(), Some(res.upper_bound));
    }

    #[test]
    fn identical_at_every_thread_count() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0, 2.0, 4.0, 6.5, 9.0]).unwrap()),
            4,
            CostModel::power(4, 1.0, 1.3),
        )
        .unwrap();
        let mut reqs = Vec::new();
        for (i, &loc) in [0u32, 2, 4, 5, 1, 3, 0, 5].iter().enumerate() {
            let ids = [(i % 4) as u16, ((i + 1) % 4) as u16];
            reqs.push(req(&inst, loc, &ids));
        }
        let reference = ExactSolver::new().solve_bounded(&inst, &reqs).unwrap();
        for threads in [2usize, 7, 16] {
            let res = ExactSolver::new()
                .with_threads(threads)
                .solve_bounded(&inst, &reqs)
                .unwrap();
            assert_eq!(res.nodes_expanded, reference.nodes_expanded, "t={threads}");
            assert_eq!(
                res.upper_bound.to_bits(),
                reference.upper_bound.to_bits(),
                "t={threads}"
            );
            assert_eq!(
                res.lower_bound.to_bits(),
                reference.lower_bound.to_bits(),
                "t={threads}"
            );
        }
    }

    #[test]
    fn tiny_node_budget_reports_bound_only() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0, 2.0, 4.0, 6.5, 9.0, 12.0]).unwrap()),
            4,
            CostModel::power(4, 1.0, 1.3),
        )
        .unwrap();
        let mut reqs = Vec::new();
        for (i, &loc) in [0u32, 2, 4, 5, 1, 3, 6, 0, 5, 6].iter().enumerate() {
            let ids = [(i % 4) as u16, ((i + 2) % 4) as u16];
            reqs.push(req(&inst, loc, &ids));
        }
        let res = ExactSolver::new()
            .with_node_budget(1)
            .solve_bounded(&inst, &reqs)
            .unwrap();
        // Either the root certified immediately (fine) or we get a typed
        // BoundOnly with an ordered bracket.
        if !res.certified() {
            assert!(matches!(res.outcome, ExactOutcome::BoundOnly { .. }));
            assert!(res.lower_bound <= res.upper_bound + 1e-9);
            assert!(res.gap >= 0.0);
            assert!(ExactSolver::new()
                .with_node_budget(1)
                .solve(&inst, &reqs)
                .is_err());
        }
    }

    #[test]
    fn oversized_demand_is_a_typed_error() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            21,
            CostModel::power(21, 1.0, 1.0),
        )
        .unwrap();
        let ids: Vec<u16> = (0..21).collect();
        let reqs = vec![req(&inst, 0, &ids)];
        let solver = ExactSolver {
            max_commodities: 21,
            ..ExactSolver::default()
        };
        let err = solver.solve(&inst, &reqs).unwrap_err();
        assert!(matches!(err, CoreError::BadRequest(_)));
    }

    #[test]
    fn limits_are_enforced() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(6, 5.0).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.0),
        )
        .unwrap();
        // The branch-and-bound takes |M| = 6 in stride…
        assert!(ExactSolver::new().solve(&inst, &[]).is_ok());
        // …but the exhaustive oracle still refuses it.
        let err = ExhaustiveSolver::new().solve(&inst, &[]).unwrap_err();
        assert!(matches!(err, CoreError::BadInstance(_)));
        // And the branch-and-bound refuses a 13-commodity universe.
        let wide = Instance::new(
            Box::new(LineMetric::single_point()),
            13,
            CostModel::power(13, 1.0, 1.0),
        )
        .unwrap();
        let err = ExactSolver::new().solve(&wide, &[]).unwrap_err();
        assert!(matches!(err, CoreError::BadInstance(_)));
    }

    #[test]
    fn empty_request_list_costs_zero() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            2,
            CostModel::power(2, 1.0, 1.0),
        )
        .unwrap();
        let sol = ExactSolver::new().solve(&inst, &[]).unwrap();
        assert_eq!(sol.total_cost(), 0.0);
    }
}
