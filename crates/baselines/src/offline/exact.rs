//! Exact OPT for tiny instances by branch-and-bound.
//!
//! Soundness rests on a WLOG fact the paper establishes in §1.1: under
//! subadditive costs an optimal solution never opens two facilities at one
//! location (merge them: construction cost cannot rise, connection cost
//! cannot rise either because one connection replaces two). The search
//! therefore assigns each location a configuration in `{∅} ∪ 2^S∖{∅}` and
//! prunes on partial construction cost. Leaves are evaluated with the exact
//! per-request subset-cover DP.
//!
//! The search space is `(2^|S|)^|M|`, so the solver enforces explicit limits
//! (defaults: `|S| ≤ 4`, `|M| ≤ 5`, `2^(|S|·|M|) ≤ 2^20`).

use super::assign::{assign_optimal, OpenFacility};
use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::Solution;
use omfl_core::CoreError;
use omfl_metric::PointId;

/// Exact solver with explicit size limits.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// Maximum `|S|` (configurations per location = `2^|S|`).
    pub max_commodities: u16,
    /// Maximum `|M|`.
    pub max_points: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        Self {
            max_commodities: 4,
            max_points: 5,
        }
    }
}

impl ExactSolver {
    /// Default limits (`|S| ≤ 4`, `|M| ≤ 5`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves exactly. Errors when the instance exceeds the limits.
    pub fn solve(&self, inst: &Instance, requests: &[Request]) -> Result<Solution, CoreError> {
        let s = inst.num_commodities();
        let m = inst.num_points();
        if s > self.max_commodities as usize || m > self.max_points {
            return Err(CoreError::BadInstance(format!(
                "ExactSolver limits exceeded: |S| = {s} (max {}), |M| = {m} (max {})",
                self.max_commodities, self.max_points
            )));
        }
        for r in requests {
            r.validate(inst)?;
        }

        // Precompute all configuration costs per location.
        let nconf = 1usize << s;
        let u = inst.universe();
        let configs: Vec<CommoditySet> = (0..nconf)
            .map(|mask| CommoditySet::from_mask(u, mask as u64).expect("mask in range"))
            .collect();
        let mut cost = vec![vec![0.0; nconf]; m];
        for (p, row) in cost.iter_mut().enumerate() {
            for (mask, c) in row.iter_mut().enumerate() {
                *c = if mask == 0 {
                    0.0
                } else {
                    inst.facility_cost(PointId(p as u32), &configs[mask])
                };
            }
        }

        let mut best_cost = f64::INFINITY;
        let mut best_choice: Option<Vec<usize>> = None;
        let mut choice = vec![0usize; m];

        // Depth-first over locations with construction-cost pruning.
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            depth: usize,
            con_so_far: f64,
            choice: &mut Vec<usize>,
            cost: &[Vec<f64>],
            configs: &[CommoditySet],
            inst: &Instance,
            requests: &[Request],
            best_cost: &mut f64,
            best_choice: &mut Option<Vec<usize>>,
        ) {
            if con_so_far >= *best_cost {
                return; // prune: construction alone already too expensive
            }
            if depth == choice.len() {
                // Evaluate the assignment at this leaf.
                let facs: Vec<OpenFacility> = choice
                    .iter()
                    .enumerate()
                    .filter(|&(_, &mask)| mask != 0)
                    .map(|(p, &mask)| OpenFacility {
                        location: PointId(p as u32),
                        config: configs[mask].clone(),
                    })
                    .collect();
                let mut total = con_so_far;
                for r in requests {
                    match assign_optimal(inst, &facs, r) {
                        Some((_, c)) => total += c,
                        None => return, // infeasible leaf
                    }
                    if total >= *best_cost {
                        return;
                    }
                }
                *best_cost = total;
                *best_choice = Some(choice.clone());
                return;
            }
            for mask in 0..configs.len() {
                choice[depth] = mask;
                dfs(
                    depth + 1,
                    con_so_far + cost[depth][mask],
                    choice,
                    cost,
                    configs,
                    inst,
                    requests,
                    best_cost,
                    best_choice,
                );
            }
            choice[depth] = 0;
        }

        dfs(
            0,
            0.0,
            &mut choice,
            &cost,
            &configs,
            inst,
            requests,
            &mut best_cost,
            &mut best_choice,
        );

        let best_choice = best_choice
            .ok_or_else(|| CoreError::Infeasible("no feasible facility placement exists".into()))?;
        // Materialize.
        let facs: Vec<OpenFacility> = best_choice
            .iter()
            .enumerate()
            .filter(|&(_, &mask)| mask != 0)
            .map(|(p, &mask)| OpenFacility {
                location: PointId(p as u32),
                config: configs[mask].clone(),
            })
            .collect();
        let mut sol = Solution::new();
        let fids: Vec<_> = facs
            .iter()
            .map(|f| sol.open_facility(inst, f.location, f.config.clone()))
            .collect();
        for r in requests {
            let (used, _) = assign_optimal(inst, &facs, r).expect("best leaf is feasible");
            let assigned: Vec<_> = used.iter().map(|&i| fids[i]).collect();
            sol.assign(inst, r.clone(), &assigned);
        }
        sol.verify(inst)?;
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{GreedyOffline, LocalSearch};
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn single_request_opens_exactly_its_demand() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            3,
            CostModel::power(3, 1.0, 2.0),
        )
        .unwrap();
        let reqs = vec![req(&inst, 0, &[0, 2])];
        let sol = ExactSolver::new().solve(&inst, &reqs).unwrap();
        // OPT: one facility {0,2} at cost 2·sqrt(2) ≈ 2.828 < two singletons
        // (4) or full S (2·sqrt 3 ≈ 3.46).
        assert!((sol.total_cost() - 2.0 * 2f64.sqrt()).abs() < 1e-9);
        assert_eq!(sol.facilities().len(), 1);
        assert_eq!(sol.facilities()[0].config.len(), 2);
    }

    #[test]
    fn chooses_location_trading_construction_for_distance() {
        // Two points 1 apart; facility 3x cheaper at point 1.
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0]).unwrap()),
            2,
            CostModel::power(2, 2.0, 3.0)
                .location_scaled(vec![1.0, 1.0 / 3.0])
                .unwrap(),
        )
        .unwrap();
        let reqs = vec![req(&inst, 0, &[0])];
        let sol = ExactSolver::new().solve(&inst, &reqs).unwrap();
        // At p0: cost 3. At p1: cost 1 + distance 1 = 2. Exact picks p1.
        assert!((sol.total_cost() - 2.0).abs() < 1e-9);
        assert_eq!(sol.facilities()[0].location, PointId(1));
    }

    #[test]
    fn exact_lower_bounds_greedy_and_local_search() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 2.0, 4.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.5),
        )
        .unwrap();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 2, &[0, 2]),
            req(&inst, 1, &[0]),
        ];
        let exact = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let greedy = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        assert!(exact <= greedy.total_cost() + 1e-9);
        let ls = LocalSearch::new().improve(&inst, &greedy, &reqs).unwrap();
        assert!(exact <= ls.total_cost() + 1e-9);
        assert!(ls.total_cost() <= greedy.total_cost() + 1e-9);
    }

    #[test]
    fn limits_are_enforced() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(6, 5.0).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.0),
        )
        .unwrap();
        let err = ExactSolver::new().solve(&inst, &[]).unwrap_err();
        assert!(matches!(err, CoreError::BadInstance(_)));
    }

    #[test]
    fn empty_request_list_costs_zero() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            2,
            CostModel::power(2, 1.0, 1.0),
        )
        .unwrap();
        let sol = ExactSolver::new().solve(&inst, &[]).unwrap();
        assert_eq!(sol.total_cost(), 0.0);
    }
}
