//! Greedy offline approximation for the MFLP (Ravi–Sinha flavour, §1.2).
//!
//! Repeatedly opens the most *cost-effective star*: a facility `(m, σ)`
//! together with a prefix of requests (sorted by distance from `m`) whose
//! still-uncovered demand intersects `σ`; effectiveness = (facility cost +
//! connection costs) / newly covered (request, commodity) pairs. Candidate
//! configurations are the singletons, the full set `S`, and every distinct
//! request demand — the configurations an optimal subadditive solution
//! mixes in practice.
//!
//! Deviation from the literal Ravi–Sinha primal–dual: prefixes are ordered
//! by plain distance rather than distance-per-covered-element. This keeps
//! one sort per location instead of one per (location, configuration) and
//! empirically changes results by < 2% on our workloads; the solver is used
//! as an *upper bound* on OPT, for which any feasible output is sound.

use super::assign::OpenFacility;
use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::Solution;
use omfl_core::CoreError;
use omfl_metric::PointId;

/// The greedy star solver.
#[derive(Debug, Clone, Default)]
pub struct GreedyOffline {
    /// Optional restriction of candidate facility locations (default: all).
    candidate_locations: Option<Vec<PointId>>,
}

impl GreedyOffline {
    /// Greedy over all metric points as candidate locations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts candidate facility locations (e.g. to request sites).
    pub fn with_candidate_locations(locations: Vec<PointId>) -> Self {
        Self {
            candidate_locations: Some(locations),
        }
    }

    /// Runs the greedy and returns a feasible solution.
    pub fn solve(&self, inst: &Instance, requests: &[Request]) -> Result<Solution, CoreError> {
        for r in requests {
            r.validate(inst)?;
        }
        let n = requests.len();
        let locations: Vec<PointId> = match &self.candidate_locations {
            Some(ls) => ls.clone(),
            None => inst.metric().points().collect(),
        };

        // Candidate configurations: singletons of demanded commodities,
        // distinct demands, and the full set.
        let mut configs: Vec<CommoditySet> = Vec::new();
        let mut demanded = CommoditySet::empty(inst.universe());
        for r in requests {
            demanded
                .union_with(r.demand())
                .map_err(CoreError::Commodity)?;
            if !configs.iter().any(|c| c == r.demand()) {
                configs.push(r.demand().clone());
            }
        }
        for e in demanded.iter() {
            let s = CommoditySet::singleton(inst.universe(), e).map_err(CoreError::Commodity)?;
            if !configs.iter().any(|c| c == &s) {
                configs.push(s);
            }
        }
        let full = CommoditySet::full(inst.universe());
        if !configs.iter().any(|c| c == &full) {
            configs.push(full);
        }

        // Per-location request order by distance (sorted once).
        let order_by_loc: Vec<Vec<(u32, f64)>> = locations
            .iter()
            .map(|&m| {
                let mut v: Vec<(u32, f64)> = (0..n as u32)
                    .map(|i| (i, inst.distance(m, requests[i as usize].location())))
                    .collect();
                v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
                v
            })
            .collect();

        let mut uncovered: Vec<CommoditySet> =
            requests.iter().map(|r| r.demand().clone()).collect();
        let mut pairs_left: usize = uncovered.iter().map(|u| u.len()).sum();
        let mut opened: Vec<OpenFacility> = Vec::new();
        let mut connections: Vec<Vec<usize>> = vec![Vec::new(); n]; // request -> facility indices

        while pairs_left > 0 {
            let mut best_eff = f64::INFINITY;
            let mut best: Option<(usize, usize, Vec<u32>)> = None; // (loc idx, config idx, prefix)
            for (li, &m) in locations.iter().enumerate() {
                for (ci, sigma) in configs.iter().enumerate() {
                    let f = inst.facility_cost(m, sigma);
                    let mut cost = f;
                    let mut gain = 0usize;
                    let mut prefix: Vec<u32> = Vec::new();
                    let mut best_here = f64::INFINITY;
                    let mut best_prefix_len = 0usize;
                    for &(ri, d) in &order_by_loc[li] {
                        let g = uncovered[ri as usize]
                            .intersection(sigma)
                            .expect("same universe")
                            .len();
                        if g == 0 {
                            continue;
                        }
                        cost += d;
                        gain += g;
                        prefix.push(ri);
                        let eff = cost / gain as f64;
                        if eff < best_here {
                            best_here = eff;
                            best_prefix_len = prefix.len();
                        }
                    }
                    if best_prefix_len > 0 && best_here < best_eff {
                        prefix.truncate(best_prefix_len);
                        best_eff = best_here;
                        best = Some((li, ci, prefix));
                    }
                }
            }
            let (li, ci, prefix) =
                best.expect("uncovered pairs remain, so some star has positive gain");
            let m = locations[li];
            let sigma = configs[ci].clone();
            let fidx = opened.len();
            opened.push(OpenFacility {
                location: m,
                config: sigma.clone(),
            });
            for ri in prefix {
                let newly = uncovered[ri as usize]
                    .intersection(&sigma)
                    .expect("same universe")
                    .len();
                debug_assert!(newly > 0);
                uncovered[ri as usize]
                    .subtract(&sigma)
                    .map_err(CoreError::Commodity)?;
                pairs_left -= newly;
                connections[ri as usize].push(fidx);
            }
        }

        // Materialize the solution.
        let mut sol = Solution::new();
        let mut fids = Vec::with_capacity(opened.len());
        for f in &opened {
            fids.push(sol.open_facility(inst, f.location, f.config.clone()));
        }
        for (ri, conns) in connections.iter().enumerate() {
            let assigned: Vec<_> = conns.iter().map(|&i| fids[i]).collect();
            sol.assign(inst, requests[ri].clone(), &assigned);
        }
        sol.verify(inst)?;
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn inst(s: u16) -> Instance {
        Instance::new(
            Box::new(LineMetric::single_point()),
            s,
            CostModel::ceil_sqrt(s),
        )
        .unwrap()
    }

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn theorem2_gadget_greedy_finds_opt() {
        // sqrt(16) = 4 singleton requests on one point: OPT opens one
        // facility with exactly those commodities (the request demands are
        // candidate configs... singletons here). Best single config covering
        // all 4 pairs: full S costs 4; one demand config covers 1 pair at
        // cost 1. Effectiveness: full = 4/4 = 1, singleton = 1/1 = 1.
        // Either way total cost must be ≤ 4 and the solution feasible;
        // the known OPT is 1 (a facility with the 4 requested commodities) —
        // greedy cannot see that config unless a request demands it, so it
        // pays between 1 and 4. This certifies greedy as an upper bound.
        let inst = inst(16);
        let reqs: Vec<Request> = (0..4u16).map(|e| req(&inst, 0, &[e])).collect();
        let sol = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        let cost = sol.total_cost();
        assert!(cost <= 4.0 + 1e-9, "greedy upper bound too weak: {cost}");
        assert!(cost >= 1.0 - 1e-9);
    }

    #[test]
    fn bundle_demand_opens_bundle_config() {
        // One request demanding {0,1,2,3}: its own demand is a candidate
        // config with cost ceil(4/4) = 1 — strictly better than four
        // singletons (cost 4) or full S (cost 4).
        let inst = inst(16);
        let reqs = vec![req(&inst, 0, &[0, 1, 2, 3])];
        let sol = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        assert!((sol.total_cost() - 1.0).abs() < 1e-9);
        assert_eq!(sol.facilities().len(), 1);
        assert_eq!(sol.facilities()[0].config.len(), 4);
    }

    #[test]
    fn spread_requests_on_line_are_feasible() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(8, 20.0).unwrap()),
            6,
            CostModel::power(6, 1.0, 2.0),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..16u32)
            .map(|i| req(&inst, i % 8, &[(i % 6) as u16, ((i * 5 + 2) % 6) as u16]))
            .collect();
        let sol = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        assert_eq!(sol.num_requests(), 16);
        assert!(sol.total_cost() > 0.0);
    }

    #[test]
    fn candidate_location_restriction_respected() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 100.0]).unwrap()),
            2,
            CostModel::power(2, 1.0, 1.0),
        )
        .unwrap();
        let reqs = vec![req(&inst, 0, &[0])];
        let sol = GreedyOffline::with_candidate_locations(vec![PointId(1)])
            .solve(&inst, &reqs)
            .unwrap();
        assert_eq!(sol.facilities()[0].location, PointId(1));
        assert!((sol.total_cost() - 101.0).abs() < 1e-9);
    }

    #[test]
    fn empty_request_list_gives_empty_solution() {
        let inst = inst(4);
        let sol = GreedyOffline::new().solve(&inst, &[]).unwrap();
        assert_eq!(sol.total_cost(), 0.0);
    }
}
