//! Lagrangian-relaxation lower bounds for the collapsed offline instance.
//!
//! # The relaxation
//!
//! By the paper's §1.1 WLOG argument (under subadditive costs an optimal
//! solution never opens two facilities at one location — merging them raises
//! neither construction nor connection cost), offline OPT is the integer
//! program over one configuration choice `σ_m ∈ {∅} ∪ 2^S∖{∅}` per location
//! and one service indicator `x_{r,m} ∈ {0,1}` per (request, open location):
//!
//! ```text
//! min  Σ_m f_m(σ_m) + Σ_r w_r Σ_m d(r, m) · x_{r,m}
//! s.t. Σ_m [e ∈ σ_m] · x_{r,m} ≥ 1      ∀ r, ∀ e ∈ s_r   (coverage)
//! ```
//!
//! Dualizing the coverage constraints with multipliers `λ_{r,e} ≥ 0` and
//! minimizing the Lagrangian over `(σ, x)` decomposes **per location**:
//!
//! ```text
//! L(λ) = Σ_r w_r Σ_{e ∈ s_r} λ_{r,e}
//!      + Σ_m min(0, min_{σ ≠ ∅} rc(m, σ))
//! rc(m, σ) = f_m(σ) + Σ_r w_r · min(0, d(r, m) − Λ_r(σ))
//! Λ_r(σ)  = Σ_{e ∈ s_r ∩ σ} λ_{r,e}
//! ```
//!
//! For every `λ ≥ 0`, `L(λ) ≤ OPT` by weak duality: any feasible solution's
//! Lagrangian value is its true cost minus a nonnegative slack term. The
//! bound is *certified* — it needs no convergence, only one evaluation.
//!
//! Identical requests (same location, same demand) are merged into one
//! weighted request sharing multipliers; that restricts the dual space (a
//! possibly weaker but still valid bound) and shrinks every evaluation.
//!
//! # Determinism
//!
//! [`ascend`] is a fixed-schedule projected-subgradient ascent: a caller
//! supplied iteration count, deterministic step sizes (Polyak steps against
//! a caller-frozen upper-bound reference, halving geometrically on
//! stagnation), and strictly sequential f64 accumulation in index order.
//! Given the same inputs it returns bit-identical multipliers and bounds on
//! every run and at every thread count — the branch-and-bound in
//! [`super::exact`] relies on this for thread-count-independent node counts.

use super::assign::MAX_DEMAND;
use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::PointId;

/// Per-location decision sentinel: not yet branched on.
pub const UNDECIDED: u16 = u16::MAX;
/// Per-location decision: no facility at this location.
pub const CLOSED: u16 = 0;

/// A group of identical requests collapsed into one weighted request.
#[derive(Debug, Clone)]
pub struct MergedRequest {
    /// One representative of the group (all members are identical).
    pub representative: Request,
    /// Number of originals in the group.
    pub weight: f64,
    /// Demand commodity ids, ascending.
    pub members: Vec<u16>,
    /// Demand as a bitmask over `S`.
    pub mask: u64,
    /// Index of this request's first multiplier in the flat `λ` vector.
    pub offset: usize,
}

/// The collapsed instance all bound evaluations run against: configuration
/// cost and distance tables plus the deduplicated weighted request list.
#[derive(Debug, Clone)]
pub struct CollapsedInstance {
    /// `|M|`.
    pub npoints: usize,
    /// `|S|`.
    pub ncommodities: usize,
    /// `2^|S|` configurations (index = bitmask; 0 = closed).
    pub nconf: usize,
    /// Materialized configuration sets, indexed by mask.
    pub configs: Vec<CommoditySet>,
    /// `fcost[m · nconf + mask]` = construction cost (0 for mask 0).
    pub fcost: Vec<f64>,
    /// Deduplicated weighted requests, in first-occurrence order.
    pub requests: Vec<MergedRequest>,
    /// `dist[r · npoints + m]` = `d(r, m)`.
    pub dist: Vec<f64>,
    /// Total multiplier count `Σ_r |s_r|`.
    pub nmult: usize,
}

impl CollapsedInstance {
    /// Builds the tables. Validates every request and rejects demands
    /// beyond [`MAX_DEMAND`] with a typed error (the leaf DP cannot
    /// evaluate them).
    pub fn build(inst: &Instance, requests: &[Request]) -> Result<Self, CoreError> {
        let s = inst.num_commodities();
        let npoints = inst.num_points();
        let nconf = 1usize << s;
        for r in requests {
            r.validate(inst)?;
            let k = r.demand().len();
            if k > MAX_DEMAND {
                return Err(CoreError::BadRequest(format!(
                    "demand has {k} commodities; the subset-cover DP supports |sr| <= {MAX_DEMAND}"
                )));
            }
        }

        let u = inst.universe();
        let configs: Vec<CommoditySet> = (0..nconf)
            .map(|mask| CommoditySet::from_mask(u, mask as u64).expect("mask in range"))
            .collect();
        let mut fcost = vec![0.0; npoints * nconf];
        for m in 0..npoints {
            for mask in 1..nconf {
                fcost[m * nconf + mask] = inst.facility_cost(PointId(m as u32), &configs[mask]);
            }
        }

        // Dedup identical (location, demand) requests, first-occurrence order.
        let mut index: std::collections::BTreeMap<(u32, u64), usize> =
            std::collections::BTreeMap::new();
        let mut merged: Vec<MergedRequest> = Vec::new();
        for r in requests {
            let key = (r.location().0, r.demand().to_mask());
            match index.get(&key) {
                Some(&i) => merged[i].weight += 1.0,
                None => {
                    index.insert(key, merged.len());
                    merged.push(MergedRequest {
                        representative: r.clone(),
                        weight: 1.0,
                        members: r.demand().iter().map(|e| e.0).collect(),
                        mask: r.demand().to_mask(),
                        offset: 0,
                    });
                }
            }
        }
        let mut offset = 0;
        for mr in &mut merged {
            mr.offset = offset;
            offset += mr.members.len();
        }

        let mut dist = vec![0.0; merged.len() * npoints];
        for (r, mr) in merged.iter().enumerate() {
            inst.fill_row(
                mr.representative.location(),
                &mut dist[r * npoints..(r + 1) * npoints],
            );
        }

        Ok(Self {
            npoints,
            ncommodities: s,
            nconf,
            configs,
            fcost,
            requests: merged,
            dist,
            nmult: offset,
        })
    }
}

/// Everything one bound evaluation certifies: the bound itself, the
/// multipliers that achieved it, and per-location reduced-cost artifacts
/// used for branching.
#[derive(Debug, Clone)]
pub struct BoundArtifacts {
    /// Certified lower bound `L(λ)` on the best completion of the node.
    pub bound: f64,
    /// The multipliers achieving `bound` (warm start for children).
    pub lambda: Vec<f64>,
    /// `min_{σ ≠ ∅} rc(m, σ)` per undecided location (`∞` for decided).
    pub min_rc: Vec<f64>,
    /// Argmin configuration mask per undecided location (lowest mask wins
    /// ties; 0 for decided locations).
    pub arg_rc: Vec<u16>,
}

/// Scratch buffers reused across subgradient iterations.
struct Workspace {
    /// `percom[r · s + e]` = `λ_{r,e}` (0 for non-members).
    percom: Vec<f64>,
    /// `lam[r · nconf + mask]` = `Λ_r(mask)`.
    lam: Vec<f64>,
    /// `Λ_r(s_r)` per request.
    lam_full: Vec<f64>,
    /// Per-mask reduced-cost accumulator for one location.
    acc: Vec<f64>,
    /// Coverage counts per multiplier in the Lagrangian argmin.
    cov: Vec<u32>,
    /// Subgradient `g_{r,e} = w_r (1 − cov_{r,e})`.
    grad: Vec<f64>,
    /// Locations the Lagrangian argmin opens, with their masks.
    opens: Vec<(usize, u16)>,
    min_rc: Vec<f64>,
    arg_rc: Vec<u16>,
}

impl Workspace {
    fn new(ci: &CollapsedInstance) -> Self {
        let nr = ci.requests.len();
        Self {
            percom: vec![0.0; nr * ci.ncommodities],
            lam: vec![0.0; nr * ci.nconf],
            lam_full: vec![0.0; nr],
            acc: vec![0.0; ci.nconf],
            cov: vec![0; ci.nmult],
            grad: vec![0.0; ci.nmult],
            opens: Vec::with_capacity(ci.npoints),
            min_rc: vec![f64::INFINITY; ci.npoints],
            arg_rc: vec![0; ci.npoints],
        }
    }

    /// Fills `percom`, the `Λ` table, and `lam_full` from `lambda`.
    fn fill_lam(&mut self, ci: &CollapsedInstance, lambda: &[f64]) {
        let s = ci.ncommodities;
        let nconf = ci.nconf;
        self.percom.iter_mut().for_each(|v| *v = 0.0);
        for (r, mr) in ci.requests.iter().enumerate() {
            for (j, &e) in mr.members.iter().enumerate() {
                self.percom[r * s + e as usize] = lambda[mr.offset + j];
            }
        }
        for r in 0..ci.requests.len() {
            let base = r * nconf;
            self.lam[base] = 0.0;
            for mask in 1..nconf {
                let low = mask & mask.wrapping_neg();
                let bit = low.trailing_zeros() as usize;
                self.lam[base + mask] = self.lam[base + (mask ^ low)] + self.percom[r * s + bit];
            }
            self.lam_full[r] = self.lam[base + (nconf - 1)];
        }
    }
}

/// Evaluates `L(λ)` for the node described by `decisions` and fills the
/// workspace with the subgradient and branching artifacts at this `λ`.
///
/// All accumulation is strictly sequential in (request, location, mask)
/// index order: the result is bit-identical on every run.
fn eval(ci: &CollapsedInstance, decisions: &[u16], lambda: &[f64], ws: &mut Workspace) -> f64 {
    let nconf = ci.nconf;
    let np = ci.npoints;
    ws.fill_lam(ci, lambda);

    let mut total = 0.0;
    for (r, mr) in ci.requests.iter().enumerate() {
        total += mr.weight * ws.lam_full[r];
    }

    ws.opens.clear();
    for (m, &decision) in decisions.iter().enumerate() {
        match decision {
            CLOSED => {
                ws.min_rc[m] = f64::INFINITY;
                ws.arg_rc[m] = 0;
            }
            UNDECIDED => {
                ws.acc[..nconf].copy_from_slice(&ci.fcost[m * nconf..(m + 1) * nconf]);
                for (r, mr) in ci.requests.iter().enumerate() {
                    let d = ci.dist[r * np + m];
                    // If d ≥ Λ_r(s_r) then d ≥ Λ_r(σ) for every σ and the
                    // request contributes nothing at this location.
                    if d < ws.lam_full[r] {
                        let base = r * nconf;
                        for mask in 1..nconf {
                            let t = d - ws.lam[base + mask];
                            if t < 0.0 {
                                ws.acc[mask] += mr.weight * t;
                            }
                        }
                    }
                }
                let mut best = ws.acc[1];
                let mut arg = 1u16;
                for (mask, &v) in ws.acc.iter().enumerate().skip(2) {
                    if v < best {
                        best = v;
                        arg = mask as u16;
                    }
                }
                ws.min_rc[m] = best;
                ws.arg_rc[m] = arg;
                if best < 0.0 {
                    total += best;
                    ws.opens.push((m, arg));
                }
            }
            mask => {
                let mask = mask as usize;
                let mut c = ci.fcost[m * nconf + mask];
                for (r, mr) in ci.requests.iter().enumerate() {
                    let d = ci.dist[r * np + m];
                    if d < ws.lam_full[r] {
                        let t = d - ws.lam[r * nconf + mask];
                        if t < 0.0 {
                            c += mr.weight * t;
                        }
                    }
                }
                total += c;
                ws.min_rc[m] = f64::INFINITY;
                ws.arg_rc[m] = 0;
                ws.opens.push((m, mask as u16));
            }
        }
    }

    // Subgradient of L at λ: g_{r,e} = w_r · (1 − Σ_m [e ∈ σ_m] x_{r,m})
    // where (σ, x) is the Lagrangian argmin just computed.
    ws.cov.iter_mut().for_each(|v| *v = 0);
    for &(m, mask) in &ws.opens {
        let mask = mask as usize;
        for (r, mr) in ci.requests.iter().enumerate() {
            let d = ci.dist[r * np + m];
            if d < ws.lam_full[r] && d < ws.lam[r * nconf + mask] {
                for (j, &e) in mr.members.iter().enumerate() {
                    if mask & (1usize << e) != 0 {
                        ws.cov[mr.offset + j] += 1;
                    }
                }
            }
        }
    }
    for (r, mr) in ci.requests.iter().enumerate() {
        let _ = r;
        for j in 0..mr.members.len() {
            let i = mr.offset + j;
            ws.grad[i] = mr.weight * (1.0 - ws.cov[i] as f64);
        }
    }
    total
}

/// Deterministic projected-subgradient dual ascent.
///
/// Runs exactly `iters` evaluations starting from `warm` (zeros when
/// empty), keeping the best bound seen. `ub_ref` is a frozen upper-bound
/// reference for Polyak step sizing; it also short-circuits the ascent
/// once `bound ≥ ub_ref` (the caller will prune the node anyway).
pub fn ascend(
    ci: &CollapsedInstance,
    decisions: &[u16],
    warm: &[f64],
    iters: usize,
    ub_ref: f64,
) -> BoundArtifacts {
    let mut lambda = if warm.is_empty() {
        vec![0.0; ci.nmult]
    } else {
        debug_assert_eq!(warm.len(), ci.nmult);
        warm.to_vec()
    };
    let mut ws = Workspace::new(ci);

    let mut best = f64::NEG_INFINITY;
    let mut best_lambda = lambda.clone();
    let mut best_min_rc = vec![f64::INFINITY; ci.npoints];
    let mut best_arg_rc = vec![0u16; ci.npoints];

    let mut theta = 1.5;
    let mut stall = 0u32;
    for _ in 0..iters.max(1) {
        let l = eval(ci, decisions, &lambda, &mut ws);
        if l > best {
            best = l;
            best_lambda.copy_from_slice(&lambda);
            best_min_rc.copy_from_slice(&ws.min_rc);
            best_arg_rc.copy_from_slice(&ws.arg_rc);
            stall = 0;
        } else {
            stall += 1;
            if stall >= 3 {
                theta *= 0.5;
                stall = 0;
                if theta < 1e-4 {
                    break;
                }
            }
        }
        if ub_ref.is_finite() && best >= ub_ref {
            break; // node will be pruned; no point tightening further
        }
        let norm2: f64 = ws.grad.iter().map(|g| g * g).sum();
        if norm2 <= 1e-18 {
            break; // Lagrangian argmin is (weighted-)feasible: λ is optimal
        }
        let gap_ref = if ub_ref.is_finite() {
            (ub_ref - l).max(1e-12 * (1.0 + ub_ref.abs()))
        } else {
            l.abs() + 1.0
        };
        let step = theta * gap_ref / norm2;
        for (v, g) in lambda.iter_mut().zip(ws.grad.iter()) {
            *v = (*v + step * g).max(0.0);
        }
    }

    BoundArtifacts {
        bound: best,
        lambda: best_lambda,
        min_rc: best_min_rc,
        arg_rc: best_arg_rc,
    }
}

/// Reduced cost `rc(m, σ)` for every configuration mask of one location at
/// the given multipliers (`index 0` is 0.0: closed). Used to price all
/// children of a branch location exactly:
/// `L_child = L_parent − min(0, min_rc(m)) + rc(m, σ_child)`.
pub fn config_scores(ci: &CollapsedInstance, lambda: &[f64], m: usize) -> Vec<f64> {
    let nconf = ci.nconf;
    let np = ci.npoints;
    let mut ws = Workspace::new(ci);
    ws.fill_lam(ci, lambda);
    let mut rc = vec![0.0; nconf];
    rc[1..nconf].copy_from_slice(&ci.fcost[m * nconf + 1..(m + 1) * nconf]);
    for (r, mr) in ci.requests.iter().enumerate() {
        let d = ci.dist[r * np + m];
        if d < ws.lam_full[r] {
            let base = r * nconf;
            for (mask, slot) in rc.iter_mut().enumerate().skip(1) {
                let t = d - ws.lam[base + mask];
                if t < 0.0 {
                    *slot += mr.weight * t;
                }
            }
        }
    }
    rc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::GreedyOffline;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    fn inst3() -> Instance {
        Instance::new(
            Box::new(LineMetric::new(vec![0.0, 2.0, 4.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.5),
        )
        .unwrap()
    }

    #[test]
    fn merges_identical_requests_with_weights() {
        let inst = inst3();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[2]),
            req(&inst, 0, &[0, 1]),
            req(&inst, 0, &[0, 1]),
        ];
        let ci = CollapsedInstance::build(&inst, &reqs).unwrap();
        assert_eq!(ci.requests.len(), 2);
        assert_eq!(ci.requests[0].weight, 3.0);
        assert_eq!(ci.requests[1].weight, 1.0);
        assert_eq!(ci.requests[0].members, vec![0, 1]);
        assert_eq!(ci.nmult, 3);
    }

    #[test]
    fn oversized_demand_is_a_typed_error() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            21,
            CostModel::power(21, 1.0, 1.0),
        )
        .unwrap();
        let ids: Vec<u16> = (0..21).collect();
        let r = req(&inst, 0, &ids);
        let err = CollapsedInstance::build(&inst, &[r]).unwrap_err();
        assert!(matches!(err, CoreError::BadRequest(_)));
    }

    #[test]
    fn zero_multipliers_give_zero_bound() {
        let inst = inst3();
        let reqs = vec![req(&inst, 0, &[0]), req(&inst, 2, &[1, 2])];
        let ci = CollapsedInstance::build(&inst, &reqs).unwrap();
        let decisions = vec![UNDECIDED; ci.npoints];
        let mut ws = Workspace::new(&ci);
        let l = eval(&ci, &decisions, &vec![0.0; ci.nmult], &mut ws);
        // At λ = 0 no configuration has negative reduced cost and the base
        // term vanishes.
        assert_eq!(l, 0.0);
    }

    #[test]
    fn ascended_bound_is_positive_and_below_greedy() {
        let inst = inst3();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 2, &[0, 2]),
            req(&inst, 1, &[0]),
        ];
        let greedy = GreedyOffline::new()
            .solve(&inst, &reqs)
            .unwrap()
            .total_cost();
        let ci = CollapsedInstance::build(&inst, &reqs).unwrap();
        let decisions = vec![UNDECIDED; ci.npoints];
        let art = ascend(&ci, &decisions, &[], 60, greedy);
        assert!(art.bound > 0.0, "ascent should lift the trivial 0 bound");
        // Greedy is feasible, so the Lagrangian bound cannot exceed it.
        assert!(
            art.bound <= greedy + 1e-9,
            "L = {} > greedy = {greedy}",
            art.bound
        );
    }

    #[test]
    fn ascend_is_deterministic() {
        let inst = inst3();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 2, &[0]),
        ];
        let ci = CollapsedInstance::build(&inst, &reqs).unwrap();
        let decisions = vec![UNDECIDED; ci.npoints];
        let a = ascend(&ci, &decisions, &[], 40, 100.0);
        let b = ascend(&ci, &decisions, &[], 40, 100.0);
        assert_eq!(a.bound.to_bits(), b.bound.to_bits());
        assert_eq!(a.lambda, b.lambda);
        assert_eq!(a.arg_rc, b.arg_rc);
    }

    #[test]
    fn config_scores_match_eval_artifacts() {
        let inst = inst3();
        let reqs = vec![req(&inst, 0, &[0, 1]), req(&inst, 2, &[1, 2])];
        let ci = CollapsedInstance::build(&inst, &reqs).unwrap();
        let decisions = vec![UNDECIDED; ci.npoints];
        let art = ascend(&ci, &decisions, &[], 30, 50.0);
        for m in 0..ci.npoints {
            let rc = config_scores(&ci, &art.lambda, m);
            let best = rc[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                (best - art.min_rc[m]).abs() < 1e-9,
                "m={m}: min rc {best} vs artifact {}",
                art.min_rc[m]
            );
        }
    }

    #[test]
    fn fixed_decisions_change_the_bound_consistently() {
        let inst = inst3();
        let reqs = vec![req(&inst, 0, &[0]), req(&inst, 1, &[1])];
        let ci = CollapsedInstance::build(&inst, &reqs).unwrap();
        let mut ws = Workspace::new(&ci);
        let lambda = vec![1.0; ci.nmult];

        let open = vec![UNDECIDED; ci.npoints];
        let l_open = eval(&ci, &open, &lambda, &mut ws);
        let min_rc_0 = ws.min_rc[0].min(0.0);
        let arg0 = ws.arg_rc[0];

        // Fixing location 0 to its argmin keeps the bound identical.
        let mut fixed = open.clone();
        fixed[0] = if ws.min_rc[0] < 0.0 { arg0 } else { CLOSED };
        let l_fixed = eval(&ci, &fixed, &lambda, &mut ws);
        let expected = if fixed[0] == CLOSED {
            l_open - min_rc_0
        } else {
            l_open
        };
        assert!((l_fixed - expected).abs() < 1e-12);
    }
}
