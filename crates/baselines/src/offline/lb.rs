//! Lower bounds on OPT, and the bracket the experiments report against.

use super::assign::MAX_DEMAND;
use super::exact::{ExactOutcome, ExactSolver};
use super::greedy::GreedyOffline;
use super::local_search::LocalSearch;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::PointId;

/// The dual lower bound of Corollary 17: run PD-OMFLP, scale its duals by
/// `γ = 1/(5√|S|·H_n)`; the scaled duals are feasible for the dual LP, so
/// their sum lower-bounds OPT by weak duality.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualLowerBound;

impl DualLowerBound {
    /// Computes the bound for a request sequence.
    pub fn compute(inst: &Instance, requests: &[Request]) -> Result<f64, CoreError> {
        let mut alg = PdOmflp::new(inst);
        for r in requests {
            alg.serve(r)?;
        }
        Ok(alg.scaled_dual_lower_bound())
    }
}

/// The serve-alone bound: any feasible solution contains, for each request
/// `r`, a facility set covering `sr`; its cost (construction of those
/// facilities + `r`'s connections) is at most the solution's total cost.
/// Hence `max_r mincost(r) ≤ OPT`, where `mincost(r)` is the cheapest way
/// to serve `r` in an otherwise empty world.
///
/// `mincost(r)` is computed by partition DP over subsets of `sr`
/// (`O(3^{|sr|} · |M|)`), assuming **monotone** costs so that an optimal
/// cover uses configurations equal to the covered parts — true for every
/// cost model in this repository (checkable with
/// `omfl_commodity::props::monotone_exact`).
pub fn serve_alone_lower_bound(inst: &Instance, requests: &[Request]) -> Result<f64, CoreError> {
    let mut best: f64 = 0.0;
    for r in requests {
        r.validate(inst)?;
        best = best.max(mincost_single(inst, r));
    }
    Ok(best)
}

/// Cheapest standalone service of one request (see
/// [`serve_alone_lower_bound`]).
pub fn mincost_single(inst: &Instance, r: &Request) -> f64 {
    let members: Vec<_> = r.demand().iter().collect();
    let k = members.len();
    assert!(k <= 12, "mincost_single supports |sr| <= 12, got {k}");
    let full = (1u32 << k) - 1;
    let u = inst.universe();

    // price[t] = min over locations m of f^{T}_m + d(m, r) for subset T.
    let mut price = vec![f64::INFINITY; (full as usize) + 1];
    for t in 1..=full {
        let mut cfg = CommoditySet::empty(u);
        for (b, &e) in members.iter().enumerate() {
            if t & (1 << b) != 0 {
                cfg.insert(e).expect("member in range");
            }
        }
        for p in 0..inst.num_points() {
            let m = PointId(p as u32);
            let c = inst.facility_cost(m, &cfg) + inst.distance(m, r.location());
            if c < price[t as usize] {
                price[t as usize] = c;
            }
        }
    }
    // Partition DP.
    let mut dp = vec![f64::INFINITY; (full as usize) + 1];
    dp[0] = 0.0;
    for t in 1..=full {
        // Iterate submasks u of t that contain t's lowest bit.
        let low = t & t.wrapping_neg();
        let mut sub = t;
        loop {
            if sub & low != 0 {
                let rest = t & !sub;
                let c = dp[rest as usize] + price[sub as usize];
                if c < dp[t as usize] {
                    dp[t as usize] = c;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & t;
        }
    }
    dp[full as usize]
}

/// How (and whether) the exact branch-and-bound contributed to a bracket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExactArm {
    /// The instance exceeded the exact solver's budget envelope; the
    /// bracket is dual/greedy only.
    Skipped,
    /// The branch-and-bound certified the optimum: `lower == upper == opt`.
    Certified {
        /// The certified optimum.
        opt: f64,
        /// Search nodes expanded before the frontier emptied.
        nodes_expanded: u64,
    },
    /// The node budget ran out: the bracket is tightened by the certified
    /// Lagrangian bound, and `gap` is the certified distance to optimality.
    BoundOnly {
        /// Certified lower bound from the remaining frontier.
        lower: f64,
        /// Certified gap `upper − lower` at exit.
        gap: f64,
        /// Search nodes expanded before the budget ran out.
        nodes_expanded: u64,
    },
}

/// A bracket `lower ≤ OPT ≤ upper` plus helpers to turn a measured cost
/// into a competitive-ratio interval.
#[derive(Debug, Clone, Copy)]
pub struct OptBracket {
    /// Best known lower bound on OPT.
    pub lower: f64,
    /// Best known upper bound on OPT (cost of a feasible solution).
    pub upper: f64,
    /// The exact arm's contribution, when the instance fits its budget.
    pub exact: ExactArm,
}

/// Budget envelope for the exact arm inside [`OptBracket::compute`]: sized
/// so catalog-profile instances resolve in milliseconds while anything
/// larger falls back to the dual/greedy bracket.
const BRACKET_EXACT_MAX_COMMODITIES: usize = 10;
const BRACKET_EXACT_MAX_POINTS: usize = 256;
const BRACKET_EXACT_MAX_REQUESTS: usize = 1024;
const BRACKET_EXACT_NODE_BUDGET: u64 = 512;

impl OptBracket {
    /// Computes the bracket: `max(dual LB, serve-alone LB)` below,
    /// local-search-tightened greedy above, and — when the instance fits
    /// the exact arm's budget — the branch-and-bound's certified bound on
    /// both sides (collapsing the bracket to a point when it certifies).
    pub fn compute(inst: &Instance, requests: &[Request]) -> Result<Self, CoreError> {
        // Typed guard before any solver can reach the subset-cover DP's
        // enforcement assert.
        let mut max_demand = 0usize;
        for r in requests {
            r.validate(inst)?;
            max_demand = max_demand.max(r.demand().len());
        }
        if max_demand > MAX_DEMAND {
            return Err(CoreError::BadRequest(format!(
                "demand has {max_demand} commodities; the subset-cover DP supports \
                 |sr| <= {MAX_DEMAND}"
            )));
        }
        let dual = DualLowerBound::compute(inst, requests)?;
        // The serve-alone partition DP is 3^|sr|; skip it for demands its
        // own limit rejects.
        let alone = if max_demand <= 12 {
            serve_alone_lower_bound(inst, requests)?
        } else {
            0.0
        };
        let greedy = GreedyOffline::new().solve(inst, requests)?;
        let improved = LocalSearch::new().improve(inst, &greedy, requests)?;
        let upper = improved.total_cost().min(greedy.total_cost());
        let mut bracket = Self {
            lower: dual.max(alone).min(upper), // bracket must stay ordered
            upper,
            exact: ExactArm::Skipped,
        };

        if inst.num_commodities() <= BRACKET_EXACT_MAX_COMMODITIES
            && inst.num_points() <= BRACKET_EXACT_MAX_POINTS
            && requests.len() <= BRACKET_EXACT_MAX_REQUESTS
        {
            let solver = ExactSolver::new().with_node_budget(BRACKET_EXACT_NODE_BUDGET);
            let res = solver.solve_bounded(inst, requests)?;
            match res.outcome {
                ExactOutcome::Certified(_) => {
                    bracket.lower = res.upper_bound;
                    bracket.upper = res.upper_bound;
                    bracket.exact = ExactArm::Certified {
                        opt: res.upper_bound,
                        nodes_expanded: res.nodes_expanded,
                    };
                }
                ExactOutcome::BoundOnly { .. } => {
                    bracket.lower = bracket.lower.max(res.lower_bound).min(bracket.upper);
                    bracket.upper = bracket.upper.min(res.upper_bound);
                    bracket.exact = ExactArm::BoundOnly {
                        lower: res.lower_bound,
                        gap: res.gap,
                        nodes_expanded: res.nodes_expanded,
                    };
                }
            }
        }
        Ok(bracket)
    }

    /// Exact competitive ratio `cost / opt` when the exact arm certified,
    /// `NaN` otherwise.
    pub fn ratio_exact(&self, alg_cost: f64) -> f64 {
        match self.exact {
            ExactArm::Certified { opt, .. } if opt > 0.0 => alg_cost / opt,
            ExactArm::Certified { .. } => 1.0,
            _ => f64::NAN,
        }
    }

    /// Optimistic ratio estimate `cost / upper` (≤ the true ratio).
    pub fn ratio_lower(&self, alg_cost: f64) -> f64 {
        if self.upper > 0.0 {
            alg_cost / self.upper
        } else {
            1.0
        }
    }

    /// Pessimistic ratio estimate `cost / lower` (≥ the true ratio).
    pub fn ratio_upper(&self, alg_cost: f64) -> f64 {
        if self.lower > 0.0 {
            alg_cost / self.lower
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{ExactSolver, ExhaustiveSolver};
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    fn tiny_instance() -> Instance {
        Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.5, 3.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.5),
        )
        .unwrap()
    }

    #[test]
    fn mincost_single_matches_hand_computation() {
        let inst = tiny_instance();
        // Demand {0}: cheapest is a singleton at the request point: 1.5.
        let r = req(&inst, 0, &[0]);
        assert!((mincost_single(&inst, &r) - 1.5).abs() < 1e-9);
        // Demand {0,1}: one facility {0,1} at p0: 1.5·sqrt(2) ≈ 2.12 beats
        // two singletons (3.0).
        let r2 = req(&inst, 0, &[0, 1]);
        assert!((mincost_single(&inst, &r2) - 1.5 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn bounds_bracket_exact_opt() {
        let inst = tiny_instance();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 2, &[0]),
            req(&inst, 0, &[2]),
        ];
        let opt = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let bracket = OptBracket::compute(&inst, &reqs).unwrap();
        assert!(
            bracket.lower <= opt + 1e-9,
            "lower {} must be ≤ OPT {opt}",
            bracket.lower
        );
        assert!(
            bracket.upper >= opt - 1e-9,
            "upper {} must be ≥ OPT {opt}",
            bracket.upper
        );
        assert!(bracket.lower > 0.0);
    }

    #[test]
    fn dual_lower_bound_positive_on_nontrivial_input() {
        let inst = tiny_instance();
        let reqs = vec![req(&inst, 0, &[0]), req(&inst, 2, &[1, 2])];
        let lb = DualLowerBound::compute(&inst, &reqs).unwrap();
        assert!(lb > 0.0);
    }

    #[test]
    fn ratio_helpers() {
        let b = OptBracket {
            lower: 2.0,
            upper: 4.0,
            exact: ExactArm::Skipped,
        };
        assert!((b.ratio_lower(8.0) - 2.0).abs() < 1e-12);
        assert!((b.ratio_upper(8.0) - 4.0).abs() < 1e-12);
        assert!(b.ratio_exact(8.0).is_nan());
        let c = OptBracket {
            lower: 2.0,
            upper: 2.0,
            exact: ExactArm::Certified {
                opt: 2.0,
                nodes_expanded: 3,
            },
        };
        assert!((c.ratio_exact(8.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exact_arm_certifies_and_collapses_the_bracket() {
        let inst = tiny_instance();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2]),
            req(&inst, 2, &[0]),
            req(&inst, 0, &[2]),
        ];
        let opt = ExhaustiveSolver::new()
            .solve(&inst, &reqs)
            .unwrap()
            .total_cost();
        let bracket = OptBracket::compute(&inst, &reqs).unwrap();
        match bracket.exact {
            ExactArm::Certified {
                opt: certified,
                nodes_expanded,
            } => {
                assert!((certified - opt).abs() < 1e-9, "{certified} vs {opt}");
                assert!(nodes_expanded <= 512);
            }
            other => panic!("expected certification, got {other:?}"),
        }
        assert!((bracket.lower - bracket.upper).abs() < 1e-12);
        assert!((bracket.ratio_exact(2.0 * opt) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_demand_is_a_typed_error() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            21,
            CostModel::power(21, 1.0, 1.0),
        )
        .unwrap();
        let ids: Vec<u16> = (0..21).collect();
        let err = OptBracket::compute(&inst, &[req(&inst, 0, &ids)]).unwrap_err();
        assert!(matches!(err, CoreError::BadRequest(_)));
    }

    #[test]
    fn serve_alone_bound_is_max_over_requests() {
        let inst = tiny_instance();
        let cheap = req(&inst, 0, &[0]);
        let pricey = req(&inst, 0, &[0, 1, 2]);
        let lb = serve_alone_lower_bound(&inst, std::slice::from_ref(&cheap)).unwrap();
        let lb2 = serve_alone_lower_bound(&inst, &[cheap, pricey]).unwrap();
        assert!(lb2 >= lb);
    }
}
