//! Local-search tightening of offline solutions.
//!
//! Starting from any feasible facility set (typically [`super::GreedyOffline`]'s
//! output), applies improving moves until a local optimum or an iteration
//! budget:
//!
//! * **drop** — close a facility if rerouting every affected request to the
//!   remaining facilities is cheaper than its construction cost;
//! * **relocate** — move a facility to a nearby request location if the
//!   total cost drops;
//! * **promote** — replace a facility's configuration by the full set `S`
//!   when the extra construction cost is recouped by closing other
//!   facilities (captures the paper's "predict everything" optimum on
//!   Theorem-2-like inputs).
//!
//! After every move the assignment of *all* requests is recomputed exactly
//! with the subset-cover DP of [`super::assign_optimal`], so intermediate
//! states are always feasible and the final cost is exact for its facility
//! set.

use super::assign::{assign_optimal, OpenFacility};
use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::solution::Solution;
use omfl_core::CoreError;

/// Local-search improver.
#[derive(Debug, Clone)]
pub struct LocalSearch {
    /// Maximum number of applied moves.
    pub max_moves: usize,
    /// How many nearest request locations to try per relocate move.
    pub relocate_candidates: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        Self {
            max_moves: 64,
            relocate_candidates: 4,
        }
    }
}

impl LocalSearch {
    /// Default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cost of serving all requests optimally from `facilities`;
    /// `None` when some request cannot be covered.
    fn eval(inst: &Instance, facilities: &[OpenFacility], requests: &[Request]) -> Option<f64> {
        let mut total: f64 = facilities
            .iter()
            .map(|f| inst.facility_cost(f.location, &f.config))
            .sum();
        for r in requests {
            let (_, c) = assign_optimal(inst, facilities, r)?;
            total += c;
        }
        Some(total)
    }

    /// Improves `start` (a facility set) and returns the final solution.
    pub fn improve(
        &self,
        inst: &Instance,
        start: &Solution,
        requests: &[Request],
    ) -> Result<Solution, CoreError> {
        let mut facs: Vec<OpenFacility> = start
            .facilities()
            .iter()
            .map(|f| OpenFacility {
                location: f.location,
                config: f.config.clone(),
            })
            .collect();
        let mut cost = Self::eval(inst, &facs, requests).ok_or_else(|| {
            CoreError::Infeasible("starting facility set does not cover all requests".into())
        })?;

        let full = CommoditySet::full(inst.universe());
        for _ in 0..self.max_moves {
            let mut best_delta = -1e-9 * (1.0 + cost); // strictly improving only
            let mut best_facs: Option<Vec<OpenFacility>> = None;

            // Drop moves.
            for i in 0..facs.len() {
                let mut cand = facs.clone();
                cand.swap_remove(i);
                if let Some(c) = Self::eval(inst, &cand, requests) {
                    if c - cost < best_delta {
                        best_delta = c - cost;
                        best_facs = Some(cand);
                    }
                }
            }
            // Relocate moves: move each facility to the nearest few request
            // locations.
            for i in 0..facs.len() {
                let here = facs[i].location;
                let mut sites: Vec<_> = requests
                    .iter()
                    .map(|r| (r.location(), inst.distance(here, r.location())))
                    .collect();
                sites.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
                sites.dedup_by_key(|s| s.0);
                for &(site, _) in sites.iter().take(self.relocate_candidates) {
                    if site == here {
                        continue;
                    }
                    let mut cand = facs.clone();
                    cand[i].location = site;
                    if let Some(c) = Self::eval(inst, &cand, requests) {
                        if c - cost < best_delta {
                            best_delta = c - cost;
                            best_facs = Some(cand);
                        }
                    }
                }
            }
            // Promote moves: widen a facility to the full configuration.
            for i in 0..facs.len() {
                if facs[i].config == full {
                    continue;
                }
                let mut cand = facs.clone();
                cand[i].config = full.clone();
                // A promotion usually enables drops; try it together with
                // dropping every other facility that becomes redundant.
                if let Some(c) = Self::eval(inst, &cand, requests) {
                    if c - cost < best_delta {
                        best_delta = c - cost;
                        best_facs = Some(cand.clone());
                    }
                }
                let mut pruned = vec![cand[i].clone()];
                if let Some(c) = Self::eval(inst, &pruned, requests) {
                    if c - cost < best_delta {
                        best_delta = c - cost;
                        best_facs = Some(std::mem::take(&mut pruned));
                    }
                }
            }

            match best_facs {
                Some(f) => {
                    facs = f;
                    // Re-evaluate exactly rather than accumulating deltas.
                    cost = Self::eval(inst, &facs, requests)
                        .expect("improving moves preserve feasibility");
                }
                None => break,
            }
        }

        // Materialize.
        let mut sol = Solution::new();
        let fids: Vec<_> = facs
            .iter()
            .map(|f| sol.open_facility(inst, f.location, f.config.clone()))
            .collect();
        for r in requests {
            let (used, _) =
                assign_optimal(inst, &facs, r).expect("final facility set covers all requests");
            let assigned: Vec<_> = used.iter().map(|&i| fids[i]).collect();
            sol.assign(inst, r.clone(), &assigned);
        }
        sol.verify(inst)?;
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::GreedyOffline;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;
    use omfl_metric::PointId;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn promote_collapses_theorem2_gadget_to_single_facility() {
        // 16 singleton requests on one point, ceil-sqrt costs: greedy opens
        // many small facilities (≈ cost up to 16); promoting one to S and
        // dropping the rest reaches OPT = f^S = 4.
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            16,
            CostModel::ceil_sqrt(16),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..16u16).map(|e| req(&inst, 0, &[e])).collect();
        let greedy = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        let improved = LocalSearch::new().improve(&inst, &greedy, &reqs).unwrap();
        assert!(improved.total_cost() <= greedy.total_cost() + 1e-9);
        assert!(
            (improved.total_cost() - 4.0).abs() < 1e-9,
            "local search must reach OPT = 4, got {}",
            improved.total_cost()
        );
    }

    #[test]
    fn drop_removes_redundant_facility() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 0.1]).unwrap()),
            2,
            CostModel::power(2, 1.0, 5.0),
        )
        .unwrap();
        // Start from a deliberately wasteful solution: full facilities at
        // both points.
        let mut start = Solution::new();
        let u = inst.universe();
        let f0 = start.open_facility(&inst, PointId(0), CommoditySet::full(u));
        let _f1 = start.open_facility(&inst, PointId(1), CommoditySet::full(u));
        let reqs = vec![req(&inst, 0, &[0, 1]), req(&inst, 1, &[0, 1])];
        for r in &reqs {
            start.assign(&inst, r.clone(), &[f0]);
        }
        let improved = LocalSearch::new().improve(&inst, &start, &reqs).unwrap();
        assert_eq!(improved.facilities().len(), 1, "one facility suffices");
    }

    #[test]
    fn infeasible_start_is_rejected() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            2,
            CostModel::power(2, 1.0, 1.0),
        )
        .unwrap();
        let start = Solution::new(); // no facilities at all
        let reqs = vec![req(&inst, 0, &[0])];
        assert!(LocalSearch::new().improve(&inst, &start, &reqs).is_err());
    }
}
