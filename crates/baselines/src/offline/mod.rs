//! Offline reference solvers bracketing OPT.
//!
//! Computing OPT for the MFLP is NP-hard (it generalizes both facility
//! location and, through its cost functions, weighted set cover — paper
//! §1.2). The experiments therefore report measured competitive ratios
//! against a *bracket*:
//!
//! * **upper bounds** on OPT: [`GreedyOffline`] (a Ravi–Sinha-flavoured
//!   star greedy) tightened by [`LocalSearch`];
//! * **lower bounds** on OPT: [`DualLowerBound`] (PD-OMFLP's scaled duals,
//!   Corollary 17) and the serve-alone bound of [`serve_alone_lower_bound`];
//! * **exact OPT** via [`ExactSolver`] for tiny instances (used by the test
//!   suite to certify the bounds, and by experiments on gadget instances).
//!
//! `ratio_lower = ALG / upper ≤ true ratio ≤ ALG / lower = ratio_upper`.

mod assign;
mod exact;
mod greedy;
mod lb;
mod local_search;

pub use assign::{assign_optimal, OpenFacility};
pub use exact::ExactSolver;
pub use greedy::GreedyOffline;
pub use lb::{serve_alone_lower_bound, DualLowerBound, OptBracket};
pub use local_search::LocalSearch;
