//! Offline reference solvers bracketing OPT.
//!
//! Computing OPT for the MFLP is NP-hard (it generalizes both facility
//! location and, through its cost functions, weighted set cover — paper
//! §1.2). The experiments therefore report measured competitive ratios
//! against a *bracket*:
//!
//! * **upper bounds** on OPT: [`GreedyOffline`] (a Ravi–Sinha-flavoured
//!   star greedy) tightened by [`LocalSearch`];
//! * **lower bounds** on OPT: [`DualLowerBound`] (PD-OMFLP's scaled duals,
//!   Corollary 17) and the serve-alone bound of [`serve_alone_lower_bound`];
//! * **exact OPT** via [`ExactSolver`], a Lagrangian-bounded best-first
//!   branch-and-bound good for `|M|` into the hundreds (with
//!   [`ExhaustiveSolver`] kept as its tiny differential oracle). Where the
//!   exact arm certifies, the bracket collapses to a point and ratios are
//!   exact.
//!
//! `ratio_lower = ALG / upper ≤ true ratio ≤ ALG / lower = ratio_upper`.

mod assign;
mod exact;
mod greedy;
mod lagrangian;
mod lb;
mod local_search;

pub use assign::{assign_optimal, OpenFacility, MAX_DEMAND};
pub use exact::{ExactOutcome, ExactResult, ExactSolver, ExhaustiveSolver};
pub use greedy::GreedyOffline;
pub use lagrangian::{ascend, config_scores, BoundArtifacts, CollapsedInstance, MergedRequest};
pub use lb::{serve_alone_lower_bound, DualLowerBound, ExactArm, OptBracket};
pub use local_search::LocalSearch;
