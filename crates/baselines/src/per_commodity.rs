//! The trivial per-commodity decomposition baseline (§1.3).
//!
//! "It is trivial to achieve an algorithm having a competitive ratio of
//! `O(|S| · log n / log log n)` simply by solving an instance of the OFLP
//! for each commodity separately" — this module is that algorithm: one
//! independent single-commodity engine per commodity, with every opening and
//! assignment mirrored into a composite solution over the original instance.
//!
//! The decomposition *never predicts* (it only ever opens single-commodity
//! facilities), so the Theorem 2 adversary forces it to `Ω(√|S|)·OPT` —
//! exactly the separation the `thm2-lb` experiment measures.

use crate::fotakis::FotakisOfl;
use crate::meyerson::MeyersonOfl;
use crate::project::single_commodity_instance;
use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_core::algorithm::{OnlineAlgorithm, ServeOutcome};
use omfl_core::heavy::SharedMetric;
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::request::Request;
use omfl_core::solution::{FacilityId, Solution};
use omfl_core::CoreError;
use omfl_metric::Metric;
use std::sync::Arc;

/// The original instance plus one single-commodity projection per commodity.
pub struct PerCommodityParts {
    /// The undecomposed instance.
    pub original: Instance,
    /// `subs[e]` is the projection onto commodity `e`.
    pub subs: Vec<Instance>,
}

impl PerCommodityParts {
    /// Builds all projections, sharing the metric.
    pub fn build(metric: Arc<dyn Metric>, cost: CostModel) -> Result<Self, CoreError> {
        let s = cost.universe().len();
        let original = Instance::with_cost_fn(
            Box::new(SharedMetric(Arc::clone(&metric))),
            Box::new(cost.clone()),
        )?;
        let mut subs = Vec::with_capacity(s);
        for e in 0..s as u16 {
            subs.push(single_commodity_instance(
                Arc::clone(&metric),
                cost.clone(),
                CommodityId(e),
            )?);
        }
        Ok(Self { original, subs })
    }
}

/// The decomposition baseline, generic over the per-commodity engine.
pub struct PerCommodity<'a, E> {
    parts: &'a PerCommodityParts,
    engines: Vec<E>,
    fmaps: Vec<Vec<FacilityId>>,
    sol: Solution,
    label: &'static str,
}

impl<'a> PerCommodity<'a, PdOmflp<'a>> {
    /// Deterministic decomposition: PD (≡ Fotakis-style) per commodity.
    pub fn new_pd(parts: &'a PerCommodityParts) -> Self {
        Self {
            parts,
            engines: parts.subs.iter().map(PdOmflp::new).collect(),
            fmaps: vec![Vec::new(); parts.subs.len()],
            sol: Solution::new(),
            label: "per-commodity-pd",
        }
    }
}

impl<'a> PerCommodity<'a, FotakisOfl<'a>> {
    /// Deterministic decomposition with the standalone Fotakis engine.
    pub fn new_fotakis(parts: &'a PerCommodityParts) -> Result<Self, CoreError> {
        let engines = parts
            .subs
            .iter()
            .map(FotakisOfl::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            parts,
            engines,
            fmaps: vec![Vec::new(); parts.subs.len()],
            sol: Solution::new(),
            label: "per-commodity-fotakis",
        })
    }
}

impl<'a> PerCommodity<'a, MeyersonOfl<'a>> {
    /// Randomized decomposition: Meyerson per commodity. Engine `e` is
    /// seeded with `seed ⊕ e` so runs are reproducible.
    pub fn new_meyerson(parts: &'a PerCommodityParts, seed: u64) -> Result<Self, CoreError> {
        let engines = parts
            .subs
            .iter()
            .enumerate()
            .map(|(e, sub)| MeyersonOfl::new(sub, seed ^ e as u64))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            parts,
            engines,
            fmaps: vec![Vec::new(); parts.subs.len()],
            sol: Solution::new(),
            label: "per-commodity-meyerson",
        })
    }
}

impl<'a, E: OnlineAlgorithm> OnlineAlgorithm for PerCommodity<'a, E> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        let orig = &self.parts.original;
        request.validate(orig)?;
        let start_con = self.sol.construction_cost();
        let mut assigned = Vec::new();

        for e in request.demand().iter() {
            let sub = &self.parts.subs[e.index()];
            let sub_req = Request::new(request.location(), CommoditySet::full(sub.universe()));
            let out = self.engines[e.index()].serve(&sub_req)?;
            // Mirror new facilities (single-commodity config {e}).
            for fid in out.opened {
                let f = &self.engines[e.index()].solution().facilities()[fid.index()];
                let config = CommoditySet::singleton(orig.universe(), e)
                    .expect("commodity from the original demand");
                let own = self.sol.open_facility(orig, f.location, config);
                debug_assert_eq!(fid.index(), self.fmaps[e.index()].len());
                self.fmaps[e.index()].push(own);
            }
            for fid in out.assigned_to {
                assigned.push(self.fmaps[e.index()][fid.index()]);
            }
        }

        let before_assign = self.sol.num_requests();
        let opened: Vec<FacilityId> = self
            .sol
            .facilities()
            .iter()
            .filter(|f| f.opened_at == before_assign)
            .map(|f| f.id)
            .collect();
        let assignment = self.sol.assign(orig, request.clone(), &assigned);
        Ok(ServeOutcome {
            opened,
            assigned_to: assignment.facilities.clone(),
            connection_cost: assignment.connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large: false,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_core::algorithm::run_online_verified;
    use omfl_metric::line::LineMetric;
    use omfl_metric::PointId;

    fn parts(s: u16) -> PerCommodityParts {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
        PerCommodityParts::build(metric, CostModel::ceil_sqrt(s)).unwrap()
    }

    fn req(inst: &Instance, ids: &[u16]) -> Request {
        Request::new(
            PointId(0),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn never_predicts_on_theorem2_gadget() {
        // 16 commodities requested one by one: the decomposition must open
        // 16 single-commodity facilities (cost 16) — the Ω(√S)-separation
        // versus OPT = f^S = 4.
        let parts = parts(16);
        let inst = &parts.original;
        let mut alg = PerCommodity::new_pd(&parts);
        for e in 0..16u16 {
            alg.serve(&req(inst, &[e])).unwrap();
        }
        alg.solution().verify(inst).unwrap();
        assert_eq!(alg.solution().num_small_facilities(), 16);
        assert_eq!(alg.solution().num_large_facilities(), 0);
        assert!((alg.solution().total_cost() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn multi_commodity_requests_fan_out() {
        let parts = parts(9);
        let inst = &parts.original;
        let mut alg = PerCommodity::new_pd(&parts);
        let out = alg.serve(&req(inst, &[0, 4, 8])).unwrap();
        assert_eq!(out.opened.len(), 3, "one facility per demanded commodity");
        alg.solution().verify(inst).unwrap();
    }

    #[test]
    fn meyerson_engines_are_feasible_and_seeded() {
        let parts = parts(8);
        let inst = &parts.original;
        let reqs: Vec<Request> = (0..20u32)
            .map(|i| req(inst, &[(i % 8) as u16, ((i * 3 + 1) % 8) as u16]))
            .collect();
        let mut a = PerCommodity::new_meyerson(&parts, 5).unwrap();
        let ca = run_online_verified(&mut a, inst, &reqs).unwrap();
        let mut b = PerCommodity::new_meyerson(&parts, 5).unwrap();
        let cb = run_online_verified(&mut b, inst, &reqs).unwrap();
        assert_eq!(ca, cb, "same seed must reproduce the same run");
    }

    #[test]
    fn fotakis_and_pd_engines_agree() {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 2.0, 5.0, 9.0]).unwrap());
        let parts = PerCommodityParts::build(metric, CostModel::power(4, 1.0, 2.0)).unwrap();
        let inst = &parts.original;
        let reqs: Vec<Request> = (0..16u32)
            .map(|i| {
                Request::new(
                    PointId(i % 4),
                    CommoditySet::from_ids(inst.universe(), &[(i % 4) as u16]).unwrap(),
                )
            })
            .collect();
        let mut pd = PerCommodity::new_pd(&parts);
        let c1 = run_online_verified(&mut pd, inst, &reqs).unwrap();
        let mut fo = PerCommodity::new_fotakis(&parts).unwrap();
        let c2 = run_online_verified(&mut fo, inst, &reqs).unwrap();
        assert!((c1 - c2).abs() < 1e-6 * (1.0 + c1.abs()));
    }
}
