//! Sub-instance builders: project a multi-commodity instance onto a single
//! commodity, or collapse it to "large facilities only".
//!
//! Both adapters share the original metric via an `Arc` (see
//! [`omfl_core::heavy::SharedMetric`]) and own a clone of the concrete
//! [`CostModel`], so sub-instances are cheap and self-contained.

use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::{CommodityId, CommoditySet, Universe};
use omfl_core::heavy::SharedMetric;
use omfl_core::instance::Instance;
use omfl_core::CoreError;
use omfl_metric::Metric;
use std::sync::Arc;

/// Cost adapter: a 1-commodity universe whose only commodity is original
/// commodity `e`, priced via `f^{{e}}_m`.
struct SingleCommodityCost {
    inner: CostModel,
    e: CommodityId,
    orig_universe: Universe,
    universe: Universe,
}

impl FacilityCostFn for SingleCommodityCost {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn cost(&self, location: usize, config: &CommoditySet) -> f64 {
        if config.is_empty() {
            0.0
        } else {
            let s = CommoditySet::singleton(self.orig_universe, self.e)
                .expect("commodity id from the original universe");
            self.inner.cost(location, &s)
        }
    }
}

/// Cost adapter: a 1-commodity universe whose only "commodity" stands for
/// the whole of `S`, priced via `f^{S}_m` — the substrate of the always-
/// predict baseline.
struct CollapsedCost {
    inner: CostModel,
    universe: Universe,
}

impl FacilityCostFn for CollapsedCost {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn cost(&self, location: usize, config: &CommoditySet) -> f64 {
        if config.is_empty() {
            0.0
        } else {
            self.inner.full_cost(location)
        }
    }
}

/// Builds the single-commodity sub-instance for original commodity `e`.
pub fn single_commodity_instance(
    metric: Arc<dyn Metric>,
    cost: CostModel,
    e: CommodityId,
) -> Result<Instance, CoreError> {
    let orig_universe = cost.universe();
    if e.index() >= orig_universe.len() {
        return Err(CoreError::BadInstance(format!(
            "commodity {e} out of range for |S| = {}",
            orig_universe.len()
        )));
    }
    Instance::with_cost_fn(
        Box::new(SharedMetric(metric)),
        Box::new(SingleCommodityCost {
            inner: cost,
            e,
            orig_universe,
            universe: Universe::new(1).expect("1 >= 1"),
        }),
    )
}

/// Builds the collapsed ("everything is one commodity priced at `f^S_m`")
/// sub-instance.
pub fn collapsed_instance(metric: Arc<dyn Metric>, cost: CostModel) -> Result<Instance, CoreError> {
    Instance::with_cost_fn(
        Box::new(SharedMetric(metric)),
        Box::new(CollapsedCost {
            inner: cost,
            universe: Universe::new(1).expect("1 >= 1"),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_metric::line::LineMetric;
    use omfl_metric::PointId;

    fn metric() -> Arc<dyn Metric> {
        Arc::new(LineMetric::new(vec![0.0, 1.0]).unwrap())
    }

    #[test]
    fn single_commodity_projection_prices_match() {
        let cost = CostModel::Linear {
            universe: Universe::new(3).unwrap(),
            weights: vec![1.0, 2.0, 4.0],
        };
        let sub = single_commodity_instance(metric(), cost, CommodityId(2)).unwrap();
        assert_eq!(sub.num_commodities(), 1);
        assert_eq!(sub.large_cost(PointId(0)), 4.0);
        assert_eq!(sub.small_cost(PointId(1), CommodityId(0)), 4.0);
    }

    #[test]
    fn collapsed_projection_prices_full_set() {
        let cost = CostModel::power(16, 1.0, 3.0); // f^S = 3·4 = 12
        let sub = collapsed_instance(metric(), cost).unwrap();
        assert_eq!(sub.num_commodities(), 1);
        assert_eq!(sub.large_cost(PointId(0)), 12.0);
    }

    #[test]
    fn out_of_range_commodity_rejected() {
        let cost = CostModel::power(3, 1.0, 1.0);
        assert!(single_commodity_instance(metric(), cost, CommodityId(3)).is_err());
    }
}
