//! Property tests for the offline solvers: the assignment DP is exactly
//! optimal, and the solver hierarchy (lower bounds ≤ exact ≤ heuristics)
//! never inverts.

use omfl_baselines::offline::{
    assign_optimal, serve_alone_lower_bound, ExactSolver, ExhaustiveSolver, GreedyOffline,
    LocalSearch, OpenFacility,
};
use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use proptest::prelude::*;

fn instance(positions: &[f64], s: u16, x: f64) -> Instance {
    Instance::new(
        Box::new(LineMetric::new(positions.to_vec()).unwrap()),
        s,
        CostModel::power(s, x, 1.0),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The subset-cover DP equals brute force over facility subsets.
    #[test]
    fn assign_optimal_equals_brute_force(
        positions in prop::collection::vec(0.0..10.0f64, 1..5),
        fac_raw in prop::collection::vec((0u32..5, prop::collection::vec(0u16..4, 1..4)), 1..7),
        demand_raw in prop::collection::vec(0u16..4, 1..5),
        loc in 0u32..5,
    ) {
        let inst = instance(&positions, 4, 1.0);
        let u = inst.universe();
        let m = inst.num_points() as u32;
        let facs: Vec<OpenFacility> = fac_raw
            .iter()
            .map(|(l, ids)| OpenFacility {
                location: PointId(l % m),
                config: CommoditySet::from_ids(u, ids).unwrap(),
            })
            .collect();
        let req = Request::new(
            PointId(loc % m),
            CommoditySet::from_ids(u, &demand_raw).unwrap(),
        );

        let dp = assign_optimal(&inst, &facs, &req);

        // Brute force over all 2^F subsets.
        let mut best: Option<f64> = None;
        for mask in 1u32..(1 << facs.len()) {
            let mut covered = CommoditySet::empty(u);
            let mut cost = 0.0;
            for (i, f) in facs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    covered.union_with(&f.config).unwrap();
                    cost += inst.distance(req.location(), f.location);
                }
            }
            if req.demand().is_subset_of(&covered) {
                best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            }
        }
        match (dp, best) {
            (Some((_, c)), Some(b)) => prop_assert!((c - b).abs() < 1e-9, "dp {c} vs brute {b}"),
            (None, None) => {}
            (dp, brute) => prop_assert!(
                false,
                "coverage disagreement: dp = {:?}, brute = {:?}",
                dp.map(|x| x.1),
                brute
            ),
        }
    }

    /// Solver hierarchy: lower bounds ≤ exact OPT ≤ local search ≤ greedy.
    #[test]
    fn solver_hierarchy_never_inverts(
        positions in prop::collection::vec(0.0..8.0f64, 2..4),
        x in 0.5..1.5f64,
        reqs_raw in prop::collection::vec((0u32..4, prop::collection::vec(0u16..3, 1..3)), 1..6),
    ) {
        let inst = instance(&positions, 3, x);
        let u = inst.universe();
        let m = inst.num_points() as u32;
        let reqs: Vec<Request> = reqs_raw
            .iter()
            .map(|(l, ids)| {
                Request::new(PointId(l % m), CommoditySet::from_ids(u, ids).unwrap())
            })
            .collect();

        let opt = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let greedy = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        let ls = LocalSearch::new().improve(&inst, &greedy, &reqs).unwrap();
        let alone = serve_alone_lower_bound(&inst, &reqs).unwrap();

        prop_assert!(alone <= opt + 1e-6, "serve-alone LB {alone} > OPT {opt}");
        prop_assert!(opt <= ls.total_cost() + 1e-6, "OPT {opt} > LS {}", ls.total_cost());
        prop_assert!(
            ls.total_cost() <= greedy.total_cost() + 1e-9,
            "LS {} > greedy {}", ls.total_cost(), greedy.total_cost()
        );
    }

    /// Past the old exhaustive caps (`|S| ≤ 4`, `|M| ≤ 5`): the Lagrangian
    /// root bound, the certified optimum, and greedy never invert —
    /// `lagrangian_lb ≤ exact ≤ greedy_ub` to within `1e-9 · scale`.
    #[test]
    fn lagrangian_bnb_hierarchy_past_old_caps(
        positions in prop::collection::vec(0.0..12.0f64, 6..9),
        x in 0.5..1.9f64,
        reqs_raw in prop::collection::vec((0u32..9, prop::collection::vec(0u16..5, 1..4)), 1..8),
    ) {
        let inst = instance(&positions, 5, x);
        let u = inst.universe();
        let m = inst.num_points() as u32;
        let reqs: Vec<Request> = reqs_raw
            .iter()
            .map(|(l, ids)| {
                Request::new(PointId(l % m), CommoditySet::from_ids(u, ids).unwrap())
            })
            .collect();

        // Past the old solver's limits by construction.
        prop_assert!(ExhaustiveSolver::new().solve(&inst, &reqs).is_err());

        let res = ExactSolver::new().solve_bounded(&inst, &reqs).unwrap();
        prop_assert!(res.certified(), "budget must suffice on these sizes");
        let exact = res.upper_bound;
        let greedy = GreedyOffline::new().solve(&inst, &reqs).unwrap().total_cost();
        let tol = 1e-9 * (1.0 + greedy.abs());
        prop_assert!(
            res.root_bound <= exact + tol,
            "lagrangian root LB {} > exact {exact}", res.root_bound
        );
        prop_assert!(res.lower_bound <= exact + tol);
        prop_assert!(exact <= greedy + tol, "exact {exact} > greedy {greedy}");
    }

    /// Wherever both solvers run (inside the old caps), the old exhaustive
    /// DFS and the new branch-and-bound agree on the optimum.
    #[test]
    fn exhaustive_agrees_with_bnb(
        positions in prop::collection::vec(0.0..8.0f64, 2..5),
        x in 0.5..1.5f64,
        reqs_raw in prop::collection::vec((0u32..5, prop::collection::vec(0u16..4, 1..4)), 1..6),
    ) {
        let inst = instance(&positions, 4, x);
        let u = inst.universe();
        let m = inst.num_points() as u32;
        let reqs: Vec<Request> = reqs_raw
            .iter()
            .map(|(l, ids)| {
                Request::new(PointId(l % m), CommoditySet::from_ids(u, ids).unwrap())
            })
            .collect();

        let dfs = ExhaustiveSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let bnb = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        prop_assert!(
            (dfs - bnb).abs() <= 1e-9 * (1.0 + dfs.abs()),
            "exhaustive {dfs} vs branch-and-bound {bnb}"
        );
    }

    /// Greedy is always feasible and covers every request exactly.
    #[test]
    fn greedy_feasible_on_random_instances(
        positions in prop::collection::vec(0.0..15.0f64, 1..6),
        reqs_raw in prop::collection::vec((0u32..6, prop::collection::vec(0u16..5, 1..4)), 0..12),
    ) {
        let inst = instance(&positions, 5, 1.0);
        let u = inst.universe();
        let m = inst.num_points() as u32;
        let reqs: Vec<Request> = reqs_raw
            .iter()
            .map(|(l, ids)| {
                Request::new(PointId(l % m), CommoditySet::from_ids(u, ids).unwrap())
            })
            .collect();
        let sol = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        prop_assert_eq!(sol.num_requests(), reqs.len());
        // verify() is called inside solve; assert the invariant directly too.
        sol.verify(&inst).unwrap();
    }
}
