//! Criterion benches for the online algorithms and offline solvers.
//!
//! These quantify the paper's §4 efficiency claim (RAND's per-request work
//! avoids PD's O(|M|·|S|) bid scans) and guard the hot paths against
//! regressions.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use omfl_baselines::offline::{ExactSolver, GreedyOffline};
use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::run_online;
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::request::Request;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use omfl_workload::composite::uniform_line;
use omfl_workload::demand::DemandModel;
use omfl_workload::Scenario;
use std::time::Duration;

fn scenario(n: usize, s: u16) -> Scenario {
    uniform_line(
        32,
        40.0,
        n,
        DemandModel::UniformK { k: 3 },
        CostModel::power(s, 1.0, 2.0),
        9,
    )
    .expect("scenario")
}

fn bench_online(c: &mut Criterion) {
    let mut g = c.benchmark_group("online-serve");
    for &(n, s) in &[(64usize, 8u16), (128, 32), (256, 64)] {
        let sc = scenario(n, s);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("pd", format!("n{n}-s{s}")),
            &sc,
            |b, sc| {
                b.iter_batched(
                    || PdOmflp::new(sc.instance()),
                    |mut alg| run_online(&mut alg, &sc.requests).expect("serve"),
                    BatchSize::SmallInput,
                );
            },
        );
        g.bench_with_input(
            BenchmarkId::new("rand", format!("n{n}-s{s}")),
            &sc,
            |b, sc| {
                b.iter_batched(
                    || RandOmflp::new(sc.instance(), 7),
                    |mut alg| run_online(&mut alg, &sc.requests).expect("serve"),
                    BatchSize::SmallInput,
                );
            },
        );
        g.bench_with_input(
            BenchmarkId::new("per-commodity", format!("n{n}-s{s}")),
            &sc,
            |b, sc| {
                let parts =
                    PerCommodityParts::build(std::sync::Arc::clone(&sc.metric), sc.cost.clone())
                        .expect("parts");
                b.iter_batched(
                    || PerCommodity::new_pd(&parts),
                    |mut alg| run_online(&mut alg, &sc.requests).expect("serve"),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

fn bench_offline(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline");
    let sc = scenario(48, 8);
    g.bench_function("greedy-n48-s8", |b| {
        b.iter(|| {
            GreedyOffline::new()
                .solve(sc.instance(), &sc.requests)
                .expect("greedy")
                .total_cost()
        })
    });

    // Exact solver on a tiny instance.
    let inst = Instance::new(
        Box::new(LineMetric::new(vec![0.0, 1.0, 2.5, 4.0]).unwrap()),
        3,
        CostModel::power(3, 1.0, 1.5),
    )
    .unwrap();
    let u = inst.universe();
    let reqs: Vec<Request> = (0..8u32)
        .map(|i| {
            Request::new(
                PointId(i % 4),
                CommoditySet::from_ids(u, &[(i % 3) as u16, ((i + 1) % 3) as u16]).unwrap(),
            )
        })
        .collect();
    g.bench_function("exact-m4-s3-n8", |b| {
        b.iter(|| {
            ExactSolver::new()
                .solve(&inst, &reqs)
                .expect("exact")
                .total_cost()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(400))
        .sample_size(15);
    targets = bench_online, bench_offline
}
criterion_main!(benches);
