//! Criterion benches for the substrates: commodity bitsets, metric queries,
//! and the set-cover assignment DP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use omfl_baselines::offline::{assign_optimal, OpenFacility};
use omfl_commodity::cost::CostModel;
use omfl_commodity::{CommodityId, CommoditySet, Universe};
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_metric::graph::GraphMetric;
use omfl_metric::line::LineMetric;
use omfl_metric::{Metric, PointId};
use std::time::Duration;

fn bench_bitset(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitset");
    for &s in &[64u16, 128, 512] {
        let u = Universe::new(s).unwrap();
        let a = CommoditySet::from_ids(u, &(0..s).step_by(2).collect::<Vec<_>>()).unwrap();
        let b = CommoditySet::from_ids(u, &(0..s).step_by(3).collect::<Vec<_>>()).unwrap();
        g.bench_with_input(
            BenchmarkId::new("union", s),
            &(a.clone(), b.clone()),
            |bch, (a, b)| bch.iter(|| black_box(a.union(b).unwrap().len())),
        );
        g.bench_with_input(BenchmarkId::new("iter-sum", s), &a, |bch, a| {
            bch.iter(|| black_box(a.iter().map(|e| e.0 as u64).sum::<u64>()))
        });
        g.bench_with_input(
            BenchmarkId::new("subset", s),
            &(a.clone(), b.clone()),
            |bch, (a, b)| bch.iter(|| black_box(a.is_subset_of(b))),
        );
    }
    g.finish();
}

fn bench_metric(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric");
    let line = LineMetric::uniform(256, 100.0).unwrap();
    g.bench_function("line-distance", |b| {
        b.iter(|| black_box(line.distance(PointId(3), PointId(200))))
    });
    let ring = GraphMetric::ring(256).unwrap();
    g.bench_function("graph-apsp-lookup", |b| {
        b.iter(|| black_box(ring.distance(PointId(3), PointId(200))))
    });
    g.bench_function("graph-apsp-build-64", |b| {
        b.iter(|| black_box(GraphMetric::ring(64).unwrap().len()))
    });
    g.finish();
}

fn bench_assign(c: &mut Criterion) {
    let inst = Instance::new(
        Box::new(LineMetric::uniform(16, 20.0).unwrap()),
        12,
        CostModel::power(12, 1.0, 1.0),
    )
    .unwrap();
    let u = inst.universe();
    let facs: Vec<OpenFacility> = (0..16u32)
        .map(|i| OpenFacility {
            location: PointId(i % 16),
            config: CommoditySet::from_ids(u, &[(i % 12) as u16, ((i * 5 + 1) % 12) as u16])
                .unwrap(),
        })
        .collect();
    let req = Request::new(
        PointId(4),
        CommoditySet::from_ids(u, &[0, 2, 5, 7, 9, 11]).unwrap(),
    );
    c.bench_function("assign-optimal-k6-f16", |b| {
        b.iter(|| black_box(assign_optimal(&inst, &facs, &req).unwrap().1))
    });
    let _ = CommodityId(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    targets = bench_bitset, bench_metric, bench_assign
}
criterion_main!(benches);
