//! Experiment harness CLI.
//!
//! ```text
//! experiments --list               enumerate experiments
//! experiments                      run all (quick mode)
//! experiments --full thm2-lb ...   run selected experiments at full size
//! experiments --out results/       also write CSVs (default: results/)
//! ```

use omfl_bench::registry;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let full = args.iter().any(|a| a == "--full");
    let mut out_dir = PathBuf::from("results");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if let Some(d) = args.get(i + 1) {
            out_dir = PathBuf::from(d);
        }
    }
    let selected: Vec<&String> = args
        .iter()
        .filter(|a| {
            !a.starts_with("--")
                && Some(a.as_str())
                    != args
                        .iter()
                        .position(|x| x == "--out")
                        .and_then(|i| args.get(i + 1))
                        .map(|s| s.as_str())
        })
        .collect();

    let reg = registry();
    if list {
        println!("available experiments:");
        for e in &reg {
            println!("  {:14} {}", e.id, e.title);
        }
        return;
    }

    let quick = !full;
    let mut ran = 0;
    for e in &reg {
        if !selected.is_empty() && !selected.iter().any(|s| s.as_str() == e.id) {
            continue;
        }
        println!(
            "=== {} — {} ({}) ===",
            e.id,
            e.title,
            if quick { "quick" } else { "full" }
        );
        let t0 = std::time::Instant::now();
        let tables = (e.run)(quick);
        for t in &tables {
            print!("{}", t.render());
            match t.save_csv(&out_dir) {
                Ok(p) => println!("  csv: {}", p.display()),
                Err(err) => eprintln!("  csv write failed: {err}"),
            }
            println!();
        }
        println!("  ({} in {:.1}s)\n", e.id, t0.elapsed().as_secs_f64());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; use --list to see ids");
        std::process::exit(2);
    }
}
