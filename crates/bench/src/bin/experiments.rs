//! Experiment harness CLI.
//!
//! ```text
//! experiments --list               enumerate experiments
//! experiments                      run all (quick mode)
//! experiments --full thm2-lb ...   run selected experiments at full size
//! experiments --out results/       also write CSVs (default: results/)
//! experiments --emit-json [dir]    write BENCH_pd.json / BENCH_sweep.json /
//!                                  BENCH_serve.json / BENCH_opt.json
//! experiments --check-json [dir]   re-run the smoke profile and fail on
//!                                  missing keys, a >1.5x perf regression
//!                                  on any >=1ms cell, a speedup below its
//!                                  floor, or a block skip rate below its
//!                                  floor, vs the committed baselines.
//!                                  The fresh output is always written to
//!                                  <dir>/bench-fresh/ so CI can upload it
//!                                  as an artifact — regenerating baselines
//!                                  from the failing machine is then a copy,
//!                                  not a guess
//! ```

use omfl_bench::{perfjson, registry};
use std::path::{Path, PathBuf};

/// Runs the bench smoke profile and either writes (`emit`) or verifies
/// (`check`) the `BENCH_*.json` artifacts in `dir`.
fn run_json_mode(dir: &Path, emit: bool) {
    let (pd_doc, sweep_doc, serve_doc, opt_doc) = match perfjson::smoke_profile_json() {
        Ok(docs) => docs,
        Err(e) => {
            eprintln!("bench smoke profile failed: {e}");
            std::process::exit(1);
        }
    };
    let pd_path = dir.join("BENCH_pd.json");
    let sweep_path = dir.join("BENCH_sweep.json");
    let serve_path = dir.join("BENCH_serve.json");
    let opt_path = dir.join("BENCH_opt.json");
    if emit {
        std::fs::create_dir_all(dir).expect("bench output dir");
        std::fs::write(&pd_path, &pd_doc).expect("write BENCH_pd.json");
        std::fs::write(&sweep_path, &sweep_doc).expect("write BENCH_sweep.json");
        std::fs::write(&serve_path, &serve_doc).expect("write BENCH_serve.json");
        std::fs::write(&opt_path, &opt_doc).expect("write BENCH_opt.json");
        println!("wrote {}", pd_path.display());
        println!("wrote {}", sweep_path.display());
        println!("wrote {}", serve_path.display());
        println!("wrote {}", opt_path.display());
        print!("{pd_doc}");
        print!("{serve_doc}");
        print!("{opt_doc}");
        return;
    }
    // The fresh run is persisted unconditionally: on failure CI uploads it
    // as a workflow artifact, and the messages below can point at a file
    // that actually exists instead of numbers scrolled out of a log.
    let fresh_dir = dir.join("bench-fresh");
    std::fs::create_dir_all(&fresh_dir).expect("bench-fresh dir");
    std::fs::write(fresh_dir.join("BENCH_pd.json"), &pd_doc).expect("write fresh BENCH_pd.json");
    std::fs::write(fresh_dir.join("BENCH_sweep.json"), &sweep_doc)
        .expect("write fresh BENCH_sweep.json");
    std::fs::write(fresh_dir.join("BENCH_serve.json"), &serve_doc)
        .expect("write fresh BENCH_serve.json");
    std::fs::write(fresh_dir.join("BENCH_opt.json"), &opt_doc).expect("write fresh BENCH_opt.json");

    let mut failed = false;
    for (path, fresh, label) in [
        (&pd_path, &pd_doc, "BENCH_pd.json"),
        (&sweep_path, &sweep_doc, "BENCH_sweep.json"),
        (&serve_path, &serve_doc, "BENCH_serve.json"),
        (&opt_path, &opt_doc, "BENCH_opt.json"),
    ] {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "FAIL {label}: committed baseline unreadable at {}: {e}",
                    path.display()
                );
                failed = true;
                continue;
            }
        };
        match perfjson::check(fresh, &committed, label) {
            Ok(notes) => {
                for n in notes {
                    println!("ok   {n}");
                }
            }
            Err(errors) => {
                for e in errors {
                    eprintln!("FAIL {e}");
                }
                eprintln!(
                    "     this run's fresh {label} is at {}",
                    fresh_dir.join(label).display()
                );
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "\nIf the failing cells are wall-clock on a uniformly slower machine (the \
             machine-independent speedup/skip-rate gates still pass), regenerate the \
             committed baselines from this machine instead of loosening the factor:"
        );
        eprintln!("    cargo run --release -p omfl-bench --bin experiments -- --emit-json .");
        eprintln!(
            "In CI, download the 'bench-fresh-json' artifact of this run and commit its \
             files as the new BENCH_pd.json / BENCH_sweep.json / BENCH_serve.json / \
             BENCH_opt.json."
        );
        std::process::exit(1);
    }
    println!("bench JSON check passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let full = args.iter().any(|a| a == "--full");
    for (flag, emit) in [("--emit-json", true), ("--check-json", false)] {
        if let Some(i) = args.iter().position(|a| a == flag) {
            let dir = args
                .get(i + 1)
                .filter(|d| !d.starts_with("--"))
                .map_or_else(|| PathBuf::from("."), PathBuf::from);
            run_json_mode(&dir, emit);
            return;
        }
    }
    let mut out_dir = PathBuf::from("results");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if let Some(d) = args.get(i + 1) {
            out_dir = PathBuf::from(d);
        }
    }
    let selected: Vec<&String> = args
        .iter()
        .filter(|a| {
            !a.starts_with("--")
                && Some(a.as_str())
                    != args
                        .iter()
                        .position(|x| x == "--out")
                        .and_then(|i| args.get(i + 1))
                        .map(|s| s.as_str())
        })
        .collect();

    let reg = registry();
    if list {
        println!("available experiments:");
        for e in &reg {
            println!("  {:14} {}", e.id, e.title);
        }
        return;
    }

    let quick = !full;
    let mut ran = 0;
    for e in &reg {
        if !selected.is_empty() && !selected.iter().any(|s| s.as_str() == e.id) {
            continue;
        }
        println!(
            "=== {} — {} ({}) ===",
            e.id,
            e.title,
            if quick { "quick" } else { "full" }
        );
        let t0 = std::time::Instant::now();
        let tables = (e.run)(quick);
        for t in &tables {
            print!("{}", t.render());
            match t.save_csv(&out_dir) {
                Ok(p) => println!("  csv: {}", p.display()),
                Err(err) => eprintln!("  csv write failed: {err}"),
            }
            println!();
        }
        println!("  ({} in {:.1}s)\n", e.id, t0.elapsed().as_secs_f64());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; use --list to see ids");
        std::process::exit(2);
    }
}
