//! `catalog-sweep` — the scenario catalog: every workload family against
//! all four engines through the sharded sweep harness (`omfl_sim::sweep`).
//!
//! Where the per-theorem experiments isolate one regime each, this table is
//! the cross-regime comparison: which engine wins on which workload shape,
//! and how far PD sits from both baselines away from the adversarial
//! gadgets.

use crate::table::Table;
use omfl_par::default_threads;
use omfl_sim::sweep::sweep_catalog;
use omfl_workload::catalog::{registry, CatalogProfile};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (profile, trials) = if quick {
        (CatalogProfile::small(), 2)
    } else {
        (CatalogProfile::default(), 8)
    };
    let sweep = sweep_catalog(&profile, 2020, trials, default_threads()).expect("sweep");

    let mut t = Table::new(
        "Scenario catalog: engine comparison across workload families",
        &[
            "family",
            "engine",
            "trials",
            "mean cost",
            "ci95",
            "facs",
            "large",
            "lg-serve",
            "p95 lat",
        ],
    );
    for r in &sweep.rows {
        t.row(&[
            r.family.to_string(),
            r.engine.to_string(),
            r.cost.n.to_string(),
            crate::table::fmt(r.cost.mean),
            crate::table::fmt(r.cost.ci95),
            crate::table::fmt(r.mean_facilities),
            crate::table::fmt(r.mean_large),
            crate::table::fmt(r.large_serve_share),
            crate::table::fmt(r.mean_p95_latency),
        ]);
    }
    for fam in registry() {
        t.note(format!("{}: {}", fam.name, fam.regime));
    }
    vec![t]
}
