//! `cond1-abl` — §5 closing remarks: a commodity with a large surcharge
//! violates Condition 1; the plain algorithms then predict the heavy
//! commodity into every large facility and overpay, while the
//! heavy-exclusion wrapper isolates it.
//!
//! Lower-bound note: PD's dual lower bound (Corollary 17) *assumes*
//! Condition 1 for configurations larger than √|S|, so it is not sound here;
//! ratios are reported against the greedy upper bound only.

use crate::runner::{run_cost, Alg};
use crate::table::{fmt, Table};
use omfl_commodity::cost::CostModel;
use omfl_commodity::CommodityId;
use omfl_core::algorithm::run_online;
use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::heavy::{detect_heavy, HeavyExclusion, HeavyInstances};
use omfl_workload::composite::uniform_line;
use omfl_workload::demand::DemandModel;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let surcharges: &[f64] = if quick {
        &[0.0, 20.0, 80.0]
    } else {
        &[0.0, 20.0, 80.0, 320.0]
    };
    let n = if quick { 120 } else { 300 };
    let s = 8u16;
    let mut t = Table::new(
        format!(
            "Condition 1 ablation: heavy surcharge on commodity {} (n = {n})",
            s - 1
        ),
        &[
            "surcharge",
            "cond1 holds",
            "pd",
            "heavy-excl pd",
            "per-com",
            "excl/pd",
        ],
    );
    for &h in surcharges {
        let mut sur = vec![0.0; s as usize];
        sur[s as usize - 1] = h;
        let cost = CostModel::power(s, 1.0, 2.0)
            .with_surcharges(sur)
            .expect("cost");
        // Heavy commodity requested rarely (12% of requests via noise-free
        // bundles), everything else broad.
        let sc = uniform_line(
            12,
            16.0,
            n,
            DemandModel::Bundles {
                bundles: vec![
                    vec![0, 1, 2],
                    vec![2, 3, 4],
                    vec![4, 5, 6],
                    vec![0, 3, 6],
                    vec![1, 5],
                    vec![6, 7], // the only bundle touching the heavy commodity
                ],
                noise: 0.0,
            },
            cost.clone(),
            601,
        )
        .expect("scenario");
        let cond1_ok = omfl_commodity::props::condition1_exact(&cost, 0).is_ok();
        let pd = run_cost(&sc, Alg::Pd);
        let dc = run_cost(&sc, Alg::PerCommodityPd);
        // Heavy-exclusion wrapper with auto-detected heavy set.
        let heavy: Vec<CommodityId> = detect_heavy(sc.instance(), 4.0);
        let excl = if heavy.is_empty() {
            pd // nothing to exclude; identical to plain PD by construction
        } else {
            let parts =
                HeavyInstances::build(std::sync::Arc::clone(&sc.metric), sc.cost.clone(), &heavy)
                    .expect("split");
            let mut alg = HeavyExclusion::new(&parts);
            let c = run_online(&mut alg, &sc.requests).expect("serve");
            alg.solution().verify(&parts.original).expect("feasible");
            c
        };
        t.row(&[
            fmt(h),
            cond1_ok.to_string(),
            fmt(pd),
            fmt(excl),
            fmt(dc),
            fmt(excl / pd),
        ]);
    }
    t.note("expected: with a large surcharge, excl/pd < 1 (plain PD predicts the heavy commodity into f^S)");
    t.note("dual lower bounds are unsound without Condition 1; costs are reported raw");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn exclusion_helps_under_large_surcharge() {
        let tables = super::run(true);
        let t = &tables[0];
        // Last row: biggest surcharge.
        let last = t.rows.last().unwrap();
        let ratio: f64 = last[5].parse().unwrap();
        assert!(
            ratio <= 1.05,
            "heavy exclusion should not lose to plain PD under heavy surcharge, ratio {ratio}"
        );
        // First row (surcharge 0): Condition 1 holds and exclusion ≡ PD.
        assert_eq!(t.rows[0][1], "true");
        let base_ratio: f64 = t.rows[0][5].parse().unwrap();
        assert!((base_ratio - 1.0).abs() < 1e-9);
    }
}
