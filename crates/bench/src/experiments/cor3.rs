//! `cor3-line` — the Corollary 3 line workloads: hierarchical (dyadic)
//! request cascades driving the `log n / log log n` term. Ratios are
//! reported against the OPT bracket (dual + serve-alone lower bound,
//! greedy/local-search upper bound).

use crate::runner::{bracket, run_cost, Alg};
use crate::table::{fmt, Table};
use omfl_core::bounds::log_over_loglog;
use omfl_workload::adversarial::dyadic_line;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let levels: &[u32] = if quick { &[2, 3, 4] } else { &[2, 3, 4, 5, 6] };
    let mut t = Table::new(
        "Corollary 3: dyadic line cascades (|S| = 4, bundle 2)",
        &[
            "levels",
            "n",
            "ln n/ln ln n",
            "pd/upper",
            "pd/lower",
            "rand/upper",
            "rand/lower",
        ],
    );
    for &lv in levels {
        let sc = dyadic_line(lv, 16.0, 4, 2, 7).expect("scenario");
        let n = sc.len();
        let b = bracket(&sc);
        let pd = run_cost(&sc, Alg::Pd);
        let rn = run_cost(&sc, Alg::Rand(5));
        t.row(&[
            lv.to_string(),
            n.to_string(),
            fmt(log_over_loglog(n)),
            fmt(b.ratio_lower(pd)),
            fmt(b.ratio_upper(pd)),
            fmt(b.ratio_lower(rn)),
            fmt(b.ratio_upper(rn)),
        ]);
    }
    t.note("true ratio lies between the /upper (optimistic) and /lower (pessimistic) columns");
    t.note("paper shape: slow growth with n, tracking ln n / ln ln n");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn produces_rows_with_ordered_ratio_bracket() {
        let tables = super::run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let lo: f64 = row[3].parse().unwrap();
            let hi: f64 = row[4].parse().unwrap();
            assert!(lo <= hi + 1e-9, "bracket columns out of order: {lo} > {hi}");
            assert!(lo > 0.0);
        }
    }
}
