//! `decomp-cross` — §1.3's trivial per-commodity baseline vs the
//! always-predict baseline vs PD, as demand breadth `k` sweeps from
//! singletons to the full universe.
//!
//! With isolated requests (construction-dominated), the per-commodity
//! decomposition pays ≈ `k` per fresh site, all-large pays ≈ `√|S|`
//! (`f^S` under the square-root cost), so the two baselines cross near
//! `k = √|S|`. PD tracks the cheaper regime on both sides — exactly the
//! small/large switch the paper designs.

use crate::runner::{run_cost, Alg};
use crate::table::{fmt, Table};
use omfl_commodity::cost::CostModel;
use omfl_workload::composite::uniform_line;
use omfl_workload::demand::DemandModel;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let s: u16 = 64;
    let ks: &[usize] = if quick {
        &[1, 4, 8, 24, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let n = if quick { 80 } else { 200 };
    let mut t = Table::new(
        format!("Decomposition crossover in demand breadth k (|S| = {s}, √S = 8, n = {n})"),
        &[
            "k",
            "pd",
            "rand",
            "per-com",
            "all-large",
            "per-com/all-large",
        ],
    );
    for &k in ks {
        let sc = uniform_line(
            48,
            400.0, // isolated sites: construction dominates
            n,
            DemandModel::UniformK { k },
            CostModel::power(s, 1.0, 1.0),
            307,
        )
        .expect("scenario");
        let pd = run_cost(&sc, Alg::Pd);
        let rn = run_cost(&sc, Alg::Rand(3));
        let dc = run_cost(&sc, Alg::PerCommodityPd);
        let al = run_cost(&sc, Alg::AllLargeDet);
        t.row(&[
            k.to_string(),
            fmt(pd),
            fmt(rn),
            fmt(dc),
            fmt(al),
            fmt(dc / al),
        ]);
    }
    t.note("expected crossover: per-com/all-large < 1 for k < √S = 8, > 1 for k > √S");
    t.note("pd should track min(per-com, all-large) within a small constant on both sides");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn baselines_cross_near_sqrt_s_and_pd_tracks_the_winner() {
        let tables = super::run(true);
        let t = &tables[0];
        let get = |i: usize, j: usize| -> f64 { t.rows[i][j].parse().unwrap() };
        // k = 1 (first row): per-commodity beats all-large.
        assert!(
            get(0, 5) < 1.0,
            "narrow demands must favour per-commodity, got ratio {}",
            get(0, 5)
        );
        // k = 64 (last row): all-large beats per-commodity.
        let last = t.rows.len() - 1;
        assert!(
            get(last, 5) > 1.0,
            "broad demands must favour all-large, got ratio {}",
            get(last, 5)
        );
        // PD stays within a small factor of the better baseline everywhere.
        for i in 0..t.rows.len() {
            let pd = get(i, 1);
            let best = get(i, 3).min(get(i, 4));
            assert!(
                pd <= 2.0 * best + 1e-9,
                "row {i}: pd {pd} should track min(baselines) = {best}"
            );
        }
    }
}
