//! `fig2-bounds` — regenerates Figure 2 exactly: the class-C upper bound
//! `√|S|^{(2x−x²)/2}` against the lower bound
//! `min{√|S|^{(2−x)/2}, √|S|^{x/2}}` for `|S| = 10,000`, `x ∈ [0, 2]`.

use crate::table::{fmt, Table};
use omfl_core::bounds::{class_c_lower, class_c_upper, figure2_table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let s = 10_000;
    let points = if quick { 21 } else { 51 };
    let mut t = Table::new(
        format!("Figure 2 curves, |S| = {s} ({points} samples)"),
        &[
            "x",
            "upper √S^((2x-x²)/2)",
            "lower min(√S^((2-x)/2), √S^(x/2))",
        ],
    );
    for (x, up, lo) in figure2_table(s, points) {
        t.row(&[fmt(x), fmt(up), fmt(lo)]);
    }
    t.note("paper: curves agree at x ∈ {0, 1, 2} and peak at 4√|S| = 10 for x = 1");
    t.note(format!(
        "measured peak: upper = {} and lower = {} at x = 1 (expected 10)",
        fmt(class_c_upper(s, 1.0)),
        fmt(class_c_lower(s, 1.0))
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_and_matches_paper_peak() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 21);
        // x = 1 row: both curves = 10.
        let mid = &t.rows[10];
        assert_eq!(mid[0], "1.000");
        assert_eq!(mid[1], "10.0");
        assert_eq!(mid[2], "10.0");
    }
}
