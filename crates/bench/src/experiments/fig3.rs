//! `fig3-modes` — Figure 3 depicts RAND-OMFLP's two serve modes (cheapest
//! small facilities vs a single large facility). This experiment measures
//! how the mode mix and facility openings evolve over a clustered bundle
//! workload: early requests are served by small facilities; once large
//! facilities exist, broad requests increasingly connect to them.

use crate::table::{fmt, Table};
use omfl_commodity::cost::CostModel;
use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::randalg::RandOmflp;
use omfl_workload::composite::clustered_bundles;
use omfl_workload::demand::{default_bundles, DemandModel};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 160 } else { 400 };
    let sc = clustered_bundles(
        4,
        6,
        60.0,
        3.0,
        n,
        DemandModel::Bundles {
            bundles: default_bundles(8),
            noise: 0.2,
        },
        CostModel::affine(8, 5.0, 0.6),
        211,
    )
    .expect("scenario");
    let inst = sc.instance();
    let mut alg = RandOmflp::new(inst, 77);

    let quarters = 4;
    let per_q = n / quarters;
    let mut t = Table::new(
        format!("Figure 3: RAND serve modes over time (n = {n}, clustered bundles)"),
        &[
            "quarter",
            "served-by-large %",
            "small opened",
            "large opened",
            "avg conn cost",
        ],
    );
    for q in 0..quarters {
        let mut large_served = 0usize;
        let mut small_open = 0usize;
        let mut large_open = 0usize;
        let mut conn = 0.0;
        for r in &sc.requests[q * per_q..(q + 1) * per_q] {
            let out = alg.serve(r).expect("serve");
            if out.served_by_large {
                large_served += 1;
            }
            for f in &out.opened {
                let fac = &alg.solution().facilities()[f.index()];
                if fac.config.len() == inst.num_commodities() {
                    large_open += 1;
                } else {
                    small_open += 1;
                }
            }
            conn += out.connection_cost;
        }
        t.row(&[
            format!("Q{}", q + 1),
            fmt(100.0 * large_served as f64 / per_q as f64),
            small_open.to_string(),
            large_open.to_string(),
            fmt(conn / per_q as f64),
        ]);
    }
    alg.solution().verify(inst).expect("feasible");
    t.note("paper Fig. 3: a request connects to small facilities when they are near, else a single large one");
    t.note("expected: facility openings concentrate in early quarters; connection costs fall over time");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn openings_front_loaded() {
        let tables = super::run(true);
        let t = &tables[0];
        let opens = |i: usize| -> usize {
            t.rows[i][2].parse::<usize>().unwrap() + t.rows[i][3].parse::<usize>().unwrap()
        };
        let first_half = opens(0) + opens(1);
        let second_half = opens(2) + opens(3);
        assert!(
            first_half >= second_half,
            "facility openings should be front-loaded: {first_half} vs {second_half}"
        );
    }
}
