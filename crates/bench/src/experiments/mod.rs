//! One module per experiment; ids and scope are indexed in DESIGN.md §2.

pub mod catalog;
pub mod cond1;
pub mod cor3;
pub mod decomp;
pub mod fig2;
pub mod fig3;
pub mod model_split;
pub mod order;
pub mod pd_argmin;
pub mod thm18;
pub mod thm19;
pub mod thm2;
pub mod thm4;
