//! `model-split` — §1.1's alternative cost model (connection cost charged
//! per commodity) simulated by the paper's own reduction: replace each
//! request by `|sr|` singleton requests. The table reports the sequence
//! inflation and the cost inflation for PD and RAND; the paper argues the
//! competitive ratio grows by at most a factor 2 when `|S|` is polynomial
//! in n.

use crate::runner::{run_cost, Alg};
use crate::table::{fmt, Table};
use omfl_commodity::cost::CostModel;
use omfl_core::transform::{split_into_singletons, split_len};
use omfl_workload::composite::uniform_line;
use omfl_workload::demand::DemandModel;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let ns: &[usize] = if quick {
        &[48, 96]
    } else {
        &[48, 96, 192, 384]
    };
    let s = 12u16;
    let mut t = Table::new(
        format!("§1.1 model split: joint vs per-commodity connection model (|S| = {s})"),
        &[
            "n",
            "n'",
            "pd joint",
            "pd split",
            "infl",
            "rand joint",
            "rand split",
            "infl",
        ],
    );
    for &n in ns {
        let sc = uniform_line(
            16,
            20.0,
            n,
            DemandModel::UniformK { k: 3 },
            CostModel::power(s, 1.0, 2.0),
            401,
        )
        .expect("scenario");
        let split = split_into_singletons(&sc.requests);
        let nn = split_len(&sc.requests);
        let sc_split = sc.with_requests(split).expect("split scenario");
        let pd_j = run_cost(&sc, Alg::Pd);
        let pd_s = run_cost(&sc_split, Alg::Pd);
        let rn_j = run_cost(&sc, Alg::Rand(5));
        let rn_s = run_cost(&sc_split, Alg::Rand(5));
        t.row(&[
            n.to_string(),
            nn.to_string(),
            fmt(pd_j),
            fmt(pd_s),
            fmt(pd_s / pd_j),
            fmt(rn_j),
            fmt(rn_s),
            fmt(rn_s / rn_j),
        ]);
    }
    t.note("split model charges every commodity its own connection; inflation ≤ |sr| trivially");
    t.note("paper: ratios increase only by a factor of 2 for |S| polynomial in n");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn inflation_is_bounded_by_demand_size() {
        let tables = super::run(true);
        let t = &tables[0];
        for row in &t.rows {
            let infl: f64 = row[4].parse().unwrap();
            assert!(
                infl <= 3.0 + 1e-9,
                "PD split inflation {infl} should stay ≤ k = 3"
            );
            assert!(
                infl >= 0.8,
                "split cost cannot collapse below the joint cost"
            );
        }
    }
}
