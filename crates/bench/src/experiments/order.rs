//! `order-abl` — §1.2 notes that weakening the adversary's control over
//! arrival order helps Meyerson-style algorithms. We serve the same dyadic
//! request multiset in adversarial (coarse-to-fine) and random order and
//! compare RAND-OMFLP and PD-OMFLP costs.

use crate::runner::{run_cost, Alg};
use crate::table::{fmt, Table};
use omfl_par::{parallel_map, seed_for, summarize};
use omfl_workload::adversarial::dyadic_line;
use omfl_workload::arrival::Arrival;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let levels = if quick { 5 } else { 7 };
    let trials = if quick { 8 } else { 32 };
    let threads = omfl_par::default_threads();
    let sc = dyadic_line(levels, 32.0, 6, 2, 501).expect("scenario");
    let n = sc.len();

    let mut t = Table::new(
        format!("Arrival-order ablation (dyadic line, n = {n}, {trials} trials)"),
        &["order", "pd", "rand mean±ci"],
    );
    for (label, order) in [("adversarial", None), ("random", Some(()))] {
        let seeds: Vec<u64> = (0..trials as u64).collect();
        let rand_costs = parallel_map(&seeds, threads, |_, &tr| {
            let reqs = match order {
                None => Arrival::Adversarial.apply(&sc.requests),
                Some(()) => Arrival::RandomOrder {
                    seed: seed_for(7, tr),
                }
                .apply(&sc.requests),
            };
            let sc2 = sc.with_requests(reqs).expect("reorder");
            run_cost(&sc2, Alg::Rand(seed_for(11, tr)))
        });
        let rand = summarize(&rand_costs);
        let pd_cost = {
            let reqs = match order {
                None => Arrival::Adversarial.apply(&sc.requests),
                Some(()) => Arrival::RandomOrder { seed: 1 }.apply(&sc.requests),
            };
            let sc2 = sc.with_requests(reqs).expect("reorder");
            run_cost(&sc2, Alg::Pd)
        };
        t.row(&[
            label.to_string(),
            fmt(pd_cost),
            format!("{}±{}", fmt(rand.mean), fmt(rand.ci95)),
        ]);
    }
    t.note("paper §1.2 (citing Lang 2018): weaker adversaries lower Meyerson-style costs");
    t.note("expected: the random-order row is no more expensive than the adversarial one");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn random_order_does_not_hurt_much() {
        let tables = super::run(true);
        let t = &tables[0];
        let rand_of =
            |i: usize| -> f64 { t.rows[i][2].split('±').next().unwrap().parse().unwrap() };
        let adv = rand_of(0);
        let rnd = rand_of(1);
        assert!(
            rnd <= adv * 1.15,
            "random order should not be materially worse: adv {adv} vs random {rnd}"
        );
    }
}
