//! `pd-argmin` — the incremental t3/t4 opening-target index at large |M|.
//!
//! PR 3 made PD serve index-bound; the remaining `O(k·|M|)` per-arrival
//! term was the t3/t4 opening-target scans over `(f − B)⁺ + d(m, r)`. This
//! experiment measures what replacing those scans with the block-pruned
//! argmin (`omfl_core::index::OpeningTargetIndex`, a bucketed lower-bound
//! prune list) plus the blocked distance-row cache (`omfl_metric::blocked`)
//! buys on the large-metric catalog families, against the retained PR 3
//! full-scan path (`PdOmflp::with_full_scans`) — the two engines are
//! bit-identical (the differential and lockstep suites prove it, and the
//! shared harness cross-checks every timed pair), so the comparison is pure
//! data-structure cost.
//!
//! Reported per family: |M|, requests, full-scan and incremental ms/run,
//! the speedup, the share of opening-target blocks the prune skipped, and
//! the blocked row-cache hit rate (dense-backend cells show "-").
//!
//! The measurement protocol is [`crate::perfjson::paired_pd_timing`] — the
//! same harness that produces the gated `large` cell of `BENCH_pd.json`.

use crate::perfjson::{paired_pd_timing, PairedPdTiming};
use crate::table::{fmt, Table};
use omfl_workload::catalog::CatalogProfile;

fn measure(family: &'static str, profile: &CatalogProfile, repeats: usize) -> PairedPdTiming {
    paired_pd_timing(family, profile, repeats).expect("paired PD timing")
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let cells: Vec<(&str, PairedPdTiming)> = if quick {
        // Matches perfjson::pd_large_profile / pd_euclid_large_profile, the
        // gated BENCH_pd.json cells: the steady-state tail (most arrivals
        // after facilities stabilize) is where the argmin index pays, so
        // short streams undersell it.
        vec![
            (
                "zipf-services-large",
                measure(
                    "zipf-services-large",
                    &CatalogProfile {
                        points: 128, // × 32 scale → |M| = 4096
                        services: 64,
                        requests: 4096,
                    },
                    3,
                ),
            ),
            (
                "euclid-grid-large",
                measure(
                    "euclid-grid-large",
                    &CatalogProfile {
                        points: 256, // × 64 scale → |M| = 16384
                        services: 64,
                        requests: 4096,
                    },
                    3,
                ),
            ),
        ]
    } else {
        vec![
            (
                "zipf-services-large",
                measure(
                    "zipf-services-large",
                    &CatalogProfile {
                        points: 128,
                        services: 64,
                        requests: 4096,
                    },
                    5,
                ),
            ),
            (
                "euclid-grid-large",
                measure(
                    "euclid-grid-large",
                    &CatalogProfile {
                        points: 256, // × 64 scale → |M| = 16384
                        services: 64,
                        requests: 4096,
                    },
                    3,
                ),
            ),
            (
                // The id-order adversary: ids random w.r.t. space and every
                // query cold — the distance-free bounds see nothing, so the
                // skip rate here is purely the relabeled radius bounds.
                "cold-scatter-large",
                measure(
                    "cold-scatter-large",
                    &CatalogProfile {
                        points: 128, // × 32 scale → |M| = 4096
                        services: 64,
                        requests: 4096,
                    },
                    3,
                ),
            ),
        ]
    };

    let mut t = Table::new(
        "PD opening targets: incremental argmin + blocked rows vs PR 3 full scans",
        &[
            "family", "|M|", "requests", "scan ms", "incr ms", "speedup", "blk skip", "row hit",
        ],
    );
    for (family, c) in &cells {
        t.row(&[
            family.to_string(),
            c.points.to_string(),
            c.requests.to_string(),
            fmt(c.scan.mean * 1e3),
            fmt(c.incremental.mean * 1e3),
            format!("{:.2}x", c.scan.mean / c.incremental.mean),
            format!("{:.1}%", 100.0 * c.block_skip_rate),
            c.row_hit_rate
                .map_or_else(|| "-".to_string(), |r| format!("{:.1}%", 100.0 * r)),
        ]);
    }
    vec![t]
}
