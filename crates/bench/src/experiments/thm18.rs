//! `thm18-sweep` — class-C costs `g_x(σ) = |σ|^{x/2}`: measured ratios on
//! the adaptive gadget across `x ∈ [0, 2]`, next to the Theorem 18 curves.
//!
//! On the single-point gadget with `|S'| = √S`, the theory predicts PD's
//! ratio tracks the *lower* curve `min{√S^{(2−x)/2}, √S^{x/2}}` (peak `|S|^{1/4}`
//! at `x = 1`, constant at the endpoints); the upper curve additionally
//! carries the worst-case `log n` over all metric instances.

use crate::runner::{ratio_summary, Alg};
use crate::table::{fmt, Table};
use omfl_core::bounds::{class_c_lower, class_c_upper};
use omfl_par::default_threads;
use omfl_workload::adversarial::class_c_gadget;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let s: u16 = if quick { 256 } else { 1024 };
    let trials = if quick { 6 } else { 24 };
    let threads = default_threads();
    let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
    let sqrt_s = (s as f64).sqrt().round() as usize;

    let mut t = Table::new(
        format!("Theorem 18 sweep: ratios on the class-C gadget (|S| = {s}, |S'| = {sqrt_s})"),
        &["x", "upper curve", "lower curve", "pd", "rand", "per-com"],
    );
    for &x in &xs {
        // OPT: a single facility holding S' costs g_x(√S) = √S^{x/2}... but a
        // full-S facility costs √S^x which may be cheaper per commodity; the
        // gadget OPT is min(g_x(|S'|), g_x(|S|)) = g_x(|S'|) for x ≥ 0 since
        // g_x is monotone in |σ|.
        let opt_val = (sqrt_s as f64).powf(x / 2.0);
        let make = |seed: u64| class_c_gadget(s, x, sqrt_s, seed).expect("gadget");
        let opt = move |_: &_| opt_val;
        let pd = ratio_summary(trials, 31, threads, make, |_| Alg::Pd, opt);
        let rn = ratio_summary(trials, 37, threads, make, Alg::Rand, opt);
        let dc = ratio_summary(trials, 41, threads, make, |_| Alg::PerCommodityPd, opt);
        t.row(&[
            fmt(x),
            fmt(class_c_upper(s as usize, x)),
            fmt(class_c_lower(s as usize, x)),
            format!("{}±{}", fmt(pd.mean), fmt(pd.ci95)),
            format!("{}±{}", fmt(rn.mean), fmt(rn.ci95)),
            format!("{}±{}", fmt(dc.mean), fmt(dc.ci95)),
        ]);
    }
    t.note(
        "expected: pd/rand peak near x = 1 (the hardest exponent) and stay near the lower curve",
    );
    t.note(
        "per-com is flat ≈ √S/√S^{x/2}·√S^{x/2}... i.e. |S'| singletons / OPT — large for small x",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn pd_peaks_at_x_equal_one() {
        let tables = super::run(true);
        let t = &tables[0];
        let pd_at = |i: usize| -> f64 { t.rows[i][3].split('±').next().unwrap().parse().unwrap() };
        let (x0, x1, x2) = (pd_at(0), pd_at(2), pd_at(4));
        assert!(
            x1 >= x0 * 0.8 && x1 >= x2 * 0.8,
            "x=1 should be (near) the hardest point: pd({x0}, {x1}, {x2})"
        );
    }
}
