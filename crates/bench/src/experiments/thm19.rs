//! `thm19-rand` — RAND-OMFLP: expected ratio sweep plus the efficiency
//! head-to-head with PD-OMFLP (the paper argues RAND "is much more
//! efficient to implement"; we measure wall-clock per request).

use crate::runner::{bracket, run_cost, run_timed, Alg};
use crate::table::{fmt, Table};
use omfl_commodity::cost::CostModel;
use omfl_core::bounds::{pd_upper, rand_upper};
use omfl_par::{parallel_map, seed_for, summarize};
use omfl_workload::composite::uniform_line;
use omfl_workload::demand::DemandModel;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut out = Vec::new();
    let trials = if quick { 8 } else { 32 };
    let threads = omfl_par::default_threads();

    // Expected ratio vs n (Monte-Carlo over RAND's coins; scenario fixed).
    {
        let ns: &[usize] = if quick {
            &[32, 64, 128]
        } else {
            &[32, 64, 128, 256, 512]
        };
        let s = 16u16;
        let mut t = Table::new(
            format!("Theorem 19: RAND expected ratio vs n (|S| = {s}, {trials} trials)"),
            &[
                "n",
                "√S·lnn/lnlnn",
                "E[cost]±ci",
                "opt∈[lo,hi]",
                "E[ratio]/upper",
            ],
        );
        for &n in ns {
            let sc = uniform_line(
                24,
                30.0,
                n,
                DemandModel::UniformK { k: 3 },
                CostModel::power(s, 1.0, 2.0),
                101,
            )
            .expect("scenario");
            let b = bracket(&sc);
            let seeds: Vec<u64> = (0..trials as u64).collect();
            let costs = parallel_map(&seeds, threads, |_, &t| {
                run_cost(&sc, Alg::Rand(seed_for(23, t)))
            });
            let sum = summarize(&costs);
            t.row(&[
                n.to_string(),
                fmt(rand_upper(s as usize, n)),
                format!("{}±{}", fmt(sum.mean), fmt(sum.ci95)),
                format!("[{},{}]", fmt(b.lower), fmt(b.upper)),
                fmt(sum.mean / b.upper),
            ]);
        }
        t.note("paper shape: expected ratio ≲ √S·ln n/ln ln n — slightly below PD's √S·ln n");
        out.push(t);
    }

    // Efficiency head-to-head: per-request wall-clock, PD vs RAND.
    {
        let ns: &[usize] = if quick {
            &[128, 256]
        } else {
            &[128, 256, 512, 1024]
        };
        let s = 32u16;
        let mut t = Table::new(
            format!("RAND vs PD efficiency (|S| = {s}, per-request µs)"),
            &[
                "n",
                "pd µs/req",
                "rand µs/req",
                "speedup",
                "pd cost",
                "rand cost",
            ],
        );
        for &n in ns {
            let sc = uniform_line(
                48,
                40.0,
                n,
                DemandModel::UniformK { k: 4 },
                CostModel::power(s, 1.0, 2.0),
                107,
            )
            .expect("scenario");
            let (pd_cost, pd_t) = run_timed(&sc, Alg::Pd);
            let (rn_cost, rn_t) = run_timed(&sc, Alg::Rand(9));
            t.row(&[
                n.to_string(),
                fmt(pd_t * 1e6 / n as f64),
                fmt(rn_t * 1e6 / n as f64),
                fmt(pd_t / rn_t.max(1e-12)),
                fmt(pd_cost),
                fmt(rn_cost),
            ]);
        }
        t.note("paper §4: 'Randomization has the advantage that the decision process is highly efficient'");
        t.note(format!(
            "PD bound shape at n=256: {} vs RAND {}",
            fmt(pd_upper(s as usize, 256)),
            fmt(rand_upper(s as usize, 256))
        ));
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn rand_is_faster_per_request_than_pd() {
        let tables = super::run(true);
        let eff = &tables[1];
        // On the largest measured n, RAND should not be slower than PD
        // (it avoids the O(|M|·|S|) bid scans).
        let last = eff.rows.last().unwrap();
        let speedup: f64 = last[3].parse().unwrap();
        assert!(
            speedup > 0.8,
            "RAND should be at least comparable to PD, speedup = {speedup}"
        );
    }
}
