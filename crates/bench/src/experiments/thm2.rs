//! `thm2-lb` — the Theorem 2 adversary, measured.
//!
//! Phase 1 (`S'` only): OPT = 1 and *every* online algorithm pays Ω(√|S|) —
//! the lower bound binds universally.
//! Phase 2 (`S'` then all of `S`): OPT = √|S|; algorithms that predict
//! (PD, RAND, all-large) converge to O(1)·OPT while the never-predict
//! decomposition stays at √|S|·OPT — the separation that motivates the
//! paper's small/large facility design.

use crate::runner::{ratio_summary, Alg};
use crate::table::{fmt, Table};
use omfl_par::default_threads;
use omfl_workload::adversarial::{theorem2_gadget, theorem2_opt, Theorem2Phase};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[u16] = if quick {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024, 4096]
    };
    let trials = if quick { 8 } else { 32 };
    let threads = default_threads();

    let mut out = Vec::new();
    for phase in [Theorem2Phase::SPrimeOnly, Theorem2Phase::SPrimeThenAll] {
        let mut t = Table::new(
            format!("Theorem 2 gadget, phase {phase:?} (ratio ALG/OPT, {trials} trials)"),
            &["|S|", "sqrt(S)", "pd", "rand", "per-com", "all-large"],
        );
        for &s in sizes {
            let make = |seed: u64| theorem2_gadget(s, phase, seed).expect("gadget");
            let opt = move |_: &_| theorem2_opt(s, phase);
            let pd = ratio_summary(trials, 11, threads, make, |_| Alg::Pd, opt);
            let rand = ratio_summary(trials, 13, threads, make, Alg::Rand, opt);
            let dec = ratio_summary(trials, 17, threads, make, |_| Alg::PerCommodityPd, opt);
            let all = ratio_summary(trials, 19, threads, make, |_| Alg::AllLargeDet, opt);
            t.row(&[
                s.to_string(),
                fmt((s as f64).sqrt()),
                format!("{}±{}", fmt(pd.mean), fmt(pd.ci95)),
                format!("{}±{}", fmt(rand.mean), fmt(rand.ci95)),
                format!("{}±{}", fmt(dec.mean), fmt(dec.ci95)),
                format!("{}±{}", fmt(all.mean), fmt(all.ci95)),
            ]);
        }
        match phase {
            Theorem2Phase::SPrimeOnly => {
                t.note("OPT = 1 (one facility holding S'); paper: every algorithm ≥ Ω(√S)");
                t.note("expected shape: all columns grow ∝ √S; PD ≈ 2√S (smalls then one large)");
            }
            Theorem2Phase::SPrimeThenAll => {
                t.note("OPT = √S (one full facility); prediction pays off");
                t.note("expected shape: pd/rand/all-large → O(1); per-com stays ≈ √S");
            }
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_theory_quick() {
        // Tiny inline rerun (s = 16) asserting the separation numerically.
        let trials = 4;
        let make =
            |seed: u64| theorem2_gadget(16, Theorem2Phase::SPrimeThenAll, seed).expect("gadget");
        let opt = |_: &_| theorem2_opt(16, Theorem2Phase::SPrimeThenAll);
        let pd = ratio_summary(trials, 1, 2, make, |_| Alg::Pd, opt);
        let dec = ratio_summary(trials, 1, 2, make, |_| Alg::PerCommodityPd, opt);
        assert!(
            pd.mean < dec.mean,
            "PD ({}) must beat never-predict ({}) once prediction pays",
            pd.mean,
            dec.mean
        );
        // per-commodity = |S| facilities · cost 1 / OPT 4 = 4 exactly.
        assert!((dec.mean - 4.0).abs() < 1e-9);
    }
}
