//! `thm4-pd` — measured PD-OMFLP competitive ratios as `n` and `|S|` grow,
//! against the Theorem 4 shape `√|S| · ln n`.

use crate::runner::{bracket, run_cost, Alg};
use crate::table::{fmt, Table};
use omfl_commodity::cost::CostModel;
use omfl_core::bounds::pd_upper;
use omfl_workload::composite::uniform_line;
use omfl_workload::demand::DemandModel;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut out = Vec::new();

    // Sweep n at fixed |S| = 16.
    {
        let ns: &[usize] = if quick {
            &[32, 64, 128]
        } else {
            &[32, 64, 128, 256, 512]
        };
        let s = 16u16;
        let mut t = Table::new(
            format!("Theorem 4: PD ratio vs n (|S| = {s}, uniform line)"),
            &[
                "n",
                "√S·ln n",
                "pd cost",
                "opt∈[lo,hi]",
                "ratio/upper",
                "ratio/lower",
            ],
        );
        for &n in ns {
            let sc = uniform_line(
                24,
                30.0,
                n,
                DemandModel::UniformK { k: 3 },
                CostModel::power(s, 1.0, 2.0),
                101,
            )
            .expect("scenario");
            let b = bracket(&sc);
            let pd = run_cost(&sc, Alg::Pd);
            t.row(&[
                n.to_string(),
                fmt(pd_upper(s as usize, n)),
                fmt(pd),
                format!("[{},{}]", fmt(b.lower), fmt(b.upper)),
                fmt(b.ratio_lower(pd)),
                fmt(b.ratio_upper(pd)),
            ]);
        }
        t.note("paper shape: ratio grows at most like √S·ln n; measured growth must be ≲ logarithmic in n");
        out.push(t);
    }

    // Sweep |S| at fixed n.
    {
        let ss: &[u16] = if quick {
            &[4, 16, 64]
        } else {
            &[4, 16, 64, 256]
        };
        let n = if quick { 96 } else { 256 };
        let mut t = Table::new(
            format!("Theorem 4: PD ratio vs |S| (n = {n}, uniform line)"),
            &[
                "|S|",
                "√S·ln n",
                "pd cost",
                "opt∈[lo,hi]",
                "ratio/upper",
                "ratio/lower",
            ],
        );
        for &s in ss {
            let k = ((s as f64).sqrt() as usize).clamp(1, 4);
            let sc = uniform_line(
                24,
                30.0,
                n,
                DemandModel::UniformK { k },
                CostModel::power(s, 1.0, 2.0),
                103,
            )
            .expect("scenario");
            let b = bracket(&sc);
            let pd = run_cost(&sc, Alg::Pd);
            t.row(&[
                s.to_string(),
                fmt(pd_upper(s as usize, n)),
                fmt(pd),
                format!("[{},{}]", fmt(b.lower), fmt(b.upper)),
                fmt(b.ratio_lower(pd)),
                fmt(b.ratio_upper(pd)),
            ]);
        }
        t.note("paper shape: ratio grows at most like √S; the /upper column should grow sublinearly in |S|");
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn pd_is_always_within_its_proven_bound_scaled() {
        // The optimistic ratio (vs the greedy upper bound on OPT) must never
        // exceed the Theorem 4 bound with a generous constant.
        let tables = super::run(true);
        for t in &tables {
            for row in &t.rows {
                let shape: f64 = row[1].parse().unwrap();
                let ratio: f64 = row[4].parse().unwrap();
                assert!(
                    ratio <= 3.0 * shape,
                    "ratio {ratio} violates 3× the √S·ln n shape {shape}"
                );
            }
        }
    }
}
