//! Experiment harness regenerating every figure and theorem of the paper.
//!
//! `cargo run -p omfl-bench --release --bin experiments -- --list` prints the
//! registry; each experiment id matches a row of DESIGN.md §2 and produces
//! one or more aligned tables (and CSV files under `results/`).

pub mod experiments;
pub mod perfjson;
pub mod runner;
pub mod table;

use table::Table;

/// A registered experiment.
pub struct Experiment {
    /// Stable id (matches DESIGN.md §2).
    pub id: &'static str,
    /// What paper artifact it regenerates.
    pub title: &'static str,
    /// Runs the experiment; `quick` trades precision for time.
    pub run: fn(quick: bool) -> Vec<Table>,
}

/// The experiment registry, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2-bounds",
            title: "Figure 2: class-C upper vs lower bound curves (|S| = 10,000)",
            run: experiments::fig2::run,
        },
        Experiment {
            id: "thm2-lb",
            title: "Theorem 2: Ω(√|S|) lower bound on a single point",
            run: experiments::thm2::run,
        },
        Experiment {
            id: "cor3-line",
            title: "Corollary 3: hierarchical line workloads (log n / log log n term)",
            run: experiments::cor3::run,
        },
        Experiment {
            id: "thm4-pd",
            title: "Theorem 4: PD-OMFLP is O(√|S|·log n)-competitive",
            run: experiments::thm4::run,
        },
        Experiment {
            id: "thm19-rand",
            title: "Theorem 19: RAND-OMFLP expected ratio and efficiency",
            run: experiments::thm19::run,
        },
        Experiment {
            id: "thm18-sweep",
            title: "Theorem 18: class-C cost sweep x ∈ [0,2]",
            run: experiments::thm18::run,
        },
        Experiment {
            id: "fig3-modes",
            title: "Figure 3: RAND-OMFLP serve modes over time",
            run: experiments::fig3::run,
        },
        Experiment {
            id: "decomp-cross",
            title: "§1.3: per-commodity decomposition crossover in |S|",
            run: experiments::decomp::run,
        },
        Experiment {
            id: "model-split",
            title: "§1.1: per-commodity connection-cost model via request splitting",
            run: experiments::model_split::run,
        },
        Experiment {
            id: "order-abl",
            title: "§1.2: adversarial vs random arrival order",
            run: experiments::order::run,
        },
        Experiment {
            id: "cond1-abl",
            title: "§5: Condition 1 violation and heavy-commodity exclusion",
            run: experiments::cond1::run,
        },
        Experiment {
            id: "catalog-sweep",
            title: "Scenario catalog: every workload family × all four engines",
            run: experiments::catalog::run,
        },
        Experiment {
            id: "pd-argmin",
            title: "PD opening targets: incremental t3/t4 argmin vs full scans at large |M|",
            run: experiments::pd_argmin::run,
        },
    ]
}
