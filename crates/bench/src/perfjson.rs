//! The `--emit-json` perf-regression path: machine-readable benchmark
//! baselines in `BENCH_pd.json` / `BENCH_sweep.json`.
//!
//! The ROADMAP's "measurably faster" PRs need numbers to beat; this module
//! produces them. Two artifacts:
//!
//! * **`BENCH_pd.json`** — the PD serve hot path, three ways: the
//!   `zipf-services` cell (indexed engine vs the retained linear-scan
//!   reference `omfl_core::naive::NaivePd` — the PR 3 index-layer speedup),
//!   the `large` cell (`zipf-services-large` at |M| = 4096, incremental
//!   opening-target engine vs the PR 3 full-scan path
//!   `PdOmflp::with_full_scans` — what the t3/t4 argmin index and the
//!   blocked row cache buy at large metrics), and the `euclid-large` cell
//!   (`euclid-grid-large` at |M| = 16384 — where distance-aware block
//!   pruning and the bulk Euclidean `fill_row` carry the speedup), plus
//!   the `huge` cell (`euclid-grid-large` at |M| = 1048576, the current
//!   engine vs the frozen PR 5 path `PdOmflp::with_reference_layout` with
//!   SIMD dispatch off — isolating the SIMD kernels, kd-ball ingest,
//!   64-point blocks, block-pruned shrink walk, kd-bounded partial row
//!   fills, and the sharded + f32-screened freeze walk). The large cells
//!   also record their deterministic `block_skip_rate`;
//! * **`BENCH_sweep.json`** — per (engine × family) serve wall-clock
//!   (mean/std/min/max over trials) for the whole catalog under the
//!   work-stealing sweep;
//! * **`BENCH_serve.json`** — the multi-tenant serve loop (`omfl_serve`):
//!   the machine-independent `digest_match` determinism cell (aggregate
//!   reports bit-identical across shard/thread configs
//!   [`SERVE_DETERMINISM_CONFIGS`], hard-gated at 1.0), the
//!   `arrivals_per_sec` throughput cell (gated as a ratio against the
//!   committed baseline, dev-box target ≥ 1M/s aggregate), and
//!   informational p50/p99 latency and backpressure telemetry.
//!
//! The committed files at the repo root are the baseline; CI re-runs the
//! smoke profile and [`check`]s the fresh numbers against them: missing
//! keys fail, a `secs.mean` with a baseline of at least [`MIN_GATED_SECS`]
//! regressing by more than [`REGRESSION_FACTOR`] fails, and the speedups
//! dropping below [`MIN_PD_SPEEDUP`] / [`MIN_LARGE_PD_SPEEDUP`] fail.
//! Wall-clock comparisons across machines are inherently noisy — hence the
//! sub-millisecond exemption and the emphasis on the machine-independent
//! *ratios*; the recorded `std` per summary is what justified tightening
//! the factor to 1.5×.
//!
//! JSON is written and parsed by hand (the workspace vendors no serde): the
//! emitter produces a small object tree of numbers/strings (nested objects
//! to any depth — `large.incremental_secs.mean` is three levels), and the
//! parser below reads exactly that shape back as flattened dotted keys.

use omfl_baselines::offline::ExactSolver;
use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::naive::NaivePd;
use omfl_core::pd::PdOmflp;
use omfl_core::CoreError;
use omfl_par::{summarize, Summary, TaskPool};
use omfl_serve::{FaultPlan, ServeConfig, ServeError, Server};
use omfl_sim::sweep::timed_sweep;
use omfl_sim::{ArrivalSource, Engine};
use omfl_workload::catalog::{self, CatalogProfile};
use omfl_workload::Scenario;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Fresh `secs.mean` may be at most this factor above the committed
/// baseline before the check fails. Applies only to cells whose baseline is
/// at least [`MIN_GATED_SECS`]; with the recorded `std` showing
/// millisecond-scale cells jitter well under 50% between runs, the factor
/// sits at 1.5 (down from the initial 2.0).
pub const REGRESSION_FACTOR: f64 = 1.5;

/// Absolute-seconds regression gating only applies to keys whose committed
/// baseline is at least this long. Sub-millisecond cells (the per-family
/// sweep timings) jitter far beyond 2× between a dev box and a shared CI
/// runner — for those the check verifies key presence and reports the ratio
/// as a note instead of failing the job; the machine-independent `speedup`
/// ratio and the millisecond-scale PD/sweep-wall means stay hard-gated.
pub const MIN_GATED_SECS: f64 = 1e-3;

/// The indexed-vs-naive PD speedup must stay at least this high. The
/// acceptance bar when the index landed was 3×; CI machines are slower and
/// noisier than the dev box, so the hard floor leaves headroom.
pub const MIN_PD_SPEEDUP: f64 = 2.0;

/// The incremental-vs-full-scan PD speedup on the large-metric cell
/// (`zipf-services-large`, |M| ≥ 4096) must stay at least this high. The
/// acceptance bar when the opening-target index landed was 3× (the
/// committed baseline records it); like [`MIN_PD_SPEEDUP`] vs its own 3×
/// bar, the hard CI floor sits below the bar to absorb shared-runner and
/// cache-topology variance — the dev box measured 3.0–3.4× across runs.
pub const MIN_LARGE_PD_SPEEDUP: f64 = 2.5;

/// The incremental-vs-full-scan PD speedup on the `euclid-large` cell
/// (`euclid-grid-large`, |M| = 16384) must stay at least this high. The
/// acceptance bar when distance-aware pruning landed was 2.5× (from 1.78×
/// with id-order bounds; the dev box measured 2.8×) — the floor sits below
/// it for runner variance, same policy as the other speedup gates.
pub const MIN_EUCLID_LARGE_PD_SPEEDUP: f64 = 2.0;

/// Floor on the `huge.speedup` cell: the current serve path (SIMD
/// `fill_row`, kd-ball ingest, 64-point blocks, block-pruned shrink walk,
/// kd-bounded partial row fills, sharded + f32-screened freeze walk)
/// against the frozen PR 5 path ([`PdOmflp::with_reference_layout`] with
/// SIMD dispatch forced off) at |M| = 1048576. Both engines are
/// incremental, so this ratio isolates the post-PR 5 serve-path wins and
/// is far more machine-portable than a wall-clock cell. At 1M points the
/// reference pays a full-row fill per arrival while the current engine
/// fills only the coverage set; observed 1.7–2.4× run to run on the
/// (single-core, contended) dev box, so 1.5× stays the collapse
/// detector, not the acceptance bar.
pub const MIN_HUGE_PD_SPEEDUP: f64 = 1.5;

/// Every `block_skip_rate` recorded in `BENCH_pd.json` must stay at least
/// this high. Unlike wall-clock, the skip rate is a *deterministic*
/// function of the workload and the pruning structure (same instance, same
/// bounds, same floats — machines don't enter it), so the gate is tight:
/// the acceptance bar was ≥ 70% on both large families (measured 77% on
/// the graph family, 99.8% on the Euclidean one), and the floor only
/// leaves room for deliberate profile tweaks, not for regressions back
/// toward the 27–39% id-order era.
pub const MIN_BLOCK_SKIP_RATE: f64 = 0.65;

/// Shard/thread configurations the serve determinism cell compares. The
/// acceptance contract is that the aggregate [`omfl_serve::ServeReport`] is
/// bit-identical across all of them; `digest_match` in `BENCH_serve.json`
/// records the comparison as 1.0/0.0 and CI hard-gates it at 1.0 — the one
/// serve gate no machine difference can excuse.
pub const SERVE_DETERMINISM_CONFIGS: [usize; 4] = [1, 2, 7, 16];

/// The PD hot-path bench profile: `zipf-services` at 4096 requests with a
/// service-heavy shape — the regime the index layer targets, where the
/// naive path's per-request facility scans and history re-walks dominate.
pub fn pd_profile() -> CatalogProfile {
    CatalogProfile {
        points: 48,
        services: 64,
        requests: 4096,
    }
}

/// The sweep smoke profile: small enough for CI, large enough that per-cell
/// times are above timer noise.
pub fn sweep_profile() -> CatalogProfile {
    CatalogProfile::default()
}

/// The large-metric PD profile: `zipf-services-large` scales `points` by
/// 32×, so this reaches |M| = 4096 — the regime where the per-arrival t3/t4
/// opening-target scans dominate PD serve and the incremental argmin index
/// is the order-of-magnitude lever.
pub fn pd_large_profile() -> CatalogProfile {
    CatalogProfile {
        points: 128,
        services: 64,
        requests: 4096,
    }
}

/// The Euclidean large-metric PD profile: `euclid-grid-large` scales
/// `points` by 64×, so this reaches |M| = 16384 — past any dense matrix,
/// where computed Euclidean distances make the scan baseline cheap and the
/// speedup is carried by distance-aware pruning plus the bulk `fill_row`.
pub fn pd_euclid_large_profile() -> CatalogProfile {
    CatalogProfile {
        points: 256,
        services: 64,
        requests: 4096,
    }
}

/// The huge-metric PD profile: `euclid-grid-large` scales `points` by 64×,
/// so this reaches |M| = 1048576 — the 1M-point target regime. The frozen
/// reference still pays a full 1M-point row fill per arrival; the current
/// engine fills only the kd-bounded coverage set the pruned scans can
/// touch and walks the freeze reinvestment sharded and screened, so per
/// arrival it does work proportional to the coverage, not to |M|.
/// Requests are kept moderate: the *reference* runs still cost
/// |requests| × |M| distance evaluations each.
pub fn pd_huge_profile() -> CatalogProfile {
    CatalogProfile {
        points: 16384,
        services: 8,
        requests: 1024,
    }
}

/// PD hot-path measurement: indexed vs linear-scan reference.
#[derive(Debug, Clone)]
pub struct PdBench {
    /// Workload family name.
    pub family: &'static str,
    /// Requests served per run.
    pub requests: usize,
    /// Metric size / commodity count of the profile.
    pub points: usize,
    /// Commodity count.
    pub services: u16,
    /// Indexed engine wall-clock seconds over the repeats.
    pub indexed: Summary,
    /// Linear-scan reference wall-clock seconds.
    pub naive: Summary,
}

impl PdBench {
    /// `naive.mean / indexed.mean` — what the index layer buys.
    pub fn speedup(&self) -> f64 {
        self.naive.mean / self.indexed.mean
    }
}

/// Times the PD serve hot path (indexed and naive) on `zipf-services`.
///
/// One untimed warm-up pair runs first — the very first run pays allocator
/// and page-fault warm-up that would otherwise skew a small repeat count.
pub fn pd_bench(profile: &CatalogProfile, repeats: usize) -> Result<PdBench, CoreError> {
    let family = catalog::by_name("zipf-services").expect("catalog family");
    let scenario = family.build(profile, 0x0B5E55ED)?;
    let inst = scenario.instance();

    {
        let mut warm_fast = PdOmflp::new(inst);
        let mut warm_slow = NaivePd::new(inst);
        for r in &scenario.requests {
            warm_fast.serve(r)?;
            warm_slow.serve(r)?;
        }
    }

    let mut indexed = Vec::with_capacity(repeats);
    let mut naive = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut fast = PdOmflp::new(inst);
        for r in &scenario.requests {
            fast.serve(r)?;
        }
        indexed.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let mut slow = NaivePd::new(inst);
        for r in &scenario.requests {
            slow.serve(r)?;
        }
        naive.push(t0.elapsed().as_secs_f64());

        // Timing a divergent run would be meaningless; the differential
        // suite proves this in depth, the bench just refuses to lie.
        assert_eq!(
            fast.solution().total_cost().to_bits(),
            slow.solution().total_cost().to_bits(),
            "indexed and naive PD diverged — bench numbers would be invalid"
        );
    }
    Ok(PdBench {
        family: family.name,
        requests: scenario.len(),
        points: profile.points,
        services: profile.services,
        indexed: summarize(&indexed),
        naive: summarize(&naive),
    })
}

/// Large-metric PD measurement for `BENCH_pd.json`: the shared paired
/// timing plus the identifying metadata the JSON cell records.
#[derive(Debug, Clone)]
pub struct PdLargeBench {
    /// Workload family name.
    pub family: &'static str,
    /// Commodity count.
    pub services: u16,
    /// The paired incremental-vs-scan measurement.
    pub timing: PairedPdTiming,
}

impl PdLargeBench {
    /// `scan.mean / incremental.mean` — what the opening-target index and
    /// the blocked row cache buy at large |M|.
    pub fn speedup(&self) -> f64 {
        self.timing.scan.mean / self.timing.incremental.mean
    }
}

/// One paired incremental-vs-full-scan PD measurement, plus the index
/// diagnostics of the last incremental run. Produced by
/// [`paired_pd_timing`] — the single benchmark protocol behind both the
/// `BENCH_pd.json` `large` cell and the `pd-argmin` experiment, so the
/// gated number and the reported table can never drift apart.
#[derive(Debug, Clone)]
pub struct PairedPdTiming {
    /// Actual metric size |M|.
    pub points: usize,
    /// Requests served per run.
    pub requests: usize,
    /// Incremental-engine wall-clock seconds over the repeats.
    pub incremental: Summary,
    /// Full-scan (PR 3 path) wall-clock seconds.
    pub scan: Summary,
    /// Share of opening-target blocks the prune skipped.
    pub block_skip_rate: f64,
    /// Blocked row-cache hit rate (`None` on the dense backend).
    pub row_hit_rate: Option<f64>,
}

/// Times PD serve on a catalog family: incremental t3/t4 maintenance +
/// blocked rows (`PdOmflp::new`) against the PR 3 full scans
/// (`PdOmflp::with_full_scans`). One untimed warm-up pair first; every
/// timed pair is cross-checked bit-identical — the harness refuses to
/// report timings of divergent engines.
pub fn paired_pd_timing(
    family_name: &str,
    profile: &CatalogProfile,
    repeats: usize,
) -> Result<PairedPdTiming, CoreError> {
    let family = catalog::by_name(family_name).expect("catalog family");
    let scenario = family.build(profile, 0x0B5E55ED)?;
    let inst = scenario.instance();

    {
        let mut warm_fast = PdOmflp::new(inst);
        let mut warm_slow = PdOmflp::with_full_scans(inst);
        for r in &scenario.requests {
            warm_fast.serve(r)?;
            warm_slow.serve(r)?;
        }
    }

    let mut incremental = Vec::with_capacity(repeats);
    let mut scan = Vec::with_capacity(repeats);
    let mut block_skip_rate = 0.0;
    let mut row_hit_rate = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut fast = PdOmflp::new(inst);
        for r in &scenario.requests {
            fast.serve(r)?;
        }
        incremental.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let mut slow = PdOmflp::with_full_scans(inst);
        for r in &scenario.requests {
            slow.serve(r)?;
        }
        scan.push(t0.elapsed().as_secs_f64());

        assert_eq!(
            fast.solution().total_cost().to_bits(),
            slow.solution().total_cost().to_bits(),
            "incremental and full-scan PD diverged — bench numbers would be invalid"
        );
        let (skipped, scanned) = fast.opening_target_stats().expect("incremental stats");
        block_skip_rate = skipped as f64 / (skipped + scanned).max(1) as f64;
        row_hit_rate = fast
            .distance_cache_stats()
            .map(|(h, m, _)| h as f64 / (h + m).max(1) as f64);
    }
    Ok(PairedPdTiming {
        points: inst.num_points(),
        requests: scenario.len(),
        incremental: summarize(&incremental),
        scan: summarize(&scan),
        block_skip_rate,
        row_hit_rate,
    })
}

/// Times PD serve on `zipf-services-large` (|M| = 32 × `profile.points`)
/// via [`paired_pd_timing`] and shapes the result for `BENCH_pd.json`.
pub fn pd_large_bench(profile: &CatalogProfile, repeats: usize) -> Result<PdLargeBench, CoreError> {
    Ok(PdLargeBench {
        family: "zipf-services-large",
        services: profile.services,
        timing: paired_pd_timing("zipf-services-large", profile, repeats)?,
    })
}

/// Times PD serve on `euclid-grid-large` (|M| = 64 × `profile.points`) for
/// the `euclid-large` cell of `BENCH_pd.json`.
pub fn pd_euclid_large_bench(
    profile: &CatalogProfile,
    repeats: usize,
) -> Result<PdLargeBench, CoreError> {
    Ok(PdLargeBench {
        family: "euclid-grid-large",
        services: profile.services,
        timing: paired_pd_timing("euclid-grid-large", profile, repeats)?,
    })
}

/// The `huge` cell measurement: the current serve path against the frozen
/// PR 5 path on the same instance. Unlike [`PdLargeBench`], *both* engines
/// here are incremental — the reference differs only in the post-PR 5
/// serve-path work (scalar distance kernels, windowed ball ingest,
/// 16-point blocks, no kd tree, no block-pruned shrink walk, no pool,
/// full per-arrival row fills instead of kd-bounded partial ones, and the
/// serial full-walk freeze instead of the sharded screened one).
#[derive(Debug, Clone)]
pub struct PdHugeBench {
    /// Workload family name.
    pub family: &'static str,
    /// Commodity count.
    pub services: u16,
    /// Actual metric size |M|.
    pub points: usize,
    /// Requests served per run.
    pub requests: usize,
    /// Current-engine wall-clock seconds over the repeats.
    pub current: Summary,
    /// Frozen PR 5 reference wall-clock seconds (SIMD dispatch off).
    pub reference: Summary,
    /// Share of opening-target blocks the current engine's prune skipped —
    /// deterministic and machine-portable (the shard partition is a pure
    /// function of the block count, never of the worker pool).
    pub block_skip_rate: f64,
}

impl PdHugeBench {
    /// `reference.mean / current.mean` — what this PR's serve-path changes
    /// buy at huge |M|.
    pub fn speedup(&self) -> f64 {
        self.reference.mean / self.current.mean
    }
}

/// Times PD serve on `euclid-grid-large` at the huge profile: the current
/// engine (`PdOmflp::new`) against the frozen PR 5 path
/// (`PdOmflp::with_reference_layout`, with SIMD dispatch forced off for
/// its timed runs so the reference really is the pre-SIMD kernel). One
/// untimed warm-up pair first; every timed pair is cross-checked
/// bit-identical before its numbers are accepted.
pub fn pd_huge_bench(profile: &CatalogProfile, repeats: usize) -> Result<PdHugeBench, CoreError> {
    let family = catalog::by_name("euclid-grid-large").expect("catalog family");
    let scenario = family.build(profile, 0x0B5E55ED)?;
    let inst = scenario.instance();

    {
        let mut warm_fast = PdOmflp::new(inst);
        let mut warm_slow = PdOmflp::with_reference_layout(inst);
        for r in &scenario.requests {
            warm_fast.serve(r)?;
            warm_slow.serve(r)?;
        }
    }

    let mut current = Vec::with_capacity(repeats);
    let mut reference = Vec::with_capacity(repeats);
    let mut block_skip_rate = 0.0;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut fast = PdOmflp::new(inst);
        for r in &scenario.requests {
            fast.serve(r)?;
        }
        current.push(t0.elapsed().as_secs_f64());

        // The reference times the scalar kernels: SIMD dispatch is a
        // bit-identical execution choice, so flipping it off is safe and
        // makes the cell measure kernels + layout together.
        omfl_metric::simd::set_simd_enabled(false);
        let t0 = Instant::now();
        let mut slow = PdOmflp::with_reference_layout(inst);
        for r in &scenario.requests {
            slow.serve(r)?;
        }
        reference.push(t0.elapsed().as_secs_f64());
        omfl_metric::simd::set_simd_enabled(true);

        assert_eq!(
            fast.solution().total_cost().to_bits(),
            slow.solution().total_cost().to_bits(),
            "current and reference-layout PD diverged — bench numbers would be invalid"
        );
        let (skipped, scanned) = fast.opening_target_stats().expect("incremental stats");
        block_skip_rate = skipped as f64 / (skipped + scanned).max(1) as f64;
    }
    Ok(PdHugeBench {
        family: family.name,
        services: profile.services,
        points: inst.num_points(),
        requests: scenario.len(),
        current: summarize(&current),
        reference: summarize(&reference),
        block_skip_rate,
    })
}

/// The serve bench profile: 16 light tenants at 2048 requests each (32768
/// arrivals aggregate). Tenants are deliberately small (16 points, 8
/// services): this cell prices the *multiplexing layer* — ring, shards,
/// locks, snapshots — per arrival, not PD's own per-request cost, which
/// `BENCH_pd.json` already gates at heavier shapes. The dev-box target for
/// the throughput cell is ≥ 1M arrivals/sec aggregate.
pub fn serve_profile() -> (usize, CatalogProfile) {
    (
        16,
        CatalogProfile {
            points: 16,
            services: 8,
            requests: 2048,
        },
    )
}

/// One multi-tenant serve measurement for `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Workload family every tenant runs.
    pub family: &'static str,
    /// Tenant count.
    pub tenants: usize,
    /// Aggregate arrivals per run.
    pub arrivals: usize,
    /// Shards the throughput runs used.
    pub shards: usize,
    /// Pool worker threads the throughput runs used.
    pub pool_threads: usize,
    /// Serve-loop wall seconds over the timed repeats.
    pub serve: Summary,
    /// `true` iff the aggregate reports of all
    /// [`SERVE_DETERMINISM_CONFIGS`] were bit-identical.
    pub digest_match: bool,
    /// The shared digest of the determinism runs.
    pub digest: u64,
    /// Tenants quarantined by the injected-fault panel (the fault plan
    /// panics exactly one tenant, so this must be 1).
    pub faulted_quarantined: usize,
    /// `true` iff, under the injected fault, every
    /// [`SERVE_DETERMINISM_CONFIGS`] run quarantined the planned tenant
    /// and the healthy tenants' digest matched the clean run's digest
    /// over the same subset — the "healthy tenants are bit-identical
    /// under faults" gate.
    pub faulted_digest_match: bool,
    /// Median per-arrival serve latency (ns) of the last timed repeat.
    pub latency_p50_ns: u64,
    /// 99th-percentile per-arrival serve latency (ns) of the last repeat.
    pub latency_p99_ns: u64,
    /// Producer blocking episodes of the last timed repeat.
    pub backpressure_waits: u64,
}

impl ServeBench {
    /// Aggregate arrivals per second at the mean serve wall time.
    pub fn arrivals_per_sec(&self) -> f64 {
        self.arrivals as f64 / self.serve.mean.max(1e-12)
    }
}

fn serve_run(
    scenarios: &[Scenario],
    source: &ArrivalSource,
    shards: usize,
    pool: &TaskPool,
) -> Result<(omfl_serve::ServeReport, omfl_serve::ServeTelemetry), CoreError> {
    let server = Server::new(scenarios, Engine::Pd).expect("pd tenants always box");
    // Micro-batches amortize the per-batch pool barrier: at 1024 arrivals
    // per batch the dispatch overhead is a few percent of the engine work;
    // at 128 it dominated and halved aggregate throughput.
    let cfg = ServeConfig {
        shards,
        micro_batch: 1024,
        queue_capacity: 8192,
        deadline: None,
    };
    let (report, telemetry) = server.serve(source, &cfg, pool).map_err(|e| match e {
        ServeError::Tenant(_, core) => core,
        other => CoreError::BadInstance(other.to_string()),
    })?;
    // A clean bench run that quietly quarantined a tenant would report a
    // digest about a smaller fleet; fail loudly instead.
    if let Some(q) = report.quarantined.first() {
        return Err(CoreError::BadInstance(format!(
            "clean serve run quarantined tenant {}: {:?}",
            q.tenant, q.reason
        )));
    }
    Ok((report, telemetry))
}

/// Silences the panic-hook stderr noise for the *injected* panics the
/// faulted serve panel fires on purpose; every other panic keeps the
/// default report. Installed once per process.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains(omfl_serve::INJECTED_PANIC_MARKER) {
                default_hook(info);
            }
        }));
    });
}

/// Times the multi-tenant serve loop on a fleet of `tenants` independent
/// `zipf-services` scenarios (distinct seeds), multiplexed over one
/// [`TaskPool`].
///
/// Protocol: one serve per [`SERVE_DETERMINISM_CONFIGS`] entry first (each
/// at `shards == threads`) — these double as warm-up and must produce
/// bit-identical aggregate reports — then `repeats` timed runs at the
/// throughput configuration: 16 shards on a pool sized by
/// [`omfl_par::default_threads`] (the hardware the box actually has — a
/// single-core runner serves inline, a dev box fans out).
pub fn serve_bench(
    tenants: usize,
    profile: &CatalogProfile,
    repeats: usize,
) -> Result<ServeBench, CoreError> {
    let family = catalog::by_name("zipf-services").expect("catalog family");
    let scenarios = (0..tenants)
        .map(|t| family.build(profile, omfl_par::seed_for(0x5E12FE, t as u64)))
        .collect::<Result<Vec<_>, _>>()?;
    let lens: Vec<usize> = scenarios.iter().map(|s| s.requests.len()).collect();
    let source = ArrivalSource::round_robin(&lens);

    let mut determinism_reports = Vec::new();
    for &n in SERVE_DETERMINISM_CONFIGS.iter() {
        let pool = TaskPool::new(n);
        let (report, _) = serve_run(&scenarios, &source, n, &pool)?;
        determinism_reports.push(report);
    }
    let digest_match = determinism_reports
        .windows(2)
        .all(|w| w[0] == w[1] && w[0].digest == w[1].digest);

    // Faulted panel: the same fleet with one tenant panicking mid-stream.
    // The gate is machine-independent: at every shard/thread config the
    // planned tenant (and only it) is quarantined, and the healthy
    // tenants' digest equals the clean run's digest over the same subset.
    quiet_injected_panics();
    let plan = FaultPlan::seeded(0xC4A05, &lens, 1);
    let planned: Vec<usize> = plan
        .faulted_tenants()
        .into_iter()
        .map(|t| t as usize)
        .collect();
    let healthy_clean = determinism_reports[0].digest_over(|t| !planned.contains(&t));
    let mut faulted_quarantined = usize::MAX;
    let mut faulted_digest_match = true;
    for &n in SERVE_DETERMINISM_CONFIGS.iter() {
        let pool = TaskPool::new(n);
        let server = Server::new(&scenarios, Engine::Pd).expect("pd tenants always box");
        let cfg = ServeConfig {
            shards: n,
            micro_batch: 1024,
            queue_capacity: 8192,
            deadline: None,
        };
        let (report, _) = server
            .serve_with_faults(&source, &cfg, &pool, &plan)
            .map_err(|e| CoreError::BadInstance(e.to_string()))?;
        let quarantined: Vec<usize> = report.quarantined.iter().map(|q| q.tenant).collect();
        faulted_quarantined = report.quarantined.len();
        faulted_digest_match &= quarantined == planned && report.digest == healthy_clean;
    }

    let shards = 16;
    let pool = TaskPool::new(omfl_par::default_threads());
    let mut secs = Vec::with_capacity(repeats);
    let mut last_telemetry = None;
    for _ in 0..repeats {
        let (report, telemetry) = serve_run(&scenarios, &source, shards, &pool)?;
        // A throughput number for a run that diverged from the determinism
        // panel would be a number about a different computation.
        assert_eq!(
            report.digest, determinism_reports[0].digest,
            "throughput run diverged from the determinism panel"
        );
        secs.push(telemetry.wall_secs);
        last_telemetry = Some(telemetry);
    }
    let telemetry = last_telemetry.expect("at least one timed repeat");
    Ok(ServeBench {
        family: family.name,
        tenants,
        arrivals: source.len(),
        shards,
        pool_threads: pool.threads(),
        serve: summarize(&secs),
        digest_match,
        digest: determinism_reports[0].digest,
        faulted_quarantined,
        faulted_digest_match,
        latency_p50_ns: telemetry.latency_p50_ns,
        latency_p99_ns: telemetry.latency_p99_ns,
        backpressure_waits: telemetry.backpressure_waits,
    })
}

/// Thread counts the exact branch-and-bound cell re-solves under. The
/// frontier contract is that node counts and bounds are bit-identical
/// across all of them; each family cell's `digest_match` records the
/// comparison and CI hard-gates it at 1.0.
pub const OPT_DETERMINISM_CONFIGS: [usize; 4] = [1, 2, 7, 16];

/// Families the exact-OPT cell certifies. All three reach |M| = 200 under
/// [`opt_profile`] and close the gap well inside [`OPT_NODE_BUDGET`]:
/// `zipf-services` certifies at the root, `tree-hierarchy` and
/// `euclid-clusters` each take a few hundred branch-and-bound nodes.
pub const OPT_FAMILIES: [&str; 3] = ["zipf-services", "tree-hierarchy", "euclid-clusters"];

/// Node budget for the `BENCH_opt.json` cells — far above the few hundred
/// nodes the gated families need, so a budget exhaustion is a bound
/// regression, not noise.
pub const OPT_NODE_BUDGET: u64 = 5_000;

/// The exact-OPT bench profile: |M| = 200 catalog instances, the ISSUE's
/// target scale for certified optima.
pub fn opt_profile() -> CatalogProfile {
    CatalogProfile {
        points: 200,
        services: 6,
        requests: 48,
    }
}

/// One certified exact-OPT measurement for `BENCH_opt.json`.
#[derive(Debug, Clone)]
pub struct OptBench {
    /// Workload family name.
    pub family: &'static str,
    /// Actual metric size |M|.
    pub points: usize,
    /// Requests solved.
    pub requests: usize,
    /// Branch-and-bound nodes expanded (thread-count independent).
    pub nodes_expanded: u64,
    /// Certified relative gap — 0.0 exactly when the run certified.
    pub gap_certified: f64,
    /// The certified optimum (upper bound == lower bound when certified).
    pub optimum: f64,
    /// Root Lagrangian bound.
    pub root_bound: f64,
    /// `true` iff node counts and both bounds were bit-identical across
    /// all [`OPT_DETERMINISM_CONFIGS`].
    pub digest_match: bool,
    /// Wall seconds per solve, one sample per thread configuration.
    pub solve: Summary,
}

/// Solves one catalog family exactly at every [`OPT_DETERMINISM_CONFIGS`]
/// entry and cross-checks that node counts and bounds are bit-identical.
pub fn opt_bench(
    family_name: &'static str,
    profile: &CatalogProfile,
) -> Result<OptBench, CoreError> {
    let family = catalog::by_name(family_name).expect("catalog family");
    let scenario = family.build(profile, 404)?;
    let inst = scenario.instance();

    let mut secs = Vec::with_capacity(OPT_DETERMINISM_CONFIGS.len());
    let mut runs = Vec::with_capacity(OPT_DETERMINISM_CONFIGS.len());
    for &threads in OPT_DETERMINISM_CONFIGS.iter() {
        let solver = ExactSolver {
            max_points: 512,
            node_budget: OPT_NODE_BUDGET,
            ..ExactSolver::default()
        }
        .with_threads(threads);
        let t0 = Instant::now();
        let res = solver.solve_bounded(inst, &scenario.requests)?;
        secs.push(t0.elapsed().as_secs_f64());
        if !res.certified() {
            return Err(CoreError::BadInstance(format!(
                "{family_name}: branch-and-bound failed to certify within \
                 {OPT_NODE_BUDGET} nodes (gap {:.6}) — the bench gates \
                 certified optima only",
                res.gap
            )));
        }
        runs.push(res);
    }
    let reference = &runs[0];
    let digest_match = runs.iter().all(|r| {
        r.nodes_expanded == reference.nodes_expanded
            && r.upper_bound.to_bits() == reference.upper_bound.to_bits()
            && r.lower_bound.to_bits() == reference.lower_bound.to_bits()
    });
    Ok(OptBench {
        family: family.name,
        points: inst.num_points(),
        requests: scenario.len(),
        nodes_expanded: reference.nodes_expanded,
        gap_certified: reference.gap,
        optimum: reference.upper_bound,
        root_bound: reference.root_bound,
        digest_match,
        solve: summarize(&secs),
    })
}

/// Renders `BENCH_opt.json`: one cell per [`OPT_FAMILIES`] entry carrying
/// the machine-independent `nodes_expanded` / `gap_certified` /
/// `digest_match` gates plus the certified optimum and per-solve wall
/// seconds (ratio-gated like every other `secs.mean`).
pub fn opt_json(cells: &[OptBench], profile: &CatalogProfile) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"services\": {},", profile.services);
    let _ = writeln!(out, "  \"node_budget\": {OPT_NODE_BUDGET},");
    let _ = writeln!(
        out,
        "  \"thread_configs\": \"{:?}\",",
        OPT_DETERMINISM_CONFIGS
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "  \"{}\": {{", c.family);
        let _ = writeln!(out, "    \"points\": {},", c.points);
        let _ = writeln!(out, "    \"requests\": {},", c.requests);
        let _ = writeln!(out, "    \"nodes_expanded\": {},", c.nodes_expanded);
        let _ = writeln!(out, "    \"gap_certified\": {:.9},", c.gap_certified);
        let _ = writeln!(out, "    \"optimum\": {:.9},", c.optimum);
        let _ = writeln!(out, "    \"root_bound\": {:.9},", c.root_bound);
        let _ = writeln!(
            out,
            "    \"digest_match\": {},",
            if c.digest_match { "1.0" } else { "0.0" }
        );
        summary_json(&mut out, "solve_secs", &c.solve, "    ");
        out.push('\n');
        out.push_str(if i + 1 < cells.len() {
            "  },\n"
        } else {
            "  }\n"
        });
    }
    out.push_str("}\n");
    out
}

/// Renders `BENCH_serve.json`: the deterministic `digest_match` cell (CI
/// hard-gates it at 1.0), the gated throughput cell, and informational
/// latency/backpressure telemetry. See the README's serve section for the
/// cell layout.
pub fn serve_json(b: &ServeBench) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"family\": \"{}\",", b.family);
    let _ = writeln!(out, "  \"tenants\": {},", b.tenants);
    let _ = writeln!(out, "  \"arrivals\": {},", b.arrivals);
    let _ = writeln!(out, "  \"shards\": {},", b.shards);
    let _ = writeln!(out, "  \"pool_threads\": {},", b.pool_threads);
    let _ = writeln!(
        out,
        "  \"digest_match\": {},",
        if b.digest_match { "1.0" } else { "0.0" }
    );
    let _ = writeln!(
        out,
        "  \"faulted\": {{ \"quarantined\": {}, \"digest_match\": {} }},",
        b.faulted_quarantined,
        if b.faulted_digest_match { "1.0" } else { "0.0" }
    );
    summary_json(&mut out, "serve_secs", &b.serve, "  ");
    out.push_str(",\n");
    let _ = writeln!(out, "  \"arrivals_per_sec\": {:.1},", b.arrivals_per_sec());
    let _ = writeln!(out, "  \"latency_p50_ns\": {},", b.latency_p50_ns);
    let _ = writeln!(out, "  \"latency_p99_ns\": {},", b.latency_p99_ns);
    let _ = writeln!(out, "  \"backpressure_waits\": {}", b.backpressure_waits);
    out.push_str("}\n");
    out
}

fn summary_json(out: &mut String, key: &str, s: &Summary, indent: &str) {
    let _ = write!(
        out,
        "{indent}\"{key}\": {{ \"n\": {}, \"mean\": {:.9}, \"std\": {:.9}, \"min\": {:.9}, \"max\": {:.9} }}",
        s.n, s.mean, s.std, s.min, s.max
    );
}

fn large_cell_json(out: &mut String, key: &str, cell: &PdLargeBench, trailing_comma: bool) {
    let _ = writeln!(out, "  \"{key}\": {{");
    let _ = writeln!(out, "    \"family\": \"{}\",", cell.family);
    let _ = writeln!(out, "    \"requests\": {},", cell.timing.requests);
    let _ = writeln!(out, "    \"points\": {},", cell.timing.points);
    let _ = writeln!(out, "    \"services\": {},", cell.services);
    summary_json(out, "incremental_secs", &cell.timing.incremental, "    ");
    out.push_str(",\n");
    summary_json(out, "scan_secs", &cell.timing.scan, "    ");
    out.push_str(",\n");
    let _ = writeln!(
        out,
        "    \"block_skip_rate\": {:.4},",
        cell.timing.block_skip_rate
    );
    let _ = writeln!(out, "    \"speedup\": {:.4}", cell.speedup());
    out.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

fn huge_cell_json(out: &mut String, cell: &PdHugeBench, trailing_comma: bool) {
    let _ = writeln!(out, "  \"huge\": {{");
    let _ = writeln!(out, "    \"family\": \"{}\",", cell.family);
    let _ = writeln!(out, "    \"requests\": {},", cell.requests);
    let _ = writeln!(out, "    \"points\": {},", cell.points);
    let _ = writeln!(out, "    \"services\": {},", cell.services);
    summary_json(out, "current_secs", &cell.current, "    ");
    out.push_str(",\n");
    summary_json(out, "reference_secs", &cell.reference, "    ");
    out.push_str(",\n");
    let _ = writeln!(out, "    \"block_skip_rate\": {:.4},", cell.block_skip_rate);
    let _ = writeln!(out, "    \"speedup\": {:.4}", cell.speedup());
    out.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

/// Renders `BENCH_pd.json`: the small-metric indexed-vs-naive cell, the
/// two large-metric incremental-vs-scan cells (`large` on the graph family,
/// `euclid-large` on the Euclidean one) and the `huge` current-vs-PR 5
/// cell, each carrying its deterministic `block_skip_rate`.
pub fn pd_json(
    b: &PdBench,
    large: &PdLargeBench,
    euclid_large: &PdLargeBench,
    huge: &PdHugeBench,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"family\": \"{}\",", b.family);
    let _ = writeln!(out, "  \"requests\": {},", b.requests);
    let _ = writeln!(out, "  \"points\": {},", b.points);
    let _ = writeln!(out, "  \"services\": {},", b.services);
    summary_json(&mut out, "indexed_secs", &b.indexed, "  ");
    out.push_str(",\n");
    summary_json(&mut out, "naive_secs", &b.naive, "  ");
    out.push_str(",\n");
    let _ = writeln!(out, "  \"speedup\": {:.4},", b.speedup());
    large_cell_json(&mut out, "large", large, true);
    huge_cell_json(&mut out, huge, true);
    large_cell_json(&mut out, "euclid-large", euclid_large, false);
    out.push_str("}\n");
    out
}

/// Times every catalog family × engine and renders `BENCH_sweep.json`.
pub fn sweep_json(
    profile: &CatalogProfile,
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<String, CoreError> {
    let families = catalog::registry();
    let engines = Engine::all(omfl_par::seed_for(base_seed, u64::MAX));
    let t0 = Instant::now();
    let cells = timed_sweep(&families, profile, &engines, base_seed, trials, threads)?;
    let wall = t0.elapsed().as_secs_f64();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"trials\": {trials},");
    let _ = writeln!(out, "  \"points\": {},", profile.points);
    let _ = writeln!(out, "  \"services\": {},", profile.services);
    let _ = writeln!(out, "  \"requests\": {},", profile.requests);
    let _ = writeln!(out, "  \"sweep_wall_secs\": {wall:.9},");
    let mut first = true;
    for engine in &engines {
        for fam in &families {
            let secs: Vec<f64> = cells
                .iter()
                .filter(|c| c.family == fam.name && c.engine == engine.name())
                .map(|c| c.secs)
                .collect();
            if secs.is_empty() {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let key = format!("{}/{}", engine.name(), fam.name);
            let mut obj = String::new();
            summary_json(&mut obj, "secs", &summarize(&secs), "");
            let _ = write!(out, "  \"{key}\": {{ {} }}", obj.trim_start());
        }
    }
    out.push_str("\n}\n");
    Ok(out)
}

// --- minimal JSON reading (the emitter's shape only) ----------------------

/// Flattened dotted-key views of a parsed document: numbers and strings.
pub type FlatJson = (BTreeMap<String, f64>, BTreeMap<String, String>);

/// Parses the subset of JSON the emitters above produce — objects, strings,
/// and numbers — into flattened `"a.b.c" → value` maps. Numbers land in the
/// first map, strings in the second.
pub fn parse_flat(text: &str) -> Result<FlatJson, String> {
    let mut nums = BTreeMap::new();
    let mut strs = BTreeMap::new();
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    parse_object(&chars, &mut pos, "", &mut nums, &mut strs)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok((nums, strs))
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(c: &[char], pos: &mut usize, ch: char) -> Result<(), String> {
    skip_ws(c, pos);
    if *pos < c.len() && c[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{ch}' at offset {pos}", pos = *pos))
    }
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    expect(c, pos, '"')?;
    let mut s = String::new();
    while *pos < c.len() && c[*pos] != '"' {
        // The emitter never escapes anything; reject rather than mis-parse.
        if c[*pos] == '\\' {
            return Err("escape sequences are not supported".into());
        }
        s.push(c[*pos]);
        *pos += 1;
    }
    expect(c, pos, '"')?;
    Ok(s)
}

fn parse_object(
    c: &[char],
    pos: &mut usize,
    prefix: &str,
    nums: &mut BTreeMap<String, f64>,
    strs: &mut BTreeMap<String, String>,
) -> Result<(), String> {
    expect(c, pos, '{')?;
    skip_ws(c, pos);
    if *pos < c.len() && c[*pos] == '}' {
        *pos += 1;
        return Ok(());
    }
    loop {
        let key = parse_string(c, pos)?;
        let full = if prefix.is_empty() {
            key
        } else {
            format!("{prefix}.{key}")
        };
        expect(c, pos, ':')?;
        skip_ws(c, pos);
        match c.get(*pos) {
            Some('{') => parse_object(c, pos, &full, nums, strs)?,
            Some('"') => {
                let v = parse_string(c, pos)?;
                strs.insert(full, v);
            }
            Some(_) => {
                let start = *pos;
                while *pos < c.len()
                    && !matches!(c[*pos], ',' | '}' | ']')
                    && !c[*pos].is_whitespace()
                {
                    *pos += 1;
                }
                let raw: String = c[start..*pos].iter().collect();
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad number '{raw}' for key {full}"))?;
                nums.insert(full, v);
            }
            None => return Err("unexpected end of input".into()),
        }
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => {
                *pos += 1;
                skip_ws(c, pos);
            }
            Some('}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

/// Compares a freshly generated JSON document against a committed baseline.
///
/// Failure modes, in the order they are reported:
/// * a key present in the baseline but missing from the fresh run;
/// * a fresh `*.secs.mean` / `*_secs.mean` more than [`REGRESSION_FACTOR`]
///   above the committed value (baselines of at least [`MIN_GATED_SECS`]
///   only);
/// * a fresh `speedup` below [`MIN_PD_SPEEDUP`];
/// * a fresh `large.speedup` below [`MIN_LARGE_PD_SPEEDUP`].
pub fn check(fresh: &str, committed: &str, label: &str) -> Result<Vec<String>, Vec<String>> {
    let (f_nums, f_strs) =
        parse_flat(fresh).map_err(|e| vec![format!("{label}: fresh JSON unreadable: {e}")])?;
    let (c_nums, c_strs) = parse_flat(committed)
        .map_err(|e| vec![format!("{label}: committed JSON unreadable: {e}")])?;

    let mut errors = Vec::new();
    let mut notes = Vec::new();
    for key in c_nums.keys() {
        if !f_nums.contains_key(key) {
            errors.push(format!("{label}: key '{key}' missing from fresh run"));
        }
    }
    for key in c_strs.keys() {
        if !f_strs.contains_key(key) {
            errors.push(format!("{label}: key '{key}' missing from fresh run"));
        }
    }
    for (key, &base) in &c_nums {
        let Some(&now) = f_nums.get(key) else {
            continue;
        };
        if key.ends_with("secs.mean") && base > 0.0 {
            let ratio = now / base;
            if ratio > REGRESSION_FACTOR && base >= MIN_GATED_SECS {
                errors.push(format!(
                    "{label}: '{key}' regressed {ratio:.2}x ({base:.6}s -> {now:.6}s)"
                ));
            } else {
                let gated = if base >= MIN_GATED_SECS {
                    ""
                } else {
                    " (ungated: sub-ms baseline)"
                };
                notes.push(format!("{label}: '{key}' {ratio:.2}x of baseline{gated}"));
            }
        }
        if key == "speedup" && now < MIN_PD_SPEEDUP {
            errors.push(format!(
                "{label}: PD index speedup {now:.2}x below the {MIN_PD_SPEEDUP}x floor \
                 (baseline {base:.2}x)"
            ));
        }
        if key == "large.speedup" && now < MIN_LARGE_PD_SPEEDUP {
            errors.push(format!(
                "{label}: large-metric PD speedup {now:.2}x below the \
                 {MIN_LARGE_PD_SPEEDUP}x floor (baseline {base:.2}x)"
            ));
        }
        if key == "euclid-large.speedup" && now < MIN_EUCLID_LARGE_PD_SPEEDUP {
            errors.push(format!(
                "{label}: Euclidean large-metric PD speedup {now:.2}x below \
                 the {MIN_EUCLID_LARGE_PD_SPEEDUP}x floor (baseline {base:.2}x)"
            ));
        }
        if key == "huge.speedup" && now < MIN_HUGE_PD_SPEEDUP {
            errors.push(format!(
                "{label}: huge-metric PD speedup over the frozen PR 5 path \
                 {now:.2}x below the {MIN_HUGE_PD_SPEEDUP}x floor (baseline {base:.2}x)"
            ));
        }
        if key.ends_with("nodes_expanded") && now != base {
            errors.push(format!(
                "{label}: '{key}' = {now} nodes vs committed {base} — the \
                 branch-and-bound explored a different tree (node counts are \
                 a deterministic function of the instance and the bound, \
                 never of the machine or thread count)"
            ));
        }
        if key.ends_with("gap_certified") && now != base {
            errors.push(format!(
                "{label}: '{key}' = {now} vs committed {base} — a certified \
                 gap drifted (0.0 means proven optimal; any other value \
                 means the certificate was lost)"
            ));
        }
        if key.ends_with("digest_match") && now != 1.0 {
            errors.push(format!(
                "{label}: '{key}' results diverged across thread configs — \
                 a deterministic pipeline (serve aggregate reports, or the \
                 exact branch-and-bound frontier) lost thread-count \
                 independence (this gate is machine-independent; the \
                 'faulted.' variant gates healthy-tenant identity under an \
                 injected panic)"
            ));
        }
        if key == "faulted.quarantined" && now != base {
            errors.push(format!(
                "{label}: the injected-fault panel quarantined {now} tenants \
                 (baseline {base}) — fault containment drifted"
            ));
        }
        if key == "arrivals_per_sec" && base > 0.0 {
            let ratio = base / now.max(1e-12);
            let wall_gated = c_nums
                .get("serve_secs.mean")
                .is_some_and(|&w| w >= MIN_GATED_SECS);
            if ratio > REGRESSION_FACTOR && wall_gated {
                errors.push(format!(
                    "{label}: serve throughput fell {ratio:.2}x \
                     ({base:.0} -> {now:.0} arrivals/sec)"
                ));
            } else {
                notes.push(format!(
                    "{label}: serve throughput {:.2}x of baseline ({now:.0} arrivals/sec)",
                    now / base
                ));
            }
        }
        if key.ends_with("block_skip_rate") && now < MIN_BLOCK_SKIP_RATE {
            errors.push(format!(
                "{label}: '{key}' = {:.1}% below the {:.0}% floor (baseline \
                 {:.1}%) — the opening-target prune stopped engaging",
                100.0 * now,
                100.0 * MIN_BLOCK_SKIP_RATE,
                100.0 * base
            ));
        }
    }
    if errors.is_empty() {
        Ok(notes)
    } else {
        Err(errors)
    }
}

/// The smoke profile both `--emit-json` and `--check-json` run: PD hot
/// path, catalog sweep timings, the multi-tenant serve loop, and the
/// certified exact-OPT cells. Returns `(BENCH_pd.json, BENCH_sweep.json,
/// BENCH_serve.json, BENCH_opt.json)` contents.
pub fn smoke_profile_json() -> Result<(String, String, String, String), CoreError> {
    let pd = pd_bench(&pd_profile(), 5)?;
    let large = pd_large_bench(&pd_large_profile(), 3)?;
    let euclid_large = pd_euclid_large_bench(&pd_euclid_large_profile(), 3)?;
    let huge = pd_huge_bench(&pd_huge_profile(), 3)?;
    let pd_doc = pd_json(&pd, &large, &euclid_large, &huge);
    // Cells are timed serially: under a parallel sweep, co-scheduled cells
    // contend for cores and per-cell wall-clock becomes too noisy to gate
    // the regression factor on.
    let sweep_doc = sweep_json(&sweep_profile(), 2020, 3, 1)?;
    let (tenants, profile) = serve_profile();
    let serve_doc = serve_json(&serve_bench(tenants, &profile, 3)?);
    let opt_cells = OPT_FAMILIES
        .iter()
        .map(|name| opt_bench(name, &opt_profile()))
        .collect::<Result<Vec<_>, _>>()?;
    let opt_doc = opt_json(&opt_cells, &opt_profile());
    Ok((pd_doc, sweep_doc, serve_doc, opt_doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_pd_json_round_trips() {
        let profile = CatalogProfile {
            points: 8,
            services: 8,
            requests: 64,
        };
        let b = pd_bench(&profile, 2).unwrap();
        let large = pd_large_bench(&profile, 2).unwrap();
        let euclid = pd_euclid_large_bench(&profile, 2).unwrap();
        let huge = pd_huge_bench(&profile, 2).unwrap();
        let doc = pd_json(&b, &large, &euclid, &huge);
        let (nums, strs) = parse_flat(&doc).unwrap();
        assert_eq!(strs["family"], "zipf-services");
        assert_eq!(nums["requests"], 64.0);
        assert!(nums["indexed_secs.mean"] > 0.0);
        assert!(nums["naive_secs.mean"] > 0.0);
        assert!(nums.contains_key("indexed_secs.std"));
        assert!(nums.contains_key("speedup"));
        assert_eq!(strs["large.family"], "zipf-services-large");
        assert_eq!(nums["large.points"], 256.0); // 8 × 32 scale
        assert!(nums["large.incremental_secs.mean"] > 0.0);
        assert!(nums["large.scan_secs.mean"] > 0.0);
        assert!(nums.contains_key("large.speedup"));
        assert!(nums.contains_key("large.block_skip_rate"));
        assert_eq!(strs["euclid-large.family"], "euclid-grid-large");
        assert_eq!(nums["euclid-large.points"], 529.0); // 8 × 64 ≈ 23×23 grid
        assert!(nums["euclid-large.incremental_secs.mean"] > 0.0);
        assert!(nums.contains_key("euclid-large.speedup"));
        assert!(nums.contains_key("euclid-large.block_skip_rate"));
        assert_eq!(strs["huge.family"], "euclid-grid-large");
        assert!(nums["huge.current_secs.mean"] > 0.0);
        assert!(nums["huge.reference_secs.mean"] > 0.0);
        assert!(nums.contains_key("huge.speedup"));
        assert!(nums.contains_key("huge.block_skip_rate"));
    }

    #[test]
    fn emitted_sweep_json_round_trips() {
        let doc = sweep_json(
            &CatalogProfile {
                points: 8,
                services: 8,
                requests: 16,
            },
            7,
            1,
            2,
        )
        .unwrap();
        let (nums, _) = parse_flat(&doc).unwrap();
        assert!(nums["sweep_wall_secs"] > 0.0);
        // 8 families × 4 engines, each with a 4-field summary.
        assert!(nums.keys().any(|k| k == "pd-omflp/zipf-services.secs.mean"));
        assert!(nums.keys().any(|k| k == "all-large/dyadic-mix.secs.max"));
    }

    #[test]
    fn check_flags_missing_keys_and_regressions() {
        let base = r#"{ "a": { "secs": { "mean": 1.0 } }, "speedup": 4.0 }"#;
        // Identical: passes.
        assert!(check(base, base, "t").is_ok());
        // 3x slower: regression.
        let slow = r#"{ "a": { "secs": { "mean": 3.0 } }, "speedup": 4.0 }"#;
        let errs = check(slow, base, "t").unwrap_err();
        assert!(errs[0].contains("regressed"));
        // 1.6x slower on a >= 1 ms baseline: the tightened gate fires too.
        let slow16 = r#"{ "a": { "secs": { "mean": 1.6 } }, "speedup": 4.0 }"#;
        let errs = check(slow16, base, "t").unwrap_err();
        assert!(errs[0].contains("regressed"), "1.5x gate must fire at 1.6x");
        // 1.4x stays within the tightened tolerance.
        let ok14 = r#"{ "a": { "secs": { "mean": 1.4 } }, "speedup": 4.0 }"#;
        assert!(check(ok14, base, "t").is_ok());
        // Sub-millisecond baselines stay ungated however noisy.
        let sub = r#"{ "a": { "secs": { "mean": 0.0005 } }, "speedup": 4.0 }"#;
        let noisy = r#"{ "a": { "secs": { "mean": 0.005 } }, "speedup": 4.0 }"#;
        assert!(check(noisy, sub, "t").is_ok());
        // Missing key: fails.
        let missing = r#"{ "speedup": 4.0 }"#;
        let errs = check(missing, base, "t").unwrap_err();
        assert!(errs[0].contains("missing"));
        // Speedup collapse: fails.
        let collapsed = r#"{ "a": { "secs": { "mean": 1.0 } }, "speedup": 1.1 }"#;
        let errs = check(collapsed, base, "t").unwrap_err();
        assert!(errs[0].contains("below"));
        // Large-metric speedup has its own floor.
        let base_l = r#"{ "large": { "speedup": 3.2 } }"#;
        let sagged = r#"{ "large": { "speedup": 2.0 } }"#;
        let errs = check(sagged, base_l, "t").unwrap_err();
        assert!(errs[0].contains("large-metric"));
        let fine = r#"{ "large": { "speedup": 2.8 } }"#;
        assert!(check(fine, base_l, "t").is_ok());
        // The Euclidean large cell has its own (lower) floor.
        let base_e = r#"{ "euclid-large": { "speedup": 2.8 } }"#;
        let sagged_e = r#"{ "euclid-large": { "speedup": 1.8 } }"#;
        let errs = check(sagged_e, base_e, "t").unwrap_err();
        assert!(errs[0].contains("Euclidean"));
        let fine_e = r#"{ "euclid-large": { "speedup": 2.2 } }"#;
        assert!(check(fine_e, base_e, "t").is_ok());
        // The huge current-vs-PR 5 cell has its own floor.
        let base_h = r#"{ "huge": { "speedup": 2.6 } }"#;
        let sagged_h = r#"{ "huge": { "speedup": 1.2 } }"#;
        let errs = check(sagged_h, base_h, "t").unwrap_err();
        assert!(errs[0].contains("frozen PR 5"));
        let fine_h = r#"{ "huge": { "speedup": 2.0 } }"#;
        assert!(check(fine_h, base_h, "t").is_ok());
        // Block skip rates are deterministic and hard-gated.
        let base_s = r#"{ "large": { "block_skip_rate": 0.77 } }"#;
        let inert = r#"{ "large": { "block_skip_rate": 0.31 } }"#;
        let errs = check(inert, base_s, "t").unwrap_err();
        assert!(errs[0].contains("stopped engaging"));
        let engaged = r#"{ "large": { "block_skip_rate": 0.72 } }"#;
        assert!(check(engaged, base_s, "t").is_ok());
    }

    #[test]
    fn emitted_serve_json_round_trips() {
        let profile = CatalogProfile {
            points: 12,
            services: 8,
            requests: 48,
        };
        let b = serve_bench(3, &profile, 2).unwrap();
        assert!(b.digest_match, "tiny serve bench must be deterministic");
        assert_eq!(
            b.faulted_quarantined, 1,
            "the plan panics exactly one tenant"
        );
        assert!(
            b.faulted_digest_match,
            "healthy tenants must be bit-identical under the injected panic"
        );
        let doc = serve_json(&b);
        let (nums, strs) = parse_flat(&doc).unwrap();
        assert_eq!(strs["family"], "zipf-services");
        assert_eq!(nums["tenants"], 3.0);
        assert_eq!(nums["arrivals"], 144.0);
        assert_eq!(nums["digest_match"], 1.0);
        assert_eq!(nums["faulted.quarantined"], 1.0);
        assert_eq!(nums["faulted.digest_match"], 1.0);
        assert!(nums["serve_secs.mean"] > 0.0);
        assert!(nums["arrivals_per_sec"] > 0.0);
        assert!(nums.contains_key("latency_p50_ns"));
        assert!(nums.contains_key("latency_p99_ns"));
        assert!(nums.contains_key("backpressure_waits"));
    }

    #[test]
    fn check_gates_serve_determinism_and_throughput() {
        // A digest mismatch fails regardless of every timing.
        let base = r#"{ "digest_match": 1.0, "serve_secs": { "mean": 0.02 }, "arrivals_per_sec": 2000000.0 }"#;
        let diverged = r#"{ "digest_match": 0.0, "serve_secs": { "mean": 0.02 }, "arrivals_per_sec": 2000000.0 }"#;
        let errs = check(diverged, base, "t").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("lost")), "{errs:?}");
        // Throughput collapse beyond the factor fails on a >= 1 ms cell.
        let slow = r#"{ "digest_match": 1.0, "serve_secs": { "mean": 0.04 }, "arrivals_per_sec": 1000000.0 }"#;
        let errs = check(slow, base, "t").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("throughput")), "{errs:?}");
        // A mild dip stays a note, not an error.
        let mild = r#"{ "digest_match": 1.0, "serve_secs": { "mean": 0.025 }, "arrivals_per_sec": 1600000.0 }"#;
        assert!(check(mild, base, "t").is_ok());
        // Sub-millisecond serve cells exempt the throughput ratio too.
        let sub_base = r#"{ "digest_match": 1.0, "serve_secs": { "mean": 0.0005 }, "arrivals_per_sec": 2000000.0 }"#;
        let sub_noisy = r#"{ "digest_match": 1.0, "serve_secs": { "mean": 0.0005 }, "arrivals_per_sec": 200000.0 }"#;
        assert!(check(sub_noisy, sub_base, "t").is_ok());
    }

    #[test]
    fn check_gates_the_faulted_cell() {
        let base = r#"{ "faulted": { "quarantined": 1, "digest_match": 1.0 } }"#;
        // Healthy-tenant divergence under faults is a hard failure.
        let diverged = r#"{ "faulted": { "quarantined": 1, "digest_match": 0.0 } }"#;
        let errs = check(diverged, base, "t").unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("faulted.digest_match")),
            "{errs:?}"
        );
        // So is a drifting quarantine count (containment over- or
        // under-firing is machine-independent).
        let drifted = r#"{ "faulted": { "quarantined": 2, "digest_match": 1.0 } }"#;
        let errs = check(drifted, base, "t").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("containment")), "{errs:?}");
        let same = r#"{ "faulted": { "quarantined": 1, "digest_match": 1.0 } }"#;
        assert!(check(same, base, "t").is_ok());
    }

    #[test]
    fn emitted_opt_json_round_trips() {
        // Tiny profile: the emitter shape and the determinism panel are
        // what's under test, not the |M| = 200 scale (the smoke profile
        // covers that in release).
        let profile = CatalogProfile {
            points: 16,
            services: 4,
            requests: 12,
        };
        let cells: Vec<OptBench> = ["zipf-services", "tree-hierarchy"]
            .iter()
            .map(|name| opt_bench(name, &profile).unwrap())
            .collect();
        for c in &cells {
            assert!(
                c.digest_match,
                "{}: frontier must be thread-independent",
                c.family
            );
            assert_eq!(c.gap_certified, 0.0, "{}", c.family);
            assert!(c.optimum > 0.0, "{}", c.family);
        }
        let doc = opt_json(&cells, &profile);
        let (nums, _) = parse_flat(&doc).unwrap();
        assert_eq!(nums["services"], 4.0);
        assert_eq!(nums["node_budget"], OPT_NODE_BUDGET as f64);
        for c in &cells {
            let fam = c.family;
            assert_eq!(
                nums[&format!("{fam}.nodes_expanded")],
                c.nodes_expanded as f64
            );
            assert_eq!(nums[&format!("{fam}.gap_certified")], 0.0);
            assert_eq!(nums[&format!("{fam}.digest_match")], 1.0);
            assert!(nums[&format!("{fam}.optimum")] > 0.0);
            assert!(nums.contains_key(&format!("{fam}.solve_secs.mean")));
        }
    }

    #[test]
    fn check_gates_opt_nodes_and_certified_gaps() {
        let base = r#"{ "zipf-services": { "nodes_expanded": 271, "gap_certified": 0.000000000, "digest_match": 1.0 } }"#;
        assert!(check(base, base, "t").is_ok());
        // A different tree is a hard failure even if everything else holds.
        let drifted = r#"{ "zipf-services": { "nodes_expanded": 290, "gap_certified": 0.000000000, "digest_match": 1.0 } }"#;
        let errs = check(drifted, base, "t").unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("different tree")),
            "{errs:?}"
        );
        // Losing the optimality certificate fails.
        let uncertified = r#"{ "zipf-services": { "nodes_expanded": 271, "gap_certified": 0.031400000, "digest_match": 1.0 } }"#;
        let errs = check(uncertified, base, "t").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("certificate")), "{errs:?}");
        // Thread-count divergence reuses the digest_match hard gate.
        let diverged = r#"{ "zipf-services": { "nodes_expanded": 271, "gap_certified": 0.000000000, "digest_match": 0.0 } }"#;
        let errs = check(diverged, base, "t").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("thread")), "{errs:?}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_flat("{").is_err());
        assert!(parse_flat(r#"{ "a": }"#).is_err());
        assert!(parse_flat(r#"{ "a": 1 } trailing"#).is_err());
        assert!(parse_flat(r#"{ "a": "b\"c" }"#).is_err());
    }
}
