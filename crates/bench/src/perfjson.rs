//! The `--emit-json` perf-regression path: machine-readable benchmark
//! baselines in `BENCH_pd.json` / `BENCH_sweep.json`.
//!
//! The ROADMAP's "measurably faster" PRs need numbers to beat; this module
//! produces them. Two artifacts:
//!
//! * **`BENCH_pd.json`** — the PD serve hot path on the `zipf-services`
//!   family at 4096 requests, indexed engine vs the retained linear-scan
//!   reference (`omfl_core::naive::NaivePd`), with the speedup ratio the
//!   index layer buys;
//! * **`BENCH_sweep.json`** — per (engine × family) serve wall-clock
//!   (mean/min/max over trials) for the whole catalog under the
//!   work-stealing sweep.
//!
//! The committed files at the repo root are the baseline; CI re-runs the
//! smoke profile and [`check`]s the fresh numbers against them: missing
//! keys fail, a `secs.mean` with a baseline of at least [`MIN_GATED_SECS`]
//! regressing by more than [`REGRESSION_FACTOR`] fails, and the PD speedup
//! dropping below [`MIN_PD_SPEEDUP`] fails. Wall-clock comparisons across
//! machines are inherently noisy — hence the 2× factor, the sub-millisecond
//! exemption, and the emphasis on the machine-independent *ratio*.
//!
//! JSON is written and parsed by hand (the workspace vendors no serde): the
//! emitter produces a two-level object tree of numbers/strings, and the
//! parser below reads exactly that shape back as flattened dotted keys.

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::naive::NaivePd;
use omfl_core::pd::PdOmflp;
use omfl_core::CoreError;
use omfl_par::{summarize, Summary};
use omfl_sim::sweep::timed_sweep;
use omfl_sim::Engine;
use omfl_workload::catalog::{self, CatalogProfile};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Fresh `secs.mean` may be at most this factor above the committed
/// baseline before the check fails.
pub const REGRESSION_FACTOR: f64 = 2.0;

/// Absolute-seconds regression gating only applies to keys whose committed
/// baseline is at least this long. Sub-millisecond cells (the per-family
/// sweep timings) jitter far beyond 2× between a dev box and a shared CI
/// runner — for those the check verifies key presence and reports the ratio
/// as a note instead of failing the job; the machine-independent `speedup`
/// ratio and the millisecond-scale PD/sweep-wall means stay hard-gated.
pub const MIN_GATED_SECS: f64 = 1e-3;

/// The indexed-vs-naive PD speedup must stay at least this high. The
/// acceptance bar when the index landed was 3×; CI machines are slower and
/// noisier than the dev box, so the hard floor leaves headroom.
pub const MIN_PD_SPEEDUP: f64 = 2.0;

/// The PD hot-path bench profile: `zipf-services` at 4096 requests with a
/// service-heavy shape — the regime the index layer targets, where the
/// naive path's per-request facility scans and history re-walks dominate.
pub fn pd_profile() -> CatalogProfile {
    CatalogProfile {
        points: 48,
        services: 64,
        requests: 4096,
    }
}

/// The sweep smoke profile: small enough for CI, large enough that per-cell
/// times are above timer noise.
pub fn sweep_profile() -> CatalogProfile {
    CatalogProfile::default()
}

/// PD hot-path measurement: indexed vs linear-scan reference.
#[derive(Debug, Clone)]
pub struct PdBench {
    /// Workload family name.
    pub family: &'static str,
    /// Requests served per run.
    pub requests: usize,
    /// Metric size / commodity count of the profile.
    pub points: usize,
    /// Commodity count.
    pub services: u16,
    /// Indexed engine wall-clock seconds over the repeats.
    pub indexed: Summary,
    /// Linear-scan reference wall-clock seconds.
    pub naive: Summary,
}

impl PdBench {
    /// `naive.mean / indexed.mean` — what the index layer buys.
    pub fn speedup(&self) -> f64 {
        self.naive.mean / self.indexed.mean
    }
}

/// Times the PD serve hot path (indexed and naive) on `zipf-services`.
///
/// One untimed warm-up pair runs first — the very first run pays allocator
/// and page-fault warm-up that would otherwise skew a small repeat count.
pub fn pd_bench(profile: &CatalogProfile, repeats: usize) -> Result<PdBench, CoreError> {
    let family = catalog::by_name("zipf-services").expect("catalog family");
    let scenario = family.build(profile, 0x0B5E55ED)?;
    let inst = scenario.instance();

    {
        let mut warm_fast = PdOmflp::new(inst);
        let mut warm_slow = NaivePd::new(inst);
        for r in &scenario.requests {
            warm_fast.serve(r)?;
            warm_slow.serve(r)?;
        }
    }

    let mut indexed = Vec::with_capacity(repeats);
    let mut naive = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut fast = PdOmflp::new(inst);
        for r in &scenario.requests {
            fast.serve(r)?;
        }
        indexed.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let mut slow = NaivePd::new(inst);
        for r in &scenario.requests {
            slow.serve(r)?;
        }
        naive.push(t0.elapsed().as_secs_f64());

        // Timing a divergent run would be meaningless; the differential
        // suite proves this in depth, the bench just refuses to lie.
        assert_eq!(
            fast.solution().total_cost().to_bits(),
            slow.solution().total_cost().to_bits(),
            "indexed and naive PD diverged — bench numbers would be invalid"
        );
    }
    Ok(PdBench {
        family: family.name,
        requests: scenario.len(),
        points: profile.points,
        services: profile.services,
        indexed: summarize(&indexed),
        naive: summarize(&naive),
    })
}

fn summary_json(out: &mut String, key: &str, s: &Summary, indent: &str) {
    let _ = write!(
        out,
        "{indent}\"{key}\": {{ \"n\": {}, \"mean\": {:.9}, \"min\": {:.9}, \"max\": {:.9} }}",
        s.n, s.mean, s.min, s.max
    );
}

/// Renders `BENCH_pd.json`.
pub fn pd_json(b: &PdBench) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"family\": \"{}\",", b.family);
    let _ = writeln!(out, "  \"requests\": {},", b.requests);
    let _ = writeln!(out, "  \"points\": {},", b.points);
    let _ = writeln!(out, "  \"services\": {},", b.services);
    summary_json(&mut out, "indexed_secs", &b.indexed, "  ");
    out.push_str(",\n");
    summary_json(&mut out, "naive_secs", &b.naive, "  ");
    out.push_str(",\n");
    let _ = writeln!(out, "  \"speedup\": {:.4}", b.speedup());
    out.push_str("}\n");
    out
}

/// Times every catalog family × engine and renders `BENCH_sweep.json`.
pub fn sweep_json(
    profile: &CatalogProfile,
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<String, CoreError> {
    let families = catalog::registry();
    let engines = Engine::all(omfl_par::seed_for(base_seed, u64::MAX));
    let t0 = Instant::now();
    let cells = timed_sweep(&families, profile, &engines, base_seed, trials, threads)?;
    let wall = t0.elapsed().as_secs_f64();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"trials\": {trials},");
    let _ = writeln!(out, "  \"points\": {},", profile.points);
    let _ = writeln!(out, "  \"services\": {},", profile.services);
    let _ = writeln!(out, "  \"requests\": {},", profile.requests);
    let _ = writeln!(out, "  \"sweep_wall_secs\": {wall:.9},");
    let mut first = true;
    for engine in &engines {
        for fam in &families {
            let secs: Vec<f64> = cells
                .iter()
                .filter(|c| c.family == fam.name && c.engine == engine.name())
                .map(|c| c.secs)
                .collect();
            if secs.is_empty() {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let key = format!("{}/{}", engine.name(), fam.name);
            let mut obj = String::new();
            summary_json(&mut obj, "secs", &summarize(&secs), "");
            let _ = write!(out, "  \"{key}\": {{ {} }}", obj.trim_start());
        }
    }
    out.push_str("\n}\n");
    Ok(out)
}

// --- minimal JSON reading (the emitter's shape only) ----------------------

/// Flattened dotted-key views of a parsed document: numbers and strings.
pub type FlatJson = (BTreeMap<String, f64>, BTreeMap<String, String>);

/// Parses the subset of JSON the emitters above produce — objects, strings,
/// and numbers — into flattened `"a.b.c" → value` maps. Numbers land in the
/// first map, strings in the second.
pub fn parse_flat(text: &str) -> Result<FlatJson, String> {
    let mut nums = BTreeMap::new();
    let mut strs = BTreeMap::new();
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    parse_object(&chars, &mut pos, "", &mut nums, &mut strs)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok((nums, strs))
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(c: &[char], pos: &mut usize, ch: char) -> Result<(), String> {
    skip_ws(c, pos);
    if *pos < c.len() && c[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{ch}' at offset {pos}", pos = *pos))
    }
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    expect(c, pos, '"')?;
    let mut s = String::new();
    while *pos < c.len() && c[*pos] != '"' {
        // The emitter never escapes anything; reject rather than mis-parse.
        if c[*pos] == '\\' {
            return Err("escape sequences are not supported".into());
        }
        s.push(c[*pos]);
        *pos += 1;
    }
    expect(c, pos, '"')?;
    Ok(s)
}

fn parse_object(
    c: &[char],
    pos: &mut usize,
    prefix: &str,
    nums: &mut BTreeMap<String, f64>,
    strs: &mut BTreeMap<String, String>,
) -> Result<(), String> {
    expect(c, pos, '{')?;
    skip_ws(c, pos);
    if *pos < c.len() && c[*pos] == '}' {
        *pos += 1;
        return Ok(());
    }
    loop {
        let key = parse_string(c, pos)?;
        let full = if prefix.is_empty() {
            key
        } else {
            format!("{prefix}.{key}")
        };
        expect(c, pos, ':')?;
        skip_ws(c, pos);
        match c.get(*pos) {
            Some('{') => parse_object(c, pos, &full, nums, strs)?,
            Some('"') => {
                let v = parse_string(c, pos)?;
                strs.insert(full, v);
            }
            Some(_) => {
                let start = *pos;
                while *pos < c.len()
                    && !matches!(c[*pos], ',' | '}' | ']')
                    && !c[*pos].is_whitespace()
                {
                    *pos += 1;
                }
                let raw: String = c[start..*pos].iter().collect();
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad number '{raw}' for key {full}"))?;
                nums.insert(full, v);
            }
            None => return Err("unexpected end of input".into()),
        }
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => {
                *pos += 1;
                skip_ws(c, pos);
            }
            Some('}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

/// Compares a freshly generated JSON document against a committed baseline.
///
/// Failure modes, in the order they are reported:
/// * a key present in the baseline but missing from the fresh run;
/// * a fresh `*.secs.mean` / `*_secs.mean` more than [`REGRESSION_FACTOR`]
///   above the committed value;
/// * a fresh `speedup` below [`MIN_PD_SPEEDUP`].
pub fn check(fresh: &str, committed: &str, label: &str) -> Result<Vec<String>, Vec<String>> {
    let (f_nums, f_strs) =
        parse_flat(fresh).map_err(|e| vec![format!("{label}: fresh JSON unreadable: {e}")])?;
    let (c_nums, c_strs) = parse_flat(committed)
        .map_err(|e| vec![format!("{label}: committed JSON unreadable: {e}")])?;

    let mut errors = Vec::new();
    let mut notes = Vec::new();
    for key in c_nums.keys() {
        if !f_nums.contains_key(key) {
            errors.push(format!("{label}: key '{key}' missing from fresh run"));
        }
    }
    for key in c_strs.keys() {
        if !f_strs.contains_key(key) {
            errors.push(format!("{label}: key '{key}' missing from fresh run"));
        }
    }
    for (key, &base) in &c_nums {
        let Some(&now) = f_nums.get(key) else {
            continue;
        };
        if key.ends_with("secs.mean") && base > 0.0 {
            let ratio = now / base;
            if ratio > REGRESSION_FACTOR && base >= MIN_GATED_SECS {
                errors.push(format!(
                    "{label}: '{key}' regressed {ratio:.2}x ({base:.6}s -> {now:.6}s)"
                ));
            } else {
                let gated = if base >= MIN_GATED_SECS {
                    ""
                } else {
                    " (ungated: sub-ms baseline)"
                };
                notes.push(format!("{label}: '{key}' {ratio:.2}x of baseline{gated}"));
            }
        }
        if key == "speedup" && now < MIN_PD_SPEEDUP {
            errors.push(format!(
                "{label}: PD index speedup {now:.2}x below the {MIN_PD_SPEEDUP}x floor \
                 (baseline {base:.2}x)"
            ));
        }
    }
    if errors.is_empty() {
        Ok(notes)
    } else {
        Err(errors)
    }
}

/// The smoke profile both `--emit-json` and `--check-json` run: PD hot path
/// plus catalog sweep timings. Returns `(BENCH_pd.json, BENCH_sweep.json)`
/// contents.
pub fn smoke_profile_json() -> Result<(String, String), CoreError> {
    let pd = pd_bench(&pd_profile(), 5)?;
    let pd_doc = pd_json(&pd);
    // Cells are timed serially: under a parallel sweep, co-scheduled cells
    // contend for cores and per-cell wall-clock becomes too noisy to gate a
    // 2x regression check on.
    let sweep_doc = sweep_json(&sweep_profile(), 2020, 3, 1)?;
    Ok((pd_doc, sweep_doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_pd_json_round_trips() {
        let b = pd_bench(
            &CatalogProfile {
                points: 8,
                services: 8,
                requests: 64,
            },
            2,
        )
        .unwrap();
        let doc = pd_json(&b);
        let (nums, strs) = parse_flat(&doc).unwrap();
        assert_eq!(strs["family"], "zipf-services");
        assert_eq!(nums["requests"], 64.0);
        assert!(nums["indexed_secs.mean"] > 0.0);
        assert!(nums["naive_secs.mean"] > 0.0);
        assert!(nums.contains_key("speedup"));
    }

    #[test]
    fn emitted_sweep_json_round_trips() {
        let doc = sweep_json(
            &CatalogProfile {
                points: 8,
                services: 8,
                requests: 16,
            },
            7,
            1,
            2,
        )
        .unwrap();
        let (nums, _) = parse_flat(&doc).unwrap();
        assert!(nums["sweep_wall_secs"] > 0.0);
        // 8 families × 4 engines, each with a 4-field summary.
        assert!(nums.keys().any(|k| k == "pd-omflp/zipf-services.secs.mean"));
        assert!(nums.keys().any(|k| k == "all-large/dyadic-mix.secs.max"));
    }

    #[test]
    fn check_flags_missing_keys_and_regressions() {
        let base = r#"{ "a": { "secs": { "mean": 1.0 } }, "speedup": 4.0 }"#;
        // Identical: passes.
        assert!(check(base, base, "t").is_ok());
        // 3x slower: regression.
        let slow = r#"{ "a": { "secs": { "mean": 3.0 } }, "speedup": 4.0 }"#;
        let errs = check(slow, base, "t").unwrap_err();
        assert!(errs[0].contains("regressed"));
        // Missing key: fails.
        let missing = r#"{ "speedup": 4.0 }"#;
        let errs = check(missing, base, "t").unwrap_err();
        assert!(errs[0].contains("missing"));
        // Speedup collapse: fails.
        let collapsed = r#"{ "a": { "secs": { "mean": 1.0 } }, "speedup": 1.1 }"#;
        let errs = check(collapsed, base, "t").unwrap_err();
        assert!(errs[0].contains("below"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_flat("{").is_err());
        assert!(parse_flat(r#"{ "a": }"#).is_err());
        assert!(parse_flat(r#"{ "a": 1 } trailing"#).is_err());
        assert!(parse_flat(r#"{ "a": "b\"c" }"#).is_err());
    }
}
