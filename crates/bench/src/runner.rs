//! Shared measurement machinery: run algorithms over scenarios, estimate
//! expectations over trials, and bracket OPT.

use omfl_baselines::all_large::{AllLarge, AllLargeParts};
use omfl_baselines::offline::{
    serve_alone_lower_bound, DualLowerBound, ExactArm, GreedyOffline, LocalSearch, OptBracket,
};
use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl_core::algorithm::{run_online, OnlineAlgorithm};
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_par::{parallel_map, seed_for, summarize, Summary};
use omfl_workload::Scenario;
use std::sync::Arc;
use std::time::Instant;

/// Which algorithm to run over a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alg {
    /// PD-OMFLP (deterministic).
    Pd,
    /// RAND-OMFLP with a seed.
    Rand(u64),
    /// Per-commodity decomposition with deterministic PD engines.
    PerCommodityPd,
    /// Per-commodity decomposition with Meyerson engines.
    PerCommodityMeyerson(u64),
    /// Always-predict baseline (Fotakis engine on the collapsed instance).
    AllLargeDet,
}

impl Alg {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Alg::Pd => "pd",
            Alg::Rand(_) => "rand",
            Alg::PerCommodityPd => "per-com",
            Alg::PerCommodityMeyerson(_) => "per-com-mey",
            Alg::AllLargeDet => "all-large",
        }
    }
}

/// Runs one algorithm over a scenario, verifying feasibility; returns the
/// total cost. Panics on infeasibility — a broken run must never silently
/// enter a results table.
pub fn run_cost(scenario: &Scenario, alg: Alg) -> f64 {
    let inst = scenario.instance();
    let cost = match alg {
        Alg::Pd => {
            let mut a = PdOmflp::new(inst);
            let c = run_online(&mut a, &scenario.requests).expect("serve");
            a.solution().verify(inst).expect("feasible");
            c
        }
        Alg::Rand(seed) => {
            let mut a = RandOmflp::new(inst, seed);
            let c = run_online(&mut a, &scenario.requests).expect("serve");
            a.solution().verify(inst).expect("feasible");
            c
        }
        Alg::PerCommodityPd => {
            let parts =
                PerCommodityParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())
                    .expect("parts");
            let mut a = PerCommodity::new_pd(&parts);
            let c = run_online(&mut a, &scenario.requests).expect("serve");
            a.solution().verify(&parts.original).expect("feasible");
            c
        }
        Alg::PerCommodityMeyerson(seed) => {
            let parts =
                PerCommodityParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())
                    .expect("parts");
            let mut a = PerCommodity::new_meyerson(&parts, seed).expect("engines");
            let c = run_online(&mut a, &scenario.requests).expect("serve");
            a.solution().verify(&parts.original).expect("feasible");
            c
        }
        Alg::AllLargeDet => {
            let parts = AllLargeParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())
                .expect("parts");
            let mut a = AllLarge::new_fotakis(&parts).expect("engine");
            let c = run_online(&mut a, &scenario.requests).expect("serve");
            a.solution().verify(&parts.original).expect("feasible");
            c
        }
    };
    cost
}

/// Wall-clock of one full run (seconds) together with the cost.
pub fn run_timed(scenario: &Scenario, alg: Alg) -> (f64, f64) {
    let t0 = Instant::now();
    let cost = run_cost(scenario, alg);
    (cost, t0.elapsed().as_secs_f64())
}

/// Monte-Carlo estimate over `trials` scenario seeds: `make(seed)` builds
/// the (possibly random) scenario, `alg(seed)` selects the algorithm for
/// that trial. Trials run in parallel with deterministic per-trial seeds.
pub fn trial_summary<F, G>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    make: F,
    alg: G,
) -> Summary
where
    F: Fn(u64) -> Scenario + Sync,
    G: Fn(u64) -> Alg + Sync,
{
    let idx: Vec<u64> = (0..trials as u64).collect();
    let costs = parallel_map(&idx, threads, |_, &t| {
        let seed = seed_for(base_seed, t);
        let sc = make(seed);
        run_cost(&sc, alg(seed))
    });
    summarize(&costs)
}

/// Like [`trial_summary`] but for cost *ratios* against a per-trial OPT
/// value provided by `opt`.
pub fn ratio_summary<F, G, H>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    make: F,
    alg: G,
    opt: H,
) -> Summary
where
    F: Fn(u64) -> Scenario + Sync,
    G: Fn(u64) -> Alg + Sync,
    H: Fn(&Scenario) -> f64 + Sync,
{
    let idx: Vec<u64> = (0..trials as u64).collect();
    let ratios = parallel_map(&idx, threads, |_, &t| {
        let seed = seed_for(base_seed, t);
        let sc = make(seed);
        let o = opt(&sc);
        assert!(o > 0.0, "OPT reference must be positive");
        run_cost(&sc, alg(seed)) / o
    });
    summarize(&ratios)
}

/// OPT bracket with a size guard: the local-search tightening only runs on
/// instances small enough for the exact-assignment recomputation.
pub fn bracket(scenario: &Scenario) -> OptBracket {
    let inst = scenario.instance();
    let reqs = &scenario.requests;
    let dual = DualLowerBound::compute(inst, reqs).expect("dual LB");
    let alone = serve_alone_lower_bound(inst, reqs).expect("serve-alone LB");
    let greedy = GreedyOffline::new().solve(inst, reqs).expect("greedy");
    let mut upper = greedy.total_cost();
    if reqs.len() <= 128 && greedy.facilities().len() <= 24 {
        let ls = LocalSearch::new()
            .improve(inst, &greedy, reqs)
            .expect("local search");
        upper = upper.min(ls.total_cost());
    }
    // The exact arm stays out of the bench bracket on purpose: it is a
    // timing reference, and the sweep's `ratio_exact` column is where
    // certified optima are reported.
    OptBracket {
        lower: dual.max(alone).min(upper),
        upper,
        exact: ExactArm::Skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::cost::CostModel;
    use omfl_workload::composite::uniform_line;
    use omfl_workload::demand::DemandModel;

    fn scenario(seed: u64) -> Scenario {
        uniform_line(
            8,
            10.0,
            20,
            DemandModel::UniformK { k: 2 },
            CostModel::power(6, 1.0, 2.0),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn run_cost_all_algorithms() {
        let sc = scenario(1);
        for alg in [
            Alg::Pd,
            Alg::Rand(3),
            Alg::PerCommodityPd,
            Alg::PerCommodityMeyerson(3),
            Alg::AllLargeDet,
        ] {
            let c = run_cost(&sc, alg);
            assert!(c > 0.0, "{}", alg.name());
        }
    }

    #[test]
    fn bracket_orders_and_pd_within_bounds() {
        let sc = scenario(2);
        let b = bracket(&sc);
        assert!(b.lower > 0.0);
        assert!(b.lower <= b.upper + 1e-9);
        let pd = run_cost(&sc, Alg::Pd);
        // The online cost must be at least the lower bound on OPT (it is a
        // feasible solution), sanity-checking the whole pipeline.
        assert!(pd >= b.lower - 1e-9);
    }

    #[test]
    fn trial_summary_deterministic() {
        let a = trial_summary(4, 7, 2, scenario, Alg::Rand);
        let b = trial_summary(4, 7, 4, scenario, Alg::Rand);
        assert_eq!(a, b, "thread count must not change results");
    }

    #[test]
    fn run_timed_returns_positive_duration() {
        let sc = scenario(3);
        let (c, t) = run_timed(&sc, Alg::Pd);
        assert!(c > 0.0);
        assert!(t >= 0.0);
    }
}
