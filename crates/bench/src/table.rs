//! Aligned text tables with CSV export.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A result table: title, header row, data rows, free-form notes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the grid).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed under the grid.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row of display-formatted cells.
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a pre-formatted row.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders to an aligned text grid.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// CSV form (headers + rows; notes become `# comment` lines).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `dir/<slug>.csv` (slug from the title).
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let path = dir.join(format!("{slug}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float compactly for tables (3 significant-ish decimals).
pub fn fmt(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else if a >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(&["1", "10"]);
        t.row(&["100", "2"]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("note: a note"));
        // Right-aligned numbers line up under the widest cell.
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.row(&["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("omfl-table-test");
        let mut t = Table::new("Save Me 42", &["a"]);
        t.row(&["1"]);
        let p = t.save_csv(&dir).unwrap();
        assert!(p.exists());
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.starts_with("a\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.23456), "1.235");
        assert!(fmt(0.0001).contains('e'));
        assert_eq!(fmt(f64::INFINITY), "inf");
    }
}
