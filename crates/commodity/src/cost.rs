//! Construction cost functions `f^σ_m`.
//!
//! The paper's general analysis only assumes subadditivity plus
//! **Condition 1**: `f^σ_m / |σ| ≥ f^S_m / |S|` — the per-commodity cost is
//! minimal when offering all of `S` (§1.1). The refined bounds of §3.3 use
//! the class `C = { g_x(|σ|) = |σ|^{x/2} : x ∈ [0,2] }`, and the Theorem 2
//! lower bound uses `g(|σ|) = ⌈|σ| / √|S|⌉`.
//!
//! [`CostModel`] is a concrete, cloneable enum covering every function used
//! in the paper plus the practically-motivated affine model and an arbitrary
//! per-(location, subset) table; [`FacilityCostFn`] is the object-safe trait
//! the algorithms consume.

use crate::{CommodityError, CommodityId, CommoditySet, Universe};

/// A construction cost function `f^σ_m`: the cost of opening a facility at
/// location `m` (an index into the metric space) offering configuration `σ`.
///
/// Implementations must return finite, non-negative values, `0` for the
/// empty configuration, and strictly positive values for non-empty
/// configurations.
pub trait FacilityCostFn: Send + Sync {
    /// Size of the commodity universe this function is defined over.
    fn universe(&self) -> Universe;

    /// `f^σ_m` for configuration `config` at location `location`.
    fn cost(&self, location: usize, config: &CommoditySet) -> f64;

    /// `f^{e}_m`, the cost of a *small* facility (single commodity).
    ///
    /// Default goes through [`FacilityCostFn::cost`]; implementations with a
    /// cheaper path may override.
    fn singleton_cost(&self, location: usize, e: CommodityId) -> f64 {
        let s = CommoditySet::singleton(self.universe(), e)
            .expect("commodity id in range for the universe");
        self.cost(location, &s)
    }

    /// `f^{S}_m`, the cost of a *large* facility (all commodities).
    fn full_cost(&self, location: usize) -> f64 {
        self.cost(location, &CommoditySet::full(self.universe()))
    }
}

/// Concrete cost models used by the experiments.
#[derive(Debug, Clone)]
pub enum CostModel {
    /// Class `C` of §3.3: `f^σ_m = scale · |σ|^{x/2}` for every location.
    /// `x = 0` is a constant, `x = 1` the square root, `x = 2` linear.
    Power {
        /// Universe `S`.
        universe: Universe,
        /// Exponent parameter `x ∈ [0, 2]` (other non-negative values are
        /// permitted but fall outside class `C`).
        x: f64,
        /// Multiplicative scale (> 0).
        scale: f64,
    },
    /// Theorem 2's lower-bound function `g(|σ|) = ⌈|σ| / √|S|⌉`.
    CeilSqrt {
        /// Universe `S`.
        universe: Universe,
    },
    /// Additive per-commodity prices: `f^σ_m = Σ_{e ∈ σ} w_e` (the linear
    /// model of Shmoys et al. discussed in related work).
    Linear {
        /// Universe `S`.
        universe: Universe,
        /// Per-commodity weights, length `|S|`, all > 0.
        weights: Vec<f64>,
    },
    /// `f^σ_m = open + per · |σ|` for `σ ≠ ∅`: a VM with a fixed set-up
    /// cost plus per-service cost — the paper's motivating scenario.
    Affine {
        /// Universe `S`.
        universe: Universe,
        /// Fixed opening cost (≥ 0).
        open: f64,
        /// Per-commodity cost (> 0 unless `open > 0`).
        per: f64,
    },
    /// Per-location multiplier on an inner model: `f^σ_m = scale_m · inner(σ)`.
    /// Condition 1 and subadditivity are preserved location-wise.
    LocationScaled {
        /// The location-independent base model.
        inner: Box<CostModel>,
        /// One positive multiplier per location.
        scales: Vec<f64>,
    },
    /// Arbitrary table for small universes (`|S| ≤ 16`): `costs[m][mask]`,
    /// indexed by the bitmask of the configuration. Entry for mask 0 must
    /// be 0.
    Table {
        /// Universe `S` (≤ 16 commodities).
        universe: Universe,
        /// Per-location cost vectors of length `2^{|S|}`.
        costs: Vec<Vec<f64>>,
    },
    /// A base model plus per-commodity surcharges for designated "heavy"
    /// commodities. Deliberately violates Condition 1 when surcharges are
    /// large (used by the §5 heavy-commodity ablation).
    HeavySurcharge {
        /// The well-behaved base model.
        inner: Box<CostModel>,
        /// `surcharge[e]` added once whenever commodity `e` is offered
        /// (0 for non-heavy commodities).
        surcharge: Vec<f64>,
    },
    /// Tree-structured costs in the style of Svitkina–Tardos (discussed in
    /// the paper's related work §1.2): commodities are the leaves of a
    /// weighted rooted tree and `f^σ` is the weight of the Steiner subtree
    /// connecting `σ` to the root. Always subadditive and monotone;
    /// Condition 1 holds only for reasonably balanced trees, which makes
    /// this model a natural source of "heavy" commodities (a leaf behind a
    /// private expensive edge).
    Hierarchy {
        /// Universe `S` (nodes `0..|S|` are the leaves).
        universe: Universe,
        /// `nodes[i] = Some((parent, weight))`, `None` exactly at the root.
        /// Length ≥ `|S|`; indices `≥ |S|` are internal nodes.
        nodes: Vec<Option<(u32, f64)>>,
    },
}

impl CostModel {
    /// Class-C power cost: `scale · |σ|^{x/2}` (validates parameters).
    pub fn power(universe_size: u16, x: f64, scale: f64) -> Self {
        assert!(
            x.is_finite() && x >= 0.0,
            "exponent x must be finite and >= 0"
        );
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        CostModel::Power {
            universe: Universe::new(universe_size).expect("universe_size >= 1"),
            x,
            scale,
        }
    }

    /// Theorem 2 cost `⌈|σ|/√|S|⌉`.
    pub fn ceil_sqrt(universe_size: u16) -> Self {
        CostModel::CeilSqrt {
            universe: Universe::new(universe_size).expect("universe_size >= 1"),
        }
    }

    /// Uniform linear prices `f^σ = per · |σ|`.
    pub fn linear_uniform(universe_size: u16, per: f64) -> Self {
        assert!(
            per.is_finite() && per > 0.0,
            "per-commodity price must be positive"
        );
        let universe = Universe::new(universe_size).expect("universe_size >= 1");
        CostModel::Linear {
            universe,
            weights: vec![per; universe_size as usize],
        }
    }

    /// Affine cost `open + per·|σ|`.
    pub fn affine(universe_size: u16, open: f64, per: f64) -> Self {
        assert!(open.is_finite() && open >= 0.0);
        assert!(per.is_finite() && per >= 0.0);
        assert!(open + per > 0.0, "cost of a singleton must be positive");
        CostModel::Affine {
            universe: Universe::new(universe_size).expect("universe_size >= 1"),
            open,
            per,
        }
    }

    /// Validated table model.
    pub fn table(universe_size: u16, costs: Vec<Vec<f64>>) -> Result<Self, CommodityError> {
        if universe_size > 16 {
            return Err(CommodityError::InvalidCost(
                "table model supports |S| <= 16".into(),
            ));
        }
        let universe = Universe::new(universe_size)?;
        let want = 1usize << universe_size;
        if costs.is_empty() {
            return Err(CommodityError::InvalidCost("no locations".into()));
        }
        for (m, row) in costs.iter().enumerate() {
            if row.len() != want {
                return Err(CommodityError::InvalidCost(format!(
                    "location {m}: table row has {} entries, expected {want}",
                    row.len()
                )));
            }
            if row[0] != 0.0 {
                return Err(CommodityError::InvalidCost(format!(
                    "location {m}: cost of the empty configuration must be 0"
                )));
            }
            for (mask, &v) in row.iter().enumerate().skip(1) {
                if !v.is_finite() || v <= 0.0 {
                    return Err(CommodityError::InvalidCost(format!(
                        "location {m}, mask {mask}: cost {v} must be finite and > 0"
                    )));
                }
            }
        }
        Ok(CostModel::Table { universe, costs })
    }

    /// Validated hierarchical (tree) cost model. `nodes[i]` gives the
    /// parent and edge weight of node `i` (`None` exactly at the root);
    /// nodes `0..universe_size` are the commodity leaves.
    pub fn hierarchy(
        universe_size: u16,
        nodes: Vec<Option<(u32, f64)>>,
    ) -> Result<Self, CommodityError> {
        let universe = Universe::new(universe_size)?;
        if nodes.len() < universe_size as usize {
            return Err(CommodityError::InvalidCost(format!(
                "hierarchy needs at least |S| = {universe_size} nodes, got {}",
                nodes.len()
            )));
        }
        let mut root = None;
        for (i, n) in nodes.iter().enumerate() {
            match n {
                None => {
                    if root.replace(i).is_some() {
                        return Err(CommodityError::InvalidCost("two roots".into()));
                    }
                }
                Some((p, w)) => {
                    if *p as usize >= nodes.len() || *p as usize == i {
                        return Err(CommodityError::InvalidCost(format!(
                            "node {i}: bad parent {p}"
                        )));
                    }
                    if !w.is_finite() || *w < 0.0 {
                        return Err(CommodityError::InvalidCost(format!(
                            "node {i}: bad edge weight {w}"
                        )));
                    }
                }
            }
        }
        if root.is_none() {
            return Err(CommodityError::InvalidCost("no root".into()));
        }
        // Acyclicity: every node must reach the root within |nodes| steps.
        for start in 0..nodes.len() {
            let mut cur = start;
            let mut steps = 0;
            while let Some((p, _)) = nodes[cur] {
                cur = p as usize;
                steps += 1;
                if steps > nodes.len() {
                    return Err(CommodityError::InvalidCost(format!(
                        "cycle through node {start}"
                    )));
                }
            }
        }
        // Leaves must have positive path weight (singleton costs > 0).
        for e in 0..universe_size as usize {
            let mut cur = e;
            let mut total = 0.0;
            while let Some((p, w)) = nodes[cur] {
                total += w;
                cur = p as usize;
            }
            if total <= 0.0 {
                return Err(CommodityError::InvalidCost(format!(
                    "commodity {e}: zero-cost root path"
                )));
            }
        }
        Ok(CostModel::Hierarchy { universe, nodes })
    }

    /// Wraps `self` with per-location multipliers.
    pub fn location_scaled(self, scales: Vec<f64>) -> Result<Self, CommodityError> {
        for (m, &s) in scales.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(CommodityError::InvalidCost(format!(
                    "scale[{m}] = {s} must be finite and > 0"
                )));
            }
        }
        Ok(CostModel::LocationScaled {
            inner: Box::new(self),
            scales,
        })
    }

    /// Wraps `self` with heavy-commodity surcharges.
    pub fn with_surcharges(self, surcharge: Vec<f64>) -> Result<Self, CommodityError> {
        let n = self.universe().len();
        if surcharge.len() != n {
            return Err(CommodityError::InvalidCost(format!(
                "surcharge vector has {} entries, expected {n}",
                surcharge.len()
            )));
        }
        for (e, &s) in surcharge.iter().enumerate() {
            if !s.is_finite() || s < 0.0 {
                return Err(CommodityError::InvalidCost(format!(
                    "surcharge[{e}] = {s} must be finite and >= 0"
                )));
            }
        }
        Ok(CostModel::HeavySurcharge {
            inner: Box::new(self),
            surcharge,
        })
    }
}

impl FacilityCostFn for CostModel {
    fn universe(&self) -> Universe {
        match self {
            CostModel::Power { universe, .. }
            | CostModel::CeilSqrt { universe }
            | CostModel::Linear { universe, .. }
            | CostModel::Affine { universe, .. }
            | CostModel::Table { universe, .. }
            | CostModel::Hierarchy { universe, .. } => *universe,
            CostModel::LocationScaled { inner, .. } | CostModel::HeavySurcharge { inner, .. } => {
                inner.universe()
            }
        }
    }

    fn cost(&self, location: usize, config: &CommoditySet) -> f64 {
        let k = config.len();
        if k == 0 {
            return 0.0;
        }
        match self {
            CostModel::Power { x, scale, .. } => scale * (k as f64).powf(x / 2.0),
            CostModel::CeilSqrt { universe } => (k as f64 / universe.sqrt_size()).ceil(),
            CostModel::Linear { weights, .. } => config.iter().map(|e| weights[e.index()]).sum(),
            CostModel::Affine { open, per, .. } => open + per * k as f64,
            CostModel::LocationScaled { inner, scales } => {
                scales[location] * inner.cost(location, config)
            }
            CostModel::Table { costs, .. } => costs[location][config.to_mask() as usize],
            CostModel::HeavySurcharge { inner, surcharge } => {
                inner.cost(location, config)
                    + config.iter().map(|e| surcharge[e.index()]).sum::<f64>()
            }
            CostModel::Hierarchy { nodes, .. } => {
                // Steiner-subtree weight: walk each leaf to the root, paying
                // each edge the first time it is visited.
                let mut visited = vec![false; nodes.len()];
                let mut total = 0.0;
                for e in config.iter() {
                    let mut cur = e.index();
                    while !visited[cur] {
                        visited[cur] = true;
                        match nodes[cur] {
                            Some((p, w)) => {
                                total += w;
                                cur = p as usize;
                            }
                            None => break,
                        }
                    }
                }
                total
            }
        }
    }

    fn singleton_cost(&self, location: usize, e: CommodityId) -> f64 {
        match self {
            CostModel::Power { scale, .. } => *scale,
            CostModel::CeilSqrt { .. } => 1.0,
            CostModel::Linear { weights, .. } => weights[e.index()],
            CostModel::Affine { open, per, .. } => open + per,
            CostModel::LocationScaled { inner, scales } => {
                scales[location] * inner.singleton_cost(location, e)
            }
            CostModel::Table { costs, .. } => costs[location][1usize << e.index()],
            CostModel::HeavySurcharge { inner, surcharge } => {
                inner.singleton_cost(location, e) + surcharge[e.index()]
            }
            CostModel::Hierarchy { nodes, .. } => {
                let mut cur = e.index();
                let mut total = 0.0;
                while let Some((p, w)) = nodes[cur] {
                    total += w;
                    cur = p as usize;
                }
                total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: u16, ids: &[u16]) -> CommoditySet {
        CommoditySet::from_ids(Universe::new(n).unwrap(), ids).unwrap()
    }

    #[test]
    fn power_cost_values() {
        let c = CostModel::power(16, 1.0, 2.0); // 2 * sqrt(|sigma|)
        assert_eq!(c.cost(0, &set(16, &[])), 0.0);
        assert!((c.cost(0, &set(16, &[3])) - 2.0).abs() < 1e-12);
        assert!((c.cost(0, &set(16, &[1, 2, 3, 4])) - 4.0).abs() < 1e-12);
        assert!((c.full_cost(0) - 8.0).abs() < 1e-12);
        assert!((c.singleton_cost(0, CommodityId(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_extremes_constant_and_linear() {
        let constant = CostModel::power(9, 0.0, 3.0);
        assert_eq!(constant.cost(0, &set(9, &[0])), 3.0);
        assert_eq!(constant.cost(0, &set(9, &[0, 1, 2])), 3.0);
        let linear = CostModel::power(9, 2.0, 3.0);
        assert_eq!(linear.cost(0, &set(9, &[0, 1, 2])), 9.0);
    }

    #[test]
    fn ceil_sqrt_matches_theorem2() {
        // |S| = 16, sqrt = 4: g(sigma) = ceil(|sigma| / 4).
        let c = CostModel::ceil_sqrt(16);
        assert_eq!(c.singleton_cost(0, CommodityId(0)), 1.0);
        assert_eq!(c.cost(0, &set(16, &[0, 1, 2, 3])), 1.0);
        assert_eq!(c.cost(0, &set(16, &[0, 1, 2, 3, 4])), 2.0);
        assert_eq!(c.full_cost(0), 4.0);
    }

    #[test]
    fn linear_sums_weights() {
        let c = CostModel::Linear {
            universe: Universe::new(3).unwrap(),
            weights: vec![1.0, 2.0, 4.0],
        };
        assert_eq!(c.cost(0, &set(3, &[0, 2])), 5.0);
        assert_eq!(c.singleton_cost(0, CommodityId(1)), 2.0);
    }

    #[test]
    fn affine_cost() {
        let c = CostModel::affine(4, 10.0, 1.5);
        assert_eq!(c.cost(0, &set(4, &[])), 0.0);
        assert_eq!(c.cost(0, &set(4, &[2])), 11.5);
        assert_eq!(c.full_cost(0), 16.0);
    }

    #[test]
    fn location_scaled_applies_per_location() {
        let c = CostModel::power(4, 2.0, 1.0)
            .location_scaled(vec![1.0, 3.0])
            .unwrap();
        assert_eq!(c.cost(0, &set(4, &[0, 1])), 2.0);
        assert_eq!(c.cost(1, &set(4, &[0, 1])), 6.0);
        assert_eq!(c.universe().size(), 4);
    }

    #[test]
    fn table_lookup_and_validation() {
        // |S| = 2: masks 0..3.
        let c = CostModel::table(2, vec![vec![0.0, 1.0, 1.0, 1.5]]).unwrap();
        assert_eq!(c.cost(0, &set(2, &[0])), 1.0);
        assert_eq!(c.cost(0, &set(2, &[0, 1])), 1.5);
        assert!(CostModel::table(2, vec![vec![0.0, 1.0]]).is_err()); // wrong len
        assert!(CostModel::table(2, vec![vec![1.0, 1.0, 1.0, 1.0]]).is_err()); // f(∅) != 0
        assert!(CostModel::table(2, vec![vec![0.0, -1.0, 1.0, 1.0]]).is_err()); // negative
        assert!(CostModel::table(17, vec![]).is_err()); // |S| too big
    }

    #[test]
    fn heavy_surcharge_adds_per_heavy_commodity() {
        let c = CostModel::power(4, 1.0, 1.0)
            .with_surcharges(vec![0.0, 0.0, 0.0, 50.0])
            .unwrap();
        assert!((c.cost(0, &set(4, &[0, 1])) - 2f64.sqrt()).abs() < 1e-12);
        assert!((c.cost(0, &set(4, &[0, 3])) - (2f64.sqrt() + 50.0)).abs() < 1e-12);
        assert!((c.singleton_cost(0, CommodityId(3)) - 51.0).abs() < 1e-12);
    }

    #[test]
    fn surcharge_length_validated() {
        assert!(CostModel::power(4, 1.0, 1.0)
            .with_surcharges(vec![0.0; 3])
            .is_err());
    }

    /// Balanced binary hierarchy over 4 leaves:
    ///        root(6)
    ///       /      \
    ///     a(4)     b(5)   (edge weights to root: 2, 3)
    ///    /  \     /  \
    ///   0    1   2    3   (leaf edges: 1, 1, 1, 1)
    fn balanced_hierarchy() -> CostModel {
        CostModel::hierarchy(
            4,
            vec![
                Some((4, 1.0)), // leaf 0 -> a
                Some((4, 1.0)), // leaf 1 -> a
                Some((5, 1.0)), // leaf 2 -> b
                Some((5, 1.0)), // leaf 3 -> b
                Some((6, 2.0)), // a -> root
                Some((6, 3.0)), // b -> root
                None,           // root
            ],
        )
        .unwrap()
    }

    #[test]
    fn hierarchy_steiner_costs() {
        let c = balanced_hierarchy();
        // Singleton 0: path 1 + 2 = 3.
        assert_eq!(c.singleton_cost(0, CommodityId(0)), 3.0);
        // {0, 1}: shared edge a->root paid once: 1 + 1 + 2 = 4.
        assert_eq!(c.cost(0, &set(4, &[0, 1])), 4.0);
        // {0, 2}: disjoint subtrees: 3 + 4 = 7.
        assert_eq!(c.cost(0, &set(4, &[0, 2])), 7.0);
        // Full set: whole tree: 4·1 + 2 + 3 = 9.
        assert_eq!(c.full_cost(0), 9.0);
        assert_eq!(c.cost(0, &set(4, &[])), 0.0);
    }

    #[test]
    fn hierarchy_is_subadditive_and_monotone_but_not_condition1() {
        let c = balanced_hierarchy();
        crate::props::subadditive_exact(&c, 0).unwrap();
        crate::props::monotone_exact(&c, 0).unwrap();
        // Even a balanced tree violates Condition 1: the sibling pair {0,1}
        // shares its subtree (f = 4, per-commodity 2) while S pays the whole
        // tree (9/4 = 2.25 per commodity). Hierarchical costs thus fall
        // outside the paper's assumption — which is exactly why
        // Svitkina–Tardos needed different techniques for them (§1.2), and
        // why this model pairs with the heavy-exclusion wrapper in tests.
        assert!(crate::props::condition1_exact(&c, 0).is_err());
        // The degenerate star hierarchy (all leaves on the root with equal
        // weights) is linear and does satisfy Condition 1.
        let star = CostModel::hierarchy(
            4,
            vec![
                Some((4, 2.0)),
                Some((4, 2.0)),
                Some((4, 2.0)),
                Some((4, 2.0)),
                None,
            ],
        )
        .unwrap();
        crate::props::condition1_exact(&star, 0).unwrap();
    }

    #[test]
    fn unbalanced_hierarchy_violates_condition1() {
        // Leaf 3 hides behind a private edge of weight 50: adding it to a
        // configuration is expensive — a natural heavy commodity.
        let c = CostModel::hierarchy(
            4,
            vec![
                Some((4, 1.0)),
                Some((4, 1.0)),
                Some((4, 1.0)),
                Some((4, 50.0)),
                None,
            ],
        )
        .unwrap();
        assert!(crate::props::condition1_exact(&c, 0).is_err());
        crate::props::subadditive_exact(&c, 0).unwrap();
    }

    #[test]
    fn hierarchy_validation_rejects_malformed_trees() {
        // Two roots.
        assert!(CostModel::hierarchy(2, vec![None, None]).is_err());
        // No root (cycle).
        assert!(CostModel::hierarchy(2, vec![Some((1, 1.0)), Some((0, 1.0))]).is_err());
        // Valid trees with internal nodes are accepted.
        assert!(CostModel::hierarchy(
            2,
            vec![Some((3, 1.0)), Some((3, 1.0)), None, Some((2, 1.0))]
        )
        .is_ok());
        // Cycle among internal nodes (3 <-> 4) with a separate root.
        assert!(CostModel::hierarchy(
            2,
            vec![
                Some((3, 1.0)),
                Some((3, 1.0)),
                None,
                Some((4, 1.0)),
                Some((3, 1.0))
            ]
        )
        .is_err());
        // Zero-cost leaf path.
        assert!(CostModel::hierarchy(1, vec![Some((1, 0.0)), None]).is_err());
        // Too few nodes.
        assert!(CostModel::hierarchy(3, vec![None]).is_err());
        // Self-parent.
        assert!(CostModel::hierarchy(1, vec![Some((0, 1.0)), None]).is_err());
    }
}
