//! Commodities and construction-cost functions for OMFLP.
//!
//! In the Multi-Commodity Facility Location Problem each request demands a
//! subset `sr ⊆ S` of commodities and each facility is opened in a
//! *configuration* `σ ⊆ S` (paper §1.1). This crate provides:
//!
//! * [`Universe`] — the finite commodity set `S`;
//! * [`CommoditySet`] — a compact subset-of-`S` bitset (inline up to 128
//!   commodities, heap beyond) used for request demands and facility
//!   configurations;
//! * [`cost`] — construction cost functions `f^σ_m`, including the class `C`
//!   power functions of §3.3 and the `⌈|σ|/√|S|⌉` function from the Theorem 2
//!   lower bound;
//! * [`props`] — exact and sampled checkers for subadditivity and the
//!   paper's Condition 1 (`f^σ_m/|σ| ≥ f^S_m/|S|`).

pub mod cost;
pub mod props;
mod set;

pub use set::{CommoditySet, SetIter};

use std::fmt;

/// Identifier of a commodity, dense in `0..|S|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommodityId(pub u16);

impl CommodityId {
    /// The commodity index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CommodityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The commodity universe `S`: just its size, shared by sets and cost
/// functions so they can agree on the word width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Universe {
    size: u16,
}

impl Universe {
    /// A universe of `size` commodities. `size` must be at least 1.
    pub fn new(size: u16) -> Result<Self, CommodityError> {
        if size == 0 {
            return Err(CommodityError::EmptyUniverse);
        }
        Ok(Self { size })
    }

    /// `|S|`.
    #[inline]
    pub fn size(self) -> u16 {
        self.size
    }

    /// `|S|` as `usize`, for indexing.
    #[inline]
    pub fn len(self) -> usize {
        self.size as usize
    }

    /// Never true (construction requires `size >= 1`); mirrors `len`.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Iterate over all commodity ids.
    pub fn ids(self) -> impl ExactSizeIterator<Item = CommodityId> {
        (0..self.size).map(CommodityId)
    }

    /// `√|S|`, the small/large threshold used throughout the paper.
    pub fn sqrt_size(self) -> f64 {
        (self.size as f64).sqrt()
    }
}

/// Errors from commodity-set and cost-function construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CommodityError {
    /// A universe must contain at least one commodity.
    EmptyUniverse,
    /// A commodity id is outside the universe.
    OutOfRange { id: u16, size: u16 },
    /// Universes of two operands disagree.
    UniverseMismatch { left: u16, right: u16 },
    /// A cost value is invalid (negative, NaN, infinite) or a table is
    /// malformed.
    InvalidCost(String),
}

impl fmt::Display for CommodityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommodityError::EmptyUniverse => write!(f, "commodity universe must be non-empty"),
            CommodityError::OutOfRange { id, size } => {
                write!(f, "commodity {id} out of range for universe of size {size}")
            }
            CommodityError::UniverseMismatch { left, right } => {
                write!(f, "universe mismatch: {left} vs {right}")
            }
            CommodityError::InvalidCost(s) => write!(f, "invalid cost: {s}"),
        }
    }
}

impl std::error::Error for CommodityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_basics() {
        let u = Universe::new(5).unwrap();
        assert_eq!(u.size(), 5);
        assert_eq!(u.len(), 5);
        assert!(!u.is_empty());
        assert_eq!(u.ids().count(), 5);
        assert!((u.sqrt_size() - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_universe_rejected() {
        assert_eq!(Universe::new(0).unwrap_err(), CommodityError::EmptyUniverse);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CommodityId(3).to_string(), "c3");
        let e = CommodityError::OutOfRange { id: 9, size: 4 };
        assert!(e.to_string().contains("out of range"));
    }
}
