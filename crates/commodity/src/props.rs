//! Structural property checks for cost functions.
//!
//! The paper's analysis rests on two properties of `f^σ_m` (§1.1):
//!
//! * **subadditivity** — for all `a ∪ b = σ`: `f^σ_m ≤ f^a_m + f^b_m`
//!   (always assumable: an algorithm would otherwise split the facility);
//! * **Condition 1** — `f^σ_m / |σ| ≥ f^S_m / |S|` for all non-empty `σ`
//!   (per-commodity cost is minimal for the full configuration).
//!
//! Exact checks enumerate all configurations (feasible for `|S| ≤ ~12`);
//! sampled checks probe random subsets with a deterministic SplitMix64
//! stream so failures reproduce.

use crate::cost::FacilityCostFn;
use crate::{CommoditySet, Universe};

/// Outcome of a property check: `Ok(())` or a human-readable counterexample.
pub type PropResult = Result<(), String>;

/// Exact Condition 1 check at one location. O(2^|S|).
pub fn condition1_exact(cost: &dyn FacilityCostFn, location: usize) -> PropResult {
    let u = cost.universe();
    assert!(u.size() <= 20, "condition1_exact supports |S| <= 20");
    let full = cost.full_cost(location);
    let per_full = full / u.len() as f64;
    for mask in 1u64..(1u64 << u.size()) {
        let s = CommoditySet::from_mask(u, mask).expect("mask in range");
        let f = cost.cost(location, &s);
        let per = f / s.len() as f64;
        if per < per_full * (1.0 - 1e-9) - 1e-12 {
            return Err(format!(
                "Condition 1 violated at location {location}: f({s:?}) = {f}, per-commodity \
                 {per} < f(S)/|S| = {per_full}"
            ));
        }
    }
    Ok(())
}

/// Exact subadditivity check at one location: for every σ and every pair
/// `a ∪ b = σ`, `f(σ) ≤ f(a) + f(b)`. O(4^|S|) — use for `|S| ≤ ~10`.
pub fn subadditive_exact(cost: &dyn FacilityCostFn, location: usize) -> PropResult {
    let u = cost.universe();
    assert!(u.size() <= 12, "subadditive_exact supports |S| <= 12");
    let n = 1u64 << u.size();
    // Precompute all costs once.
    let mut f = vec![0.0; n as usize];
    for mask in 0..n {
        let s = CommoditySet::from_mask(u, mask).expect("mask in range");
        f[mask as usize] = cost.cost(location, &s);
    }
    for sigma in 1..n {
        // Enumerate a ⊆ sigma; b must satisfy a ∪ b = sigma, i.e.
        // b ⊇ sigma \ a and b ⊆ sigma. The cheapest such b is minimized over
        // supersets; but since we need *all* pairs to satisfy the bound, the
        // binding case is the minimum of f(a) + f(b) over valid pairs. It is
        // enough to check b = sigma \ a extended by any subset of a; we scan
        // them all for exactness.
        let mut a = sigma;
        loop {
            let rest = sigma & !a;
            // Enumerate b = rest ∪ (subset of a).
            let mut extra = a;
            loop {
                let b = rest | extra;
                if f[sigma as usize] > f[a as usize] + f[b as usize] + tol(f[sigma as usize]) {
                    return Err(format!(
                        "subadditivity violated at location {location}: f({sigma:#b}) = {} > \
                         f({a:#b}) + f({b:#b}) = {}",
                        f[sigma as usize],
                        f[a as usize] + f[b as usize]
                    ));
                }
                if extra == 0 {
                    break;
                }
                extra = (extra - 1) & a;
            }
            if a == 0 {
                break;
            }
            a = (a - 1) & sigma;
        }
    }
    Ok(())
}

/// Exact monotonicity check (`σ ⊆ τ ⇒ f(σ) ≤ f(τ)`). O(|S|·2^|S|).
pub fn monotone_exact(cost: &dyn FacilityCostFn, location: usize) -> PropResult {
    let u = cost.universe();
    assert!(u.size() <= 20, "monotone_exact supports |S| <= 20");
    let n = 1u64 << u.size();
    for mask in 0..n {
        let s = CommoditySet::from_mask(u, mask).expect("mask in range");
        let fs = cost.cost(location, &s);
        for e in 0..u.size() {
            if mask & (1 << e) == 0 {
                let bigger = CommoditySet::from_mask(u, mask | (1 << e)).expect("in range");
                let fb = cost.cost(location, &bigger);
                if fb < fs - tol(fs) {
                    return Err(format!(
                        "monotonicity violated at location {location}: f({bigger:?}) = {fb} < \
                         f({s:?}) = {fs}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Sampled Condition 1 check for large universes: probes `samples` random
/// non-empty subsets.
pub fn condition1_sampled(
    cost: &dyn FacilityCostFn,
    location: usize,
    samples: usize,
    seed: u64,
) -> PropResult {
    let u = cost.universe();
    let full = cost.full_cost(location);
    let per_full = full / u.len() as f64;
    let mut rng = SplitMix(seed);
    for _ in 0..samples {
        let s = random_nonempty_subset(u, &mut rng);
        let f = cost.cost(location, &s);
        let per = f / s.len() as f64;
        if per < per_full * (1.0 - 1e-9) - 1e-12 {
            return Err(format!(
                "Condition 1 violated at location {location} on sampled {s:?}: per-commodity \
                 {per} < {per_full}"
            ));
        }
    }
    Ok(())
}

/// Sampled subadditivity: probes random (a, b) pairs and checks
/// `f(a ∪ b) ≤ f(a) + f(b)`.
pub fn subadditive_sampled(
    cost: &dyn FacilityCostFn,
    location: usize,
    samples: usize,
    seed: u64,
) -> PropResult {
    let u = cost.universe();
    let mut rng = SplitMix(seed);
    for _ in 0..samples {
        let a = random_nonempty_subset(u, &mut rng);
        let b = random_nonempty_subset(u, &mut rng);
        let ab = a.union(&b).expect("same universe");
        let fab = cost.cost(location, &ab);
        let fa = cost.cost(location, &a);
        let fb = cost.cost(location, &b);
        if fab > fa + fb + tol(fab) {
            return Err(format!(
                "subadditivity violated at location {location}: f({a:?} ∪ {b:?}) = {fab} > \
                 {fa} + {fb}"
            ));
        }
    }
    Ok(())
}

fn tol(x: f64) -> f64 {
    1e-12 + 1e-9 * x.abs()
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_nonempty_subset(u: Universe, rng: &mut SplitMix) -> CommoditySet {
    let mut s = CommoditySet::empty(u);
    // Each commodity independently with probability 1/2, then force one
    // element if empty.
    for e in u.ids() {
        if rng.next() & 1 == 1 {
            s.insert(e).expect("in range");
        }
    }
    if s.is_empty() {
        let e = (rng.next() % u.size() as u64) as u16;
        s.insert(crate::CommodityId(e)).expect("in range");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn class_c_powers_satisfy_both_properties() {
        for &x in &[0.0, 0.5, 1.0, 1.5, 2.0] {
            let c = CostModel::power(8, x, 2.5);
            condition1_exact(&c, 0).unwrap();
            subadditive_exact(&c, 0).unwrap();
            monotone_exact(&c, 0).unwrap();
        }
    }

    #[test]
    fn ceil_sqrt_satisfies_both_properties() {
        let c = CostModel::ceil_sqrt(9);
        condition1_exact(&c, 0).unwrap();
        subadditive_exact(&c, 0).unwrap();
    }

    #[test]
    fn linear_and_affine_satisfy_condition1() {
        condition1_exact(&CostModel::linear_uniform(6, 3.0), 0).unwrap();
        condition1_exact(&CostModel::affine(6, 5.0, 1.0), 0).unwrap();
        subadditive_exact(&CostModel::affine(6, 5.0, 1.0), 0).unwrap();
    }

    #[test]
    fn superadditive_power_fails_condition1() {
        // x = 3 means |sigma|^{1.5}: per-commodity cost *grows* with |sigma|,
        // so Condition 1 (minimal at S) fails.
        let c = CostModel::power(8, 3.0, 1.0);
        assert!(condition1_exact(&c, 0).is_err());
    }

    #[test]
    fn heavy_surcharge_breaks_condition1() {
        let c = CostModel::power(8, 1.0, 1.0)
            .with_surcharges(vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 100.0])
            .unwrap();
        assert!(condition1_exact(&c, 0).is_err());
        // ... but remains subadditive (surcharges are additive per commodity).
        subadditive_exact(&c, 0).unwrap();
    }

    #[test]
    fn sampled_checks_agree_with_exact_on_good_models() {
        let c = CostModel::power(200, 1.0, 1.0);
        condition1_sampled(&c, 0, 500, 1).unwrap();
        subadditive_sampled(&c, 0, 500, 2).unwrap();
    }

    #[test]
    fn sampled_condition1_catches_gross_violation() {
        let mut sur = vec![0.0; 64];
        sur[63] = 1e6;
        let c = CostModel::power(64, 1.0, 1.0).with_surcharges(sur).unwrap();
        assert!(condition1_sampled(&c, 0, 2000, 3).is_err());
    }

    #[test]
    fn table_model_checked_exactly() {
        // Handcrafted 2-commodity table that is subadditive and satisfies
        // Condition 1: f({0}) = 2, f({1}) = 2, f(S) = 3 -> per-commodity 1.5.
        let c = CostModel::table(2, vec![vec![0.0, 2.0, 2.0, 3.0]]).unwrap();
        condition1_exact(&c, 0).unwrap();
        subadditive_exact(&c, 0).unwrap();
        // Violating table: f(S) = 10 > f({0}) + f({1}).
        let bad = CostModel::table(2, vec![vec![0.0, 2.0, 2.0, 10.0]]).unwrap();
        assert!(subadditive_exact(&bad, 0).is_err());
    }
}
