//! Compact commodity subsets.
//!
//! `CommoditySet` is the hot data structure of the whole system: every
//! request demand, facility configuration and dual-bookkeeping step
//! manipulates one. Sets over universes of up to 128 commodities live in two
//! inline `u64` words (no allocation); larger universes spill to a boxed
//! slice. All operations are word-parallel.

use crate::{CommodityError, CommodityId, Universe};
use std::fmt;

const INLINE_WORDS: usize = 2;
const INLINE_BITS: u16 = (INLINE_WORDS * 64) as u16;

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

/// A subset of a [`Universe`] of commodities, stored as a bitset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CommoditySet {
    nbits: u16,
    repr: Repr,
}

#[inline]
fn words_for(nbits: u16) -> usize {
    (nbits as usize).div_ceil(64)
}

impl CommoditySet {
    /// The empty subset of `universe`.
    pub fn empty(universe: Universe) -> Self {
        let nbits = universe.size();
        let repr = if nbits <= INLINE_BITS {
            Repr::Inline([0; INLINE_WORDS])
        } else {
            Repr::Heap(vec![0u64; words_for(nbits)].into_boxed_slice())
        };
        Self { nbits, repr }
    }

    /// The full set `S`.
    pub fn full(universe: Universe) -> Self {
        let mut s = Self::empty(universe);
        let nbits = s.nbits as usize;
        let words = s.words_mut();
        for (i, w) in words.iter_mut().enumerate() {
            let lo = i * 64;
            let hi = (lo + 64).min(nbits);
            if hi > lo {
                let span = hi - lo;
                *w = if span == 64 {
                    u64::MAX
                } else {
                    (1u64 << span) - 1
                };
            }
        }
        s
    }

    /// A singleton `{e}`.
    pub fn singleton(universe: Universe, e: CommodityId) -> Result<Self, CommodityError> {
        let mut s = Self::empty(universe);
        s.insert(e)?;
        Ok(s)
    }

    /// Builds a set from raw commodity indices.
    pub fn from_ids(universe: Universe, ids: &[u16]) -> Result<Self, CommodityError> {
        let mut s = Self::empty(universe);
        for &id in ids {
            s.insert(CommodityId(id))?;
        }
        Ok(s)
    }

    /// Builds the set `{e : bit e of mask set}` for universes of ≤ 64
    /// commodities; handy in tests and the exact offline solver.
    pub fn from_mask(universe: Universe, mask: u64) -> Result<Self, CommodityError> {
        if universe.size() > 64 {
            return Err(CommodityError::InvalidCost(
                "from_mask requires |S| <= 64".into(),
            ));
        }
        if universe.size() < 64 && mask >> universe.size() != 0 {
            return Err(CommodityError::OutOfRange {
                id: 63 - mask.leading_zeros() as u16,
                size: universe.size(),
            });
        }
        let mut s = Self::empty(universe);
        s.words_mut()[0] = mask;
        Ok(s)
    }

    /// The low 64 bits as a mask (panics in debug if |S| > 64).
    pub fn to_mask(&self) -> u64 {
        debug_assert!(self.nbits <= 64, "to_mask requires |S| <= 64");
        self.words()[0]
    }

    /// Size of the universe this set lives in.
    #[inline]
    pub fn universe_size(&self) -> u16 {
        self.nbits
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => &w[..words_for(self.nbits).min(INLINE_WORDS)],
            Repr::Heap(w) => w,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = words_for(self.nbits).min(INLINE_WORDS);
        match &mut self.repr {
            Repr::Inline(w) => &mut w[..n],
            Repr::Heap(w) => w,
        }
    }

    fn check_id(&self, e: CommodityId) -> Result<(), CommodityError> {
        if e.0 >= self.nbits {
            Err(CommodityError::OutOfRange {
                id: e.0,
                size: self.nbits,
            })
        } else {
            Ok(())
        }
    }

    fn check_same(&self, other: &Self) -> Result<(), CommodityError> {
        if self.nbits != other.nbits {
            Err(CommodityError::UniverseMismatch {
                left: self.nbits,
                right: other.nbits,
            })
        } else {
            Ok(())
        }
    }

    /// Inserts a commodity; returns whether it was newly added.
    pub fn insert(&mut self, e: CommodityId) -> Result<bool, CommodityError> {
        self.check_id(e)?;
        let w = &mut self.words_mut()[e.index() / 64];
        let bit = 1u64 << (e.index() % 64);
        let newly = *w & bit == 0;
        *w |= bit;
        Ok(newly)
    }

    /// Removes a commodity; returns whether it was present.
    pub fn remove(&mut self, e: CommodityId) -> Result<bool, CommodityError> {
        self.check_id(e)?;
        let w = &mut self.words_mut()[e.index() / 64];
        let bit = 1u64 << (e.index() % 64);
        let was = *w & bit != 0;
        *w &= !bit;
        Ok(was)
    }

    /// Membership test. Out-of-range ids are simply absent.
    #[inline]
    pub fn contains(&self, e: CommodityId) -> bool {
        if e.0 >= self.nbits {
            return false;
        }
        self.words()[e.index() / 64] & (1u64 << (e.index() % 64)) != 0
    }

    /// Number of commodities in the set.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no commodity is present.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) -> Result<(), CommodityError> {
        self.check_same(other)?;
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
        Ok(())
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) -> Result<(), CommodityError> {
        self.check_same(other)?;
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
        Ok(())
    }

    /// In-place set difference `self \ other`.
    pub fn subtract(&mut self, other: &Self) -> Result<(), CommodityError> {
        self.check_same(other)?;
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
        Ok(())
    }

    /// Owned union.
    pub fn union(&self, other: &Self) -> Result<Self, CommodityError> {
        let mut s = self.clone();
        s.union_with(other)?;
        Ok(s)
    }

    /// Owned intersection.
    pub fn intersection(&self, other: &Self) -> Result<Self, CommodityError> {
        let mut s = self.clone();
        s.intersect_with(other)?;
        Ok(s)
    }

    /// Owned difference `self \ other`.
    pub fn difference(&self, other: &Self) -> Result<Self, CommodityError> {
        let mut s = self.clone();
        s.subtract(other)?;
        Ok(s)
    }

    /// Iterates over member commodities in increasing id order.
    pub fn iter(&self) -> SetIter<'_> {
        SetIter {
            words: self.words(),
            word_idx: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<CommodityId> {
        self.iter().next()
    }
}

impl fmt::Debug for CommoditySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", e.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for CommoditySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the members of a [`CommoditySet`].
pub struct SetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetIter<'_> {
    type Item = CommodityId;

    fn next(&mut self) -> Option<CommodityId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(CommodityId((self.word_idx * 64 + bit) as u16));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u16) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn empty_full_singleton() {
        let uni = u(10);
        let e = CommoditySet::empty(uni);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = CommoditySet::full(uni);
        assert_eq!(f.len(), 10);
        let s = CommoditySet::singleton(uni, CommodityId(3)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(CommodityId(3)));
        assert!(!s.contains(CommodityId(4)));
    }

    #[test]
    fn full_set_exact_boundaries() {
        for n in [1u16, 63, 64, 65, 127, 128, 129, 200, 500] {
            let f = CommoditySet::full(u(n));
            assert_eq!(f.len(), n as usize, "|S| = {n}");
            assert!(f.contains(CommodityId(n - 1)));
            assert!(!f.contains(CommodityId(n))); // out of range => absent
        }
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut s = CommoditySet::empty(u(130)); // heap repr
        assert!(s.insert(CommodityId(129)).unwrap());
        assert!(!s.insert(CommodityId(129)).unwrap());
        assert!(s.contains(CommodityId(129)));
        assert!(s.remove(CommodityId(129)).unwrap());
        assert!(!s.remove(CommodityId(129)).unwrap());
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = CommoditySet::empty(u(4));
        assert!(matches!(
            s.insert(CommodityId(4)),
            Err(CommodityError::OutOfRange { .. })
        ));
    }

    #[test]
    fn set_algebra() {
        let uni = u(8);
        let a = CommoditySet::from_ids(uni, &[0, 1, 2]).unwrap();
        let b = CommoditySet::from_ids(uni, &[2, 3]).unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 4);
        assert_eq!(a.intersection(&b).unwrap().len(), 1);
        assert_eq!(a.difference(&b).unwrap().len(), 2);
        assert!(a.intersects(&b));
        assert!(!a.is_subset_of(&b));
        let ab = a.intersection(&b).unwrap();
        assert!(ab.is_subset_of(&a) && ab.is_subset_of(&b));
    }

    #[test]
    fn universe_mismatch_rejected() {
        let a = CommoditySet::empty(u(4));
        let b = CommoditySet::empty(u(5));
        assert!(matches!(
            a.union(&b),
            Err(CommodityError::UniverseMismatch { .. })
        ));
    }

    #[test]
    fn iter_in_order_across_words() {
        let uni = u(200);
        let ids = [0u16, 5, 63, 64, 127, 128, 199];
        let s = CommoditySet::from_ids(uni, &ids).unwrap();
        let got: Vec<u16> = s.iter().map(|c| c.0).collect();
        assert_eq!(got, ids);
        assert_eq!(s.first(), Some(CommodityId(0)));
    }

    #[test]
    fn mask_round_trip() {
        let uni = u(10);
        let s = CommoditySet::from_mask(uni, 0b1010110).unwrap();
        assert_eq!(s.to_mask(), 0b1010110);
        assert_eq!(s.len(), 4);
        assert!(CommoditySet::from_mask(uni, 1 << 10).is_err());
    }

    #[test]
    fn debug_format() {
        let s = CommoditySet::from_ids(u(8), &[1, 4]).unwrap();
        assert_eq!(format!("{s:?}"), "{1,4}");
    }

    #[test]
    fn equality_and_hash_consistency() {
        use std::collections::HashSet;
        let uni = u(300);
        let a = CommoditySet::from_ids(uni, &[1, 200]).unwrap();
        let b = CommoditySet::from_ids(uni, &[200, 1]).unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
