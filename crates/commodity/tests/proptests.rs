//! Property tests: bitset algebra laws and cost-function structure.

use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::props::{condition1_sampled, subadditive_sampled};
use omfl_commodity::{CommodityId, CommoditySet, Universe};
use proptest::prelude::*;

fn set_from(u: Universe, ids: &[u16]) -> CommoditySet {
    let ids: Vec<u16> = ids.iter().map(|&e| e % u.size()).collect();
    CommoditySet::from_ids(u, &ids).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Set algebra laws, exercised across the inline/heap boundary
    /// (|S| from 1 to 300).
    #[test]
    fn bitset_algebra_laws(
        s in 1u16..300,
        a_ids in prop::collection::vec(0u16..300, 0..24),
        b_ids in prop::collection::vec(0u16..300, 0..24),
        c_ids in prop::collection::vec(0u16..300, 0..24),
    ) {
        let u = Universe::new(s).unwrap();
        let a = set_from(u, &a_ids);
        let b = set_from(u, &b_ids);
        let c = set_from(u, &c_ids);

        // Commutativity.
        prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        prop_assert_eq!(a.intersection(&b).unwrap(), b.intersection(&a).unwrap());
        // Associativity.
        prop_assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
        // Distributivity: a ∩ (b ∪ c) = (a ∩ b) ∪ (a ∩ c).
        prop_assert_eq!(
            a.intersection(&b.union(&c).unwrap()).unwrap(),
            a.intersection(&b).unwrap().union(&a.intersection(&c).unwrap()).unwrap()
        );
        // De Morgan via difference: a \ (b ∪ c) = (a \ b) ∩ (a \ c).
        prop_assert_eq!(
            a.difference(&b.union(&c).unwrap()).unwrap(),
            a.difference(&b).unwrap().intersection(&a.difference(&c).unwrap()).unwrap()
        );
        // Inclusion–exclusion on sizes.
        prop_assert_eq!(
            a.union(&b).unwrap().len() + a.intersection(&b).unwrap().len(),
            a.len() + b.len()
        );
        // Subset relations.
        prop_assert!(a.intersection(&b).unwrap().is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.union(&b).unwrap()));
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).unwrap().is_empty());
    }

    /// Iteration yields exactly the members, ascending, and `len` matches.
    #[test]
    fn bitset_iter_round_trip(
        s in 1u16..300,
        ids in prop::collection::vec(0u16..300, 0..32),
    ) {
        let u = Universe::new(s).unwrap();
        let set = set_from(u, &ids);
        let got: Vec<u16> = set.iter().map(|e| e.0).collect();
        prop_assert_eq!(got.len(), set.len());
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending, distinct");
        for &e in &got {
            prop_assert!(set.contains(CommodityId(e)));
        }
        // Rebuilding from the iteration gives the same set.
        prop_assert_eq!(CommoditySet::from_ids(u, &got).unwrap(), set);
    }

    /// Insert/remove are inverses.
    #[test]
    fn insert_remove_inverse(
        s in 1u16..300,
        ids in prop::collection::vec(0u16..300, 1..16),
        probe in 0u16..300,
    ) {
        let u = Universe::new(s).unwrap();
        let mut set = set_from(u, &ids);
        let e = CommodityId(probe % s);
        let before = set.clone();
        let had = set.contains(e);
        set.insert(e).unwrap();
        prop_assert!(set.contains(e));
        set.remove(e).unwrap();
        prop_assert!(!set.contains(e));
        if !had {
            prop_assert_eq!(set, before);
        }
    }

    /// All class-C exponents produce subadditive, Condition-1 cost
    /// functions — the exact premises of the paper's analysis.
    #[test]
    fn class_c_properties_hold(
        s in 2u16..200,
        x in 0.0..2.0f64,
        scale in 0.1..10.0f64,
    ) {
        let c = CostModel::power(s, x, scale);
        condition1_sampled(&c, 0, 200, 7).unwrap();
        subadditive_sampled(&c, 0, 200, 11).unwrap();
    }

    /// Cost functions are permutation-invariant where they should be:
    /// Power and CeilSqrt depend only on |σ|.
    #[test]
    fn size_only_costs_are_symmetric(
        s in 4u16..64,
        ids in prop::collection::vec(0u16..64, 1..8),
        shift in 1u16..8,
    ) {
        let u = Universe::new(s).unwrap();
        let a = set_from(u, &ids);
        let shifted: Vec<u16> = a.iter().map(|e| (e.0 + shift) % s).collect();
        let b = CommoditySet::from_ids(u, &shifted).unwrap();
        prop_assume!(a.len() == b.len()); // collisions change the size
        for cost in [CostModel::power(s, 1.3, 2.0), CostModel::ceil_sqrt(s)] {
            prop_assert!((cost.cost(0, &a) - cost.cost(0, &b)).abs() < 1e-12);
        }
    }

    /// Affine and linear models price exactly as specified.
    #[test]
    fn affine_and_linear_price_formulas(
        s in 2u16..64,
        ids in prop::collection::vec(0u16..64, 1..10),
        open in 0.0..5.0f64,
        per in 0.1..3.0f64,
    ) {
        let u = Universe::new(s).unwrap();
        let set = set_from(u, &ids);
        let k = set.len() as f64;
        let affine = CostModel::affine(s, open, per);
        prop_assert!((affine.cost(0, &set) - (open + per * k)).abs() < 1e-12);
        let linear = CostModel::linear_uniform(s, per);
        prop_assert!((linear.cost(0, &set) - per * k).abs() < 1e-12);
        // Empty is free for every model.
        prop_assert_eq!(affine.cost(0, &CommoditySet::empty(u)), 0.0);
    }
}
