//! The online-algorithm interface shared by PD-OMFLP, RAND-OMFLP and every
//! baseline.
//!
//! An online algorithm receives requests one at a time and must serve each
//! immediately and irrevocably (paper §1): it may open facilities and must
//! connect the request to open facilities jointly covering its demand.

use crate::{
    instance::Instance, request::Request, solution::FacilityId, solution::Solution, CoreError,
};

/// How one request was served.
///
/// `PartialEq` compares costs as exact `f64` values — the differential suite
/// relies on this to assert *bit-identical* behavior between the indexed and
/// the linear-scan PD serve paths, not merely "close" costs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Facilities opened while serving this request.
    pub opened: Vec<FacilityId>,
    /// Facilities (deduplicated) the request was connected to.
    pub assigned_to: Vec<FacilityId>,
    /// Connection cost paid for this request.
    pub connection_cost: f64,
    /// Construction cost paid while serving this request.
    pub construction_cost: f64,
    /// `true` when the request was served by a single large facility
    /// (configuration `S`), the paper's "large" serve mode.
    pub served_by_large: bool,
}

/// A cheap, self-contained aggregate of live engine state, for publication
/// behind snapshot handles: a serve shard clones one of these after each
/// micro-batch and swaps it into an `Arc`, so metrics and bound checks read
/// a consistent view without ever stalling (or borrowing into) the engine.
///
/// `PartialEq` compares costs as exact `f64` values — the serve determinism
/// suite asserts snapshots are *bit-identical* across shard/thread counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSnapshot {
    /// Requests served so far.
    pub arrivals: usize,
    /// Facilities opened so far / of them large (full configuration).
    pub facilities: usize,
    /// Large facilities among them.
    pub large_facilities: usize,
    /// Construction cost paid so far.
    pub construction_cost: f64,
    /// Connection cost paid so far.
    pub connection_cost: f64,
    /// `Σ_r Σ_e a_{re}` over served requests — 0 for engines without duals.
    pub dual_sum: f64,
    /// The engine's dual-feasibility lower bound on OPT (Corollary 17
    /// scaling for PD) — 0 for engines without one.
    pub dual_lower_bound: f64,
    /// Whether the engine state behind this snapshot is trustworthy.
    /// `true` for every snapshot an engine publishes itself; a serve layer
    /// that quarantines a faulted tenant republishes the tenant's last
    /// snapshot with this cleared, so readers learn the state is frozen at
    /// its pre-fault value and must not be used for bound checks.
    pub valid: bool,
}

impl Default for EngineSnapshot {
    /// The all-zero snapshot of an engine that has served nothing — which
    /// is a perfectly *valid* state, hence `valid: true`.
    fn default() -> Self {
        Self {
            arrivals: 0,
            facilities: 0,
            large_facilities: 0,
            construction_cost: 0.0,
            connection_cost: 0.0,
            dual_sum: 0.0,
            dual_lower_bound: 0.0,
            valid: true,
        }
    }
}

impl EngineSnapshot {
    /// The generic projection every engine supports: counters and costs
    /// read from the solution under construction, dual fields zero.
    pub fn from_solution(sol: &Solution) -> Self {
        Self {
            arrivals: sol.num_requests(),
            facilities: sol.facilities().len(),
            large_facilities: sol.num_large_facilities(),
            construction_cost: sol.construction_cost(),
            connection_cost: sol.connection_cost(),
            dual_sum: 0.0,
            dual_lower_bound: 0.0,
            valid: true,
        }
    }

    /// This snapshot with the validity flag cleared — what a serve layer
    /// republishes for a quarantined tenant.
    pub fn invalidated(mut self) -> Self {
        self.valid = false;
        self
    }

    /// Construction + connection cost.
    pub fn total_cost(&self) -> f64 {
        self.construction_cost + self.connection_cost
    }
}

/// An online algorithm for the OMFLP.
pub trait OnlineAlgorithm {
    /// Serves the next request, updating internal state irrevocably.
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError>;

    /// The solution built so far.
    fn solution(&self) -> &Solution;

    /// Short algorithm name for experiment tables.
    fn name(&self) -> &'static str;

    /// A read-only aggregate of the current state, cheap enough to take
    /// once per micro-batch. Engines with richer state (PD's duals)
    /// override this to fill the extra fields.
    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot::from_solution(self.solution())
    }
}

/// Serves an entire request sequence, returning the final total cost.
///
/// Stops at the first error (a malformed request); by then the solution holds
/// all previously served requests.
pub fn run_online<A: OnlineAlgorithm + ?Sized>(
    alg: &mut A,
    requests: &[Request],
) -> Result<f64, CoreError> {
    for r in requests {
        alg.serve(r)?;
    }
    Ok(alg.solution().total_cost())
}

/// Serves a sequence and verifies the resulting solution against the
/// instance. Intended for tests and the experiment harness, where a silent
/// infeasibility would invalidate every measured ratio.
pub fn run_online_verified<A: OnlineAlgorithm + ?Sized>(
    alg: &mut A,
    inst: &Instance,
    requests: &[Request],
) -> Result<f64, CoreError> {
    let cost = run_online(alg, requests)?;
    alg.solution().verify(inst)?;
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::CommoditySet;
    use omfl_metric::{line::LineMetric, PointId};

    /// A trivial test algorithm: opens a dedicated full facility at every
    /// request's location (correct but expensive).
    struct OpenEverywhere<'a> {
        inst: &'a Instance,
        sol: Solution,
    }

    impl OnlineAlgorithm for OpenEverywhere<'_> {
        fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
            request.validate(self.inst)?;
            let config = CommoditySet::full(self.inst.universe());
            let cost = self.inst.facility_cost(request.location(), &config);
            let f = self
                .sol
                .open_facility(self.inst, request.location(), config);
            let a = self.sol.assign(self.inst, request.clone(), &[f]);
            Ok(ServeOutcome {
                opened: vec![f],
                assigned_to: a.facilities.clone(),
                connection_cost: a.connection_cost,
                construction_cost: cost,
                served_by_large: true,
            })
        }

        fn solution(&self) -> &Solution {
            &self.sol
        }

        fn name(&self) -> &'static str {
            "open-everywhere"
        }
    }

    #[test]
    fn run_online_accumulates_and_verifies() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0]).unwrap()),
            2,
            CostModel::power(2, 1.0, 3.0),
        )
        .unwrap();
        let u = inst.universe();
        let reqs = vec![
            Request::new(PointId(0), CommoditySet::from_ids(u, &[0]).unwrap()),
            Request::new(PointId(1), CommoditySet::from_ids(u, &[0, 1]).unwrap()),
        ];
        let mut alg = OpenEverywhere {
            inst: &inst,
            sol: Solution::new(),
        };
        let cost = run_online_verified(&mut alg, &inst, &reqs).unwrap();
        // Two large facilities at 3·sqrt(2) each; zero connection cost.
        assert!((cost - 2.0 * 3.0 * 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(alg.name(), "open-everywhere");
    }

    #[test]
    fn run_online_stops_on_bad_request() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0]).unwrap()),
            2,
            CostModel::power(2, 1.0, 1.0),
        )
        .unwrap();
        let u = inst.universe();
        let reqs = vec![Request::new(
            PointId(9), // out of range
            CommoditySet::from_ids(u, &[0]).unwrap(),
        )];
        let mut alg = OpenEverywhere {
            inst: &inst,
            sol: Solution::new(),
        };
        assert!(run_online(&mut alg, &reqs).is_err());
    }
}
