//! Closed-form bound curves from the paper, used by the experiment harness
//! to print "paper shape" columns next to measured ratios.
//!
//! * Theorem 2 / Corollary 3: lower bound `Ω(√|S| + log n / log log n)`;
//! * Theorem 4: PD-OMFLP is `O(√|S| · log n)`;
//! * Theorem 19: RAND-OMFLP is `O(√|S| · log n / log log n)`;
//! * Theorem 18 / Figure 2: for class-C costs `g_x(σ) = |σ|^{x/2}`, upper
//!   `O(√|S|^{(2x−x²)/2} · log n)` and lower
//!   `Ω(min{√|S|^{(2−x)/2}, √|S|^{x/2}} + log n / log log n)`.
//!
//! These are *shapes* (no hidden constants); the harness normalizes them
//! against measurements at a reference point.

/// `√|S|` — the small/large threshold of the general analysis.
pub fn sqrt_s(s: usize) -> f64 {
    (s as f64).sqrt()
}

/// `log n / log log n`, the single-commodity online facility location bound
/// (Fotakis). Defined as 1 for `n < 4` to avoid degenerate denominators.
pub fn log_over_loglog(n: usize) -> f64 {
    if n < 4 {
        return 1.0;
    }
    let ln = (n as f64).ln();
    ln / ln.ln().max(1.0)
}

/// Theorem 4 shape: `√|S| · ln n`.
pub fn pd_upper(s: usize, n: usize) -> f64 {
    sqrt_s(s) * (n.max(2) as f64).ln()
}

/// Theorem 19 shape: `√|S| · ln n / ln ln n`.
pub fn rand_upper(s: usize, n: usize) -> f64 {
    sqrt_s(s) * log_over_loglog(n)
}

/// Corollary 3 shape: `√|S| + ln n / ln ln n`.
pub fn general_lower(s: usize, n: usize) -> f64 {
    sqrt_s(s) + log_over_loglog(n)
}

/// The trivial per-commodity decomposition shape (§1.3): `|S| · ln n / ln ln n`.
pub fn decomposition_upper(s: usize, n: usize) -> f64 {
    s as f64 * log_over_loglog(n)
}

/// Figure 2 upper curve: `√|S|^{(2x−x²)/2} = |S|^{(2x−x²)/4}`.
///
/// Equals 1 at `x = 0`, peaks at `|S|^{1/4}` at `x = 1`, returns to 1 at
/// `x = 2`.
pub fn class_c_upper(s: usize, x: f64) -> f64 {
    (s as f64).powf((2.0 * x - x * x) / 4.0)
}

/// Figure 2 lower curve: `min{√|S|^{(2−x)/2}, √|S|^{x/2}}
/// = min{|S|^{(2−x)/4}, |S|^{x/4}}`.
pub fn class_c_lower(s: usize, x: f64) -> f64 {
    let sf = s as f64;
    sf.powf((2.0 - x) / 4.0).min(sf.powf(x / 4.0))
}

/// The §3.3 analysis threshold `a = g_x(|S|) = √|S|^x` separating "small"
/// from "large" configurations in the refined proof.
pub fn class_c_threshold(s: usize, x: f64) -> f64 {
    (s as f64).sqrt().powf(x)
}

/// Tabulates the two Figure 2 curves over `x ∈ [0, 2]` with `points`
/// samples — exactly the data the paper plots for `|S| = 10,000`.
pub fn figure2_table(s: usize, points: usize) -> Vec<(f64, f64, f64)> {
    assert!(points >= 2);
    (0..points)
        .map(|i| {
            let x = 2.0 * i as f64 / (points - 1) as f64;
            (x, class_c_upper(s, x), class_c_lower(s, x))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_endpoints_and_peak() {
        // Paper: "For x ∈ {0, 1, 2} the functions have the same value" and
        // "both have a peak of value 4√|S| at x = 1" (for |S| = 10,000:
        // 4√10000 = 10).
        let s = 10_000;
        for &x in &[0.0, 1.0, 2.0] {
            assert!(
                (class_c_upper(s, x) - class_c_lower(s, x)).abs() < 1e-9,
                "curves must agree at x = {x}"
            );
        }
        assert!((class_c_upper(s, 1.0) - 10.0).abs() < 1e-9);
        assert!((class_c_lower(s, 1.0) - 10.0).abs() < 1e-9);
        assert!((class_c_upper(s, 0.0) - 1.0).abs() < 1e-9);
        assert!((class_c_upper(s, 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn upper_dominates_lower_on_class_c() {
        let s = 4096;
        for i in 0..=40 {
            let x = 2.0 * i as f64 / 40.0;
            assert!(
                class_c_upper(s, x) >= class_c_lower(s, x) - 1e-9,
                "upper < lower at x = {x}"
            );
        }
    }

    #[test]
    fn figure2_table_shape() {
        let t = figure2_table(10_000, 51);
        assert_eq!(t.len(), 51);
        assert_eq!(t[0].0, 0.0);
        assert_eq!(t[50].0, 2.0);
        // Peak at the middle sample (x = 1).
        let max = t
            .iter()
            .map(|&(_, u, _)| u)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((t[25].1 - max).abs() < 1e-9);
    }

    #[test]
    fn monotone_growth_in_s_and_n() {
        assert!(pd_upper(64, 100) < pd_upper(256, 100));
        assert!(pd_upper(64, 100) < pd_upper(64, 1000));
        assert!(rand_upper(64, 1000) < pd_upper(64, 1000));
        assert!(general_lower(64, 100) < decomposition_upper(64, 100));
    }

    #[test]
    fn log_over_loglog_degenerate_inputs() {
        assert_eq!(log_over_loglog(0), 1.0);
        assert_eq!(log_over_loglog(3), 1.0);
        assert!(log_over_loglog(1_000_000) > 1.0);
    }

    #[test]
    fn threshold_matches_sqrt_s_at_x1() {
        assert!((class_c_threshold(100, 1.0) - 10.0).abs() < 1e-9);
        assert!((class_c_threshold(100, 2.0) - 100.0).abs() < 1e-9);
        assert!((class_c_threshold(100, 0.0) - 1.0).abs() < 1e-9);
    }
}
