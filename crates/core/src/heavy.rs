//! Heavy-commodity exclusion — the §5 future-work extension.
//!
//! Condition 1 "indirectly implies that the costs for single commodities are
//! not too different". When a few *heavy* commodities violate it, the paper
//! suggests: "simply run our algorithms in which the heavy commodities are
//! excluded such that a large facility becomes one including all non-heavy
//! commodities", handling the heavy ones separately.
//!
//! [`HeavyInstances`] splits an instance into a *light* sub-instance (the
//! non-heavy commodities, re-indexed densely, with a cost adapter that maps
//! configurations back to the original cost function) plus one
//! single-commodity sub-instance per heavy commodity.
//! [`HeavyExclusion`] runs PD-OMFLP on each part and mirrors every opening
//! and assignment into one solution over the *original* instance, so costs
//! and feasibility are accounted in the original model.

use crate::algorithm::{OnlineAlgorithm, ServeOutcome};
use crate::instance::Instance;
use crate::pd::PdOmflp;
use crate::request::Request;
use crate::solution::{FacilityId, Solution};
use crate::CoreError;
use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::{CommodityId, CommoditySet, Universe};
use omfl_metric::{Metric, PointId};
use std::sync::Arc;

/// A metric handle that can be shared between the original instance and the
/// sub-instances without copying the distance data.
pub struct SharedMetric(pub Arc<dyn Metric>);

impl Metric for SharedMetric {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.0.distance(a, b)
    }

    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        self.0.fill_row(q, out)
    }

    fn coherent_order(&self) -> Option<Vec<u32>> {
        self.0.coherent_order()
    }

    fn kd_coords(&self) -> Option<omfl_metric::KdCoords> {
        self.0.kd_coords()
    }

    fn screen_distances(&self, q: PointId, others: &[u32], lo: &mut [f64], hi: &mut [f64]) -> bool {
        self.0.screen_distances(q, others, lo, hi)
    }
}

/// Cost adapter presenting the light sub-universe of a [`CostModel`].
struct LightCost {
    inner: CostModel,
    /// light id → original id, ascending.
    light_to_orig: Vec<CommodityId>,
    orig_universe: Universe,
    universe: Universe,
}

impl FacilityCostFn for LightCost {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn cost(&self, location: usize, config: &CommoditySet) -> f64 {
        let mut mapped = CommoditySet::empty(self.orig_universe);
        for e in config.iter() {
            mapped
                .insert(self.light_to_orig[e.index()])
                .expect("light map targets are in the original universe");
        }
        self.inner.cost(location, &mapped)
    }
}

/// Cost adapter presenting one original commodity as a 1-commodity universe.
struct SingleCost {
    inner: CostModel,
    orig: CommodityId,
    orig_universe: Universe,
    universe: Universe,
}

impl FacilityCostFn for SingleCost {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn cost(&self, location: usize, config: &CommoditySet) -> f64 {
        if config.is_empty() {
            0.0
        } else {
            let s = CommoditySet::singleton(self.orig_universe, self.orig)
                .expect("heavy id is in the original universe");
            self.inner.cost(location, &s)
        }
    }
}

/// The original instance plus its light/heavy decomposition.
pub struct HeavyInstances {
    /// The undecomposed instance (costs from the given [`CostModel`]).
    pub original: Instance,
    /// Sub-instance over the light commodities (re-indexed `0..L`).
    pub light: Instance,
    /// One single-commodity sub-instance per heavy commodity, in the order
    /// given at construction.
    pub heavy: Vec<(CommodityId, Instance)>,
    /// light id → original id.
    light_to_orig: Vec<CommodityId>,
    /// original id → light id (None for heavy commodities).
    orig_to_light: Vec<Option<u16>>,
}

impl HeavyInstances {
    /// Splits `cost` over `metric` into light + heavy parts.
    ///
    /// At least one commodity must remain light, heavy ids must be in range
    /// and distinct.
    pub fn build(
        metric: Arc<dyn Metric>,
        cost: CostModel,
        heavy_ids: &[CommodityId],
    ) -> Result<Self, CoreError> {
        let orig_universe = cost.universe();
        let s = orig_universe.len();
        let mut is_heavy = vec![false; s];
        for &h in heavy_ids {
            if h.index() >= s {
                return Err(CoreError::BadInstance(format!(
                    "heavy commodity {h} out of range for |S| = {s}"
                )));
            }
            if std::mem::replace(&mut is_heavy[h.index()], true) {
                return Err(CoreError::BadInstance(format!(
                    "heavy commodity {h} listed twice"
                )));
            }
        }
        let light_to_orig: Vec<CommodityId> = (0..s as u16)
            .filter(|&e| !is_heavy[e as usize])
            .map(CommodityId)
            .collect();
        if light_to_orig.is_empty() {
            return Err(CoreError::BadInstance(
                "at least one commodity must remain light".into(),
            ));
        }
        let mut orig_to_light = vec![None; s];
        for (li, &o) in light_to_orig.iter().enumerate() {
            orig_to_light[o.index()] = Some(li as u16);
        }
        let light_universe =
            Universe::new(light_to_orig.len() as u16).expect("light part is non-empty");
        let single_universe = Universe::new(1).expect("1 >= 1");

        let original = Instance::with_cost_fn(
            Box::new(SharedMetric(Arc::clone(&metric))),
            Box::new(cost.clone()),
        )?;
        let light = Instance::with_cost_fn(
            Box::new(SharedMetric(Arc::clone(&metric))),
            Box::new(LightCost {
                inner: cost.clone(),
                light_to_orig: light_to_orig.clone(),
                orig_universe,
                universe: light_universe,
            }),
        )?;
        let mut heavy = Vec::with_capacity(heavy_ids.len());
        for &h in heavy_ids {
            heavy.push((
                h,
                Instance::with_cost_fn(
                    Box::new(SharedMetric(Arc::clone(&metric))),
                    Box::new(SingleCost {
                        inner: cost.clone(),
                        orig: h,
                        orig_universe,
                        universe: single_universe,
                    }),
                )?,
            ));
        }
        Ok(Self {
            original,
            light,
            heavy,
            light_to_orig,
            orig_to_light,
        })
    }
}

/// PD-OMFLP with heavy commodities excluded from prediction (§5).
pub struct HeavyExclusion<'a> {
    parts: &'a HeavyInstances,
    light_alg: PdOmflp<'a>,
    heavy_algs: Vec<PdOmflp<'a>>,
    /// sub-facility id → own facility id, per sub-algorithm.
    light_fmap: Vec<FacilityId>,
    heavy_fmaps: Vec<Vec<FacilityId>>,
    sol: Solution,
}

impl<'a> HeavyExclusion<'a> {
    /// Creates the composite algorithm over a decomposition.
    pub fn new(parts: &'a HeavyInstances) -> Self {
        Self {
            parts,
            light_alg: PdOmflp::new(&parts.light),
            heavy_algs: parts.heavy.iter().map(|(_, i)| PdOmflp::new(i)).collect(),
            light_fmap: Vec::new(),
            heavy_fmaps: vec![Vec::new(); parts.heavy.len()],
            sol: Solution::new(),
        }
    }

    /// Mirrors freshly opened sub-facilities into the composite solution.
    fn mirror_opened(
        sub_sol: &Solution,
        opened: &[FacilityId],
        map_config: impl Fn(&CommoditySet) -> CommoditySet,
        fmap: &mut Vec<FacilityId>,
        own: &mut Solution,
        orig: &Instance,
    ) {
        for &fid in opened {
            let f = &sub_sol.facilities()[fid.index()];
            let own_fid = own.open_facility(orig, f.location, map_config(&f.config));
            debug_assert_eq!(fid.index(), fmap.len(), "sub facilities open densely");
            fmap.push(own_fid);
        }
    }
}

impl OnlineAlgorithm for HeavyExclusion<'_> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        let orig = &self.parts.original;
        request.validate(orig)?;
        let start_con = self.sol.construction_cost();
        let mut opened_own = Vec::new();
        let mut assigned_own = Vec::new();
        let mut any_large = false;

        // Light part.
        let light_universe = self.parts.light.universe();
        let mut light_demand = CommoditySet::empty(light_universe);
        for e in request.demand().iter() {
            if let Some(li) = self.parts.orig_to_light[e.index()] {
                light_demand
                    .insert(CommodityId(li))
                    .expect("light id in light universe");
            }
        }
        if !light_demand.is_empty() {
            let sub_req = Request::new(request.location(), light_demand);
            let out = self.light_alg.serve(&sub_req)?;
            any_large |= out.served_by_large;
            let light_to_orig = &self.parts.light_to_orig;
            let orig_universe = orig.universe();
            Self::mirror_opened(
                self.light_alg.solution(),
                &out.opened,
                |cfg| {
                    let mut mapped = CommoditySet::empty(orig_universe);
                    for e in cfg.iter() {
                        mapped
                            .insert(light_to_orig[e.index()])
                            .expect("in original universe");
                    }
                    mapped
                },
                &mut self.light_fmap,
                &mut self.sol,
                orig,
            );
            for fid in out.assigned_to {
                assigned_own.push(self.light_fmap[fid.index()]);
            }
        }

        // Heavy parts.
        for (hi, (h, hinst)) in self.parts.heavy.iter().enumerate() {
            if !request.demand().contains(*h) {
                continue;
            }
            let sub_demand = CommoditySet::full(hinst.universe());
            let sub_req = Request::new(request.location(), sub_demand);
            let out = self.heavy_algs[hi].serve(&sub_req)?;
            let orig_universe = orig.universe();
            let h = *h;
            Self::mirror_opened(
                self.heavy_algs[hi].solution(),
                &out.opened,
                |_| CommoditySet::singleton(orig_universe, h).expect("heavy id in range"),
                &mut self.heavy_fmaps[hi],
                &mut self.sol,
                orig,
            );
            for fid in out.assigned_to {
                assigned_own.push(self.heavy_fmaps[hi][fid.index()]);
            }
        }

        // Facilities mirrored during this serve carry `opened_at ==` the
        // current request index in the composite solution.
        let before_assign = self.sol.num_requests();
        opened_own.extend(
            self.sol
                .facilities()
                .iter()
                .filter(|f| f.opened_at == before_assign)
                .map(|f| f.id),
        );

        let assignment = self.sol.assign(orig, request.clone(), &assigned_own);
        Ok(ServeOutcome {
            opened: opened_own,
            assigned_to: assignment.facilities.clone(),
            connection_cost: assignment.connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large: any_large && request.demand().len() > 1,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "heavy-exclusion-pd"
    }
}

/// Flags commodities whose *marginal* cost in the full configuration exceeds
/// `factor ×` the average per-commodity cost of `S` at location 0 — the
/// paper's informal notion of a heavy commodity ("a high increase in the
/// construction cost when it is added to an existing configuration").
pub fn detect_heavy(inst: &Instance, factor: f64) -> Vec<CommodityId> {
    let u = inst.universe();
    let full = CommoditySet::full(u);
    let f_full = inst.facility_cost(PointId(0), &full);
    let avg = f_full / u.len() as f64;
    let mut heavy = Vec::new();
    for e in u.ids() {
        let mut without = full.clone();
        without.remove(e).expect("in range");
        if without.is_empty() {
            continue; // |S| = 1: nothing to compare against
        }
        let marginal = f_full - inst.facility_cost(PointId(0), &without);
        if marginal > factor * avg {
            heavy.push(e);
        }
    }
    heavy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::run_online_verified;
    use omfl_metric::line::LineMetric;

    fn shared_line(positions: Vec<f64>) -> Arc<dyn Metric> {
        Arc::new(LineMetric::new(positions).unwrap())
    }

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    fn heavy_cost(s: u16, surcharge_on_last: f64) -> CostModel {
        let mut sur = vec![0.0; s as usize];
        sur[s as usize - 1] = surcharge_on_last;
        CostModel::power(s, 1.0, 1.0).with_surcharges(sur).unwrap()
    }

    #[test]
    fn build_rejects_bad_heavy_lists() {
        let m = shared_line(vec![0.0]);
        let c = CostModel::power(4, 1.0, 1.0);
        assert!(HeavyInstances::build(m.clone(), c.clone(), &[CommodityId(9)]).is_err());
        assert!(
            HeavyInstances::build(m.clone(), c.clone(), &[CommodityId(1), CommodityId(1)]).is_err()
        );
        let all: Vec<CommodityId> = (0..4).map(CommodityId).collect();
        assert!(HeavyInstances::build(m, c, &all).is_err());
    }

    #[test]
    fn light_cost_adapter_maps_back() {
        let m = shared_line(vec![0.0]);
        let parts = HeavyInstances::build(m, heavy_cost(4, 100.0), &[CommodityId(3)]).unwrap();
        assert_eq!(parts.light.num_commodities(), 3);
        // The light "full" config is {0,1,2} in original ids — cost sqrt(3),
        // no surcharge.
        let light_full = parts.light.large_cost(PointId(0));
        assert!((light_full - 3f64.sqrt()).abs() < 1e-12);
        // The heavy instance sees only commodity 3, cost 1 + 100.
        let h = &parts.heavy[0].1;
        assert!((h.large_cost(PointId(0)) - 101.0).abs() < 1e-12);
    }

    #[test]
    fn composite_solution_is_feasible_in_original_model() {
        let m = shared_line(vec![0.0, 2.0, 5.0]);
        let parts = HeavyInstances::build(m, heavy_cost(6, 50.0), &[CommodityId(5)]).unwrap();
        let mut alg = HeavyExclusion::new(&parts);
        let inst = &parts.original;
        let reqs: Vec<Request> = (0..20u32)
            .map(|i| req(inst, i % 3, &[(i % 5) as u16, ((i * 2 + 1) % 6) as u16]))
            .collect();
        run_online_verified(&mut alg, inst, &reqs).unwrap();
        assert_eq!(alg.solution().num_requests(), 20);
        // No facility may offer the heavy commodity together with others:
        // the wrapper never predicts commodity 5.
        for f in alg.solution().facilities() {
            if f.config.contains(CommodityId(5)) {
                assert_eq!(f.config.len(), 1, "heavy commodity must stay isolated");
            }
        }
    }

    #[test]
    fn detect_heavy_flags_the_surcharged_commodity() {
        let m = shared_line(vec![0.0]);
        let inst =
            Instance::with_cost_fn(Box::new(SharedMetric(m)), Box::new(heavy_cost(8, 100.0)))
                .unwrap();
        let heavy = detect_heavy(&inst, 4.0);
        assert_eq!(heavy, vec![CommodityId(7)]);
    }

    #[test]
    fn detect_heavy_empty_on_uniform_costs() {
        let m = shared_line(vec![0.0]);
        let inst = Instance::with_cost_fn(
            Box::new(SharedMetric(m)),
            Box::new(CostModel::power(8, 1.0, 1.0)),
        )
        .unwrap();
        assert!(detect_heavy(&inst, 4.0).is_empty());
    }
}
