//! Incremental nearest-open-facility indexing — the serve-path hot layer.
//!
//! Every online engine in this workspace repeatedly asks the same two
//! questions per arrival: "what is the nearest open facility offering
//! commodity `e`?" and "what is the nearest open *large* facility?". The
//! naive answer scans every open facility per query, so a request stream of
//! length `n` pays `O(n · |F|)` distance evaluations — quadratic once `|F|`
//! grows with `n` (cf. the incremental potential maintenance in
//! Fotakis-style online facility location implementations).
//!
//! [`FacilityIndex`] inverts the maintenance: facilities open rarely, so on
//! each opening we spend `O(|M|)` once to refresh a per-point cache of
//! `(nearest facility, distance)` and every subsequent query is `O(1)`.
//!
//! # Bit-identical tie-breaking (the index invariant)
//!
//! The linear scans this index replaces resolve distance ties by *scan
//! order*: small facilities offering `e` in opening order, then large
//! facilities in opening order, keeping the first minimum (strict `<` to
//! replace). The cache reproduces that exactly:
//!
//! * updates apply openings in opening order and replace only on a strictly
//!   smaller distance, so within each class the earliest-opened minimum wins;
//! * small and large caches are kept separate and combined at query time
//!   with `small wins ties`, mirroring the smalls-then-larges scan order;
//! * cached distances are produced by the *same* `distance(query, location)`
//!   call the scan would make, so the floats are identical, not just close.
//!
//! The differential suite (`tests/tests/differential.rs`) pins this down by
//! comparing the indexed PD against the retained linear-scan reference
//! engine bit for bit.

use crate::instance::Instance;
use crate::solution::FacilityId;
use omfl_commodity::CommodityId;
use omfl_metric::PointId;

const NO_FACILITY: u32 = u32::MAX;

/// Per-point nearest-open-facility caches, maintained on facility openings.
///
/// Memory is `O(|M|·|S|)` — the same order as the PD bid matrix the analysis
/// already requires.
#[derive(Debug, Clone)]
pub struct FacilityIndex {
    points: usize,
    services: usize,
    /// `d(F(e) ∩ smalls, p)`, flat `p·|S| + e`; `INFINITY` when empty.
    small_d: Vec<f64>,
    /// Matching facility ids, flat `p·|S| + e`; `NO_FACILITY` when empty.
    small_f: Vec<u32>,
    /// `d(F̂, p)`; `INFINITY` when empty.
    large_d: Vec<f64>,
    /// Matching facility ids; `NO_FACILITY` when empty.
    large_f: Vec<u32>,
    /// Openings folded in so far (for diagnostics and refresh-boundary tests).
    openings: usize,
}

impl FacilityIndex {
    /// An empty index over `points × services`.
    pub fn new(points: usize, services: usize) -> Self {
        Self {
            points,
            services,
            small_d: vec![f64::INFINITY; points * services],
            small_f: vec![NO_FACILITY; points * services],
            large_d: vec![f64::INFINITY; points],
            large_f: vec![NO_FACILITY; points],
            openings: 0,
        }
    }

    /// An empty index sized for an instance.
    pub fn for_instance(inst: &Instance) -> Self {
        Self::new(inst.num_points(), inst.num_commodities())
    }

    /// Number of openings folded into the caches so far.
    pub fn openings(&self) -> usize {
        self.openings
    }

    /// Folds a newly opened *small* facility for `e` at `at` into the cache:
    /// `O(|M|)` distance evaluations, once per opening.
    pub fn note_small_opening(
        &mut self,
        inst: &Instance,
        e: CommodityId,
        at: PointId,
        fid: FacilityId,
    ) {
        let s = self.services;
        for p in 0..self.points {
            // Same argument order as the scan it replaces: d(query, location).
            let d = inst.distance(PointId(p as u32), at);
            let idx = p * s + e.index();
            if d < self.small_d[idx] {
                self.small_d[idx] = d;
                self.small_f[idx] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// Folds a newly opened *large* facility at `at` into the cache.
    pub fn note_large_opening(&mut self, inst: &Instance, at: PointId, fid: FacilityId) {
        for p in 0..self.points {
            let d = inst.distance(PointId(p as u32), at);
            if d < self.large_d[p] {
                self.large_d[p] = d;
                self.large_f[p] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// Nearest open facility offering `e` (small-for-`e` or large), `O(1)`.
    ///
    /// Ties between a small and a large facility go to the small one — the
    /// scan order of the linear search this replaces.
    #[inline]
    pub fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let idx = from.index() * self.services + e.index();
        let (sd, ld) = (self.small_d[idx], self.large_d[from.index()]);
        if sd.is_infinite() && ld.is_infinite() {
            return None;
        }
        if sd <= ld {
            Some((FacilityId(self.small_f[idx]), sd))
        } else {
            Some((FacilityId(self.large_f[from.index()]), ld))
        }
    }

    /// Nearest open *large* facility, `O(1)`.
    #[inline]
    pub fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        let d = self.large_d[from.index()];
        if d.is_infinite() {
            None
        } else {
            Some((FacilityId(self.large_f[from.index()]), d))
        }
    }

    /// Nearest open small facility offering `e` (larges excluded), `O(1)`.
    #[inline]
    pub fn nearest_small(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let idx = from.index() * self.services + e.index();
        let d = self.small_d[idx];
        if d.is_infinite() {
            None
        } else {
            Some((FacilityId(self.small_f[idx]), d))
        }
    }
}

/// Location-bucketed view of frozen per-request state, used by the PD
/// engine's cap-shrink passes.
///
/// `post_open_small` / `post_open_large` must decide, per past request,
/// whether a new facility lowered its bid cap. Requests sharing a location
/// share that decision's distance, and caps only ever shrink — so per
/// `(location, commodity)` bucket we keep the member list plus an upper
/// bound on the members' caps. A whole bucket is skipped in `O(1)` when
/// `d(new facility, location)` is at least the bound, turning the
/// per-opening walk from `O(history)` into `O(|M| + actually-shrinking)`.
///
/// Bounds are allowed to go stale *high* (a skipped shrink elsewhere never
/// lowers them); they are never stale low, so skipping is always sound.
#[derive(Debug, Clone, Default)]
pub struct PastIndex {
    services: usize,
    /// Members demanding `e` located at `ℓ`, flat `ℓ·|S| + e`, in
    /// `(past index, slot)` push order (ascending — freeze appends).
    by_loc_e: Vec<Vec<(u32, u16)>>,
    /// Upper bound on `caps[slot]` over the matching bucket.
    max_cap_e: Vec<f64>,
    /// Past-request indices located at `ℓ`, ascending.
    by_loc: Vec<Vec<u32>>,
    /// Upper bound on `max(cap_total, caps[..])` over requests at `ℓ`.
    max_cap_any: Vec<f64>,
}

impl PastIndex {
    /// An empty past-request index over `points × services`.
    pub fn new(points: usize, services: usize) -> Self {
        Self {
            services,
            by_loc_e: vec![Vec::new(); points * services],
            max_cap_e: vec![0.0; points * services],
            by_loc: vec![Vec::new(); points],
            max_cap_any: vec![0.0; points],
        }
    }

    /// Registers a freshly frozen request: its location, per-slot
    /// commodities and caps, and the total cap.
    pub fn push_request(
        &mut self,
        pi: u32,
        loc: PointId,
        commodities: &[CommodityId],
        caps: &[f64],
        cap_total: f64,
    ) {
        let l = loc.index();
        let mut any = cap_total;
        for (slot, (&e, &cap)) in commodities.iter().zip(caps).enumerate() {
            let idx = l * self.services + e.index();
            self.by_loc_e[idx].push((pi, slot as u16));
            if cap > self.max_cap_e[idx] {
                self.max_cap_e[idx] = cap;
            }
            if cap > any {
                any = cap;
            }
        }
        self.by_loc[l].push(pi);
        if any > self.max_cap_any[l] {
            self.max_cap_any[l] = any;
        }
    }

    /// Candidate `(past index, slot)` members whose commodity-`e` cap *may*
    /// shrink when a small facility for `e` opens at `at` — every member at
    /// a location whose cap bound exceeds `d(at, location)`. Returned sorted
    /// ascending, i.e. the exact order the linear history walk would visit
    /// them in. Buckets that qualify have their bound clamped to the new
    /// distance (all surviving caps are at most that).
    pub fn small_shrink_candidates(
        &mut self,
        inst: &Instance,
        e: CommodityId,
        at: PointId,
    ) -> Vec<(u32, u16)> {
        let s = self.services;
        let mut out = Vec::new();
        for l in 0..self.by_loc.len() {
            let idx = l * s + e.index();
            if self.by_loc_e[idx].is_empty() {
                continue;
            }
            let dj = inst.distance(at, PointId(l as u32));
            if dj < self.max_cap_e[idx] {
                out.extend_from_slice(&self.by_loc_e[idx]);
                self.max_cap_e[idx] = dj;
            }
        }
        out.sort_unstable();
        out
    }

    /// Candidate past-request indices for a *large* opening at `at` (any cap
    /// at the location may shrink). Sorted ascending — the history-walk
    /// order. Qualifying buckets have their bound clamped to `d(at, ℓ)`.
    pub fn large_shrink_candidates(&mut self, inst: &Instance, at: PointId) -> Vec<u32> {
        let mut out = Vec::new();
        for l in 0..self.by_loc.len() {
            if self.by_loc[l].is_empty() {
                continue;
            }
            let dj = inst.distance(at, PointId(l as u32));
            if dj < self.max_cap_any[l] {
                out.extend_from_slice(&self.by_loc[l]);
                self.max_cap_any[l] = dj;
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Solution;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::CommoditySet;
    use omfl_metric::line::LineMetric;

    fn inst(positions: Vec<f64>, s: u16) -> Instance {
        Instance::new(
            Box::new(LineMetric::new(positions).unwrap()),
            s,
            CostModel::power(s, 1.0, 2.0),
        )
        .unwrap()
    }

    /// Reference linear scan with the exact tie-breaking the index must
    /// reproduce: smalls (opening order) then larges (opening order), first
    /// minimum wins.
    fn scan_nearest(
        inst: &Instance,
        sol: &Solution,
        smalls: &[FacilityId],
        larges: &[FacilityId],
        from: PointId,
    ) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        for &fid in smalls.iter().chain(larges) {
            let d = inst.distance(from, sol.facilities()[fid.index()].location);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((fid, d)),
            }
        }
        best
    }

    #[test]
    fn empty_index_answers_none() {
        let inst = inst(vec![0.0, 1.0], 3);
        let idx = FacilityIndex::for_instance(&inst);
        assert!(idx.nearest_offering(CommodityId(0), PointId(0)).is_none());
        assert!(idx.nearest_large(PointId(1)).is_none());
        assert!(idx.nearest_small(CommodityId(2), PointId(0)).is_none());
        assert_eq!(idx.openings(), 0);
    }

    #[test]
    fn matches_linear_scan_including_ties() {
        // Facilities engineered so several are equidistant from the query
        // point; the index must pick the same winner as the scan.
        let inst = inst(vec![0.0, 1.0, 2.0, 3.0, 4.0], 2);
        let mut sol = Solution::new();
        let mut idx = FacilityIndex::for_instance(&inst);
        let u = inst.universe();
        let e = CommodityId(0);
        let mut smalls = Vec::new();
        let mut larges = Vec::new();

        // Two smalls equidistant from point 2 (at 1 and 3), then a large at
        // the same distance (at 3) — scan order says the first small wins.
        for &(p, large) in &[(1u32, false), (3, false), (3, true)] {
            let config = if large {
                CommoditySet::full(u)
            } else {
                CommoditySet::singleton(u, e).unwrap()
            };
            let fid = sol.open_facility(&inst, PointId(p), config);
            if large {
                idx.note_large_opening(&inst, PointId(p), fid);
                larges.push(fid);
            } else {
                idx.note_small_opening(&inst, e, PointId(p), fid);
                smalls.push(fid);
            }
            for q in 0..inst.num_points() as u32 {
                let want = scan_nearest(&inst, &sol, &smalls, &larges, PointId(q));
                let got = idx.nearest_offering(e, PointId(q));
                assert_eq!(
                    got.map(|(f, d)| (f, d.to_bits())),
                    want.map(|(f, d)| (f, d.to_bits())),
                    "query at {q} after opening at {p}"
                );
            }
        }
        assert_eq!(idx.openings(), 3);
    }

    #[test]
    fn large_openings_serve_every_commodity() {
        let inst = inst(vec![0.0, 5.0], 4);
        let mut sol = Solution::new();
        let mut idx = FacilityIndex::for_instance(&inst);
        let fid = sol.open_facility(&inst, PointId(1), CommoditySet::full(inst.universe()));
        idx.note_large_opening(&inst, PointId(1), fid);
        for e in 0..4u16 {
            let (f, d) = idx.nearest_offering(CommodityId(e), PointId(0)).unwrap();
            assert_eq!(f, fid);
            assert_eq!(d, 5.0);
        }
        assert_eq!(idx.nearest_large(PointId(1)).unwrap().1, 0.0);
        assert!(idx.nearest_small(CommodityId(0), PointId(0)).is_none());
    }

    #[test]
    fn past_index_buckets_skip_and_sort() {
        let inst = inst(vec![0.0, 10.0, 20.0], 2);
        let mut past = PastIndex::new(3, 2);
        let e = CommodityId(0);
        // Requests at points 0 and 2 with caps 4.0; request 1 interleaved at
        // point 2 so candidate order must be re-sorted.
        past.push_request(0, PointId(0), &[e], &[4.0], 4.0);
        past.push_request(1, PointId(2), &[e], &[4.0], 4.0);
        past.push_request(2, PointId(0), &[e], &[4.0], 4.0);

        // A facility at point 1 is 10 away from both buckets: no candidates.
        assert!(past
            .small_shrink_candidates(&inst, e, PointId(1))
            .is_empty());
        // A facility at point 0 shrinks the point-0 bucket only, in
        // ascending (pi, slot) order.
        let c = past.small_shrink_candidates(&inst, e, PointId(0));
        assert_eq!(c, vec![(0, 0), (2, 0)]);
        // The bucket bound was clamped: a second opening at the same point
        // finds nothing left to shrink.
        assert!(past
            .small_shrink_candidates(&inst, e, PointId(0))
            .is_empty());
        // Large candidates cover every member at a qualifying location.
        let l = past.large_shrink_candidates(&inst, PointId(2));
        assert_eq!(l, vec![1]);
    }
}
