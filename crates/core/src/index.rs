//! Incremental nearest-open-facility indexing — the serve-path hot layer.
//!
//! Every online engine in this workspace repeatedly asks the same two
//! questions per arrival: "what is the nearest open facility offering
//! commodity `e`?" and "what is the nearest open *large* facility?". The
//! naive answer scans every open facility per query, so a request stream of
//! length `n` pays `O(n · |F|)` distance evaluations — quadratic once `|F|`
//! grows with `n` (cf. the incremental potential maintenance in
//! Fotakis-style online facility location implementations).
//!
//! [`FacilityIndex`] inverts the maintenance: facilities open rarely, so on
//! each opening we spend `O(|M|)` once to refresh a per-point cache of
//! `(nearest facility, distance)` and every subsequent query is `O(1)`.
//!
//! # Bit-identical tie-breaking (the index invariant)
//!
//! The linear scans this index replaces resolve distance ties by *scan
//! order*: small facilities offering `e` in opening order, then large
//! facilities in opening order, keeping the first minimum (strict `<` to
//! replace). The cache reproduces that exactly:
//!
//! * updates apply openings in opening order and replace only on a strictly
//!   smaller distance, so within each class the earliest-opened minimum wins;
//! * small and large caches are kept separate and combined at query time
//!   with `small wins ties`, mirroring the smalls-then-larges scan order;
//! * cached distances are produced by the *same* `distance(query, location)`
//!   call the scan would make, so the floats are identical, not just close.
//!
//! The differential suite (`tests/tests/differential.rs`) pins this down by
//! comparing the indexed PD against the retained linear-scan reference
//! engine bit for bit.

use crate::instance::Instance;
use crate::solution::FacilityId;
use omfl_commodity::CommodityId;
use omfl_metric::PointId;

const NO_FACILITY: u32 = u32::MAX;

/// Per-point nearest-open-facility caches, maintained on facility openings.
///
/// Memory is `O(|M|·|S|)` — the same order as the PD bid matrix the analysis
/// already requires.
#[derive(Debug, Clone)]
pub struct FacilityIndex {
    points: usize,
    /// `d(F(e) ∩ smalls, p)`, flat `e·|M| + p` (commodity-major: opening
    /// updates walk every `p` for one `e`, so this keeps them on contiguous
    /// memory; queries are single lookups either way). `INFINITY` when
    /// empty.
    small_d: Vec<f64>,
    /// Matching facility ids, flat `e·|M| + p`; `NO_FACILITY` when empty.
    small_f: Vec<u32>,
    /// `d(F̂, p)`; `INFINITY` when empty.
    large_d: Vec<f64>,
    /// Matching facility ids; `NO_FACILITY` when empty.
    large_f: Vec<u32>,
    /// Openings folded in so far (for diagnostics and refresh-boundary tests).
    openings: usize,
}

impl FacilityIndex {
    /// An empty index over `points × services`.
    pub fn new(points: usize, services: usize) -> Self {
        Self {
            points,
            small_d: vec![f64::INFINITY; points * services],
            small_f: vec![NO_FACILITY; points * services],
            large_d: vec![f64::INFINITY; points],
            large_f: vec![NO_FACILITY; points],
            openings: 0,
        }
    }

    /// An empty index sized for an instance.
    pub fn for_instance(inst: &Instance) -> Self {
        Self::new(inst.num_points(), inst.num_commodities())
    }

    /// Number of openings folded into the caches so far.
    pub fn openings(&self) -> usize {
        self.openings
    }

    /// Folds a newly opened *small* facility for `e` at `at` into the cache:
    /// `O(|M|)` distance evaluations, once per opening.
    pub fn note_small_opening(
        &mut self,
        inst: &Instance,
        e: CommodityId,
        at: PointId,
        fid: FacilityId,
    ) {
        let base = e.index() * self.points;
        for p in 0..self.points {
            // Same argument order as the scan it replaces: d(query, location).
            let d = inst.distance(PointId(p as u32), at);
            let idx = base + p;
            if d < self.small_d[idx] {
                self.small_d[idx] = d;
                self.small_f[idx] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// Folds a newly opened *large* facility at `at` into the cache.
    pub fn note_large_opening(&mut self, inst: &Instance, at: PointId, fid: FacilityId) {
        for p in 0..self.points {
            let d = inst.distance(PointId(p as u32), at);
            if d < self.large_d[p] {
                self.large_d[p] = d;
                self.large_f[p] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// [`Self::note_small_opening`] with the opening location's distance
    /// row supplied by the caller (`row[p] = d(p, at)`, e.g. from a
    /// [`omfl_metric::blocked::BlockedRowCache`]). The row values must be
    /// the verbatim metric results — then this is bit-identical to the
    /// per-call variant, minus the `O(|M|)` pointer-chasing.
    pub fn note_small_opening_with_row(&mut self, row: &[f64], e: CommodityId, fid: FacilityId) {
        let base = e.index() * self.points;
        let (d_row, f_row) = (
            &mut self.small_d[base..base + row.len()],
            &mut self.small_f[base..base + row.len()],
        );
        for ((sd, sf), &d) in d_row.iter_mut().zip(f_row.iter_mut()).zip(row) {
            if d < *sd {
                *sd = d;
                *sf = fid.0;
            }
        }
        self.openings += 1;
    }

    /// [`Self::note_large_opening`] with a caller-supplied distance row.
    pub fn note_large_opening_with_row(&mut self, row: &[f64], fid: FacilityId) {
        for (p, &d) in row.iter().enumerate() {
            if d < self.large_d[p] {
                self.large_d[p] = d;
                self.large_f[p] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// Nearest open facility offering `e` (small-for-`e` or large), `O(1)`.
    ///
    /// Ties between a small and a large facility go to the small one — the
    /// scan order of the linear search this replaces.
    #[inline]
    pub fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let idx = e.index() * self.points + from.index();
        let (sd, ld) = (self.small_d[idx], self.large_d[from.index()]);
        if sd.is_infinite() && ld.is_infinite() {
            return None;
        }
        if sd <= ld {
            Some((FacilityId(self.small_f[idx]), sd))
        } else {
            Some((FacilityId(self.large_f[from.index()]), ld))
        }
    }

    /// Nearest open *large* facility, `O(1)`.
    #[inline]
    pub fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        let d = self.large_d[from.index()];
        if d.is_infinite() {
            None
        } else {
            Some((FacilityId(self.large_f[from.index()]), d))
        }
    }

    /// Nearest open small facility offering `e` (larges excluded), `O(1)`.
    #[inline]
    pub fn nearest_small(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let idx = e.index() * self.points + from.index();
        let d = self.small_d[idx];
        if d.is_infinite() {
            None
        } else {
            Some((FacilityId(self.small_f[idx]), d))
        }
    }
}

/// Location-bucketed view of frozen per-request state, used by the PD
/// engine's cap-shrink passes.
///
/// `post_open_small` / `post_open_large` must decide, per past request,
/// whether a new facility lowered its bid cap. Requests sharing a location
/// share that decision's distance, and caps only ever shrink — so per
/// `(location, commodity)` bucket we keep the member list plus an upper
/// bound on the members' caps. A whole bucket is skipped in `O(1)` when
/// `d(new facility, location)` is at least the bound, turning the
/// per-opening walk from `O(history)` into `O(|M| + actually-shrinking)`.
///
/// Bounds are allowed to go stale *high* (a skipped shrink elsewhere never
/// lowers them); they are never stale low, so skipping is always sound.
#[derive(Debug, Clone, Default)]
pub struct PastIndex {
    points: usize,
    /// Members demanding `e` located at `ℓ`, flat `e·|M| + ℓ`
    /// (commodity-major: the candidate filter walks every `ℓ` for one `e`),
    /// in `(past index, slot)` push order (ascending — freeze appends).
    by_loc_e: Vec<Vec<(u32, u16)>>,
    /// Upper bound on `caps[slot]` over the matching bucket.
    max_cap_e: Vec<f64>,
    /// Past-request indices located at `ℓ`, ascending.
    by_loc: Vec<Vec<u32>>,
    /// Upper bound on `max(cap_total, caps[..])` over requests at `ℓ`.
    max_cap_any: Vec<f64>,
}

impl PastIndex {
    /// An empty past-request index over `points × services`.
    pub fn new(points: usize, services: usize) -> Self {
        Self {
            points,
            by_loc_e: vec![Vec::new(); points * services],
            max_cap_e: vec![0.0; points * services],
            by_loc: vec![Vec::new(); points],
            max_cap_any: vec![0.0; points],
        }
    }

    /// Registers a freshly frozen request: its location, per-slot
    /// commodities and caps, and the total cap.
    pub fn push_request(
        &mut self,
        pi: u32,
        loc: PointId,
        commodities: &[CommodityId],
        caps: &[f64],
        cap_total: f64,
    ) {
        let l = loc.index();
        let mut any = cap_total;
        for (slot, (&e, &cap)) in commodities.iter().zip(caps).enumerate() {
            let idx = e.index() * self.points + l;
            self.by_loc_e[idx].push((pi, slot as u16));
            if cap > self.max_cap_e[idx] {
                self.max_cap_e[idx] = cap;
            }
            if cap > any {
                any = cap;
            }
        }
        self.by_loc[l].push(pi);
        if any > self.max_cap_any[l] {
            self.max_cap_any[l] = any;
        }
    }

    /// Candidate `(past index, slot)` members whose commodity-`e` cap *may*
    /// shrink when a small facility for `e` opens at `at` — every member at
    /// a location whose cap bound exceeds `d(at, location)`. Returned sorted
    /// ascending, i.e. the exact order the linear history walk would visit
    /// them in. Buckets that qualify have their bound clamped to the new
    /// distance (all surviving caps are at most that).
    pub fn small_shrink_candidates(
        &mut self,
        inst: &Instance,
        e: CommodityId,
        at: PointId,
    ) -> Vec<(u32, u16)> {
        let base = e.index() * self.points;
        let mut out = Vec::new();
        for l in 0..self.by_loc.len() {
            let idx = base + l;
            if self.by_loc_e[idx].is_empty() {
                continue;
            }
            let dj = inst.distance(at, PointId(l as u32));
            if dj < self.max_cap_e[idx] {
                out.extend_from_slice(&self.by_loc_e[idx]);
                self.max_cap_e[idx] = dj;
            }
        }
        out.sort_unstable();
        out
    }

    /// Candidate past-request indices for a *large* opening at `at` (any cap
    /// at the location may shrink). Sorted ascending — the history-walk
    /// order. Qualifying buckets have their bound clamped to `d(at, ℓ)`.
    pub fn large_shrink_candidates(&mut self, inst: &Instance, at: PointId) -> Vec<u32> {
        let mut out = Vec::new();
        for l in 0..self.by_loc.len() {
            if self.by_loc[l].is_empty() {
                continue;
            }
            let dj = inst.distance(at, PointId(l as u32));
            if dj < self.max_cap_any[l] {
                out.extend_from_slice(&self.by_loc[l]);
                self.max_cap_any[l] = dj;
            }
        }
        out.sort_unstable();
        out
    }
}

/// Incremental maintenance of the PD opening targets — the per-arrival
/// t3/t4 argmins `min_m (f_m − B_m)⁺ + d(m, r)` — via a bucketed
/// lower-bound prune list.
///
/// The PD event loop needs, per arrival at `r`, the cheapest *temporary
/// small* opening for each demanded commodity (t3, one argmin per `e` over
/// `(f^e_m − B[m][e])⁺ + d(m, r)`) and the cheapest *large* opening (t4,
/// over `(f^S_m − B̂[m])⁺ + d(m, r)`). Recomputing them by full scan is
/// `O(k·|M|)` per arrival — the dominant cost once the nearest-facility
/// caches ([`FacilityIndex`]) made everything else `O(1)`.
///
/// # The structure
///
/// Locations are partitioned into fixed blocks of [`TARGET_BLOCK`] ids.
/// Per commodity (plus one slot for t4) the index maintains, per block, a
/// **certified lower bound** on the *distance-free* part of the key:
///
/// ```text
/// blockmin[e][b] ≤ min_{m ∈ block b} (f^e_m − B[m][e])⁺     (the invariant)
/// ```
///
/// Since `d ≥ 0`, `blockmin` also lower-bounds every full key in the
/// block, whatever the query location — so a query walks blocks in
/// ascending id order, keeps the strict-`<` running best, and **skips
/// every block whose bound says it cannot strictly beat the best so far**.
/// Skipping on `blockmin ≥ best` is exact, tie-breaking included: a
/// skipped block's keys are all `≥ best`, and an exact tie in a later
/// block loses to the earlier winner under the scan's first-minimum rule
/// anyway. Blocks that survive the prune are scanned with the verbatim
/// scan loop, so the returned `(value, location)` is bit-identical to the
/// full scan — `tests/tests/index_bounds.rs` locksteps this against a
/// full-scan engine at every arrival.
///
/// # Maintenance under the PD budget dynamics
///
/// The primal-dual process moves budgets in two directions with very
/// different frequencies (paper §3):
///
/// * **Bumps** (every freeze): `B` grows, keys *fall*. The engine calls
///   [`Self::note_small_bump`] / [`Self::note_large_bump`] with the new
///   distance-free key for exactly the locations that moved —
///   `blockmin = min(blockmin, new)`, `O(1)` per moved budget, and the
///   invariant is restored immediately.
/// * **Shrinks** (only when a facility opens, rare): `B` falls, keys
///   *rise*. A stale-low `blockmin` stays a valid lower bound — pruning
///   merely gets weaker, never wrong — so correctness needs no action at
///   all. To keep the prune tight the engine calls [`Self::rebuild_small`]
///   / [`Self::rebuild_large`] for the affected rows after its cap-shrink
///   pass (`O(|M|)`, the same order as the pass itself).
///
/// Memory: `(|S| + 1) · ⌈|M| / TARGET_BLOCK⌉` floats — with the default
/// block size of 32, about 1/32nd of the bid matrix the engine already
/// holds.
#[derive(Debug, Clone)]
pub struct OpeningTargetIndex {
    /// Per-commodity block bounds, flat `e · nblocks + b`.
    small: Vec<f64>,
    /// t4 block bounds.
    large: Vec<f64>,
    nblocks: usize,
    /// Blocks pruned / scanned across all queries (diagnostics; the
    /// lockstep tests assert pruning actually engages).
    skipped: u64,
    scanned: u64,
}

/// Locations per prune block of the [`OpeningTargetIndex`].
pub const TARGET_BLOCK: usize = 32;

/// `(f − b)⁺` — the distance-free part of an opening-target key.
#[inline]
fn opening_key(f: f64, b: f64) -> f64 {
    (f - b).max(0.0)
}

fn block_bounds(f_row: &[f64], b_row: &[f64], out: &mut [f64]) {
    for (bi, slot) in out.iter_mut().enumerate() {
        let start = bi * TARGET_BLOCK;
        let end = (start + TARGET_BLOCK).min(f_row.len());
        let mut min = f64::INFINITY;
        for p in start..end {
            let v = opening_key(f_row[p], b_row[p]);
            if v < min {
                min = v;
            }
        }
        *slot = min;
    }
}

impl OpeningTargetIndex {
    /// Bounds for an engine whose budgets are all zero: the distance-free
    /// keys are the facility costs themselves. `f_small` is commodity-major
    /// (`e·|M| + p`), `f_full` per point — the engine's own layouts.
    pub fn new(points: usize, services: usize, f_small: &[f64], f_full: &[f64]) -> Self {
        let nblocks = points.div_ceil(TARGET_BLOCK);
        let zeros = vec![0.0; points];
        let mut small = vec![f64::INFINITY; services * nblocks];
        for e in 0..services {
            block_bounds(
                &f_small[e * points..(e + 1) * points],
                &zeros,
                &mut small[e * nblocks..(e + 1) * nblocks],
            );
        }
        let mut large = vec![f64::INFINITY; nblocks];
        block_bounds(f_full, &zeros, &mut large);
        Self {
            small,
            large,
            nblocks,
            skipped: 0,
            scanned: 0,
        }
    }

    /// The t3 argmin for commodity `e` from the query whose distance row is
    /// `dist_row`: bit-identical to the full strict-`<` scan, skipping
    /// blocks whose bound cannot strictly improve the running best.
    pub fn small_target(
        &mut self,
        e: CommodityId,
        f_row: &[f64],
        b_row: &[f64],
        dist_row: &[f64],
    ) -> (f64, PointId) {
        let bounds = &self.small[e.index() * self.nblocks..(e.index() + 1) * self.nblocks];
        Self::pruned_scan(
            bounds,
            f_row,
            b_row,
            dist_row,
            &mut self.skipped,
            &mut self.scanned,
        )
    }

    /// The t4 argmin (see [`Self::small_target`]).
    pub fn large_target(
        &mut self,
        f_full: &[f64],
        b_large: &[f64],
        dist_row: &[f64],
    ) -> (f64, PointId) {
        Self::pruned_scan(
            &self.large,
            f_full,
            b_large,
            dist_row,
            &mut self.skipped,
            &mut self.scanned,
        )
    }

    fn pruned_scan(
        bounds: &[f64],
        f_row: &[f64],
        b_row: &[f64],
        dist_row: &[f64],
        skipped: &mut u64,
        scanned: &mut u64,
    ) -> (f64, PointId) {
        let m = f_row.len();
        let mut best = f64::INFINITY;
        let mut best_m = PointId(0);
        for (bi, &bound) in bounds.iter().enumerate() {
            // Every key in the block is ≥ bound (+ d ≥ 0): if that cannot
            // strictly beat the best, nothing in the block can win — exact
            // ties in later blocks lose the first-minimum rule regardless.
            if bound >= best {
                *skipped += 1;
                continue;
            }
            *scanned += 1;
            let start = bi * TARGET_BLOCK;
            let end = (start + TARGET_BLOCK).min(m);
            for p in start..end {
                let v = opening_key(f_row[p], b_row[p]) + dist_row[p];
                if v < best {
                    best = v;
                    best_m = PointId(p as u32);
                }
            }
        }
        (best, best_m)
    }

    /// `B[p][e]` grew (a freeze reinvested a bid there): the key fell to
    /// `key` — lower the block bound to match, `O(1)`.
    #[inline]
    pub fn note_small_bump(&mut self, e: CommodityId, p: PointId, key: f64) {
        let idx = e.index() * self.nblocks + p.index() / TARGET_BLOCK;
        if key < self.small[idx] {
            self.small[idx] = key;
        }
    }

    /// `B̂[p]` grew: the t4 key fell to `key`.
    #[inline]
    pub fn note_large_bump(&mut self, p: PointId, key: f64) {
        let idx = p.index() / TARGET_BLOCK;
        if key < self.large[idx] {
            self.large[idx] = key;
        }
    }

    /// Recomputes `e`'s block bounds from the current rows. Called after a
    /// cap-shrink pass lowered budgets (keys rose): the stale bounds were
    /// still sound, this restores tightness.
    pub fn rebuild_small(&mut self, e: CommodityId, f_row: &[f64], b_row: &[f64]) {
        block_bounds(
            f_row,
            b_row,
            &mut self.small[e.index() * self.nblocks..(e.index() + 1) * self.nblocks],
        );
    }

    /// Recomputes the t4 block bounds (see [`Self::rebuild_small`]).
    pub fn rebuild_large(&mut self, f_full: &[f64], b_large: &[f64]) {
        block_bounds(f_full, b_large, &mut self.large);
    }

    /// `(blocks pruned, blocks scanned)` across all queries so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.skipped, self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Solution;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::CommoditySet;
    use omfl_metric::line::LineMetric;

    fn inst(positions: Vec<f64>, s: u16) -> Instance {
        Instance::new(
            Box::new(LineMetric::new(positions).unwrap()),
            s,
            CostModel::power(s, 1.0, 2.0),
        )
        .unwrap()
    }

    /// Reference linear scan with the exact tie-breaking the index must
    /// reproduce: smalls (opening order) then larges (opening order), first
    /// minimum wins.
    fn scan_nearest(
        inst: &Instance,
        sol: &Solution,
        smalls: &[FacilityId],
        larges: &[FacilityId],
        from: PointId,
    ) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        for &fid in smalls.iter().chain(larges) {
            let d = inst.distance(from, sol.facilities()[fid.index()].location);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((fid, d)),
            }
        }
        best
    }

    #[test]
    fn empty_index_answers_none() {
        let inst = inst(vec![0.0, 1.0], 3);
        let idx = FacilityIndex::for_instance(&inst);
        assert!(idx.nearest_offering(CommodityId(0), PointId(0)).is_none());
        assert!(idx.nearest_large(PointId(1)).is_none());
        assert!(idx.nearest_small(CommodityId(2), PointId(0)).is_none());
        assert_eq!(idx.openings(), 0);
    }

    #[test]
    fn matches_linear_scan_including_ties() {
        // Facilities engineered so several are equidistant from the query
        // point; the index must pick the same winner as the scan.
        let inst = inst(vec![0.0, 1.0, 2.0, 3.0, 4.0], 2);
        let mut sol = Solution::new();
        let mut idx = FacilityIndex::for_instance(&inst);
        let u = inst.universe();
        let e = CommodityId(0);
        let mut smalls = Vec::new();
        let mut larges = Vec::new();

        // Two smalls equidistant from point 2 (at 1 and 3), then a large at
        // the same distance (at 3) — scan order says the first small wins.
        for &(p, large) in &[(1u32, false), (3, false), (3, true)] {
            let config = if large {
                CommoditySet::full(u)
            } else {
                CommoditySet::singleton(u, e).unwrap()
            };
            let fid = sol.open_facility(&inst, PointId(p), config);
            if large {
                idx.note_large_opening(&inst, PointId(p), fid);
                larges.push(fid);
            } else {
                idx.note_small_opening(&inst, e, PointId(p), fid);
                smalls.push(fid);
            }
            for q in 0..inst.num_points() as u32 {
                let want = scan_nearest(&inst, &sol, &smalls, &larges, PointId(q));
                let got = idx.nearest_offering(e, PointId(q));
                assert_eq!(
                    got.map(|(f, d)| (f, d.to_bits())),
                    want.map(|(f, d)| (f, d.to_bits())),
                    "query at {q} after opening at {p}"
                );
            }
        }
        assert_eq!(idx.openings(), 3);
    }

    #[test]
    fn large_openings_serve_every_commodity() {
        let inst = inst(vec![0.0, 5.0], 4);
        let mut sol = Solution::new();
        let mut idx = FacilityIndex::for_instance(&inst);
        let fid = sol.open_facility(&inst, PointId(1), CommoditySet::full(inst.universe()));
        idx.note_large_opening(&inst, PointId(1), fid);
        for e in 0..4u16 {
            let (f, d) = idx.nearest_offering(CommodityId(e), PointId(0)).unwrap();
            assert_eq!(f, fid);
            assert_eq!(d, 5.0);
        }
        assert_eq!(idx.nearest_large(PointId(1)).unwrap().1, 0.0);
        assert!(idx.nearest_small(CommodityId(0), PointId(0)).is_none());
    }

    #[test]
    fn past_index_buckets_skip_and_sort() {
        let inst = inst(vec![0.0, 10.0, 20.0], 2);
        let mut past = PastIndex::new(3, 2);
        let e = CommodityId(0);
        // Requests at points 0 and 2 with caps 4.0; request 1 interleaved at
        // point 2 so candidate order must be re-sorted.
        past.push_request(0, PointId(0), &[e], &[4.0], 4.0);
        past.push_request(1, PointId(2), &[e], &[4.0], 4.0);
        past.push_request(2, PointId(0), &[e], &[4.0], 4.0);

        // A facility at point 1 is 10 away from both buckets: no candidates.
        assert!(past
            .small_shrink_candidates(&inst, e, PointId(1))
            .is_empty());
        // A facility at point 0 shrinks the point-0 bucket only, in
        // ascending (pi, slot) order.
        let c = past.small_shrink_candidates(&inst, e, PointId(0));
        assert_eq!(c, vec![(0, 0), (2, 0)]);
        // The bucket bound was clamped: a second opening at the same point
        // finds nothing left to shrink.
        assert!(past
            .small_shrink_candidates(&inst, e, PointId(0))
            .is_empty());
        // Large candidates cover every member at a qualifying location.
        let l = past.large_shrink_candidates(&inst, PointId(2));
        assert_eq!(l, vec![1]);
    }

    /// Reference scan with the PD tie-breaking: ascending location, strict
    /// `<`, i.e. the lexicographic min of `(value, location)`.
    fn scan_argmin(f_row: &[f64], b_row: &[f64], dist_row: &[f64]) -> (f64, u32) {
        let mut best = f64::INFINITY;
        let mut arg = 0u32;
        for p in 0..f_row.len() {
            let v = (f_row[p] - b_row[p]).max(0.0) + dist_row[p];
            if v < best {
                best = v;
                arg = p as u32;
            }
        }
        (best, arg)
    }

    /// Deterministic xorshift for the differential drive below (no rand dep
    /// in this crate).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn pruned_scan_matches_full_scan_under_pd_style_dynamics() {
        // Random bumps (budget increases, O(1) bound maintenance), rare
        // shrinks (budget decreases + rebuild), queries from random anchors
        // with heavy exact ties: every answer must equal the full scan bit
        // for bit, winner id included.
        let (m, s, queries) = (150usize, 3usize, 500usize);
        let e = CommodityId(1);
        // Location-independent costs: maximal tie pressure.
        let f_small = vec![2.0; m * s];
        let f_full = vec![5.0; m];
        let mut b_row = vec![0.0; m];
        let mut b_large = vec![0.0; m];
        let mut idx = OpeningTargetIndex::new(m, s, &f_small, &f_full);
        let f_row = &f_small[e.index() * m..(e.index() + 1) * m];
        let mut st = 0xC0FFEEu64;
        let mut dist_row = vec![0.0; m];
        for step in 0..queries {
            // A synthetic anchor: distances with many exact zeros and ties.
            let anchor = (xorshift(&mut st) % m as u64) as usize;
            for (p, d) in dist_row.iter_mut().enumerate() {
                *d = ((p.abs_diff(anchor)) % 7) as f64 * 0.5;
            }
            let got = idx.small_target(e, f_row, &b_row, &dist_row);
            let want = scan_argmin(f_row, &b_row, &dist_row);
            assert_eq!(
                (got.0.to_bits(), got.1 .0),
                (want.0.to_bits(), want.1),
                "t3 diverged at step {step}"
            );
            let got4 = idx.large_target(&f_full, &b_large, &dist_row);
            let want4 = scan_argmin(&f_full, &b_large, &dist_row);
            assert_eq!(
                (got4.0.to_bits(), got4.1 .0),
                (want4.0.to_bits(), want4.1),
                "t4 diverged at step {step}"
            );
            // Mutate like the PD process: mostly bumps, occasional shrink.
            let p = (xorshift(&mut st) % m as u64) as usize;
            if step % 17 == 11 {
                b_row[p] = (b_row[p] - 1.0).max(0.0);
                b_large[p] = (b_large[p] - 2.0).max(0.0);
                idx.rebuild_small(e, f_row, &b_row);
                idx.rebuild_large(&f_full, &b_large);
            } else {
                let inc = 0.25 * ((xorshift(&mut st) % 8) as f64);
                b_row[p] += inc;
                idx.note_small_bump(e, PointId(p as u32), (f_row[p] - b_row[p]).max(0.0));
                b_large[p] += inc;
                idx.note_large_bump(PointId(p as u32), (f_full[p] - b_large[p]).max(0.0));
            }
        }
        let (skipped, scanned) = idx.stats();
        assert!(scanned > 0, "queries never scanned a block");
        assert!(skipped > 0, "the prune never engaged");
    }

    #[test]
    fn stale_low_bounds_after_unannounced_rises_stay_sound() {
        // A shrink without a rebuild leaves bounds stale LOW — pruning must
        // get weaker, never wrong.
        let m = TARGET_BLOCK * 3;
        let f_small = vec![4.0; m];
        let f_full = vec![9.0; m];
        let mut b_row = vec![0.0; m];
        let mut idx = OpeningTargetIndex::new(m, 1, &f_small, &f_full);
        let e = CommodityId(0);
        // Bump one location hard, then silently undo it (keys rise; no
        // rebuild call — the bound is now stale low).
        b_row[70] = 3.75;
        idx.note_small_bump(e, PointId(70), (f_small[70] - b_row[70]).max(0.0));
        b_row[70] = 0.0;
        let dist_row: Vec<f64> = (0..m).map(|p| p as f64 * 0.01).collect();
        let got = idx.small_target(e, &f_small, &b_row, &dist_row);
        let want = scan_argmin(&f_small, &b_row, &dist_row);
        assert_eq!((got.0.to_bits(), got.1 .0), (want.0.to_bits(), want.1));
        // A rebuild restores tightness and the answer stays exact.
        idx.rebuild_small(e, &f_small, &b_row);
        let got = idx.small_target(e, &f_small, &b_row, &dist_row);
        assert_eq!((got.0.to_bits(), got.1 .0), (want.0.to_bits(), want.1));
    }

    #[test]
    fn first_block_tie_wins_over_later_equal_blocks() {
        // Uniform keys at distance zero: every location ties exactly. The
        // pruned scan must return location 0 — the full scan's first
        // winner — and prune every later block (their bound equals the
        // best, and equal keys cannot strictly improve).
        let m = TARGET_BLOCK * 4;
        let f_small = vec![1.0; m];
        let f_full = vec![2.0; m];
        let b = vec![0.0; m];
        let dist = vec![0.0; m];
        let mut idx = OpeningTargetIndex::new(m, 1, &f_small, &f_full);
        let (v, p) = idx.small_target(CommodityId(0), &f_small, &b, &dist);
        assert_eq!((v, p), (1.0, PointId(0)));
        let (skipped, scanned) = idx.stats();
        assert_eq!(scanned, 1, "only the first block needs scanning");
        assert_eq!(skipped, 3, "all later tying blocks must be pruned");
    }
}
