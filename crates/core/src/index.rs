//! Incremental nearest-open-facility indexing — the serve-path hot layer.
//!
//! Every online engine in this workspace repeatedly asks the same two
//! questions per arrival: "what is the nearest open facility offering
//! commodity `e`?" and "what is the nearest open *large* facility?". The
//! naive answer scans every open facility per query, so a request stream of
//! length `n` pays `O(n · |F|)` distance evaluations — quadratic once `|F|`
//! grows with `n` (cf. the incremental potential maintenance in
//! Fotakis-style online facility location implementations).
//!
//! [`FacilityIndex`] inverts the maintenance: facilities open rarely, so on
//! each opening we spend `O(|M|)` once to refresh a per-point cache of
//! `(nearest facility, distance)` and every subsequent query is `O(1)`.
//!
//! # Bit-identical tie-breaking (the index invariant)
//!
//! The linear scans this index replaces resolve distance ties by *scan
//! order*: small facilities offering `e` in opening order, then large
//! facilities in opening order, keeping the first minimum (strict `<` to
//! replace). The cache reproduces that exactly:
//!
//! * updates apply openings in opening order and replace only on a strictly
//!   smaller distance, so within each class the earliest-opened minimum wins;
//! * small and large caches are kept separate and combined at query time
//!   with `small wins ties`, mirroring the smalls-then-larges scan order;
//! * cached distances are produced by the *same* `distance(query, location)`
//!   call the scan would make, so the floats are identical, not just close.
//!
//! The differential suite (`tests/tests/differential.rs`) pins this down by
//! comparing the indexed PD against the retained linear-scan reference
//! engine bit for bit.

use crate::instance::Instance;
use crate::kd::KdTree;
use crate::solution::FacilityId;
use omfl_commodity::CommodityId;
use omfl_metric::PointId;
use omfl_par::{ScatterWriter, ShardWriter, TaskPool};
use std::sync::Arc;

const NO_FACILITY: u32 = u32::MAX;

/// Per-point nearest-open-facility caches, maintained on facility openings.
///
/// Memory is `O(|M|·|S|)` — the same order as the PD bid matrix the analysis
/// already requires.
#[derive(Debug, Clone)]
pub struct FacilityIndex {
    points: usize,
    /// `d(F(e) ∩ smalls, p)`, flat `e·|M| + p` (commodity-major: opening
    /// updates walk every `p` for one `e`, so this keeps them on contiguous
    /// memory; queries are single lookups either way). `INFINITY` when
    /// empty.
    small_d: Vec<f64>,
    /// Matching facility ids, flat `e·|M| + p`; `NO_FACILITY` when empty.
    small_f: Vec<u32>,
    /// `d(F̂, p)`; `INFINITY` when empty.
    large_d: Vec<f64>,
    /// Matching facility ids; `NO_FACILITY` when empty.
    large_f: Vec<u32>,
    /// Openings folded in so far (for diagnostics and refresh-boundary tests).
    openings: usize,
}

impl FacilityIndex {
    /// An empty index over `points × services`.
    pub fn new(points: usize, services: usize) -> Self {
        Self {
            points,
            small_d: vec![f64::INFINITY; points * services],
            small_f: vec![NO_FACILITY; points * services],
            large_d: vec![f64::INFINITY; points],
            large_f: vec![NO_FACILITY; points],
            openings: 0,
        }
    }

    /// An empty index sized for an instance.
    pub fn for_instance(inst: &Instance) -> Self {
        Self::new(inst.num_points(), inst.num_commodities())
    }

    /// Number of openings folded into the caches so far.
    pub fn openings(&self) -> usize {
        self.openings
    }

    /// Folds a newly opened *small* facility for `e` at `at` into the cache:
    /// `O(|M|)` distance evaluations, once per opening.
    pub fn note_small_opening(
        &mut self,
        inst: &Instance,
        e: CommodityId,
        at: PointId,
        fid: FacilityId,
    ) {
        let base = e.index() * self.points;
        for p in 0..self.points {
            // Same argument order as the scan it replaces: d(query, location).
            let d = inst.distance(PointId(p as u32), at);
            let idx = base + p;
            if d < self.small_d[idx] {
                self.small_d[idx] = d;
                self.small_f[idx] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// Folds a newly opened *large* facility at `at` into the cache.
    pub fn note_large_opening(&mut self, inst: &Instance, at: PointId, fid: FacilityId) {
        for p in 0..self.points {
            let d = inst.distance(PointId(p as u32), at);
            if d < self.large_d[p] {
                self.large_d[p] = d;
                self.large_f[p] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// [`Self::note_small_opening`] with the opening location's distance
    /// row supplied by the caller (`row[p] = d(p, at)`, e.g. from a
    /// [`omfl_metric::blocked::BlockedRowCache`]). The row values must be
    /// the verbatim metric results — then this is bit-identical to the
    /// per-call variant, minus the `O(|M|)` pointer-chasing.
    pub fn note_small_opening_with_row(&mut self, row: &[f64], e: CommodityId, fid: FacilityId) {
        let base = e.index() * self.points;
        let (d_row, f_row) = (
            &mut self.small_d[base..base + row.len()],
            &mut self.small_f[base..base + row.len()],
        );
        for ((sd, sf), &d) in d_row.iter_mut().zip(f_row.iter_mut()).zip(row) {
            if d < *sd {
                *sd = d;
                *sf = fid.0;
            }
        }
        self.openings += 1;
    }

    /// [`Self::note_large_opening`] with a caller-supplied distance row.
    pub fn note_large_opening_with_row(&mut self, row: &[f64], fid: FacilityId) {
        for (p, &d) in row.iter().enumerate() {
            if d < self.large_d[p] {
                self.large_d[p] = d;
                self.large_f[p] = fid.0;
            }
        }
        self.openings += 1;
    }

    /// Nearest open facility offering `e` (small-for-`e` or large), `O(1)`.
    ///
    /// Ties between a small and a large facility go to the small one — the
    /// scan order of the linear search this replaces.
    #[inline]
    pub fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let idx = e.index() * self.points + from.index();
        let (sd, ld) = (self.small_d[idx], self.large_d[from.index()]);
        if sd.is_infinite() && ld.is_infinite() {
            return None;
        }
        if sd <= ld {
            Some((FacilityId(self.small_f[idx]), sd))
        } else {
            Some((FacilityId(self.large_f[from.index()]), ld))
        }
    }

    /// Nearest open *large* facility, `O(1)`.
    #[inline]
    pub fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        let d = self.large_d[from.index()];
        if d.is_infinite() {
            None
        } else {
            Some((FacilityId(self.large_f[from.index()]), d))
        }
    }

    /// Nearest open small facility offering `e` (larges excluded), `O(1)`.
    #[inline]
    pub fn nearest_small(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let idx = e.index() * self.points + from.index();
        let d = self.small_d[idx];
        if d.is_infinite() {
            None
        } else {
            Some((FacilityId(self.small_f[idx]), d))
        }
    }
}

/// Location-bucketed view of frozen per-request state, used by the PD
/// engine's cap-shrink passes.
///
/// `post_open_small` / `post_open_large` must decide, per past request,
/// whether a new facility lowered its bid cap. Requests sharing a location
/// share that decision's distance, and caps only ever shrink — so per
/// `(location, commodity)` bucket we keep the member list plus an upper
/// bound on the members' caps. A whole bucket is skipped in `O(1)` when
/// `d(new facility, location)` is at least the bound, turning the
/// per-opening walk from `O(history)` into `O(|M| + actually-shrinking)`.
///
/// Bounds are allowed to go stale *high* (a skipped shrink elsewhere never
/// lowers them); they are never stale low, so skipping is always sound.
#[derive(Debug, Clone, Default)]
pub struct PastIndex {
    points: usize,
    services: usize,
    /// Members demanding `e` located at `ℓ`, flat `e·|M| + ℓ`
    /// (commodity-major: the candidate filter walks every `ℓ` for one `e`),
    /// in `(past index, slot)` push order (ascending — freeze appends).
    by_loc_e: Vec<Vec<(u32, u16)>>,
    /// Upper bound on `caps[slot]` over the matching bucket.
    max_cap_e: Vec<f64>,
    /// Past-request indices located at `ℓ`, ascending.
    by_loc: Vec<Vec<u32>>,
    /// Upper bound on `max(cap_total, caps[..])` over requests at `ℓ`.
    max_cap_any: Vec<f64>,
    /// Block layout shared with the engine's [`OpeningTargetIndex`] (when
    /// one is active): lets the shrink walks skip whole blocks whose
    /// distance lower bound already exceeds every cap bound inside.
    layout: Option<Arc<SpatialLayout>>,
    /// Per block: locations in the block holding any past entries
    /// (first-touch append order; the bucket-level decisions below are
    /// order-independent, and the output is sorted).
    block_locs: Vec<Vec<u32>>,
    /// Whether a location already sits in its block's `block_locs` list.
    loc_listed: Vec<bool>,
    /// Per-block upper bound on `max_cap_e` over the block's buckets, flat
    /// `e·nblocks + b`. Monotone-up on push; recomputed exactly for blocks
    /// the shrink walk clamps. Never stale low, so skipping is sound.
    block_cap_e: Vec<f64>,
    /// Per-block upper bound on `max_cap_any`.
    block_cap_any: Vec<f64>,
    /// Upper bound on `cap_total` alone over requests at `ℓ` — the
    /// component of `max_cap_any` that only *large* openings shrink, kept
    /// separately so the cross-family clamp passes can recompute
    /// `max_cap_any` from parts without engine data.
    max_cap_total: Vec<f64>,
    /// Commodities with a non-empty bucket at `ℓ` (first-touch order):
    /// lets a large opening clamp every per-commodity bound at a visited
    /// location without scanning the full service universe.
    commodities_at: Vec<Vec<u32>>,
    /// Blocks retired without per-location distance reads by the
    /// layout-pruned shrink walks.
    blocks_skipped: u64,
    /// Blocks the layout-pruned shrink walks actually scanned.
    blocks_scanned: u64,
}

impl PastIndex {
    /// An empty past-request index over `points × services`.
    pub fn new(points: usize, services: usize) -> Self {
        Self {
            points,
            services,
            by_loc_e: vec![Vec::new(); points * services],
            max_cap_e: vec![0.0; points * services],
            by_loc: vec![Vec::new(); points],
            max_cap_any: vec![0.0; points],
            layout: None,
            block_locs: Vec::new(),
            loc_listed: Vec::new(),
            block_cap_e: Vec::new(),
            block_cap_any: Vec::new(),
            max_cap_total: vec![0.0; points],
            commodities_at: vec![Vec::new(); points],
            blocks_skipped: 0,
            blocks_scanned: 0,
        }
    }

    /// `(blocks skipped, blocks scanned)` by the layout-pruned shrink walks
    /// since construction. Pure observability — the counters never feed
    /// back into candidate selection. Both stay 0 without an attached
    /// layout.
    pub fn stats(&self) -> (u64, u64) {
        (self.blocks_skipped, self.blocks_scanned)
    }

    /// Adopts the opening-target index's block layout so the shrink walks
    /// can skip whole blocks by the same radius bounds the argmin scans
    /// use. Must be installed before the first [`Self::push_request`]; the
    /// candidate lists (content *and* order) are identical with or without
    /// a layout — only the number of distance evaluations changes.
    pub(crate) fn attach_layout(&mut self, layout: Arc<SpatialLayout>) {
        debug_assert!(
            self.by_loc.iter().all(Vec::is_empty),
            "attach_layout must precede the first push_request"
        );
        let nblocks = layout.nblocks();
        self.block_locs = vec![Vec::new(); nblocks];
        self.loc_listed = vec![false; self.points];
        self.block_cap_e = vec![0.0; self.services * nblocks];
        self.block_cap_any = vec![0.0; nblocks];
        self.layout = Some(layout);
    }

    /// Registers a freshly frozen request: its location, per-slot
    /// commodities and caps, and the total cap.
    pub fn push_request(
        &mut self,
        pi: u32,
        loc: PointId,
        commodities: &[CommodityId],
        caps: &[f64],
        cap_total: f64,
    ) {
        let l = loc.index();
        let block = self
            .layout
            .as_ref()
            .map(|lay| lay.pos[l] as usize / lay.block);
        let nblocks = self.block_cap_any.len();
        if cap_total > self.max_cap_total[l] {
            self.max_cap_total[l] = cap_total;
        }
        let mut any = cap_total;
        for (slot, (&e, &cap)) in commodities.iter().zip(caps).enumerate() {
            let idx = e.index() * self.points + l;
            if self.by_loc_e[idx].is_empty() {
                self.commodities_at[l].push(e.index() as u32);
            }
            self.by_loc_e[idx].push((pi, slot as u16));
            if cap > self.max_cap_e[idx] {
                self.max_cap_e[idx] = cap;
            }
            if let Some(b) = block {
                let bidx = e.index() * nblocks + b;
                if cap > self.block_cap_e[bidx] {
                    self.block_cap_e[bidx] = cap;
                }
            }
            if cap > any {
                any = cap;
            }
        }
        self.by_loc[l].push(pi);
        if any > self.max_cap_any[l] {
            self.max_cap_any[l] = any;
        }
        if let Some(b) = block {
            if !self.loc_listed[l] {
                self.loc_listed[l] = true;
                self.block_locs[b].push(l as u32);
            }
            if any > self.block_cap_any[b] {
                self.block_cap_any[b] = any;
            }
        }
    }

    /// Candidate `(past index, slot)` members whose commodity-`e` cap *may*
    /// shrink when a small facility for `e` opens at `at` — every member at
    /// a location whose cap bound exceeds `d(at, location)`. Returned sorted
    /// ascending, i.e. the exact order the linear history walk would visit
    /// them in. Buckets that qualify have their bound clamped to the new
    /// distance (all surviving caps are at most that).
    ///
    /// With an attached layout the walk goes block by block: a block whose
    /// certified distance lower bound (`d(at, rep) − radius`, slack
    /// included) is at least its cap bound cannot contain a qualifying
    /// bucket — `d(at, ℓ) ≥ dlb ≥ block cap ≥ bucket cap` for every `ℓ`
    /// in it — so one distance read retires the whole block. Visited
    /// blocks that clamp any bucket get their cap bound recomputed
    /// exactly, keeping future skips tight.
    ///
    /// Clamping a commodity bucket also re-tightens the location's
    /// *any*-cap bound from its parts (`max_cap_total` ∨ the per-commodity
    /// bounds present at the location): without this cross-family clamp a
    /// stream of small openings would leave `max_cap_any` — and hence the
    /// large walk's block bounds — permanently stale-high. The caller
    /// contract (the PD engine's `post_open_small`) is that every returned
    /// member with `d(at, ℓ) < cap` has its cap shrunk to that distance
    /// before bounds are read again.
    pub fn small_shrink_candidates(
        &mut self,
        inst: &Instance,
        e: CommodityId,
        at: PointId,
    ) -> Vec<(u32, u16)> {
        let base = e.index() * self.points;
        let mut out = Vec::new();
        if let Some(layout) = self.layout.clone() {
            let nblocks = self.block_cap_any.len();
            let cap_base = e.index() * nblocks;
            for b in 0..nblocks {
                let bcap = self.block_cap_e[cap_base + b];
                if bcap <= 0.0 || self.block_locs[b].is_empty() {
                    self.blocks_skipped += 1;
                    continue;
                }
                let d_rep = inst.distance(at, PointId(layout.rep[b]));
                if dist_lower_bound(d_rep, layout.radius[b]) >= bcap {
                    self.blocks_skipped += 1;
                    continue;
                }
                self.blocks_scanned += 1;
                let mut touched = false;
                let mut any_touched = false;
                for i in 0..self.block_locs[b].len() {
                    let l = self.block_locs[b][i];
                    let idx = base + l as usize;
                    if self.by_loc_e[idx].is_empty() {
                        continue;
                    }
                    let dj = inst.distance(at, PointId(l));
                    if dj < self.max_cap_e[idx] {
                        out.extend_from_slice(&self.by_loc_e[idx]);
                        self.max_cap_e[idx] = dj;
                        touched = true;
                        any_touched |= self.retighten_any(l as usize);
                    }
                }
                if touched {
                    let mut cap = 0.0f64;
                    for &l in &self.block_locs[b] {
                        cap = cap.max(self.max_cap_e[base + l as usize]);
                    }
                    self.block_cap_e[cap_base + b] = cap;
                }
                if any_touched {
                    let mut cap = 0.0f64;
                    for &l in &self.block_locs[b] {
                        cap = cap.max(self.max_cap_any[l as usize]);
                    }
                    self.block_cap_any[b] = cap;
                }
            }
            out.sort_unstable();
            return out;
        }
        for l in 0..self.by_loc.len() {
            let idx = base + l;
            if self.by_loc_e[idx].is_empty() {
                continue;
            }
            let dj = inst.distance(at, PointId(l as u32));
            if dj < self.max_cap_e[idx] {
                out.extend_from_slice(&self.by_loc_e[idx]);
                self.max_cap_e[idx] = dj;
                self.retighten_any(l);
            }
        }
        out.sort_unstable();
        out
    }

    /// Recomputes the location's any-cap bound from its parts after a
    /// per-commodity bound clamped. `max(max_cap_total, per-commodity
    /// bounds at ℓ)` dominates every member's `max(cap_total, caps[..])`,
    /// so the result is a sound upper bound; it is applied only when it
    /// tightens (the stored bound may already be lower from a large-walk
    /// clamp). Returns whether the stored bound changed.
    fn retighten_any(&mut self, l: usize) -> bool {
        let mut any = self.max_cap_total[l];
        for &e2 in &self.commodities_at[l] {
            any = any.max(self.max_cap_e[e2 as usize * self.points + l]);
        }
        if any < self.max_cap_any[l] {
            self.max_cap_any[l] = any;
            true
        } else {
            false
        }
    }

    /// Candidate past-request indices for a *large* opening at `at` (any cap
    /// at the location may shrink). Sorted ascending — the history-walk
    /// order. Qualifying buckets have their bound clamped to `d(at, ℓ)`.
    /// Block skipping as in [`Self::small_shrink_candidates`].
    ///
    /// A large opening shrinks *every* cap at a qualifying location to at
    /// most `d(at, ℓ)` (the caller walks all members there and clamps both
    /// `cap_total` and each per-commodity cap), so the pass also clamps
    /// `max_cap_total` and every per-commodity bound at the location —
    /// the cross-family clamp that keeps the small walks' block bounds
    /// from going permanently stale-high on shrink-heavy streams. Touched
    /// blocks get the affected `block_cap_e` rows recomputed exactly.
    pub fn large_shrink_candidates(&mut self, inst: &Instance, at: PointId) -> Vec<u32> {
        let mut out = Vec::new();
        let mut touched_e: Vec<u32> = Vec::new();
        if let Some(layout) = self.layout.clone() {
            let nblocks = self.block_cap_any.len();
            for b in 0..nblocks {
                let bcap = self.block_cap_any[b];
                if bcap <= 0.0 || self.block_locs[b].is_empty() {
                    self.blocks_skipped += 1;
                    continue;
                }
                let d_rep = inst.distance(at, PointId(layout.rep[b]));
                if dist_lower_bound(d_rep, layout.radius[b]) >= bcap {
                    self.blocks_skipped += 1;
                    continue;
                }
                self.blocks_scanned += 1;
                let mut touched = false;
                touched_e.clear();
                for i in 0..self.block_locs[b].len() {
                    let l = self.block_locs[b][i];
                    let li = l as usize;
                    if self.by_loc[li].is_empty() {
                        continue;
                    }
                    let dj = inst.distance(at, PointId(l));
                    if dj < self.max_cap_any[li] {
                        out.extend_from_slice(&self.by_loc[li]);
                        self.max_cap_any[li] = dj;
                        touched = true;
                        self.clamp_location_bounds(li, dj, Some(&mut touched_e));
                    }
                }
                if touched {
                    let mut cap = 0.0f64;
                    for &l in &self.block_locs[b] {
                        cap = cap.max(self.max_cap_any[l as usize]);
                    }
                    self.block_cap_any[b] = cap;
                }
                touched_e.sort_unstable();
                touched_e.dedup();
                for &e in &touched_e {
                    let cap_base = e as usize * nblocks;
                    let base = e as usize * self.points;
                    let mut cap = 0.0f64;
                    for &l in &self.block_locs[b] {
                        cap = cap.max(self.max_cap_e[base + l as usize]);
                    }
                    self.block_cap_e[cap_base + b] = cap;
                }
            }
            out.sort_unstable();
            return out;
        }
        for l in 0..self.by_loc.len() {
            if self.by_loc[l].is_empty() {
                continue;
            }
            let dj = inst.distance(at, PointId(l as u32));
            if dj < self.max_cap_any[l] {
                out.extend_from_slice(&self.by_loc[l]);
                self.max_cap_any[l] = dj;
                self.clamp_location_bounds(l, dj, None);
            }
        }
        out.sort_unstable();
        out
    }

    /// Clamps `max_cap_total` and every per-commodity bound at `ℓ` to `dj`
    /// after a large opening qualified the location: once the caller's
    /// shrink pass completes, no cap of any family there exceeds `dj`.
    /// Commodities whose bound actually tightened are appended to
    /// `touched_e` (when collecting for a block-row recompute).
    fn clamp_location_bounds(&mut self, l: usize, dj: f64, touched_e: Option<&mut Vec<u32>>) {
        if dj < self.max_cap_total[l] {
            self.max_cap_total[l] = dj;
        }
        let mut sink = touched_e;
        for i in 0..self.commodities_at[l].len() {
            let e = self.commodities_at[l][i];
            let idx = e as usize * self.points + l;
            if dj < self.max_cap_e[idx] {
                self.max_cap_e[idx] = dj;
                if let Some(sink) = sink.as_deref_mut() {
                    sink.push(e);
                }
            }
        }
    }
}

/// Incremental maintenance of the PD opening targets — the per-arrival
/// t3/t4 argmins `min_m (f_m − B_m)⁺ + d(m, r)` — via a bucketed
/// lower-bound prune list.
///
/// The PD event loop needs, per arrival at `r`, the cheapest *temporary
/// small* opening for each demanded commodity (t3, one argmin per `e` over
/// `(f^e_m − B[m][e])⁺ + d(m, r)`) and the cheapest *large* opening (t4,
/// over `(f^S_m − B̂[m])⁺ + d(m, r)`). Recomputing them by full scan is
/// `O(k·|M|)` per arrival — the dominant cost once the nearest-facility
/// caches ([`FacilityIndex`]) made everything else `O(1)`.
///
/// # The structure
///
/// Locations are partitioned into fixed blocks of [`TARGET_BLOCK`]
/// **positions of a spatially coherent relabeling**: at construction the
/// index asks the metric for a [`omfl_metric::Metric::coherent_order`]
/// (position order on lines, a Z-order curve on Euclidean point sets, a
/// nearest-neighbor chain on graph closures, DFS preorder on trees;
/// identity when the metric offers none) and lays its blocks over that
/// permutation. The relabeling lives entirely inside the index — every
/// argument and every returned location is an *original* point id, so
/// nothing engine-visible changes. Per commodity (plus one slot for t4)
/// the index maintains, per block, a **certified lower bound** on the
/// *distance-free* part of the key:
///
/// ```text
/// blockmin[e][b] ≤ min_{m ∈ block b} (f^e_m − B[m][e])⁺     (the invariant)
/// ```
///
/// On top of that, each block carries a **location summary**: a
/// representative member `rep_b` (the block medoid) and a covering radius
/// `radius_b = max_{m ∈ b} d(rep_b, m)`. For a query at `r` the triangle
/// inequality gives `d(m, r) ≥ d(rep_b, r) − radius_b` for every member,
/// so the per-query block bound tightens to
///
/// ```text
/// bound_b(r) = blockmin[e][b] + max(0, d(rep_b, r) − radius_b − slack)
/// ```
///
/// — distance-aware: blocks far from the query are pruned even when their
/// distance-free keys are tiny (the cold-query regime where the id-order
/// index scanned 60–75% of blocks). `d(rep_b, r)` is one read from the
/// caller's distance row (representatives are real points), so the bound
/// costs two loads per block and no metric calls. The spatial coherence of
/// the relabeling is what keeps `radius_b` small enough for the bound to
/// bite; correctness never depends on it. The `slack` term
/// ([`RADIUS_BOUND_SLACK`], relative) budgets for metrics whose computed
/// distances violate the triangle inequality by float rounding (path sums,
/// rounded norms) — metrics opt into this machinery via `coherent_order`,
/// whose contract caps violations at a few ulps, orders of magnitude below
/// the slack.
///
/// A query walks blocks in relabeled order keeping the running
/// lexicographic best `(value, original id)` and skips every block that
/// provably cannot improve it: `bound_b > best` means every key in the
/// block strictly exceeds the best; `bound_b == best` still skips when the
/// block's smallest original id exceeds the incumbent's (an exact tie
/// loses the full scan's first-minimum rule to the smaller id). Surviving
/// blocks are scanned with the verbatim key arithmetic, so the returned
/// `(value, location)` is bit-identical to the full ascending-id
/// strict-`<` scan — `tests/tests/index_bounds.rs` locksteps this against
/// a full-scan engine at every arrival, and a proptest drives *random*
/// relabelings through whole engine runs.
///
/// # Maintenance under the PD budget dynamics
///
/// The primal-dual process moves budgets in two directions with very
/// different frequencies (paper §3):
///
/// * **Bumps** (every freeze): `B` grows, keys *fall*. The engine calls
///   [`Self::note_small_bump`] / [`Self::note_large_bump`] with the new
///   distance-free key for exactly the locations that moved —
///   `blockmin = min(blockmin, new)`, `O(1)` per moved budget, and the
///   invariant is restored immediately.
/// * **Shrinks** (only when a facility opens, rare): `B` falls, keys
///   *rise*. A stale-low `blockmin` stays a valid lower bound — pruning
///   merely gets weaker, never wrong — so correctness needs no action at
///   all. To keep the prune tight the engine calls [`Self::rebuild_small`]
///   / [`Self::rebuild_large`] for the affected rows after its cap-shrink
///   pass (`O(|M|)`, the same order as the pass itself).
///
/// Memory: `(|S| + 1) · ⌈|M| / TARGET_BLOCK⌉` bound floats plus the
/// permutation and per-block summaries — with the block size of
/// [`TARGET_BLOCK`] = 16, about `1/16`th of the bid matrix the engine
/// already holds, plus a handful of `O(|M|)` id arrays.
#[derive(Debug, Clone)]
pub struct OpeningTargetIndex {
    /// Per-commodity block bounds, flat `e · nblocks + b`.
    small: Vec<f64>,
    /// t4 block bounds.
    large: Vec<f64>,
    nblocks: usize,
    /// Block layout: the relabeling and the per-block location summaries.
    /// Shared (via [`Self::layout_handle`]) with the engine's
    /// [`PastIndex`] so both prune with the same radius bounds.
    layout: Arc<SpatialLayout>,
    /// Worker pool for the sharded scans; `None` runs them sequentially.
    /// Results AND stats are bit-identical either way — the pool only
    /// changes who executes each shard.
    pool: Option<Arc<TaskPool>>,
    /// Blocks per scan shard (defaults to [`SCAN_SHARD_BLOCKS`]; test
    /// hook [`Self::set_scan_shard_blocks`] overrides it).
    shard_blocks: usize,
    /// Original id of the prepared query point, when the caller knows it
    /// (unlocks kd range narrowing in [`Self::budget_move_candidates`]).
    query_point: Option<PointId>,
    /// Reusable per-query buffer for the distance-aware block bounds
    /// (avoids an allocation per argmin).
    bound_scratch: Vec<f64>,
    /// Per-block distance lower bounds for the *prepared* query row (see
    /// [`Self::prepare_query`]): `dlb[b] ≤ min_{m ∈ b} d(m, r)`. Computed
    /// once per arrival and shared by every t3/t4 argmin and the freeze
    /// walk narrowing of that arrival.
    dlb: Vec<f64>,
    /// Per-block distance *upper* bounds for the prepared query row:
    /// `dub[b] ≥ max_{m ∈ b} d(m, r)` (triangle bound through the block
    /// medoid, slack-inflated like [`dist_lower_bound`]). Only
    /// [`Self::query_scan_cover`] reads it — it caps the incumbent any
    /// pruned scan of this arrival can reach, which is what makes the
    /// partial-row coverage prediction sound.
    dub: Vec<f64>,
    /// Scratch for [`Self::query_scan_cover`]'s per-block marks.
    cover_marks: Vec<bool>,
    /// Fingerprint of the prepared row (debug builds): catches callers
    /// querying with a distance row that was never prepared.
    #[cfg(debug_assertions)]
    query_tag: Option<(usize, u64, u64)>,
    /// Blocks pruned / scanned across all queries (diagnostics; the
    /// lockstep tests assert pruning actually engages).
    skipped: u64,
    scanned: u64,
}

/// Default locations per prune block of the [`OpeningTargetIndex`].
///
/// Smaller blocks mean tighter covering radii (the distance bound bites on
/// geometries whose ball-of-`TARGET_BLOCK` radius is well under the typical
/// query distance — on small-world graph closures 32-point balls were
/// already at the metric's distance scale) at the cost of one bound check
/// per block per query; 16 is where the large catalog families' skip rates
/// plateau without measurable bound-pass overhead.
///
/// Block size is a per-layout choice made at ingest (see
/// [`HUGE_BLOCK`]); this constant is the default for graph closures,
/// windowed fallbacks, and every point set below the huge threshold.
pub const TARGET_BLOCK: usize = 16;

/// Locations per prune block for *huge* kd-ingested Euclidean layouts
/// (`|M| ≥` [`HUGE_BLOCK_MIN_POINTS`]). At that scale the per-query bound
/// pass itself (`O(nblocks)`) becomes the floor cost of an argmin; 4×
/// coarser blocks quarter it, and kd balls keep the covering radii tight
/// enough that the skip rate holds (a 64-ball of a dense grid is only ~2×
/// the radius of a 16-ball).
pub const HUGE_BLOCK: usize = 64;

/// Point-count threshold above which a kd-capable layout switches to
/// [`HUGE_BLOCK`]-sized blocks.
pub const HUGE_BLOCK_MIN_POINTS: usize = 65536;

/// Blocks per shard of the sharded argmin scan (see
/// [`OpeningTargetIndex::small_target`]). The shard partition is a pure
/// function of the block count — never of the worker pool or thread count
/// — so the skip/scan statistics are machine-portable and the bench floors
/// on `block_skip_rate` stay meaningful. Below two shards' worth of blocks
/// the scan runs the plain two-pass loop.
pub const SCAN_SHARD_BLOCKS: usize = 128;

/// Relative slack subtracted from the per-block distance lower bound
/// `d(rep, r) − radius`, scaled by `d(rep, r) + radius`.
///
/// Exact arithmetic would allow slack 0: the triangle inequality makes the
/// bound sound as-is. Computed distances, however, can violate the triangle
/// inequality by accumulated rounding (a shortest-path sum of `k` edges
/// carries `O(k·ε)` relative error; a rounded L2 norm `O(dim·ε)`), and an
/// over-tight bound could prune a block holding a key one ulp under the
/// running best — changing the argmin and breaking bit-identity with the
/// full scan. `1e-9` exceeds those float error bounds by several orders of
/// magnitude (ε ≈ 2.2e-16) while costing a vanishing amount of pruning;
/// [`omfl_metric::Metric::coherent_order`]'s contract is what caps the
/// violation at float-rounding scale for every metric that opts in.
pub const RADIUS_BOUND_SLACK: f64 = 1e-9;

/// The block relabeling plus per-block location summaries.
///
/// `perm[pos]` is the original id at relabeled position `pos`; blocks are
/// contiguous runs of positions. Summaries hold each block's medoid
/// representative, covering radius, and minimum original id (the tie-skip
/// certificate). `radius = ∞` (the no-metric fallback) makes every
/// distance bound collapse to zero — pure distance-free pruning, the exact
/// pre-relabeling behavior.
#[derive(Debug, Clone)]
pub(crate) struct SpatialLayout {
    /// Relabeled position → original point id.
    perm: Vec<u32>,
    /// Original point id → relabeled position (inverse of `perm`).
    pos: Vec<u32>,
    /// `perm` is `0..n`: lets hot loops skip the gather. Independent of
    /// `bounded` — a sorted line's coherent order IS the identity, yet its
    /// radius bounds are real.
    identity: bool,
    /// Whether the medoid/radius summaries were computed from a metric.
    /// `false` is the no-metric fallback: distance bounds are identically
    /// zero and queries run the plain distance-free in-order scan (the
    /// exact pre-relabeling behavior).
    bounded: bool,
    /// Locations per block of THIS layout ([`TARGET_BLOCK`] except for
    /// huge kd-ingested point sets, which use [`HUGE_BLOCK`]).
    block: usize,
    /// Per-block representative (original id) — the block medoid.
    rep: Vec<u32>,
    /// Covering radius `max_{m ∈ block} d(rep, m)`.
    radius: Vec<f64>,
    /// Smallest original id in the block (exact-tie skip certificate).
    min_id: Vec<u32>,
    /// kd-tree over the metric's coordinate embedding, when it offers one
    /// ([`omfl_metric::Metric::kd_coords`]). Used for the ball ingest and,
    /// when `kd_isometric`, as a second pruning structure for the freeze
    /// walk's candidate range queries.
    kd: Option<KdTree>,
    /// The embedding's distances are bit-identical to the metric's
    /// (`KdCoords::isometric`) — the licence for using kd *distances*, not
    /// just the kd *partition*.
    kd_isometric: bool,
}

impl SpatialLayout {
    /// Identity relabeling with distance bounds disabled.
    fn identity(points: usize) -> Self {
        let nblocks = points.div_ceil(TARGET_BLOCK);
        Self {
            perm: (0..points as u32).collect(),
            pos: (0..points as u32).collect(),
            identity: true,
            bounded: false,
            block: TARGET_BLOCK,
            rep: (0..nblocks).map(|b| (b * TARGET_BLOCK) as u32).collect(),
            radius: vec![f64::INFINITY; nblocks],
            min_id: (0..nblocks).map(|b| (b * TARGET_BLOCK) as u32).collect(),
            kd: None,
            kd_isometric: false,
        }
    }

    /// Number of prune blocks under this layout's block size.
    #[inline]
    fn nblocks(&self) -> usize {
        self.perm.len().div_ceil(self.block)
    }

    /// Refines `seed_order` into distance balls and computes the per-block
    /// summaries from the instance metric.
    ///
    /// A raw coherent order is a *chain*: consecutive hops are short, but a
    /// fixed-size run of a chain can snake across a region far wider than a
    /// ball of the same cardinality (on small-world graph closures the
    /// chain-run radius matches the whole metric's distance scale, which
    /// makes radius bounds inert). So blocks are rebuilt as greedy balls —
    /// two ingest paths, selected by the metric:
    ///
    /// * **kd ingest** (metrics offering [`omfl_metric::Metric::kd_coords`],
    ///   `allow_kd` set): the next unassigned point of `seed_order` seeds a
    ///   block and takes its `block − 1` *true* nearest unassigned points
    ///   from [`KdTree::nearest_alive`], under the `(distance, seed-rank)`
    ///   total order. The partition is a pure function of the coordinates
    ///   and the seed order. Any deterministic partition is engine-safe
    ///   (the relabeling proptests drive arbitrary ones), so the kd fold
    ///   need not match the metric's distances here.
    /// * **windowed ingest** (fallback): [`Self::group_into_balls`], which
    ///   can only pick members from the next [`BALL_WINDOW`] points of the
    ///   order — cheap, but a seed whose real neighbors sit beyond the
    ///   window gets a needlessly fat radius.
    ///
    /// Each block then records its medoid (the member minimizing its
    /// maximum in-block distance, first winner on ties) and the covering
    /// radius the medoid realizes — always confirmed with *exact* metric
    /// distances. Metrics offering certified f32 screening brackets
    /// ([`omfl_metric::Metric::screen_distances`]) get the O(block²) medoid
    /// pass narrowed first: a candidate whose screened eccentricity lower
    /// bound exceeds some candidate's upper bound can be neither the
    /// winner nor an earlier tie of the winner, so pruning it cannot
    /// change the first-wins outcome.
    fn from_order(inst: &Instance, seed_order: Vec<u32>, allow_kd: bool) -> Self {
        let points = inst.num_points();
        assert_eq!(
            seed_order.len(),
            points,
            "relabeling must cover every point"
        );
        {
            let mut seen = vec![false; points];
            for &p in &seed_order {
                assert!(!seen[p as usize], "relabeling must be a permutation");
                seen[p as usize] = true;
            }
        }
        let metric = inst.metric();
        let mut kd = None;
        let mut kd_isometric = false;
        if allow_kd {
            if let Some(view) = metric.kd_coords() {
                if view.dim > 0 && view.coords.len() == points * view.dim {
                    kd_isometric = view.isometric;
                    kd = Some(KdTree::build(view.coords, view.dim));
                }
            }
        }
        let block = if kd.is_some() && points >= HUGE_BLOCK_MIN_POINTS {
            HUGE_BLOCK
        } else {
            TARGET_BLOCK
        };
        let order = match kd.as_mut() {
            Some(tree) => Self::group_into_kd_balls(tree, &seed_order, block),
            None => Self::group_into_balls(inst, &seed_order, block),
        };
        let mut pos = vec![0u32; points];
        for (i, &p) in order.iter().enumerate() {
            pos[p as usize] = i as u32;
        }
        let identity = order.iter().enumerate().all(|(i, &p)| i as u32 == p);
        let nblocks = points.div_ceil(block);
        let mut rep = Vec::with_capacity(nblocks);
        let mut radius = Vec::with_capacity(nblocks);
        let mut min_id = Vec::with_capacity(nblocks);
        let mut lo = vec![0.0f64; block];
        let mut hi = vec![0.0f64; block];
        let mut maxlo = vec![0.0f64; block];
        let mut maxhi = vec![0.0f64; block];
        for bi in 0..nblocks {
            let start = bi * block;
            let end = (start + block).min(points);
            let members = &order[start..end];
            let n = members.len();
            let mut best_rep = members[0];
            let mut best_rad = f64::INFINITY;
            // Screened path: certified brackets on every pairwise distance
            // give per-candidate eccentricity brackets `maxlo ≤ far(c) ≤
            // maxhi`. Candidates with `maxlo > min_c maxhi` satisfy
            // `far(c) > min far` strictly, so dropping them preserves both
            // the minimum and the first-wins tie among the survivors.
            let screened = n > 2 && {
                let mut ok = true;
                for (ci, &c) in members.iter().enumerate() {
                    if !metric.screen_distances(PointId(c), members, &mut lo[..n], &mut hi[..n]) {
                        ok = false;
                        break;
                    }
                    let (mut ml, mut mh) = (0.0f64, 0.0f64);
                    for i in 0..n {
                        ml = ml.max(lo[i]);
                        mh = mh.max(hi[i]);
                    }
                    maxlo[ci] = ml;
                    maxhi[ci] = mh;
                }
                ok
            };
            if screened {
                let min_hi = maxhi[..n].iter().copied().fold(f64::INFINITY, f64::min);
                for (ci, &c) in members.iter().enumerate() {
                    if maxlo[ci] > min_hi {
                        continue;
                    }
                    let mut far = 0.0f64;
                    for &m in members {
                        let d = inst.distance(PointId(m), PointId(c));
                        if d > far {
                            far = d;
                        }
                    }
                    if far < best_rad {
                        best_rad = far;
                        best_rep = c;
                    }
                }
            } else {
                for &c in members {
                    let mut far = 0.0f64;
                    for &m in members {
                        let d = inst.distance(PointId(m), PointId(c));
                        if d > far {
                            far = d;
                        }
                    }
                    if far < best_rad {
                        best_rad = far;
                        best_rep = c;
                    }
                }
            }
            rep.push(best_rep);
            radius.push(best_rad);
            min_id.push(members.iter().copied().min().expect("non-empty block"));
        }
        Self {
            perm: order,
            pos,
            identity,
            bounded: true,
            block,
            rep,
            radius,
            min_id,
            kd,
            kd_isometric,
        }
    }

    /// The kd ball partition: exact nearest-unassigned-neighbor balls over
    /// the coordinate embedding, deterministic under the
    /// `(distance, seed-rank)` total order. `O(|M| log |M|)`-ish distance
    /// folds instead of the window path's `O(|M| · BALL_WINDOW)` metric
    /// calls — and the balls are true balls, so covering radii are as
    /// tight as the block size allows.
    fn group_into_kd_balls(tree: &mut KdTree, seed_order: &[u32], block: usize) -> Vec<u32> {
        let n = seed_order.len();
        // rank[p] = seed-order position; u32::MAX doubles as "assigned".
        let mut rank = vec![0u32; n];
        for (i, &p) in seed_order.iter().enumerate() {
            rank[p as usize] = i as u32;
        }
        let mut out = Vec::with_capacity(n);
        let mut nn: Vec<(f64, u32, u32)> = Vec::with_capacity(block);
        let mut q: Vec<f64> = Vec::new();
        for &seed in seed_order {
            if rank[seed as usize] == u32::MAX {
                continue;
            }
            out.push(seed);
            rank[seed as usize] = u32::MAX;
            tree.deactivate(seed);
            q.clear();
            q.extend_from_slice(tree.point(seed));
            tree.nearest_alive(&q, block - 1, &rank, &mut nn);
            for &(_, _, p) in nn.iter() {
                out.push(p);
                rank[p as usize] = u32::MAX;
                tree.deactivate(p);
            }
        }
        out
    }

    /// The windowed greedy ball partition (fallback when the metric offers
    /// no coordinate embedding): repeatedly seed a block with the first
    /// remaining point of the seed order and fill it with the `block − 1`
    /// nearest points among the next [`BALL_WINDOW`] remaining ones (ties
    /// by remaining rank). Only the final block can be short. The output is
    /// the block-major relabeling.
    ///
    /// Cost: `O(|M| · BALL_WINDOW / block)` distance reads and
    /// `O(|M| · BALL_WINDOW / block)` bookkeeping, window-local —
    /// every pick lives inside the candidate window, so only the window's
    /// *unpicked* entries are moved (order preserved) to sit ahead of the
    /// untouched tail, and no already-assigned stretch is ever re-walked.
    /// This runs inside the engine constructor, which the paired benches
    /// time, so the bound is load-bearing, not cosmetic.
    fn group_into_balls(inst: &Instance, seed_order: &[u32], block: usize) -> Vec<u32> {
        let n = seed_order.len();
        let mut rem = seed_order.to_vec();
        let mut out = Vec::with_capacity(n);
        let mut cand: Vec<(f64, u32)> = Vec::with_capacity(BALL_WINDOW);
        let mut picked: Vec<u32> = Vec::with_capacity(block);
        let mut unpicked: Vec<u32> = Vec::with_capacity(BALL_WINDOW);
        let mut start = 0usize;
        while start < n {
            let seed = rem[start];
            out.push(seed);
            let window = (n - start - 1).min(BALL_WINDOW);
            cand.clear();
            for i in 0..window {
                let p = rem[start + 1 + i];
                cand.push((inst.distance(PointId(p), PointId(seed)), i as u32));
            }
            cand.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("distances are finite")
                    .then(a.1.cmp(&b.1))
            });
            picked.clear();
            picked.extend(cand.iter().take(block - 1).map(|&(_, i)| i));
            picked.sort_unstable();
            unpicked.clear();
            let mut pk = 0usize;
            for i in 0..window {
                if pk < picked.len() && picked[pk] as usize == i {
                    out.push(rem[start + 1 + i]);
                    pk += 1;
                } else {
                    unpicked.push(rem[start + 1 + i]);
                }
            }
            // The consumed prefix (seed + picks) drops out; the unpicked
            // window entries slide up against the untouched tail, order
            // preserved, to form the head of the next iteration's list.
            start += 1 + picked.len();
            rem[start..start + unpicked.len()].copy_from_slice(&unpicked);
        }
        out
    }
}

/// How far ahead of a block seed the ball partition looks for members (in
/// unassigned points of the seed order). Wide enough that the coherent
/// order's locality puts the true near neighbors inside the window, narrow
/// enough that layout construction stays `O(|M| · BALL_WINDOW)`.
const BALL_WINDOW: usize = 256;

/// `(f − b)⁺` — the distance-free part of an opening-target key.
#[inline]
fn opening_key(f: f64, b: f64) -> f64 {
    (f - b).max(0.0)
}

/// The certified lower bound on `d(m, r)` over a block with representative
/// distance `d_rep = d(rep, r)` and covering radius `radius`, slack
/// included (see [`RADIUS_BOUND_SLACK`]). `radius = ∞` yields 0 — the
/// distance-free fallback.
#[inline]
fn dist_lower_bound(d_rep: f64, radius: f64) -> f64 {
    let raw = d_rep - radius;
    if raw <= 0.0 {
        return 0.0;
    }
    (raw - RADIUS_BOUND_SLACK * (d_rep + radius)).max(0.0)
}

/// The certified *upper* bound on `d(m, r)` over the same block: the
/// triangle bound `d(rep, r) + radius`, inflated by the relative slack so
/// the same rounding argument that keeps [`dist_lower_bound`] sound keeps
/// this one sound from above. `radius = ∞` yields ∞ — no information, the
/// distance-free fallback.
#[inline]
fn dist_upper_bound(d_rep: f64, radius: f64) -> f64 {
    (d_rep + radius) * (1.0 + RADIUS_BOUND_SLACK)
}

/// Executes `body(0..nshards)` on the pool when one is installed, inline
/// otherwise. Each shard's work must be independent (ours are: disjoint
/// [`ShardWriter`] chunks over shared read-only inputs), which makes the
/// two execution modes indistinguishable — results and statistics alike.
fn run_shards(pool: Option<&TaskPool>, nshards: usize, body: &(dyn Fn(usize) + Sync)) {
    match pool {
        // The pool contains shard panics per task and reports them typed;
        // inside the engine a panicking scan shard means the arrival's
        // answer cannot be assembled, so re-raise as a single panic on the
        // serve path. The serve layer's per-tenant containment catches it
        // there — the pool itself (shared across tenants) stays usable.
        Some(p) => {
            if let Err(e) = p.run(nshards, body) {
                panic!("scan shard panicked: {e}");
            }
        }
        None => {
            for s in 0..nshards {
                body(s);
            }
        }
    }
}

fn block_bounds(layout: &SpatialLayout, f_row: &[f64], b_row: &[f64], out: &mut [f64]) {
    for (bi, slot) in out.iter_mut().enumerate() {
        let start = bi * layout.block;
        let end = (start + layout.block).min(f_row.len());
        let mut min = f64::INFINITY;
        for &p in &layout.perm[start..end] {
            let p = p as usize;
            let v = opening_key(f_row[p], b_row[p]);
            if v < min {
                min = v;
            }
        }
        *slot = min;
    }
}

impl OpeningTargetIndex {
    /// Bounds for an engine whose budgets are all zero, laid over the
    /// identity relabeling with distance bounds disabled (no metric in
    /// sight): pure distance-free pruning. `f_small` is commodity-major
    /// (`e·|M| + p`), `f_full` per point — the engine's own layouts.
    pub fn new(points: usize, services: usize, f_small: &[f64], f_full: &[f64]) -> Self {
        Self::with_layout(SpatialLayout::identity(points), services, f_small, f_full)
    }

    /// The engine-facing constructor: blocks laid over the metric's
    /// [`omfl_metric::Metric::coherent_order`] with medoid/radius summaries
    /// (distance-aware pruning), or the identity fallback when the metric
    /// offers no order. Metrics with a coordinate embedding get kd ball
    /// ingest (plus [`HUGE_BLOCK`] blocks at huge `|M|`); the rest keep the
    /// windowed ingest.
    pub fn for_instance(inst: &Instance, f_small: &[f64], f_full: &[f64]) -> Self {
        match inst.metric().coherent_order() {
            Some(order) => Self::with_order(inst, f_small, f_full, order),
            None => Self::new(inst.num_points(), inst.num_commodities(), f_small, f_full),
        }
    }

    /// [`Self::for_instance`] pinned to the pre-kd layout generation:
    /// windowed ball ingest, [`TARGET_BLOCK`]-sized blocks, no kd tree.
    /// Kept callable so the paired benches can time the current serve path
    /// against the frozen baseline on identical instances.
    pub fn for_instance_legacy(inst: &Instance, f_small: &[f64], f_full: &[f64]) -> Self {
        match inst.metric().coherent_order() {
            Some(order) => Self::with_layout(
                SpatialLayout::from_order(inst, order, false),
                inst.num_commodities(),
                f_small,
                f_full,
            ),
            None => Self::new(inst.num_points(), inst.num_commodities(), f_small, f_full),
        }
    }

    /// Blocks laid over an explicit relabeling `order` (position → original
    /// id), with per-block medoid/radius summaries computed from the
    /// instance metric. Exposed beyond [`Self::for_instance`] so the test
    /// suites can drive *arbitrary* permutations — the answers must be
    /// bit-identical under every one of them.
    pub fn with_order(inst: &Instance, f_small: &[f64], f_full: &[f64], order: Vec<u32>) -> Self {
        Self::with_layout(
            SpatialLayout::from_order(inst, order, true),
            inst.num_commodities(),
            f_small,
            f_full,
        )
    }

    fn with_layout(
        layout: SpatialLayout,
        services: usize,
        f_small: &[f64],
        f_full: &[f64],
    ) -> Self {
        let points = layout.perm.len();
        let nblocks = layout.nblocks();
        let zeros = vec![0.0; points];
        let mut small = vec![f64::INFINITY; services * nblocks];
        for e in 0..services {
            block_bounds(
                &layout,
                &f_small[e * points..(e + 1) * points],
                &zeros,
                &mut small[e * nblocks..(e + 1) * nblocks],
            );
        }
        let mut large = vec![f64::INFINITY; nblocks];
        block_bounds(&layout, f_full, &zeros, &mut large);
        Self {
            small,
            large,
            nblocks,
            layout: Arc::new(layout),
            pool: None,
            shard_blocks: SCAN_SHARD_BLOCKS,
            query_point: None,
            bound_scratch: Vec::with_capacity(nblocks),
            dlb: vec![0.0; nblocks],
            dub: vec![f64::INFINITY; nblocks],
            cover_marks: Vec::new(),
            #[cfg(debug_assertions)]
            query_tag: None,
            skipped: 0,
            scanned: 0,
        }
    }

    /// A shared handle to the block layout, for [`PastIndex::attach_layout`].
    pub(crate) fn layout_handle(&self) -> Arc<SpatialLayout> {
        Arc::clone(&self.layout)
    }

    /// Installs (or removes) the worker pool behind the sharded scans.
    /// Purely an execution choice: results and skip/scan statistics are
    /// bit-identical with any pool, including none.
    pub fn set_scan_pool(&mut self, pool: Option<Arc<TaskPool>>) {
        self.pool = pool;
    }

    /// Overrides the blocks-per-shard granularity (test/diagnostic hook).
    /// Changes the skip/scan *statistics* — the shard partition decides
    /// which skips are attempted — but never a returned answer.
    pub fn set_scan_shard_blocks(&mut self, blocks: usize) {
        assert!(blocks > 0, "shards must hold at least one block");
        self.shard_blocks = blocks;
    }

    /// The block partition as original-id member lists, in relabeled block
    /// order (diagnostics and the ingest-equivalence tests).
    pub fn block_partition(&self) -> Vec<Vec<u32>> {
        let points = self.layout.perm.len();
        (0..self.nblocks)
            .map(|bi| {
                let start = bi * self.layout.block;
                let end = (start + self.layout.block).min(points);
                self.layout.perm[start..end].to_vec()
            })
            .collect()
    }

    /// Per-block `(medoid, covering radius, min original id)` summaries
    /// (diagnostics and the ingest-equivalence tests).
    pub fn block_summaries(&self) -> Vec<(u32, f64, u32)> {
        (0..self.nblocks)
            .map(|bi| {
                (
                    self.layout.rep[bi],
                    self.layout.radius[bi],
                    self.layout.min_id[bi],
                )
            })
            .collect()
    }

    /// Fingerprints a distance row by values (debug builds): rows may be
    /// re-materialized at different addresses between the serve phase and
    /// the freeze phase (cache eviction + refill), but the fill contract
    /// makes the values bit-identical, which is all the cached bounds
    /// depend on.
    #[cfg(debug_assertions)]
    fn row_tag(dist_row: &[f64]) -> (usize, u64, u64) {
        (
            dist_row.len(),
            dist_row.first().map_or(0, |d| d.to_bits()),
            dist_row.last().map_or(0, |d| d.to_bits()),
        )
    }

    #[cfg(debug_assertions)]
    fn assert_prepared(&self, dist_row: &[f64]) {
        assert_eq!(
            self.query_tag,
            Some(Self::row_tag(dist_row)),
            "query with a distance row that prepare_query never saw"
        );
    }

    /// Installs the arrival's distance row: computes the per-block distance
    /// lower bounds `max(0, d(rep_b, r) − radius_b − slack)` once, to be
    /// shared by every [`Self::small_target`] / [`Self::large_target`] /
    /// [`Self::budget_move_candidates`] call of the arrival. Must be called
    /// whenever the query row changes (debug builds assert it); rows with
    /// identical values are interchangeable — the bounds are pure functions
    /// of the values.
    pub fn prepare_query(&mut self, dist_row: &[f64]) {
        self.prepare_query_at(None, dist_row);
    }

    /// [`Self::prepare_query`] with the query's original point id supplied
    /// (the engine always knows it): identical bounds, plus the id unlocks
    /// kd range narrowing in [`Self::budget_move_candidates`]. The bound
    /// fill is sharded over the pool when one is installed — the values
    /// are pure per-block functions of the row, so execution order is
    /// invisible.
    pub fn prepare_query_at(&mut self, at: Option<PointId>, dist_row: &[f64]) {
        self.query_point = at;
        self.dlb.clear();
        self.dlb.resize(self.nblocks, 0.0);
        self.dub.clear();
        self.dub.resize(self.nblocks, f64::INFINITY);
        if self.layout.bounded {
            let layout = &self.layout;
            match &self.pool {
                Some(pool) if self.nblocks >= 2 * self.shard_blocks => {
                    let shard_blocks = self.shard_blocks;
                    let lo_w = ShardWriter::new(&mut self.dlb, shard_blocks);
                    let hi_w = ShardWriter::new(&mut self.dub, shard_blocks);
                    let nshards = lo_w.num_chunks();
                    let shards = pool.run(nshards, |s| {
                        let lo = s * shard_blocks;
                        // Safety: shard `s` writes only its own chunks.
                        let lchunk = unsafe { lo_w.chunk(s) };
                        let hchunk = unsafe { hi_w.chunk(s) };
                        for (j, (lslot, hslot)) in lchunk.iter_mut().zip(hchunk).enumerate() {
                            let bi = lo + j;
                            let d_rep = dist_row[layout.rep[bi] as usize];
                            *lslot = dist_lower_bound(d_rep, layout.radius[bi]);
                            *hslot = dist_upper_bound(d_rep, layout.radius[bi]);
                        }
                    });
                    if let Err(e) = shards {
                        panic!("bound shard panicked: {e}");
                    }
                }
                _ => {
                    for bi in 0..self.nblocks {
                        let d_rep = dist_row[layout.rep[bi] as usize];
                        self.dlb[bi] = dist_lower_bound(d_rep, layout.radius[bi]);
                        self.dub[bi] = dist_upper_bound(d_rep, layout.radius[bi]);
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        {
            self.query_tag = Some(Self::row_tag(dist_row));
        }
    }

    /// Original ids whose distance to the prepared query row *could* be
    /// below `cap` — an exact superset of `{p : dist_row[p] < cap}`. The
    /// caller still applies its own `d < cap` test per candidate, so the
    /// filter only has to be sound, never tight; and the engine's
    /// reinvestment updates are per-point min-folds, so any candidate
    /// *order* is equivalent (the relabeling proptests drive this).
    ///
    /// Two filters, picked by what the layout knows:
    ///
    /// * **kd range query** (isometric embedding + known query point): the
    ///   tree's distances are bit-identical to the metric's, so every
    ///   point with `d < cap` lies within the slack-inflated radius — a
    ///   near-exact candidate set instead of whole blocks.
    /// * **block filter** (otherwise): drop every block whose certified
    ///   distance lower bound is at least `cap` (such a block cannot
    ///   contain a location with `d < cap`).
    pub fn budget_move_candidates(&self, _dist_row: &[f64], cap: f64, out: &mut Vec<u32>) {
        #[cfg(debug_assertions)]
        self.assert_prepared(_dist_row);
        out.clear();
        if self.layout.kd_isometric {
            if let (Some(kd), Some(at)) = (self.layout.kd.as_ref(), self.query_point) {
                let r = cap * (1.0 + RADIUS_BOUND_SLACK);
                kd.range(kd.point(at.0), r, out);
                return;
            }
        }
        let points = self.layout.perm.len();
        let block = self.layout.block;
        for (bi, &dlb) in self.dlb.iter().enumerate() {
            if dlb >= cap {
                continue;
            }
            let start = bi * block;
            let end = (start + block).min(points);
            out.extend_from_slice(&self.layout.perm[start..end]);
        }
    }

    /// Whether this index can drive a *partial* distance row: prepared
    /// bounds plus [`Self::query_scan_cover`] predict every entry the
    /// arrival's pruned scans can touch. Requires real radius summaries —
    /// the no-metric fallback scans distance-free and may read anything.
    pub fn partial_rows_supported(&self) -> bool {
        self.layout.bounded
    }

    /// The ids a partial distance row must cover *before*
    /// [`Self::prepare_query_at`] can run on it: every block representative
    /// (the bound pass reads exactly those) plus the row's two endpoints
    /// (the debug-build row fingerprint reads them).
    pub fn seed_cover_ids(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.layout.rep);
        let m = self.layout.perm.len() as u32;
        out.push(0);
        out.push(m - 1);
    }

    /// Predicts, from the prepared per-block bounds alone, every original
    /// id whose distance entry the arrival's t3/t4 pruned scans could read
    /// — the coverage a partial row needs so those scans are bit-identical
    /// to running them over a full row.
    ///
    /// For each scan (one per member commodity, plus t4): the scan first
    /// visits the minimum-bound block `first`, whose incumbent is at most
    /// `v̂ = bounds[first] + dub[first]` (the block minimum's witness sits
    /// within `dub[first]` of the query; float addition is monotonic, so
    /// the computed incumbent never exceeds the computed `v̂`). Every later
    /// block is scanned only while its bound is ≤ the current incumbent,
    /// which only falls from the phase-B value — so
    /// `{b : bounds[b] + dlb[b] ≤ v̂}` (which contains `first`) is a
    /// superset of the scanned set at ANY shard partition and thread
    /// count. The union of those supersets over all of the arrival's
    /// scans, expanded to block members, is the returned cover.
    ///
    /// Sound because t3/t4 run once per arrival, before any bump or
    /// rebuild moves the bounds (the engine's serve order); a cover
    /// computed from the same bounds the scans will read cannot go stale
    /// within the arrival. Consumers that outlive the arrival's scans
    /// (openings, cap shrinks) read full rows and trigger the row cache's
    /// coverage fallback instead.
    pub fn query_scan_cover(&mut self, members: &[CommodityId], out: &mut Vec<u32>) {
        out.clear();
        let nblocks = self.nblocks;
        let (small, large) = (&self.small, &self.large);
        let (dlb, dub): (&[f64], &[f64]) = (&self.dlb, &self.dub);
        let marks = &mut self.cover_marks;
        marks.clear();
        marks.resize(nblocks, false);
        let mut mark_scan = |bounds: &[f64]| {
            let (mut first_bound, mut first) = (f64::INFINITY, 0usize);
            for bi in 0..nblocks {
                let bound = bounds[bi] + dlb[bi];
                if bound < first_bound {
                    first_bound = bound;
                    first = bi;
                }
            }
            let vhat = bounds[first] + dub[first];
            for bi in 0..nblocks {
                if bounds[bi] + dlb[bi] <= vhat {
                    marks[bi] = true;
                }
            }
        };
        for &e in members {
            mark_scan(&small[e.index() * nblocks..(e.index() + 1) * nblocks]);
        }
        mark_scan(large);
        let points = self.layout.perm.len();
        let block = self.layout.block;
        for (bi, &marked) in marks.iter().enumerate() {
            if marked {
                let start = bi * block;
                let end = (start + block).min(points);
                out.extend_from_slice(&self.layout.perm[start..end]);
            }
        }
    }

    /// The freeze walk: reinvests a served request's caps into the bid
    /// matrices and folds the moved keys into the block bounds, sharded
    /// over the worker pool with the same pure-function-of-`nblocks`
    /// partition as the t3/t4 scans.
    ///
    /// Bit-identical to the serial walk at any thread count because every
    /// write is keyed by block membership: a point lives in exactly one
    /// block and a block in exactly one shard, so each `b_small[e·m + p]` /
    /// `b_large[p]` slot takes its single `+= (cap − d)` from one shard,
    /// and each block-bound slot min-folds only its own block's keys
    /// (min-folds commute — the fold is order-free). The update set is
    /// exactly `{p : d(p, r) < cap}` however it is narrowed.
    ///
    /// Distances come from `full_row` when the caller has one (verbatim
    /// backend values); otherwise each block is screened once through the
    /// metric's certified f32 brackets ([`omfl_metric::Metric::screen_distances`])
    /// — a survivor (bracket low end under some cap) gets one exact
    /// `d(p, r)` confirmation, reused across every cap of the request. A
    /// certified `lo ≥ cap` skip is exact: it implies `d ≥ cap`, and the
    /// walk adds nothing at `d ≥ cap`. Blocks whose prepared distance
    /// lower bound already meets every cap are skipped whole.
    #[allow(clippy::too_many_arguments)]
    pub fn freeze_reinvest(
        &mut self,
        inst: &Instance,
        loc: PointId,
        full_row: Option<&[f64]>,
        members: &[CommodityId],
        caps: &[f64],
        cap_total: f64,
        b_small: &mut [f64],
        b_large: &mut [f64],
        f_small: &[f64],
        f_full: &[f64],
    ) {
        debug_assert_eq!(
            self.query_point,
            Some(loc),
            "freeze walks the bounds prepared for this arrival's query row"
        );
        let max_cap = caps.iter().fold(cap_total, |a, &c| a.max(c));
        if max_cap <= 0.0 {
            return;
        }
        let m = self.layout.perm.len();
        let nblocks = self.nblocks;
        let shard_blocks = self.shard_blocks;
        let nshards = nblocks.div_ceil(shard_blocks);
        let layout = &self.layout;
        let dlb: &[f64] = &self.dlb;
        let metric = inst.metric();
        assert!(layout.block <= HUGE_BLOCK, "screen buffers are block-sized");
        let bs_w = ScatterWriter::new(b_small);
        let bl_w = ScatterWriter::new(b_large);
        let ss_w = ScatterWriter::new(&mut self.small);
        let sl_w = ScatterWriter::new(&mut self.large);
        let body = |s: usize| {
            let lo_b = s * shard_blocks;
            let hi_b = (lo_b + shard_blocks).min(nblocks);
            let mut lo = [0.0f64; HUGE_BLOCK];
            let mut hi = [0.0f64; HUGE_BLOCK];
            // Exact distances, computed lazily once per surviving point
            // and reused across every cap of the request (NaN = not yet).
            let mut dex = [f64::NAN; HUGE_BLOCK];
            for (bi, &dlb_bi) in dlb.iter().enumerate().take(hi_b).skip(lo_b) {
                if dlb_bi >= max_cap {
                    continue;
                }
                let start = bi * layout.block;
                let end = (start + layout.block).min(m);
                let mems = &layout.perm[start..end];
                let n = mems.len();
                let screened = full_row.is_none()
                    && metric.screen_distances(loc, mems, &mut lo[..n], &mut hi[..n]);
                for d in dex[..n].iter_mut() {
                    *d = f64::NAN;
                }
                let dist_at = |j: usize, dex: &mut [f64; HUGE_BLOCK]| -> f64 {
                    match full_row {
                        Some(row) => row[mems[j] as usize],
                        None => {
                            if dex[j].is_nan() {
                                dex[j] = inst.distance(PointId(mems[j]), loc);
                            }
                            dex[j]
                        }
                    }
                };
                for (&e, &cap) in members.iter().zip(caps) {
                    if cap <= 0.0 || dlb_bi >= cap {
                        continue;
                    }
                    for (j, &p) in mems.iter().enumerate() {
                        if screened && lo[j] >= cap {
                            continue;
                        }
                        let d = dist_at(j, &mut dex);
                        if d < cap {
                            let pi = e.index() * m + p as usize;
                            // Safety: slot `e·m + p` / bound `e·nblocks +
                            // bi` belong to this shard alone — `p` is in
                            // block `bi`, owned by shard `s`.
                            let b = unsafe { bs_w.slot(pi) };
                            *b += cap - d;
                            let key = (f_small[pi] - *b).max(0.0);
                            let bound = unsafe { ss_w.slot(e.index() * nblocks + bi) };
                            if key < *bound {
                                *bound = key;
                            }
                        }
                    }
                }
                if cap_total > 0.0 && dlb_bi < cap_total {
                    for (j, &p) in mems.iter().enumerate() {
                        if screened && lo[j] >= cap_total {
                            continue;
                        }
                        let d = dist_at(j, &mut dex);
                        if d < cap_total {
                            let pi = p as usize;
                            // Safety: same block-ownership argument.
                            let b = unsafe { bl_w.slot(pi) };
                            *b += cap_total - d;
                            let key = (f_full[pi] - *b).max(0.0);
                            let bound = unsafe { sl_w.slot(bi) };
                            if key < *bound {
                                *bound = key;
                            }
                        }
                    }
                }
            }
        };
        run_shards(self.pool.as_deref(), nshards, &body);
    }

    /// The t3 argmin for commodity `e` from the query whose distance row is
    /// `dist_row` (`dist_row[p] = d(p, r)`, original ids): bit-identical to
    /// the full strict-`<` scan, skipping blocks whose distance-aware bound
    /// cannot improve the running best.
    pub fn small_target(
        &mut self,
        e: CommodityId,
        f_row: &[f64],
        b_row: &[f64],
        dist_row: &[f64],
    ) -> (f64, PointId) {
        #[cfg(debug_assertions)]
        self.assert_prepared(dist_row);
        let bounds = &self.small[e.index() * self.nblocks..(e.index() + 1) * self.nblocks];
        Self::pruned_scan(
            &self.layout,
            bounds,
            &self.dlb,
            f_row,
            b_row,
            dist_row,
            &mut self.bound_scratch,
            &mut self.skipped,
            &mut self.scanned,
            self.pool.as_deref(),
            self.shard_blocks,
        )
    }

    /// The t4 argmin (see [`Self::small_target`]).
    pub fn large_target(
        &mut self,
        f_full: &[f64],
        b_large: &[f64],
        dist_row: &[f64],
    ) -> (f64, PointId) {
        #[cfg(debug_assertions)]
        self.assert_prepared(dist_row);
        Self::pruned_scan(
            &self.layout,
            &self.large,
            &self.dlb,
            f_full,
            b_large,
            dist_row,
            &mut self.bound_scratch,
            &mut self.skipped,
            &mut self.scanned,
            self.pool.as_deref(),
            self.shard_blocks,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn pruned_scan(
        layout: &SpatialLayout,
        bounds: &[f64],
        dlb: &[f64],
        f_row: &[f64],
        b_row: &[f64],
        dist_row: &[f64],
        bound_scratch: &mut Vec<f64>,
        skipped: &mut u64,
        scanned: &mut u64,
        pool: Option<&TaskPool>,
        shard_blocks: usize,
    ) -> (f64, PointId) {
        let m = f_row.len();
        let block = layout.block;
        let mut best = f64::INFINITY;
        let mut best_id = u32::MAX;
        if !layout.bounded {
            // No-metric fallback (identity layout): distance bounds are
            // inert and ids ascend across blocks, so the verbatim in-order
            // strict-`<` scan with the distance-free skip is both the
            // fastest and the exact one (a later equal value can never
            // displace the incumbent).
            for (bi, &bound) in bounds.iter().enumerate() {
                if bound > best || (bound == best && layout.min_id[bi] > best_id) {
                    *skipped += 1;
                    continue;
                }
                *scanned += 1;
                let start = bi * block;
                let end = (start + block).min(m);
                for p in start..end {
                    let v = opening_key(f_row[p], b_row[p]) + dist_row[p];
                    if v < best {
                        best = v;
                        best_id = p as u32;
                    }
                }
            }
            return (best, PointId(if best_id == u32::MAX { 0 } else { best_id }));
        }

        // Radius-bounded layout. The block scan below tracks the
        // lexicographic (value, original id) minimum — exactly what the
        // ascending-id strict-`<` full scan returns, computed with the
        // identical float expression — so blocks may be visited in ANY
        // order, and the skip test stays conservative at every intermediate
        // `best`. That freedom is worth a lot twice over: scanning the
        // minimum-bound block FIRST drops `best` to (almost always) the
        // true optimum immediately, and the remaining sweep can then be
        // *sharded* — each shard sweeps its own block range seeded from
        // that incumbent, and a lexicographic merge of the shard bests
        // recovers the global answer. A shard skipping a block its local
        // best certifies out is sound because the local best is always an
        // *achieved* candidate: anything in the block is lex-≥ it, hence
        // lex-≥ the global minimum, which is therefore never lost.
        let scan_block = |bi: usize, best: &mut f64, best_id: &mut u32| {
            let start = bi * block;
            let end = (start + block).min(m);
            if layout.identity {
                // An identity ball partition (e.g. a sorted line): same
                // lexicographic tracking, no gather.
                for p in start..end {
                    let v = opening_key(f_row[p], b_row[p]) + dist_row[p];
                    if v < *best || (v == *best && (p as u32) < *best_id) {
                        *best = v;
                        *best_id = p as u32;
                    }
                }
            } else {
                for &p in &layout.perm[start..end] {
                    let pi = p as usize;
                    let v = opening_key(f_row[pi], b_row[pi]) + dist_row[pi];
                    if v < *best || (v == *best && p < *best_id) {
                        *best = v;
                        *best_id = p;
                    }
                }
            }
        };
        let nblocks = bounds.len();
        let nshards = nblocks.div_ceil(shard_blocks);
        let query_bounds = bound_scratch;
        query_bounds.clear();

        if nshards <= 1 {
            // Single shard: the plain two-pass scan (the sharded path
            // below degenerates to exactly this sequence — kept inline to
            // spare small instances the shard bookkeeping).
            let mut first = 0usize;
            let mut first_bound = f64::INFINITY;
            for (bi, &bmin) in bounds.iter().enumerate() {
                let bound = bmin + dlb[bi];
                if bound < first_bound {
                    first_bound = bound;
                    first = bi;
                }
                query_bounds.push(bound);
            }
            scan_block(first, &mut best, &mut best_id);
            *scanned += 1;
            // Sweep the rest, skipping every block whose bound says it
            // cannot improve the incumbent. Every key in a block is ≥ its
            // bound (budget invariant plus the triangle inequality on the
            // block summary). Strictly above the best: nothing can win.
            // Exactly at the best: only a smaller original id could win an
            // exact tie, and min_id certifies none exists in the block.
            for (bi, &bound) in query_bounds.iter().enumerate() {
                if bi == first {
                    continue;
                }
                if bound > best || (bound == best && layout.min_id[bi] > best_id) {
                    *skipped += 1;
                    continue;
                }
                *scanned += 1;
                scan_block(bi, &mut best, &mut best_id);
            }
            return (best, PointId(if best_id == u32::MAX { 0 } else { best_id }));
        }

        // Sharded sweep. The shard partition is a pure function of the
        // block count and `shard_blocks` — NEVER of the pool — so the
        // skip/scan statistics are identical whether the shards run on a
        // pool or sequentially right here, and identical across machines.
        query_bounds.resize(nblocks, 0.0);
        // Phase A: materialize the per-block bounds and find each shard's
        // minimum-bound block (ties: lowest index).
        let mut shard_first: Vec<(f64, u32)> = vec![(f64::INFINITY, u32::MAX); nshards];
        {
            let qb = ShardWriter::new(query_bounds, shard_blocks);
            let sf = ShardWriter::new(&mut shard_first, 1);
            let body = |s: usize| {
                let lo = s * shard_blocks;
                // Safety: shard `s` writes only its own chunks.
                let chunk = unsafe { qb.chunk(s) };
                let mut fb = f64::INFINITY;
                let mut fi = lo as u32;
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let bi = lo + j;
                    let bound = bounds[bi] + dlb[bi];
                    *slot = bound;
                    if bound < fb {
                        fb = bound;
                        fi = bi as u32;
                    }
                }
                unsafe { sf.chunk(s)[0] = (fb, fi) };
            };
            run_shards(pool, nshards, &body);
        }
        // Ascending strict-`<` merge: the lowest-index block of the global
        // minimum bound, exactly as the sequential pass picks it.
        let (mut first_bound, mut first) = (f64::INFINITY, 0usize);
        for &(fb, fi) in &shard_first {
            if fb < first_bound {
                first_bound = fb;
                first = fi as usize;
            }
        }
        // Phase B: scan the global minimum-bound block — the incumbent
        // every shard seeds from.
        scan_block(first, &mut best, &mut best_id);
        *scanned += 1;
        // Phase C: per-shard in-order sweeps with per-shard local bests
        // and counters.
        let mut shard_best: Vec<(f64, u32, u64, u64)> = vec![(best, best_id, 0, 0); nshards];
        {
            let sb = ShardWriter::new(&mut shard_best, 1);
            let qb: &[f64] = query_bounds;
            let body = |s: usize| {
                let lo = s * shard_blocks;
                let hi = (lo + shard_blocks).min(nblocks);
                let mut b = best;
                let mut bid = best_id;
                let (mut sk, mut sc) = (0u64, 0u64);
                for (bi, &bound) in qb.iter().enumerate().take(hi).skip(lo) {
                    if bi == first {
                        continue;
                    }
                    if bound > b || (bound == b && layout.min_id[bi] > bid) {
                        sk += 1;
                        continue;
                    }
                    sc += 1;
                    scan_block(bi, &mut b, &mut bid);
                }
                unsafe { sb.chunk(s)[0] = (b, bid, sk, sc) };
            };
            run_shards(pool, nshards, &body);
        }
        // Phase D: lexicographic merge (each shard best is an achieved
        // candidate or the phase-B incumbent) plus the stats fold.
        for &(v, id, sk, sc) in &shard_best {
            if v < best || (v == best && id < best_id) {
                best = v;
                best_id = id;
            }
            *skipped += sk;
            *scanned += sc;
        }
        (best, PointId(if best_id == u32::MAX { 0 } else { best_id }))
    }

    /// `B[p][e]` grew (a freeze reinvested a bid there): the key fell to
    /// `key` — lower the block bound to match, `O(1)`.
    #[inline]
    pub fn note_small_bump(&mut self, e: CommodityId, p: PointId, key: f64) {
        let idx =
            e.index() * self.nblocks + self.layout.pos[p.index()] as usize / self.layout.block;
        if key < self.small[idx] {
            self.small[idx] = key;
        }
    }

    /// `B̂[p]` grew: the t4 key fell to `key`.
    #[inline]
    pub fn note_large_bump(&mut self, p: PointId, key: f64) {
        let idx = self.layout.pos[p.index()] as usize / self.layout.block;
        if key < self.large[idx] {
            self.large[idx] = key;
        }
    }

    /// Recomputes `e`'s block bounds from the current rows. Called after a
    /// cap-shrink pass lowered budgets (keys rose): the stale bounds were
    /// still sound, this restores tightness.
    pub fn rebuild_small(&mut self, e: CommodityId, f_row: &[f64], b_row: &[f64]) {
        block_bounds(
            &self.layout,
            f_row,
            b_row,
            &mut self.small[e.index() * self.nblocks..(e.index() + 1) * self.nblocks],
        );
    }

    /// Recomputes the t4 block bounds (see [`Self::rebuild_small`]).
    pub fn rebuild_large(&mut self, f_full: &[f64], b_large: &[f64]) {
        block_bounds(&self.layout, f_full, b_large, &mut self.large);
    }

    /// `(blocks pruned, blocks scanned)` across all queries so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.skipped, self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Solution;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::CommoditySet;
    use omfl_metric::line::LineMetric;

    fn inst(positions: Vec<f64>, s: u16) -> Instance {
        Instance::new(
            Box::new(LineMetric::new(positions).unwrap()),
            s,
            CostModel::power(s, 1.0, 2.0),
        )
        .unwrap()
    }

    /// Reference linear scan with the exact tie-breaking the index must
    /// reproduce: smalls (opening order) then larges (opening order), first
    /// minimum wins.
    fn scan_nearest(
        inst: &Instance,
        sol: &Solution,
        smalls: &[FacilityId],
        larges: &[FacilityId],
        from: PointId,
    ) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        for &fid in smalls.iter().chain(larges) {
            let d = inst.distance(from, sol.facilities()[fid.index()].location);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((fid, d)),
            }
        }
        best
    }

    #[test]
    fn empty_index_answers_none() {
        let inst = inst(vec![0.0, 1.0], 3);
        let idx = FacilityIndex::for_instance(&inst);
        assert!(idx.nearest_offering(CommodityId(0), PointId(0)).is_none());
        assert!(idx.nearest_large(PointId(1)).is_none());
        assert!(idx.nearest_small(CommodityId(2), PointId(0)).is_none());
        assert_eq!(idx.openings(), 0);
    }

    #[test]
    fn matches_linear_scan_including_ties() {
        // Facilities engineered so several are equidistant from the query
        // point; the index must pick the same winner as the scan.
        let inst = inst(vec![0.0, 1.0, 2.0, 3.0, 4.0], 2);
        let mut sol = Solution::new();
        let mut idx = FacilityIndex::for_instance(&inst);
        let u = inst.universe();
        let e = CommodityId(0);
        let mut smalls = Vec::new();
        let mut larges = Vec::new();

        // Two smalls equidistant from point 2 (at 1 and 3), then a large at
        // the same distance (at 3) — scan order says the first small wins.
        for &(p, large) in &[(1u32, false), (3, false), (3, true)] {
            let config = if large {
                CommoditySet::full(u)
            } else {
                CommoditySet::singleton(u, e).unwrap()
            };
            let fid = sol.open_facility(&inst, PointId(p), config);
            if large {
                idx.note_large_opening(&inst, PointId(p), fid);
                larges.push(fid);
            } else {
                idx.note_small_opening(&inst, e, PointId(p), fid);
                smalls.push(fid);
            }
            for q in 0..inst.num_points() as u32 {
                let want = scan_nearest(&inst, &sol, &smalls, &larges, PointId(q));
                let got = idx.nearest_offering(e, PointId(q));
                assert_eq!(
                    got.map(|(f, d)| (f, d.to_bits())),
                    want.map(|(f, d)| (f, d.to_bits())),
                    "query at {q} after opening at {p}"
                );
            }
        }
        assert_eq!(idx.openings(), 3);
    }

    #[test]
    fn large_openings_serve_every_commodity() {
        let inst = inst(vec![0.0, 5.0], 4);
        let mut sol = Solution::new();
        let mut idx = FacilityIndex::for_instance(&inst);
        let fid = sol.open_facility(&inst, PointId(1), CommoditySet::full(inst.universe()));
        idx.note_large_opening(&inst, PointId(1), fid);
        for e in 0..4u16 {
            let (f, d) = idx.nearest_offering(CommodityId(e), PointId(0)).unwrap();
            assert_eq!(f, fid);
            assert_eq!(d, 5.0);
        }
        assert_eq!(idx.nearest_large(PointId(1)).unwrap().1, 0.0);
        assert!(idx.nearest_small(CommodityId(0), PointId(0)).is_none());
    }

    #[test]
    fn past_index_buckets_skip_and_sort() {
        let inst = inst(vec![0.0, 10.0, 20.0], 2);
        let mut past = PastIndex::new(3, 2);
        let e = CommodityId(0);
        // Requests at points 0 and 2 with caps 4.0; request 1 interleaved at
        // point 2 so candidate order must be re-sorted.
        past.push_request(0, PointId(0), &[e], &[4.0], 4.0);
        past.push_request(1, PointId(2), &[e], &[4.0], 4.0);
        past.push_request(2, PointId(0), &[e], &[4.0], 4.0);

        // A facility at point 1 is 10 away from both buckets: no candidates.
        assert!(past
            .small_shrink_candidates(&inst, e, PointId(1))
            .is_empty());
        // A facility at point 0 shrinks the point-0 bucket only, in
        // ascending (pi, slot) order.
        let c = past.small_shrink_candidates(&inst, e, PointId(0));
        assert_eq!(c, vec![(0, 0), (2, 0)]);
        // The bucket bound was clamped: a second opening at the same point
        // finds nothing left to shrink.
        assert!(past
            .small_shrink_candidates(&inst, e, PointId(0))
            .is_empty());
        // Large candidates cover every member at a qualifying location.
        let l = past.large_shrink_candidates(&inst, PointId(2));
        assert_eq!(l, vec![1]);
    }

    #[test]
    fn past_index_block_pruning_matches_plain_walk() {
        // A layout-attached PastIndex must return exactly the same shrink
        // candidates — and clamp exactly the same bucket bounds — as the
        // plain bucket walk, under an adversarial interleaving of pushes
        // and (mutating) shrink queries over a shuffled relabeling.
        let (m, s) = (96usize, 2usize);
        let positions: Vec<f64> = (0..m).map(|p| (p as f64 * 7.3) % 50.0).collect();
        let inst = inst(positions, s as u16);
        let f_small = vec![1.0; m * s];
        let f_full = vec![3.0; m];
        let mut st = 0xFEEDu64;
        let mut order: Vec<u32> = (0..m as u32).collect();
        for i in (1..m).rev() {
            let j = (xorshift(&mut st) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let idx = OpeningTargetIndex::with_order(&inst, &f_small, &f_full, order);
        let mut pruned = PastIndex::new(m, s);
        pruned.attach_layout(idx.layout_handle());
        let mut plain = PastIndex::new(m, s);
        let e = CommodityId(1);
        for step in 0..400usize {
            let at = PointId((xorshift(&mut st) % m as u64) as u32);
            if step % 3 != 2 {
                let cap = 0.5 + ((xorshift(&mut st) % 16) as f64) * 0.5;
                let caps = [cap, cap * 0.75];
                let demands = [CommodityId(0), e];
                pruned.push_request(step as u32, at, &demands, &caps, cap);
                plain.push_request(step as u32, at, &demands, &caps, cap);
            } else {
                let got = pruned.small_shrink_candidates(&inst, e, at);
                let want = plain.small_shrink_candidates(&inst, e, at);
                assert_eq!(got, want, "small candidates diverged at step {step}");
                let got = pruned.large_shrink_candidates(&inst, at);
                let want = plain.large_shrink_candidates(&inst, at);
                assert_eq!(got, want, "large candidates diverged at step {step}");
            }
        }
    }

    #[test]
    fn past_index_block_bounds_recover_after_cross_family_shrinks() {
        // Six tight clusters (16 points, width 1.875) a thousand apart,
        // plus one probe point per cluster ~5 away; every cluster point
        // holds a past request with all caps 8. One *large* opening per
        // cluster shrinks every cap there to the intra-cluster distance
        // (≤ 1.875). Before the cross-family clamp, the *small* walk's
        // block bounds stayed at the stale-high 8 forever, so a probe at
        // distance ~4 (> true caps, < stale bound) kept scanning every
        // cluster block on every opening — this test pins the recovery:
        // all probe walks must skip all blocks without one location read.
        let (m, s) = (102usize, 1usize);
        let positions: Vec<f64> = (0..m)
            .map(|p| {
                if p < 96 {
                    (p / 16) as f64 * 1000.0 + (p % 16) as f64 * 0.125
                } else {
                    (p - 96) as f64 * 1000.0 + 5.0
                }
            })
            .collect();
        let inst = inst(positions, s as u16);
        let f_small = vec![1.0; m * s];
        let f_full = vec![3.0; m];
        let idx = OpeningTargetIndex::with_order(&inst, &f_small, &f_full, (0..m as u32).collect());
        let mut past = PastIndex::new(m, s);
        past.attach_layout(idx.layout_handle());
        let e = CommodityId(0);
        for p in 0..96u32 {
            past.push_request(p, PointId(p), &[e], &[8.0], 8.0);
        }
        // Shrink-heavy phase: a large opening at each cluster head clamps
        // every bound in the cluster (the caller contract shrinks the true
        // caps to the same distances).
        for c in 0..6u32 {
            let got = past.large_shrink_candidates(&inst, PointId(c * 16));
            assert_eq!(got.len(), 16, "cluster {c}: every member qualifies");
        }
        // Recovery: small-opening probes from ~4–5 away see distance lower
        // bounds above every recovered cap bound, so the walks retire all
        // blocks without any per-location distance reads.
        let (skipped0, scanned0) = past.stats();
        for c in 0..6u32 {
            let got = past.small_shrink_candidates(&inst, e, PointId(96 + c));
            assert!(
                got.is_empty(),
                "cluster {c}: no cap exceeds the probe distance"
            );
        }
        let (skipped, scanned) = past.stats();
        assert_eq!(scanned, scanned0, "stale-high bounds kept blocks scannable");
        assert!(skipped > skipped0);
        // And the small→large direction: small openings at the cluster
        // heads can only tighten further; large probes must skip too.
        for c in 0..6u32 {
            past.small_shrink_candidates(&inst, e, PointId(c * 16));
        }
        let (_, scanned1) = past.stats();
        for c in 0..6u32 {
            let got = past.large_shrink_candidates(&inst, PointId(96 + c));
            assert!(
                got.is_empty(),
                "cluster {c}: no any-cap exceeds the probe distance"
            );
        }
        let (_, scanned2) = past.stats();
        assert_eq!(
            scanned2, scanned1,
            "any-cap block bounds must have recovered"
        );
    }

    /// Reference scan with the PD tie-breaking: ascending location, strict
    /// `<`, i.e. the lexicographic min of `(value, location)`.
    fn scan_argmin(f_row: &[f64], b_row: &[f64], dist_row: &[f64]) -> (f64, u32) {
        let mut best = f64::INFINITY;
        let mut arg = 0u32;
        for p in 0..f_row.len() {
            let v = (f_row[p] - b_row[p]).max(0.0) + dist_row[p];
            if v < best {
                best = v;
                arg = p as u32;
            }
        }
        (best, arg)
    }

    /// Deterministic xorshift for the differential drive below (no rand dep
    /// in this crate).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn pruned_scan_matches_full_scan_under_pd_style_dynamics() {
        // Random bumps (budget increases, O(1) bound maintenance), rare
        // shrinks (budget decreases + rebuild), queries from random anchors
        // with heavy exact ties: every answer must equal the full scan bit
        // for bit, winner id included.
        let (m, s, queries) = (150usize, 3usize, 500usize);
        let e = CommodityId(1);
        // Location-independent costs: maximal tie pressure.
        let f_small = vec![2.0; m * s];
        let f_full = vec![5.0; m];
        let mut b_row = vec![0.0; m];
        let mut b_large = vec![0.0; m];
        let mut idx = OpeningTargetIndex::new(m, s, &f_small, &f_full);
        let f_row = &f_small[e.index() * m..(e.index() + 1) * m];
        let mut st = 0xC0FFEEu64;
        let mut dist_row = vec![0.0; m];
        for step in 0..queries {
            // A synthetic anchor: distances with many exact zeros and ties.
            let anchor = (xorshift(&mut st) % m as u64) as usize;
            for (p, d) in dist_row.iter_mut().enumerate() {
                *d = ((p.abs_diff(anchor)) % 7) as f64 * 0.5;
            }
            idx.prepare_query(&dist_row);
            let got = idx.small_target(e, f_row, &b_row, &dist_row);
            let want = scan_argmin(f_row, &b_row, &dist_row);
            assert_eq!(
                (got.0.to_bits(), got.1 .0),
                (want.0.to_bits(), want.1),
                "t3 diverged at step {step}"
            );
            let got4 = idx.large_target(&f_full, &b_large, &dist_row);
            let want4 = scan_argmin(&f_full, &b_large, &dist_row);
            assert_eq!(
                (got4.0.to_bits(), got4.1 .0),
                (want4.0.to_bits(), want4.1),
                "t4 diverged at step {step}"
            );
            // Mutate like the PD process: mostly bumps, occasional shrink.
            let p = (xorshift(&mut st) % m as u64) as usize;
            if step % 17 == 11 {
                b_row[p] = (b_row[p] - 1.0).max(0.0);
                b_large[p] = (b_large[p] - 2.0).max(0.0);
                idx.rebuild_small(e, f_row, &b_row);
                idx.rebuild_large(&f_full, &b_large);
            } else {
                let inc = 0.25 * ((xorshift(&mut st) % 8) as f64);
                b_row[p] += inc;
                idx.note_small_bump(e, PointId(p as u32), (f_row[p] - b_row[p]).max(0.0));
                b_large[p] += inc;
                idx.note_large_bump(PointId(p as u32), (f_full[p] - b_large[p]).max(0.0));
            }
        }
        let (skipped, scanned) = idx.stats();
        assert!(scanned > 0, "queries never scanned a block");
        assert!(skipped > 0, "the prune never engaged");
    }

    #[test]
    fn stale_low_bounds_after_unannounced_rises_stay_sound() {
        // A shrink without a rebuild leaves bounds stale LOW — pruning must
        // get weaker, never wrong.
        let m = TARGET_BLOCK * 3;
        let f_small = vec![4.0; m];
        let f_full = vec![9.0; m];
        let mut b_row = vec![0.0; m];
        let mut idx = OpeningTargetIndex::new(m, 1, &f_small, &f_full);
        let e = CommodityId(0);
        // Bump one location hard, then silently undo it (keys rise; no
        // rebuild call — the bound is now stale low).
        let hot = m - TARGET_BLOCK / 2;
        b_row[hot] = 3.75;
        idx.note_small_bump(e, PointId(hot as u32), (f_small[hot] - b_row[hot]).max(0.0));
        b_row[hot] = 0.0;
        let dist_row: Vec<f64> = (0..m).map(|p| p as f64 * 0.01).collect();
        idx.prepare_query(&dist_row);
        let got = idx.small_target(e, &f_small, &b_row, &dist_row);
        let want = scan_argmin(&f_small, &b_row, &dist_row);
        assert_eq!((got.0.to_bits(), got.1 .0), (want.0.to_bits(), want.1));
        // A rebuild restores tightness and the answer stays exact.
        idx.rebuild_small(e, &f_small, &b_row);
        let got = idx.small_target(e, &f_small, &b_row, &dist_row);
        assert_eq!((got.0.to_bits(), got.1 .0), (want.0.to_bits(), want.1));
    }

    #[test]
    fn relabeled_scan_matches_full_scan_under_pd_style_dynamics() {
        // A shuffled line metric (ids scattered over space, so the coherent
        // order is a genuine permutation) driven with bumps, shrinks and
        // rebuilds: the relabeled, radius-bounded index must equal the full
        // strict-`<` ascending-id scan bit for bit — winner id included —
        // at every step, with heavy exact ties in the mix.
        let m = 150usize;
        let mut positions = Vec::with_capacity(m);
        let mut st = 0xFEEDu64;
        for _ in 0..m {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Two far clusters plus ties: coarse values repeat.
            let cluster = if st & 4 == 0 { 0.0 } else { 1000.0 };
            positions.push(cluster + ((st >> 33) % 13) as f64);
        }
        let inst = Instance::new(
            Box::new(LineMetric::new(positions).unwrap()),
            3,
            CostModel::power(3, 1.0, 2.0),
        )
        .unwrap();
        assert_ne!(
            inst.metric().coherent_order().unwrap(),
            (0..m as u32).collect::<Vec<_>>(),
            "the shuffled line must relabel non-trivially"
        );
        let e = CommodityId(1);
        let s = 3usize;
        let f_small = vec![2.0; m * s];
        let f_full = vec![5.0; m];
        let mut b_row = vec![0.0; m];
        let mut b_large = vec![0.0; m];
        let mut idx = OpeningTargetIndex::for_instance(&inst, &f_small, &f_full);
        let f_row = &f_small[e.index() * m..(e.index() + 1) * m];
        let mut dist_row = vec![0.0; m];
        let mut st = 0xC0FFEEu64;
        for step in 0..400usize {
            let anchor = PointId((xorshift(&mut st) % m as u64) as u32);
            for (p, d) in dist_row.iter_mut().enumerate() {
                *d = inst.distance(PointId(p as u32), anchor);
            }
            idx.prepare_query(&dist_row);
            let got = idx.small_target(e, f_row, &b_row, &dist_row);
            let want = scan_argmin(f_row, &b_row, &dist_row);
            assert_eq!(
                (got.0.to_bits(), got.1 .0),
                (want.0.to_bits(), want.1),
                "t3 diverged at step {step}"
            );
            let got4 = idx.large_target(&f_full, &b_large, &dist_row);
            let want4 = scan_argmin(&f_full, &b_large, &dist_row);
            assert_eq!(
                (got4.0.to_bits(), got4.1 .0),
                (want4.0.to_bits(), want4.1),
                "t4 diverged at step {step}"
            );
            let p = (xorshift(&mut st) % m as u64) as usize;
            if step % 17 == 11 {
                b_row[p] = (b_row[p] - 1.0).max(0.0);
                b_large[p] = (b_large[p] - 2.0).max(0.0);
                idx.rebuild_small(e, f_row, &b_row);
                idx.rebuild_large(&f_full, &b_large);
            } else {
                let inc = 0.25 * ((xorshift(&mut st) % 8) as f64);
                b_row[p] += inc;
                idx.note_small_bump(e, PointId(p as u32), (f_row[p] - b_row[p]).max(0.0));
                b_large[p] += inc;
                idx.note_large_bump(PointId(p as u32), (f_full[p] - b_large[p]).max(0.0));
            }
        }
        let (skipped, scanned) = idx.stats();
        assert!(scanned > 0, "queries never scanned a block");
        assert!(skipped > 0, "the prune never engaged");
    }

    #[test]
    fn radius_bounds_prune_blocks_the_distance_free_bound_cannot() {
        // Two clusters 10_000 apart, point ids shuffled across them, and
        // distance-free keys *smaller* in the far cluster — the id-order
        // bound (blockmin alone) is below the best everywhere, so it prunes
        // nothing; only the radius bound certifies the far cluster out.
        let m = TARGET_BLOCK * 8;
        let mut positions = Vec::with_capacity(m);
        for p in 0..m {
            // Even ids near the origin, odd ids in the far cluster: every
            // id-order block would straddle both clusters, but the coherent
            // (position) order separates them.
            let base = if p % 2 == 0 { 0.0 } else { 10_000.0 };
            positions.push(base + (p / 2) as f64 * 0.25);
        }
        let inst = Instance::new(
            Box::new(LineMetric::new(positions.clone()).unwrap()),
            1,
            CostModel::power(1, 1.0, 2.0),
        )
        .unwrap();
        // Keys: 1.0 near the origin, 0.5 in the far cluster (cheaper, so
        // blockmin of far blocks undercuts every near key).
        let f_small: Vec<f64> = (0..m).map(|p| if p % 2 == 0 { 1.0 } else { 0.5 }).collect();
        let f_full = vec![9.0; m];
        let b = vec![0.0; m];
        let mut idx = OpeningTargetIndex::for_instance(&inst, &f_small, &f_full);
        // Query at the origin-cluster's first point.
        let mut dist_row = vec![0.0; m];
        for (p, d) in dist_row.iter_mut().enumerate() {
            *d = inst.distance(PointId(p as u32), PointId(0));
        }
        idx.prepare_query(&dist_row);
        let e = CommodityId(0);
        let got = idx.small_target(e, &f_small, &b, &dist_row);
        let want = scan_argmin(&f_small, &b, &dist_row);
        assert_eq!((got.0.to_bits(), got.1 .0), (want.0.to_bits(), want.1));
        assert_eq!(got.1, PointId(0), "the local key + zero distance wins");
        let (skipped, scanned) = idx.stats();
        // The far cluster fills half the blocks; the radius bound must
        // prune at least those (the distance-free part of their bound is
        // 0.5 < best = 1.0, so only the distance term can certify them).
        assert!(
            skipped >= (m / TARGET_BLOCK / 2) as u64,
            "radius bounds failed to prune the far cluster: {skipped} skipped, {scanned} scanned"
        );
    }

    #[test]
    fn arbitrary_relabelings_change_nothing_but_the_block_partition() {
        // A fixed scenario queried under several hand-rolled permutations:
        // every answer must match the identity index bit for bit.
        let m = 70usize;
        let inst = Instance::new(
            Box::new(LineMetric::uniform(m, 35.0).unwrap()),
            2,
            CostModel::power(2, 1.0, 2.0),
        )
        .unwrap();
        let s = 2usize;
        let mut st = 0xABCDu64;
        let f_small: Vec<f64> = (0..m * s)
            .map(|_| 1.0 + (xorshift(&mut st) % 5) as f64 * 0.5)
            .collect();
        let f_full: Vec<f64> = (0..m)
            .map(|_| 4.0 + (xorshift(&mut st) % 3) as f64)
            .collect();
        let b_small = vec![0.0; m * s];
        let b_large = vec![0.0; m];
        let reversed: Vec<u32> = (0..m as u32).rev().collect();
        let mut shuffled: Vec<u32> = (0..m as u32).collect();
        for i in (1..m).rev() {
            let j = (xorshift(&mut st) % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut base =
            OpeningTargetIndex::with_order(&inst, &f_small, &f_full, (0..m as u32).collect());
        for order in [reversed, shuffled] {
            let mut idx = OpeningTargetIndex::with_order(&inst, &f_small, &f_full, order);
            for anchor in 0..m as u32 {
                let mut dist_row = vec![0.0; m];
                for (p, d) in dist_row.iter_mut().enumerate() {
                    *d = inst.distance(PointId(p as u32), PointId(anchor));
                }
                idx.prepare_query(&dist_row);
                base.prepare_query(&dist_row);
                for e in 0..s as u16 {
                    let e = CommodityId(e);
                    let f_row = &f_small[e.index() * m..(e.index() + 1) * m];
                    let b_row = &b_small[e.index() * m..(e.index() + 1) * m];
                    let got = idx.small_target(e, f_row, b_row, &dist_row);
                    let want = base.small_target(e, f_row, b_row, &dist_row);
                    assert_eq!((got.0.to_bits(), got.1), (want.0.to_bits(), want.1));
                }
                let got = idx.large_target(&f_full, &b_large, &dist_row);
                let want = base.large_target(&f_full, &b_large, &dist_row);
                assert_eq!((got.0.to_bits(), got.1), (want.0.to_bits(), want.1));
            }
        }
    }

    #[test]
    fn first_block_tie_wins_over_later_equal_blocks() {
        // Uniform keys at distance zero: every location ties exactly. The
        // pruned scan must return location 0 — the full scan's first
        // winner — and prune every later block (their bound equals the
        // best, and equal keys cannot strictly improve).
        let m = TARGET_BLOCK * 4;
        let f_small = vec![1.0; m];
        let f_full = vec![2.0; m];
        let b = vec![0.0; m];
        let dist = vec![0.0; m];
        let mut idx = OpeningTargetIndex::new(m, 1, &f_small, &f_full);
        idx.prepare_query(&dist);
        let (v, p) = idx.small_target(CommodityId(0), &f_small, &b, &dist);
        assert_eq!((v, p), (1.0, PointId(0)));
        let (skipped, scanned) = idx.stats();
        assert_eq!(scanned, 1, "only the first block needs scanning");
        assert_eq!(skipped, 3, "all later tying blocks must be pruned");
    }
}
