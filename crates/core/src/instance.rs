//! The OMFLP instance: a metric space, a commodity universe, and a
//! construction cost function (paper §1.1).

use crate::CoreError;
use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::{CommodityId, CommoditySet, Universe};
use omfl_metric::{Metric, PointId};

/// A complete problem instance.
///
/// Every point of the metric space is a candidate facility location (the
/// paper's `f^σ_m` is "given for each m ∈ M and each σ ⊆ S beforehand").
pub struct Instance {
    metric: Box<dyn Metric>,
    cost: Box<dyn FacilityCostFn>,
    universe: Universe,
}

impl Instance {
    /// Builds an instance from a metric and a [`CostModel`].
    ///
    /// `universe_size` must match the cost model's universe; the redundancy
    /// is a deliberate cross-check because mixing up `|S|` silently corrupts
    /// every downstream experiment.
    pub fn new(
        metric: Box<dyn Metric>,
        universe_size: u16,
        cost: CostModel,
    ) -> Result<Self, CoreError> {
        if cost.universe().size() != universe_size {
            return Err(CoreError::BadInstance(format!(
                "cost model universe |S| = {} does not match declared size {}",
                cost.universe().size(),
                universe_size
            )));
        }
        Self::with_cost_fn(metric, Box::new(cost))
    }

    /// Builds an instance from a metric and any cost-function object.
    pub fn with_cost_fn(
        metric: Box<dyn Metric>,
        cost: Box<dyn FacilityCostFn>,
    ) -> Result<Self, CoreError> {
        if metric.is_empty() {
            return Err(CoreError::BadInstance("metric space is empty".into()));
        }
        let universe = cost.universe();
        Ok(Self {
            metric,
            cost,
            universe,
        })
    }

    /// The metric space `M`.
    pub fn metric(&self) -> &dyn Metric {
        self.metric.as_ref()
    }

    /// The construction cost function `f^σ_m`.
    pub fn cost_fn(&self) -> &dyn FacilityCostFn {
        self.cost.as_ref()
    }

    /// The commodity universe `S`.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// Number of points `|M|`.
    pub fn num_points(&self) -> usize {
        self.metric.len()
    }

    /// Number of commodities `|S|`.
    pub fn num_commodities(&self) -> usize {
        self.universe.len()
    }

    /// Shorthand for the metric distance between two points.
    #[inline]
    pub fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.metric.distance(a, b)
    }

    /// Bulk distance row: `out[p] = d(p, q)` — bit-identical to calling
    /// [`Instance::distance`] per point (the [`Metric::fill_row`] contract).
    #[inline]
    pub fn fill_row(&self, q: PointId, out: &mut [f64]) {
        self.metric.fill_row(q, out)
    }

    /// `f^σ_m`.
    #[inline]
    pub fn facility_cost(&self, m: PointId, config: &CommoditySet) -> f64 {
        self.cost.cost(m.index(), config)
    }

    /// `f^{e}_m` — small-facility cost.
    #[inline]
    pub fn small_cost(&self, m: PointId, e: CommodityId) -> f64 {
        self.cost.singleton_cost(m.index(), e)
    }

    /// `f^{S}_m` — large-facility cost.
    #[inline]
    pub fn large_cost(&self, m: PointId) -> f64 {
        self.cost.full_cost(m.index())
    }

    /// Checks that a point id is in range.
    pub fn check_point(&self, p: PointId) -> Result<(), CoreError> {
        if p.index() >= self.num_points() {
            Err(CoreError::BadRequest(format!(
                "point {p} out of range for |M| = {}",
                self.num_points()
            )))
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("num_points", &self.num_points())
            .field("num_commodities", &self.num_commodities())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_metric::line::LineMetric;

    fn line(positions: Vec<f64>) -> Box<dyn Metric> {
        Box::new(LineMetric::new(positions).unwrap())
    }

    #[test]
    fn construction_and_accessors() {
        let inst =
            Instance::new(line(vec![0.0, 1.0, 4.0]), 4, CostModel::power(4, 1.0, 2.0)).unwrap();
        assert_eq!(inst.num_points(), 3);
        assert_eq!(inst.num_commodities(), 4);
        assert_eq!(inst.distance(PointId(0), PointId(2)), 4.0);
        assert_eq!(inst.small_cost(PointId(1), CommodityId(0)), 2.0);
        assert_eq!(inst.large_cost(PointId(1)), 4.0);
        let sigma = CommoditySet::from_ids(inst.universe(), &[0, 1]).unwrap();
        assert!((inst.facility_cost(PointId(0), &sigma) - 2.0 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn universe_mismatch_rejected() {
        let err = Instance::new(line(vec![0.0]), 5, CostModel::power(4, 1.0, 1.0)).unwrap_err();
        assert!(matches!(err, CoreError::BadInstance(_)));
    }

    #[test]
    fn point_range_check() {
        let inst = Instance::new(line(vec![0.0, 1.0]), 2, CostModel::power(2, 1.0, 1.0)).unwrap();
        assert!(inst.check_point(PointId(1)).is_ok());
        assert!(inst.check_point(PointId(2)).is_err());
    }

    #[test]
    fn debug_is_informative() {
        let inst = Instance::new(line(vec![0.0]), 2, CostModel::power(2, 1.0, 1.0)).unwrap();
        let s = format!("{inst:?}");
        assert!(s.contains("num_points") && s.contains("num_commodities"));
    }
}
