//! A deterministic kd-tree over a metric's coordinate embedding.
//!
//! Built from [`omfl_metric::KdCoords`], this serves the opening-target
//! index twice:
//!
//! 1. **Ball ingest** — true nearest-neighbor balls for the block layout.
//!    The windowed grouping it replaces (`BALL_WINDOW`) could only pick
//!    ball members from the next 256 points of the coherent order, so a
//!    seed whose real neighbors sat beyond the window got a needlessly fat
//!    covering radius. [`KdTree::nearest_alive`] finds the exact `k`
//!    nearest *unassigned* points under a total `(distance, seed-rank)`
//!    order, so the ingest result is deterministic — a pure function of
//!    the coordinates and the seed order, independent of traversal.
//! 2. **Cold-query pruning** — [`KdTree::range`] enumerates every point
//!    within a radius, which narrows the freeze walk's candidate set far
//!    below whole blocks when caps are local. (Engine-safe because the
//!    caller exact-tests every candidate; see
//!    `OpeningTargetIndex::budget_move_candidates`.)
//!
//! Distances here are the ascending-axis L2 fold over the embedding — the
//! exact fold `EuclideanMetric::distance` performs, so for `isometric`
//! embeddings the tree's distances are bit-identical to the metric's.
//! Non-isometric embeddings may only be used where any deterministic
//! partition is acceptable (ball ingest), never for distance values.

/// Leaf bucket size: small enough to keep box bounds tight, large enough
/// that the per-node overhead stays negligible.
const LEAF: usize = 16;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// `idx[lo..hi]` are the points under this node.
    lo: u32,
    hi: u32,
    /// Children (`NO_NODE` for leaves).
    left: u32,
    right: u32,
    parent: u32,
}

/// See the module docs.
#[derive(Debug, Clone)]
pub(crate) struct KdTree {
    dim: usize,
    /// Row-major embedding, `n * dim`.
    coords: Vec<f64>,
    nodes: Vec<Node>,
    /// Point ids, permuted so every node owns a contiguous range.
    idx: Vec<u32>,
    /// Per-node axis-aligned bounding box: `[node * 2dim .. +dim]` the low
    /// corner, then the high corner.
    bbox: Vec<f64>,
    /// Point id → leaf node (for the alive-count walk).
    leaf_of: Vec<u32>,
    /// Per-node count of not-yet-deactivated points (ingest bookkeeping;
    /// starts at the subtree size, monotonically decreases).
    alive: Vec<u32>,
}

impl KdTree {
    /// Builds the tree. `coords` is row-major with `dim` axes per point.
    /// Deterministic: splits sort by `(coordinate, point id)`, the split
    /// axis is the widest bounding-box extent (lowest axis on ties).
    pub(crate) fn build(coords: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0 && !coords.is_empty() && coords.len().is_multiple_of(dim));
        let n = coords.len() / dim;
        let mut tree = Self {
            dim,
            coords,
            nodes: Vec::new(),
            idx: (0..n as u32).collect(),
            bbox: Vec::new(),
            leaf_of: vec![NO_NODE; n],
            alive: Vec::new(),
        };
        tree.split_range(0, n, NO_NODE);
        for (node, meta) in tree.nodes.iter().enumerate() {
            if meta.left == NO_NODE {
                for &p in &tree.idx[meta.lo as usize..meta.hi as usize] {
                    tree.leaf_of[p as usize] = node as u32;
                }
            }
        }
        tree
    }

    /// The embedding row of point `p`.
    #[inline]
    pub(crate) fn point(&self, p: u32) -> &[f64] {
        let base = p as usize * self.dim;
        &self.coords[base..base + self.dim]
    }

    /// Ascending-axis L2 fold — the `EuclideanMetric::distance` operation
    /// sequence, hence bit-identical to it on isometric embeddings.
    #[inline]
    fn dist(&self, q: &[f64], p: u32) -> f64 {
        let row = self.point(p);
        let mut acc = 0.0f64;
        for (a, b) in q.iter().zip(row) {
            let d = a - b;
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Recursively builds the node over `idx[lo..hi]`; returns its index.
    fn split_range(&mut self, lo: usize, hi: usize, parent: u32) -> u32 {
        let node = self.nodes.len() as u32;
        self.nodes.push(Node {
            lo: lo as u32,
            hi: hi as u32,
            left: NO_NODE,
            right: NO_NODE,
            parent,
        });
        self.alive.push((hi - lo) as u32);
        // Bounding box over the range.
        let base = self.bbox.len();
        self.bbox
            .extend(std::iter::repeat_n(f64::INFINITY, self.dim));
        self.bbox
            .extend(std::iter::repeat_n(f64::NEG_INFINITY, self.dim));
        for &p in &self.idx[lo..hi] {
            for axis in 0..self.dim {
                let c = self.coords[p as usize * self.dim + axis];
                let lo_slot = &mut self.bbox[base + axis];
                *lo_slot = lo_slot.min(c);
                let hi_slot = &mut self.bbox[base + self.dim + axis];
                *hi_slot = hi_slot.max(c);
            }
        }
        if hi - lo > LEAF {
            // Widest extent wins; ties break to the lowest axis, so the
            // structure is a pure function of the coordinates.
            let mut axis = 0;
            let mut widest = f64::NEG_INFINITY;
            for a in 0..self.dim {
                let w = self.bbox[base + self.dim + a] - self.bbox[base + a];
                if w > widest {
                    widest = w;
                    axis = a;
                }
            }
            let dim = self.dim;
            let coords = &self.coords;
            self.idx[lo..hi].sort_unstable_by(|&a, &b| {
                coords[a as usize * dim + axis]
                    .partial_cmp(&coords[b as usize * dim + axis])
                    .expect("finite coordinates")
                    .then(a.cmp(&b))
            });
            let mid = lo + (hi - lo) / 2;
            let left = self.split_range(lo, mid, node);
            let right = self.split_range(mid, hi, node);
            self.nodes[node as usize].left = left;
            self.nodes[node as usize].right = right;
        }
        node
    }

    /// Lower bound on the distance from `q` to any point in `node`'s box
    /// (same fold shape as [`KdTree::dist`], so it never exceeds any member
    /// distance by more than the shared rounding — compared strictly, see
    /// the call sites).
    #[inline]
    fn box_dist(&self, node: u32, q: &[f64]) -> f64 {
        let base = node as usize * 2 * self.dim;
        let mut acc = 0.0f64;
        for (axis, &c) in q.iter().enumerate() {
            let lo = self.bbox[base + axis];
            let hi = self.bbox[base + self.dim + axis];
            let d = if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Marks `p` assigned: decrements alive counts on its leaf-to-root path.
    pub(crate) fn deactivate(&mut self, p: u32) {
        let mut node = self.leaf_of[p as usize];
        while node != NO_NODE {
            debug_assert!(self.alive[node as usize] > 0);
            self.alive[node as usize] -= 1;
            node = self.nodes[node as usize].parent;
        }
    }

    /// The `k` alive points nearest to `q` under the total order
    /// `(distance, rank[p])` — an exact top-k, independent of traversal
    /// order: a subtree is pruned only when its box bound *strictly*
    /// exceeds the current k-th distance, which proves every point in it
    /// strictly worse. Fewer than `k` alive points returns all of them.
    /// Results land in `out`, sorted ascending by the order key.
    pub(crate) fn nearest_alive(
        &self,
        q: &[f64],
        k: usize,
        rank: &[u32],
        out: &mut Vec<(f64, u32, u32)>,
    ) {
        out.clear();
        if k == 0 || self.nodes.is_empty() {
            return;
        }
        self.knn_node(0, q, k, rank, out);
    }

    fn knn_node(
        &self,
        node: u32,
        q: &[f64],
        k: usize,
        rank: &[u32],
        out: &mut Vec<(f64, u32, u32)>,
    ) {
        let meta = &self.nodes[node as usize];
        if self.alive[node as usize] == 0 {
            return;
        }
        if out.len() == k && self.box_dist(node, q) > out[k - 1].0 {
            return;
        }
        if meta.left == NO_NODE {
            for &p in &self.idx[meta.lo as usize..meta.hi as usize] {
                if rank[p as usize] == u32::MAX {
                    continue; // assigned (rank doubles as the alive flag)
                }
                let d = self.dist(q, p);
                let key = (d, rank[p as usize], p);
                if out.len() == k {
                    let worst = (out[k - 1].0, out[k - 1].1);
                    if (key.0, key.1) >= worst {
                        continue;
                    }
                    out.pop();
                }
                let at = out.partition_point(|e| (e.0, e.1) < (key.0, key.1));
                out.insert(at, key);
            }
            return;
        }
        // Nearer child first: pure pruning heuristic, the (dist, rank)
        // top-k is traversal-invariant.
        let (l, r) = (meta.left, meta.right);
        let (dl, dr) = (self.box_dist(l, q), self.box_dist(r, q));
        let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
        self.knn_node(first, q, k, rank, out);
        self.knn_node(second, q, k, rank, out);
    }

    /// Appends every point with `dist(q, p) ≤ r` to `out`, in a
    /// deterministic (left-to-right traversal) order. Subtrees are pruned
    /// only when the box bound strictly exceeds `r`.
    pub(crate) fn range(&self, q: &[f64], r: f64, out: &mut Vec<u32>) {
        if self.nodes.is_empty() {
            return;
        }
        self.range_node(0, q, r, out);
    }

    fn range_node(&self, node: u32, q: &[f64], r: f64, out: &mut Vec<u32>) {
        let meta = &self.nodes[node as usize];
        if self.box_dist(node, q) > r {
            return;
        }
        if meta.left == NO_NODE {
            for &p in &self.idx[meta.lo as usize..meta.hi as usize] {
                if self.dist(q, p) <= r {
                    out.push(p);
                }
            }
            return;
        }
        self.range_node(meta.left, q, r, out);
        self.range_node(meta.right, q, r, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, dim: usize, salt: u64) -> Vec<f64> {
        let mut st = 0x0DD5EED ^ salt;
        (0..n * dim)
            .map(|_| {
                st ^= st << 13;
                st ^= st >> 7;
                st ^= st << 17;
                ((st % 10000) as f64 - 5000.0) * 0.01
            })
            .collect()
    }

    fn brute_knn(
        coords: &[f64],
        dim: usize,
        q: &[f64],
        k: usize,
        rank: &[u32],
    ) -> Vec<(f64, u32, u32)> {
        let n = coords.len() / dim;
        let mut all: Vec<(f64, u32, u32)> = (0..n as u32)
            .filter(|&p| rank[p as usize] != u32::MAX)
            .map(|p| {
                let mut acc = 0.0f64;
                for axis in 0..dim {
                    let d = q[axis] - coords[p as usize * dim + axis];
                    acc += d * d;
                }
                (acc.sqrt(), rank[p as usize], p)
            })
            .collect();
        all.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force_under_deletions() {
        for dim in [1usize, 2, 3] {
            let coords = cloud(230, dim, dim as u64);
            let mut tree = KdTree::build(coords.clone(), dim);
            // Ranks: a fixed shuffle of 0..n, u32::MAX marks deleted.
            let n = 230u32;
            let mut rank: Vec<u32> = (0..n).map(|p| (p * 73) % n).collect();
            for probe in 0..24u32 {
                let q: Vec<f64> = tree.point((probe * 9) % n).to_vec();
                let mut got = Vec::new();
                tree.nearest_alive(&q, 7, &rank, &mut got);
                let want = brute_knn(&coords, dim, &q, 7, &rank);
                assert_eq!(got, want, "dim {dim}, probe {probe}");
                // Delete the found points, as the ball ingest does.
                for &(_, _, p) in &got {
                    rank[p as usize] = u32::MAX;
                    tree.deactivate(p);
                }
            }
        }
    }

    #[test]
    fn range_query_is_exhaustive_and_sound() {
        let dim = 2;
        let coords = cloud(300, dim, 9);
        let tree = KdTree::build(coords.clone(), dim);
        for probe in [0u32, 17, 151, 299] {
            let q = tree.point(probe).to_vec();
            for r in [0.0, 3.0, 17.5, 1.0e4] {
                let mut got = Vec::new();
                tree.range(&q, r, &mut got);
                let mut sorted = got.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), got.len(), "no duplicates");
                for p in 0..300u32 {
                    let d = {
                        let mut acc = 0.0;
                        for axis in 0..dim {
                            let dd = q[axis] - coords[p as usize * dim + axis];
                            acc += dd * dd;
                        }
                        acc.sqrt()
                    };
                    assert_eq!(
                        sorted.binary_search(&p).is_ok(),
                        d <= r,
                        "probe {probe}, r {r}, point {p}, d {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn build_handles_duplicates_and_tiny_inputs() {
        // All-coincident points must still split (ids break ties).
        let coords = vec![1.0; 40 * 2];
        let tree = KdTree::build(coords, 2);
        let mut got = Vec::new();
        tree.range(&[1.0, 1.0], 0.0, &mut got);
        assert_eq!(got.len(), 40);
        let one = KdTree::build(vec![3.5], 1);
        let rank = vec![0u32];
        let mut out = Vec::new();
        one.nearest_alive(&[0.0], 4, &rank, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2, 0);
    }
}
