//! The Online Multi-Commodity Facility Location Problem (OMFLP).
//!
//! This crate implements the model and both online algorithms from
//! *"The Online Multi-Commodity Facility Location Problem"* (Castenow,
//! Feldkord, Knollmann, Malatyali, Meyer auf der Heide — SPAA 2020):
//!
//! * [`pd::PdOmflp`] — the deterministic primal–dual algorithm
//!   (Algorithm 1), `O(√|S| · log n)`-competitive;
//! * [`randalg::RandOmflp`] — the randomized algorithm (Algorithm 2),
//!   `O(√|S| · log n / log log n)`-competitive in expectation;
//! * [`heavy::HeavyExclusion`] — the §5 future-work wrapper that excludes
//!   "heavy" commodities violating Condition 1;
//! * [`transform`] — the §1.1 request-splitting reduction to the
//!   per-commodity connection-cost model;
//! * [`validate`] — an independent checker that re-derives the dual
//!   constraints (1)–(4) and verifies the invariants the analysis relies on;
//! * [`bounds`] — the closed-form bound curves of Theorems 2/4/18/19 and
//!   Figure 2, used by the experiment harness.
//!
//! # Model recap (paper §1.1)
//!
//! Requests arrive online at points of a finite metric space, each demanding
//! a set `sr ⊆ S` of commodities. The algorithm irrevocably opens facilities
//! `(m, σ)` (location + configuration) paying `f^σ_m`, and connects each
//! request to a set of facilities jointly offering `sr`, paying the sum of
//! distances to the *distinct* facilities used. Total cost = construction +
//! connection.

pub mod algorithm;
pub mod bounds;
pub mod heavy;
pub mod index;
pub mod instance;
mod kd;
#[cfg(feature = "naive-ref")]
pub mod naive;
pub mod pd;
pub mod randalg;
pub mod request;
pub mod solution;
pub mod transform;
pub mod validate;

use std::fmt;

/// Absolute tolerance used when detecting tight dual constraints and when
/// comparing recomputed costs. Distances and costs in the experiments are
/// O(1)–O(10³), so an absolute 1e-9 slack is far below any real event gap.
pub const EPS: f64 = 1e-9;

/// The n-th harmonic number `H_n = Σ_{k=1..n} 1/k` (`H_0 = 0`).
///
/// Appears throughout the paper's analysis (the dual scaling factor is
/// `γ = 1/(5 √|S| H_n)`).
pub fn harmonic(n: usize) -> f64 {
    // Exact summation below the asymptotic cutoff keeps tests bit-stable.
    if n < 256 {
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        // Euler–Maclaurin: ln n + γ + 1/2n − 1/12n² (error < 1e-12 here).
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        let nf = n as f64;
        nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// Errors surfaced by the OMFLP model and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying metric problem.
    Metric(omfl_metric::MetricError),
    /// Underlying commodity/cost problem.
    Commodity(omfl_commodity::CommodityError),
    /// A request demands no commodities, or references an out-of-range
    /// point/commodity.
    BadRequest(String),
    /// Instance-level inconsistency (e.g. cost universe vs declared size).
    BadInstance(String),
    /// A solution failed verification; the string pinpoints the violation.
    Infeasible(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Metric(e) => write!(f, "metric error: {e}"),
            CoreError::Commodity(e) => write!(f, "commodity error: {e}"),
            CoreError::BadRequest(s) => write!(f, "bad request: {s}"),
            CoreError::BadInstance(s) => write!(f, "bad instance: {s}"),
            CoreError::Infeasible(s) => write!(f, "infeasible solution: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Metric(e) => Some(e),
            CoreError::Commodity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<omfl_metric::MetricError> for CoreError {
    fn from(e: omfl_metric::MetricError) -> Self {
        CoreError::Metric(e)
    }
}

impl From<omfl_commodity::CommodityError> for CoreError {
    fn from(e: omfl_commodity::CommodityError) -> Self {
        CoreError::Commodity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn harmonic_asymptotic_is_continuous_at_cutoff() {
        // Exact at 255, asymptotic at 256; they must agree to ~1e-12.
        let exact_256: f64 = (1..=256).map(|k| 1.0 / k as f64).sum();
        assert!((harmonic(256) - exact_256).abs() < 1e-10);
    }

    #[test]
    fn error_display_and_source() {
        let e = CoreError::BadRequest("empty demand".into());
        assert!(e.to_string().contains("empty demand"));
        let m: CoreError = omfl_metric::MetricError::Empty.into();
        assert!(std::error::Error::source(&m).is_some());
    }
}
