//! The retained linear-scan PD serve path — differential-testing reference.
//!
//! [`NaivePd`] is the PD-OMFLP implementation exactly as it stood before the
//! incremental index layer ([`crate::index`]) landed: `nearest_offering` /
//! `nearest_large` scan every open facility per query, and
//! `post_open_small` / `post_open_large` re-walk the full request history on
//! every opening. It exists for two consumers, both gated behind the
//! `naive-ref` feature so production builds never ship it:
//!
//! * the differential suite (`tests/tests/differential.rs`) proves the
//!   indexed [`crate::pd::PdOmflp`] produces **bit-identical** outcomes,
//!   duals and bid matrices on every catalog family;
//! * the bench runner's `--emit-json` path times it against the indexed
//!   engine so `BENCH_pd.json` records the speedup the index buys.
//!
//! Do not "fix" or optimize this module: its value is being the frozen
//! pre-index semantics. Behavioral changes belong in `pd.rs`, mirrored here
//! only if the algorithm itself (not its data structures) changes.

use crate::algorithm::{OnlineAlgorithm, ServeOutcome};
use crate::instance::Instance;
use crate::pd::PastRequest;
use crate::request::Request;
use crate::solution::{FacilityId, Solution};
use crate::{CoreError, EPS};
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_metric::PointId;

/// PD-OMFLP with the original linear-scan serve path (see module docs).
pub struct NaivePd<'a> {
    inst: &'a Instance,
    sol: Solution,
    past: Vec<PastRequest>,
    /// For each commodity, `(past request index, member slot)` of earlier
    /// requests demanding it — the update set when a small facility opens.
    past_by_e: Vec<Vec<(u32, u16)>>,
    /// Open small facilities offering commodity `e`.
    small_by_e: Vec<Vec<FacilityId>>,
    /// Open large facilities.
    large_facs: Vec<FacilityId>,
    /// `B[m][e]`, flat `m * |S| + e`.
    b_small: Vec<f64>,
    /// `B̂[m]`.
    b_large: Vec<f64>,
    /// Cached `f^{e}_m`, flat `m * |S| + e`.
    f_small: Vec<f64>,
    /// Cached `f^{S}_m`.
    f_full: Vec<f64>,
    /// Scratch: `d(m, r)` for the current arrival.
    dist_row: Vec<f64>,
    /// Running `Σ_r Σ_e a_{re}` for the Corollary 8 check.
    dual_sum: f64,
}

/// Per-member outcome inside one arrival.
#[derive(Clone, Copy, Debug)]
enum MemberServe {
    /// Connected to an existing facility (constraint 1).
    Existing(FacilityId),
    /// Temporary small facility at this location (constraint 3).
    Temp(PointId),
}

impl<'a> NaivePd<'a> {
    /// Creates the reference algorithm over an instance.
    pub fn new(inst: &'a Instance) -> Self {
        let m = inst.num_points();
        let s = inst.num_commodities();
        let mut f_small = vec![0.0; m * s];
        let mut f_full = vec![0.0; m];
        for p in 0..m {
            for e in 0..s {
                f_small[p * s + e] = inst.small_cost(PointId(p as u32), CommodityId(e as u16));
            }
            f_full[p] = inst.large_cost(PointId(p as u32));
        }
        Self {
            inst,
            sol: Solution::new(),
            past: Vec::new(),
            past_by_e: vec![Vec::new(); s],
            small_by_e: vec![Vec::new(); s],
            large_facs: Vec::new(),
            b_small: vec![0.0; m * s],
            b_large: vec![0.0; m],
            f_small,
            f_full,
            dist_row: vec![0.0; m],
            dual_sum: 0.0,
        }
    }

    /// The instance the algorithm runs on.
    pub fn instance(&self) -> &Instance {
        self.inst
    }

    /// Frozen dual state of all served requests.
    pub fn past_requests(&self) -> &[PastRequest] {
        &self.past
    }

    /// `Σ_r Σ_e a_{re}` over all served requests.
    pub fn dual_sum(&self) -> f64 {
        self.dual_sum
    }

    /// The incrementally maintained bid matrices `(B, B̂)`.
    pub fn bids(&self) -> (&[f64], &[f64]) {
        (&self.b_small, &self.b_large)
    }

    /// Nearest open facility offering commodity `e` (small-for-`e` or large),
    /// by linear scan over the open facility lists.
    fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        let consider = |best: &mut Option<(FacilityId, f64)>, fid: FacilityId, d: f64| match *best {
            Some((_, bd)) if bd <= d => {}
            _ => *best = Some((fid, d)),
        };
        for &fid in &self.small_by_e[e.index()] {
            let d = self
                .inst
                .distance(from, self.sol.facilities()[fid.index()].location);
            consider(&mut best, fid, d);
        }
        for &fid in &self.large_facs {
            let d = self
                .inst
                .distance(from, self.sol.facilities()[fid.index()].location);
            consider(&mut best, fid, d);
        }
        best
    }

    /// Nearest open large facility, by linear scan.
    fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        for &fid in &self.large_facs {
            let d = self
                .inst
                .distance(from, self.sol.facilities()[fid.index()].location);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((fid, d)),
            }
        }
        best
    }

    /// Applies cap shrinkage for past requests after a *small* facility for
    /// `e` opened at `at` — the full-history walk.
    fn post_open_small(&mut self, e: CommodityId, at: PointId) {
        let s = self.inst.num_commodities();
        let m = self.inst.num_points();
        for &(pi, slot) in &self.past_by_e[e.index()] {
            let pr = &self.past[pi as usize];
            let dj = self.inst.distance(at, pr.location);
            let old = pr.caps[slot as usize];
            if dj < old {
                let loc = pr.location;
                for p in 0..m {
                    let dpj = self.inst.distance(PointId(p as u32), loc);
                    let delta = (old - dpj).max(0.0) - (dj - dpj).max(0.0);
                    self.b_small[p * s + e.index()] -= delta;
                }
                self.past[pi as usize].caps[slot as usize] = dj;
            }
        }
    }

    /// Applies cap shrinkage after a *large* facility opened at `at` — the
    /// full-history walk.
    fn post_open_large(&mut self, at: PointId) {
        let s = self.inst.num_commodities();
        let m = self.inst.num_points();
        for pi in 0..self.past.len() {
            let loc = self.past[pi].location;
            let dj = self.inst.distance(at, loc);
            // Large-facility cap.
            let old_total = self.past[pi].cap_total;
            if dj < old_total {
                for p in 0..m {
                    let dpj = self.inst.distance(PointId(p as u32), loc);
                    let delta = (old_total - dpj).max(0.0) - (dj - dpj).max(0.0);
                    self.b_large[p] -= delta;
                }
                self.past[pi].cap_total = dj;
            }
            // Per-commodity caps (a large facility offers every commodity).
            for slot in 0..self.past[pi].commodities.len() {
                let old = self.past[pi].caps[slot];
                if dj < old {
                    let e = self.past[pi].commodities[slot];
                    for p in 0..m {
                        let dpj = self.inst.distance(PointId(p as u32), loc);
                        let delta = (old - dpj).max(0.0) - (dj - dpj).max(0.0);
                        self.b_small[p * s + e.index()] -= delta;
                    }
                    self.past[pi].caps[slot] = dj;
                }
            }
        }
    }

    /// Freezes the served request's duals into the bid matrices.
    fn freeze(&mut self, request: &Request, members: &[CommodityId], duals: &[f64]) {
        let s = self.inst.num_commodities();
        let m = self.inst.num_points();
        let loc = request.location();
        let pi = self.past.len() as u32;
        let mut caps = Vec::with_capacity(members.len());
        for (slot, (&e, &a)) in members.iter().zip(duals).enumerate() {
            let d_fe = self
                .nearest_offering(e, loc)
                .map(|(_, d)| d)
                .unwrap_or(f64::INFINITY);
            let cap = a.min(d_fe);
            caps.push(cap);
            if cap > 0.0 {
                for p in 0..m {
                    let add = (cap - self.dist_row[p]).max(0.0);
                    self.b_small[p * s + e.index()] += add;
                }
            }
            self.past_by_e[e.index()].push((pi, slot as u16));
        }
        let total: f64 = duals.iter().sum();
        let d_fhat = self
            .nearest_large(loc)
            .map(|(_, d)| d)
            .unwrap_or(f64::INFINITY);
        let cap_total = total.min(d_fhat);
        if cap_total > 0.0 {
            for p in 0..m {
                self.b_large[p] += (cap_total - self.dist_row[p]).max(0.0);
            }
        }
        self.dual_sum += total;
        self.past.push(PastRequest {
            location: loc,
            commodities: members.to_vec(),
            duals: duals.to_vec(),
            caps,
            cap_total,
        });
    }
}

/// `a` is tight against target `t` (reached within tolerance).
#[inline]
fn tight(value: f64, target: f64) -> bool {
    value >= target - EPS * (1.0 + target.abs())
}

impl OnlineAlgorithm for NaivePd<'_> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        request.validate(self.inst)?;
        let loc = request.location();
        let s = self.inst.num_commodities();
        let mpts = self.inst.num_points();
        let members: Vec<CommodityId> = request.demand().iter().collect();
        let k = members.len();

        // Distance row d(m, r), reused everywhere this arrival.
        for p in 0..mpts {
            self.dist_row[p] = self.inst.distance(PointId(p as u32), loc);
        }

        // Per-commodity targets t1 (connect) / t3 (temp open) and joint
        // targets t2 (connect large) / t4 (open large).
        let mut t1 = vec![f64::INFINITY; k];
        let mut t1_fac: Vec<Option<FacilityId>> = vec![None; k];
        let mut t3 = vec![f64::INFINITY; k];
        let mut t3_loc = vec![PointId(0); k];
        for (i, &e) in members.iter().enumerate() {
            if let Some((fid, d)) = self.nearest_offering(e, loc) {
                t1[i] = d;
                t1_fac[i] = Some(fid);
            }
            let mut best = f64::INFINITY;
            let mut best_m = PointId(0);
            for p in 0..mpts {
                let v = (self.f_small[p * s + e.index()] - self.b_small[p * s + e.index()])
                    .max(0.0)
                    + self.dist_row[p];
                if v < best {
                    best = v;
                    best_m = PointId(p as u32);
                }
            }
            t3[i] = best;
            t3_loc[i] = best_m;
        }
        let (t2, t2_fac) = match self.nearest_large(loc) {
            Some((fid, d)) => (d, Some(fid)),
            None => (f64::INFINITY, None),
        };
        let mut t4 = f64::INFINITY;
        let mut t4_loc = PointId(0);
        for p in 0..mpts {
            let v = (self.f_full[p] - self.b_large[p]).max(0.0) + self.dist_row[p];
            if v < t4 {
                t4 = v;
                t4_loc = PointId(p as u32);
            }
        }

        // Event loop: raise unserved duals simultaneously.
        let mut a = vec![0.0f64; k];
        let mut outcome: Vec<Option<MemberServe>> = vec![None; k];
        let mut total: f64 = 0.0;
        let mut large_mode: Option<(Option<FacilityId>, PointId, bool)> = None;
        loop {
            let unserved: Vec<usize> = (0..k).filter(|&i| outcome[i].is_none()).collect();
            let u = unserved.len();
            if u == 0 {
                break;
            }
            let mut delta = f64::INFINITY;
            for &i in &unserved {
                delta = delta.min(t1[i] - a[i]).min(t3[i] - a[i]);
            }
            delta = delta
                .min((t2 - total) / u as f64)
                .min((t4 - total) / u as f64);
            debug_assert!(delta.is_finite(), "t3/t4 are always finite");
            let delta = delta.max(0.0);
            for &i in &unserved {
                a[i] += delta;
            }
            total += delta * u as f64;

            // Priority: large-connect, large-open, small-connect, small-open.
            if tight(total, t2) {
                large_mode = Some((t2_fac, PointId(0), false));
                break;
            }
            if tight(total, t4) {
                large_mode = Some((None, t4_loc, true));
                break;
            }
            let mut progressed = false;
            for &i in &unserved {
                if outcome[i].is_none() && tight(a[i], t1[i]) {
                    outcome[i] = Some(MemberServe::Existing(
                        t1_fac[i].expect("finite t1 implies a facility"),
                    ));
                    progressed = true;
                }
            }
            for &i in &unserved {
                if outcome[i].is_none() && tight(a[i], t3[i]) {
                    outcome[i] = Some(MemberServe::Temp(t3_loc[i]));
                    progressed = true;
                }
            }
            debug_assert!(progressed, "event loop must make progress each iteration");
            if !progressed {
                // Defensive: force the cheapest pending target to fire so a
                // floating-point corner cannot hang the loop.
                let (&i, _) = unserved
                    .iter()
                    .zip(std::iter::repeat(()))
                    .min_by(|(&x, _), (&y, _)| {
                        let vx = t1[x].min(t3[x]) - a[x];
                        let vy = t1[y].min(t3[y]) - a[y];
                        vx.partial_cmp(&vy).expect("finite")
                    })
                    .expect("unserved non-empty");
                outcome[i] = Some(if t1[i] <= t3[i] {
                    MemberServe::Existing(t1_fac[i].expect("finite t1"))
                } else {
                    MemberServe::Temp(t3_loc[i])
                });
            }
        }

        // Realize the outcome.
        let start_con = self.sol.construction_cost();
        let mut opened = Vec::new();
        let (assigned, served_by_large) = match large_mode {
            Some((Some(fid), _, false)) => (vec![fid], true),
            Some((_, at, true)) => {
                let fid =
                    self.sol
                        .open_facility(self.inst, at, CommoditySet::full(self.inst.universe()));
                self.large_facs.push(fid);
                opened.push(fid);
                self.post_open_large(at);
                (vec![fid], true)
            }
            Some((None, _, false)) => unreachable!("large-connect requires a facility"),
            None => {
                let mut fids = Vec::with_capacity(k);
                for (i, &e) in members.iter().enumerate() {
                    match outcome[i].expect("all members served") {
                        MemberServe::Existing(fid) => fids.push(fid),
                        MemberServe::Temp(at) => {
                            let config = CommoditySet::singleton(self.inst.universe(), e)
                                .map_err(CoreError::Commodity)?;
                            let fid = self.sol.open_facility(self.inst, at, config);
                            self.small_by_e[e.index()].push(fid);
                            opened.push(fid);
                            self.post_open_small(e, at);
                            fids.push(fid);
                        }
                    }
                }
                (fids, false)
            }
        };
        let assignment = self.sol.assign(self.inst, request.clone(), &assigned);
        let connection_cost = assignment.connection_cost;
        let assigned_to = assignment.facilities.clone();

        self.freeze(request, &members, &a);

        Ok(ServeOutcome {
            opened,
            assigned_to,
            connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "pd-omflp-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pd::PdOmflp;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    /// The indexed engine and this reference must agree bit for bit on a
    /// workload that exercises every event type (connects, small and large
    /// openings, cap shrinks). The full catalog-wide differential suite
    /// lives in `tests/tests/differential.rs`; this is the in-crate smoke
    /// version.
    #[test]
    fn indexed_pd_is_bit_identical_on_a_mixed_line_workload() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(9, 6.0).unwrap()),
            8,
            CostModel::power(8, 1.0, 2.0),
        )
        .unwrap();
        let u = inst.universe();
        let reqs: Vec<Request> = (0..160u32)
            .map(|i| {
                let ids = [
                    (i % 8) as u16,
                    ((i * 5 + 1) % 8) as u16,
                    ((i * 3 + 2) % 8) as u16,
                ];
                Request::new(
                    PointId((i * 7) % 9),
                    CommoditySet::from_ids(u, &ids).unwrap(),
                )
            })
            .collect();
        let mut fast = PdOmflp::new(&inst);
        let mut slow = NaivePd::new(&inst);
        for (i, r) in reqs.iter().enumerate() {
            let a = fast.serve(r).unwrap();
            let b = slow.serve(r).unwrap();
            assert_eq!(a, b, "outcome diverged at request {i}");
            assert_eq!(
                fast.dual_sum().to_bits(),
                slow.dual_sum().to_bits(),
                "dual sum diverged at request {i}"
            );
        }
        let (fb, fbh) = fast.bids();
        let (nb, nbh) = slow.bids();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        // Indexed B is commodity-major (e·m + p); the reference is
        // point-major (p·s + e). Compare cellwise across the transpose.
        let (m, s) = (inst.num_points(), inst.num_commodities());
        for p in 0..m {
            for e in 0..s {
                assert_eq!(
                    fb[e * m + p].to_bits(),
                    nb[p * s + e].to_bits(),
                    "B[{p}][{e}] diverged"
                );
            }
        }
        assert_eq!(bits(fbh), bits(nbh), "B-hat vectors diverged");
        assert_eq!(
            fast.solution().total_cost().to_bits(),
            slow.solution().total_cost().to_bits()
        );
        // The whole point: many requests, few index refreshes.
        assert!(fast.facility_index().openings() < reqs.len());
    }

    #[test]
    fn naive_reference_still_solves_the_theorem2_gadget() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            16,
            CostModel::ceil_sqrt(16),
        )
        .unwrap();
        let mut alg = NaivePd::new(&inst);
        for e in 0..16u16 {
            let r = Request::new(
                PointId(0),
                CommoditySet::from_ids(inst.universe(), &[e]).unwrap(),
            );
            alg.serve(&r).unwrap();
        }
        alg.solution().verify(&inst).unwrap();
        assert_eq!(alg.solution().num_large_facilities(), 1);
        assert_eq!(alg.name(), "pd-omflp-naive");
    }
}
