//! PD-OMFLP — the deterministic primal–dual online algorithm (Algorithm 1,
//! paper §3), `O(√|S|·log n)`-competitive.
//!
//! # How the continuous process is simulated
//!
//! On arrival of request `r`, the paper raises all unserved dual variables
//! `a_{re}` simultaneously until one of four constraint families becomes
//! tight:
//!
//! 1. `a_{re} = d(F(e), r)` — connect `e` to the nearest open facility
//!    offering `e`;
//! 2. `Σ_{e∈sr} a_{re} = d(F̂, r)` — connect the whole request to the nearest
//!    open *large* facility;
//! 3. `(a_{re} − d(m,r))⁺ + B[m][e] = f^{e}_m` — open a *temporary* small
//!    facility for `e` at `m`;
//! 4. `(Σ_e a_{re} − d(m,r))⁺ + B̂[m] = f^{S}_m` — open a large facility at
//!    `m` and serve everything there.
//!
//! `B[m][e] = Σ_j (min{a_{je}, d(F(e), j)} − d(m,j))⁺` and
//! `B̂[m] = Σ_j (min{Σ_e a_{je}, d(F̂, j)} − d(m,j))⁺` are the *reinvested
//! bids* of earlier requests. During a single arrival no open-facility set
//! changes (temporary facilities do not count as open; a large opening ends
//! the arrival), so every target above is a constant computed once per
//! arrival and the continuous race reduces to a discrete event loop.
//!
//! Between arrivals the bid caps `c_{je} = min(a_{je}, d(F(e), j))` only
//! shrink (facilities are never closed), so `B`/`B̂` are maintained
//! incrementally: additions when a request's duals freeze, subtractions when
//! a newly opened facility lowers a cap.
//!
//! Tie-breaking is deterministic and documented: large-connect before
//! large-open before small-connect before small-open; among commodities,
//! ascending id; among locations, ascending point id (via strict `<` when
//! scanning minima).
//!
//! # The incremental index layer
//!
//! The serve hot path is built on [`crate::index`]:
//!
//! * `d(F(e), r)` / `d(F̂, r)` come from a [`FacilityIndex`] — per-point
//!   nearest-open-facility caches refreshed in `O(|M|)` *once per opening*
//!   instead of scanned per request (openings are rare; requests are not);
//! * the t3/t4 opening targets come from an [`OpeningTargetIndex`] — a
//!   bucketed lower-bound prune list over the monotone distance-free keys
//!   `(f − B)⁺`, with blocks laid over a spatially coherent relabeling and
//!   tightened per query by medoid/covering-radius distance bounds, so the
//!   per-arrival argmins skip every block of locations certified unable to
//!   beat the running best instead of scanning all of `|M|` per demanded
//!   commodity (see that type's docs for the invariants and why shrink
//!   staleness is sound). The same per-arrival block bounds
//!   ([`OpeningTargetIndex::prepare_query`]) narrow the freeze walk's bid
//!   reinvestment to the blocks that can hold `d < cap`;
//! * the cap-shrink passes after an opening consult a [`PastIndex`] —
//!   past requests bucketed by location with per-bucket cap bounds — so the
//!   walk is over locations (`O(|M|)`), not over the whole request history.
//!
//! Distances flow through a [`DistanceBackend`]: a dense `|M|²` matrix up
//! to [`DENSE_DISTANCE_CAP`] points, and a fixed-budget blocked row LRU
//! ([`omfl_metric::blocked::BlockedRowCache`]) beyond it, so large metrics
//! keep cached-row locality instead of paying a metric call per distance.
//!
//! All structures reproduce the retired linear scans **bit for bit**: cache
//! updates use the same `distance(query, location)` call and strict-`<`
//! tie-breaking as the scans, shrink candidates are applied in the exact
//! `(past index, slot)` order the history walk used, and pruned blocks are
//! exactly those that provably cannot change the scan result — so every
//! float in `B`, `B̂`, the caps and the outcomes is identical. The
//! pre-index path survives as `naive::NaivePd` (feature `naive-ref`) and
//! `tests/tests/differential.rs` asserts the equivalence across the whole
//! scenario catalog; [`PdOmflp::with_full_scans`] additionally freezes the
//! PR 3 full-scan serve path as the perf baseline the `pd-argmin` bench
//! and the target-lockstep tests (`tests/tests/index_bounds.rs`) run
//! against.

use crate::algorithm::{OnlineAlgorithm, ServeOutcome};
use crate::index::{FacilityIndex, OpeningTargetIndex, PastIndex};
use crate::instance::Instance;
use crate::request::Request;
use crate::solution::{FacilityId, Solution};
use crate::{harmonic, CoreError, EPS};
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_metric::blocked::BlockedRowCache;
use omfl_metric::PointId;
use omfl_par::TaskPool;
use std::sync::Arc;

/// One opening target: `(value, realizing location)`.
pub type OpeningTarget = (f64, PointId);

/// Frozen per-request state kept for bid reinvestment.
#[derive(Debug, Clone)]
pub struct PastRequest {
    /// Where the request appeared.
    pub location: PointId,
    /// The demanded commodities, ascending.
    pub commodities: Vec<CommodityId>,
    /// Frozen dual values `a_{re}`, parallel to `commodities`.
    pub duals: Vec<f64>,
    /// Current caps `c_{re} = min(a_{re}, d(F(e), r))`, parallel to
    /// `commodities`; shrink when new facilities open.
    pub caps: Vec<f64>,
    /// Current cap `ĉ_r = min(Σ_e a_{re}, d(F̂, r))`.
    pub cap_total: f64,
}

impl PastRequest {
    /// `Σ_e a_{re}` — the request's total dual investment.
    pub fn dual_sum(&self) -> f64 {
        self.duals.iter().sum()
    }
}

/// The deterministic primal–dual algorithm PD-OMFLP.
pub struct PdOmflp<'a> {
    inst: &'a Instance,
    sol: Solution,
    past: Vec<PastRequest>,
    /// Nearest-open-facility caches, refreshed once per opening.
    index: FacilityIndex,
    /// Past requests bucketed by location for the cap-shrink passes.
    past_index: PastIndex,
    /// `B[m][e]`, flat `e * |M| + m` (commodity-major: the t3 scan, the
    /// freeze additions and the cap-shrink subtractions all walk `m` for a
    /// fixed `e`, so this layout keeps the hot loops on contiguous memory).
    b_small: Vec<f64>,
    /// `B̂[m]`.
    b_large: Vec<f64>,
    /// Cached `f^{e}_m`, flat `e * |M| + m` (commodity-major, like `b_small`).
    f_small: Vec<f64>,
    /// Cached `f^{S}_m`.
    f_full: Vec<f64>,
    /// Distance substrate: dense matrix, blocked row LRU, or per-call —
    /// every read is bit-identical to calling the metric (see
    /// [`DistanceBackend`]).
    dist: DistanceBackend,
    /// Scratch: `d(m, r)` for the anchor in `dist_row_loc`.
    dist_row: Vec<f64>,
    /// The anchor `dist_row` currently holds (rows are pure functions of the
    /// anchor, so a matching tag means the row is valid). `None` until the
    /// first fill.
    dist_row_loc: Option<PointId>,
    /// Scratch for the frozen reference path's block-narrowed candidate
    /// ids (see [`OpeningTargetIndex::budget_move_candidates`]); the
    /// current path shards the freeze walk inside the index instead.
    moved_scratch: Vec<u32>,
    /// Scratch for the partial-row coverage ids (block reps, then the
    /// predicted scan cover; see [`OpeningTargetIndex::query_scan_cover`]).
    cover_scratch: Vec<u32>,
    /// `true` pins this engine to the frozen PR 5 reference serve path
    /// (full row fills, serial candidate-list freeze): the paired benches
    /// time the current path against it, so it must not inherit the
    /// partial-row or sharded-freeze machinery.
    frozen_reference: bool,
    /// Point-count floor for the partial-row serve path; defaults to
    /// [`PARTIAL_ROW_MIN_POINTS`], overridable via
    /// [`PdOmflp::set_partial_row_threshold`] so lockstep suites can
    /// engage the path on CI-sized metrics.
    partial_rows_min: usize,
    /// Scratch row for the cap-shrink passes (rows of *past* locations),
    /// used only by the per-call backend.
    shrink_row: Vec<f64>,
    /// Anchor tag for `shrink_row` (see `dist_row_loc`).
    shrink_row_loc: Option<PointId>,
    /// Incremental t3/t4 maintenance; `None` runs the PR 3 full scans
    /// (the frozen perf baseline, see [`PdOmflp::with_full_scans`]).
    targets: Option<OpeningTargetIndex>,
    /// The t3 targets `(value, location)` of the last non-fast-path arrival.
    last_t3: Vec<(f64, PointId)>,
    /// The t4 target of the last non-fast-path arrival.
    last_t4: (f64, PointId),
    /// Whether the last arrival computed targets (false on the zero-distance
    /// large fast path).
    last_targets_valid: bool,
    /// Reusable per-arrival buffers (see [`ServeScratch`]).
    scratch: ServeScratch,
    /// Running `Σ_r Σ_e a_{re}` for the Corollary 8 check.
    dual_sum: f64,
}

/// Where `d(p, q)` reads come from. All three variants produce the verbatim
/// `Instance::distance` results — they differ only in cost model:
///
/// * `Dense` — the full `|M|²` matrix (row `q` at `q·|M|`, contiguous in
///   `p`), affordable up to [`DENSE_DISTANCE_CAP`] points;
/// * `Blocked` — a fixed-budget LRU of metric rows
///   ([`omfl_metric::blocked`]), the large-metric regime;
/// * `PerCall` — no cache, one metric call per read: the pre-blocked-cache
///   behavior beyond the dense cap, kept for the scan-mode perf baseline.
enum DistanceBackend {
    Dense(Vec<f64>),
    Blocked(BlockedRowCache),
    PerCall,
}

impl DistanceBackend {
    /// A single `d(p, q)`. Cheap for `Dense`/cached `Blocked` rows; falls
    /// back to the metric call otherwise (bit-identical by contract).
    #[inline]
    fn point(&self, inst: &Instance, p: PointId, q: PointId) -> f64 {
        match self {
            DistanceBackend::Dense(d) => d[q.index() * inst.num_points() + p.index()],
            DistanceBackend::Blocked(c) => match c.cached_row(q.0) {
                Some(row) => row[p.index()],
                None => inst.distance(p, q),
            },
            DistanceBackend::PerCall => inst.distance(p, q),
        }
    }
}

/// Borrows the distance row `d(·, q)` without copying: a slice into the
/// dense matrix or the blocked cache, or — for the per-call backend — a
/// fill of `scratch` (reused when `scratch_loc` already tags `q`; rows are
/// pure functions of the anchor). Values are the verbatim metric results
/// in every arm.
///
/// A free function rather than a method so callers can keep disjoint
/// borrows of the other engine fields (bid rows, target index) alive while
/// holding the row.
fn backend_row<'r>(
    dist: &'r mut DistanceBackend,
    inst: &Instance,
    q: PointId,
    scratch: &'r mut [f64],
    scratch_loc: &mut Option<PointId>,
) -> &'r [f64] {
    let m = inst.num_points();
    match dist {
        DistanceBackend::Dense(d) => &d[q.index() * m..(q.index() + 1) * m],
        DistanceBackend::Blocked(c) => c.row_with(q.0, |buf| inst.fill_row(q, buf)),
        DistanceBackend::PerCall => {
            if *scratch_loc != Some(q) {
                for (p, slot) in scratch.iter_mut().enumerate() {
                    *slot = inst.distance(PointId(p as u32), q);
                }
                *scratch_loc = Some(q);
            }
            scratch
        }
    }
}

/// Which opening-target maintenance a `with_parts` engine gets.
enum Targets {
    /// PR 3 full scans (the frozen perf baseline).
    FullScans,
    /// Incremental index over the metric's coherent order (the default).
    Coherent,
    /// Incremental index over an explicit relabeling (test hook).
    Order(Vec<u32>),
    /// The PR 5 incremental layout generation: windowed ball ingest,
    /// 16-point blocks, no kd tree, no `PastIndex` block pruning, no
    /// worker pool. The frozen baseline for the `huge` paired bench.
    Legacy,
}

/// Per-member outcome inside one arrival.
#[derive(Clone, Copy, Debug)]
enum MemberServe {
    /// Connected to an existing facility (constraint 1).
    Existing(FacilityId),
    /// Temporary small facility at this location (constraint 3).
    Temp(PointId),
}

/// Per-arrival working memory, reused across requests.
///
/// With the index layer in place, a serve on a quiet arrival (no openings)
/// does only `O(k + |M|)` arithmetic — at that scale the eight `Vec`
/// allocations the old serve made per request were a measurable fraction of
/// the hot path. The buffers are cleared and refilled per arrival; the
/// values flowing through them are identical to the allocate-per-request
/// version (the differential suite checks this, like everything else here).
#[derive(Debug, Default)]
struct ServeScratch {
    /// Demanded commodities, ascending.
    members: Vec<CommodityId>,
    /// Constraint-1 targets `t1[i] = d(F(e_i), r)`.
    t1: Vec<f64>,
    /// The facility realizing `t1[i]`.
    t1_fac: Vec<Option<FacilityId>>,
    /// Constraint-3 targets (cheapest temp-open for `e_i`).
    t3: Vec<f64>,
    /// The location realizing `t3[i]`.
    t3_loc: Vec<PointId>,
    /// Dual values `a_{re}` being raised.
    a: Vec<f64>,
    /// Per-member serve decision.
    outcome: Vec<Option<MemberServe>>,
    /// Facilities the request connects to (small mode).
    fids: Vec<FacilityId>,
}

/// Metrics up to this many points get a dense per-pair distance cache in
/// [`PdOmflp`] (`|M|² · 8` bytes — 8 MiB at the cap). Beyond it,
/// [`PdOmflp::new`] switches to the blocked row cache
/// ([`omfl_metric::blocked::BlockedRowCache`], budget
/// [`omfl_metric::blocked::DEFAULT_ROW_CACHE_BYTES`]), which keeps row
/// locality for metrics up to ~100k points; only the scan-mode baseline
/// ([`PdOmflp::with_full_scans`]) still falls back to per-call lookups.
pub const DENSE_DISTANCE_CAP: usize = 1024;

/// Point-count threshold at which [`PdOmflp::new`] engages the sharded-scan
/// worker pool (when [`omfl_par::default_threads`] reports more than one
/// thread). Below it the per-arrival scans are far too short for fan-out to
/// pay; above it each t3/t4 argmin spans thousands of blocks and the
/// shard sweeps parallelize cleanly. The pool changes *nothing* observable
/// — results and skip/scan statistics are bit-identical at any thread
/// count (the shard partition is a pure function of the block count; see
/// [`crate::index::SCAN_SHARD_BLOCKS`]).
pub const PAR_SCAN_MIN_POINTS: usize = 65536;

/// Point-count threshold at which the engine serves arrivals through
/// kd-bounded *partial* row fills and the sharded screened freeze walk.
/// Below it a full row fill is one bulk [`omfl_metric::Metric::fill_row`]
/// (a memcpy for graph metrics, a streamed SIMD pass for Euclidean ones)
/// that beats thousands of per-call distance evaluations, and the serial
/// candidate-list freeze walk over a cached full row is already cheap —
/// partial fills would trade a fast bulk primitive for slow pointwise
/// calls. Above it the `O(|M|)` fill itself is the dominant serve cost
/// and coverage-bounded fills win by an order of magnitude. Either path
/// is bit-identical to the other (`tests/tests/partial_rows.rs` pins
/// engines to both and locksteps them).
pub const PARTIAL_ROW_MIN_POINTS: usize = 65536;

impl<'a> PdOmflp<'a> {
    /// Creates the algorithm over an instance, with the incremental t3/t4
    /// opening-target index and the blocked distance cache engaged.
    /// Precomputes the per-location small and large facility costs
    /// (`O(|M|·|S|)` memory — the same order as the bid matrix the analysis
    /// requires) and, for metrics up to [`DENSE_DISTANCE_CAP`] points, the
    /// dense distance cache.
    pub fn new(inst: &'a Instance) -> Self {
        let m = inst.num_points();
        let dist = if m <= DENSE_DISTANCE_CAP {
            DistanceBackend::Dense(Self::dense_matrix(inst))
        } else {
            DistanceBackend::Blocked(BlockedRowCache::with_default_budget(m))
        };
        Self::with_parts(inst, dist, Targets::Coherent)
    }

    /// [`PdOmflp::new`] with the opening-target index laid over an
    /// **explicit** relabeling `order` instead of the metric's coherent
    /// order. The relabeling is internal to the index, so every engine
    /// outcome must be bit-identical to [`PdOmflp::new`] under *any*
    /// permutation — the property the relabeling proptest in
    /// `tests/tests/index_bounds.rs` drives through whole runs.
    pub fn with_target_order(inst: &'a Instance, order: Vec<u32>) -> Self {
        let m = inst.num_points();
        let dist = if m <= DENSE_DISTANCE_CAP {
            DistanceBackend::Dense(Self::dense_matrix(inst))
        } else {
            DistanceBackend::Blocked(BlockedRowCache::with_default_budget(m))
        };
        Self::with_parts(inst, dist, Targets::Order(order))
    }

    /// The PR 3 serve path: full t3/t4 scans every arrival and, beyond
    /// [`DENSE_DISTANCE_CAP`], per-call distance lookups. Behaviorally
    /// bit-identical to [`PdOmflp::new`] — it exists as the frozen
    /// performance baseline the `pd-argmin` bench and the target-lockstep
    /// tests compare against.
    pub fn with_full_scans(inst: &'a Instance) -> Self {
        let m = inst.num_points();
        let dist = if m <= DENSE_DISTANCE_CAP {
            DistanceBackend::Dense(Self::dense_matrix(inst))
        } else {
            DistanceBackend::PerCall
        };
        Self::with_parts(inst, dist, Targets::FullScans)
    }

    /// The PR 5 serve path, frozen: the incremental opening-target index
    /// with windowed ball ingest and 16-point blocks, but no kd tree, no
    /// `PastIndex` block pruning and no worker pool. Same distance backend
    /// policy as [`PdOmflp::new`], so a paired bench against it isolates
    /// exactly this PR's serve-path changes. Behaviorally bit-identical to
    /// [`PdOmflp::new`] — the layout generation is engine-invisible.
    pub fn with_reference_layout(inst: &'a Instance) -> Self {
        let m = inst.num_points();
        let dist = if m <= DENSE_DISTANCE_CAP {
            DistanceBackend::Dense(Self::dense_matrix(inst))
        } else {
            DistanceBackend::Blocked(BlockedRowCache::with_default_budget(m))
        };
        Self::with_parts(inst, dist, Targets::Legacy)
    }

    /// Test/bench hook: forces the sharded-scan worker pool (`threads ≤ 1`
    /// removes it) and the blocks-per-shard granularity, regardless of
    /// instance size. Answers are bit-identical under every configuration;
    /// shard size also changes which skips are *attempted* (the stats),
    /// the pool never changes anything observable. No-op in scan mode.
    pub fn configure_parallel_scans(&mut self, threads: usize, shard_blocks: usize) {
        if let Some(t) = &mut self.targets {
            t.set_scan_pool(if threads > 1 {
                Some(Arc::new(TaskPool::new(threads)))
            } else {
                None
            });
            t.set_scan_shard_blocks(shard_blocks);
        }
    }

    fn dense_matrix(inst: &Instance) -> Vec<f64> {
        let m = inst.num_points();
        let mut dmat = vec![0.0; m * m];
        for (q, row) in dmat.chunks_exact_mut(m).enumerate() {
            // The bulk primitive is bit-identical to the per-call loop by
            // the fill_row contract, and metrics with a real override
            // (dense copies, graph rows, Euclidean column streams) fill a
            // row at memory speed.
            inst.fill_row(PointId(q as u32), row);
        }
        dmat
    }

    fn with_parts(inst: &'a Instance, dist: DistanceBackend, mode: Targets) -> Self {
        let m = inst.num_points();
        let s = inst.num_commodities();
        let mut f_small = vec![0.0; m * s];
        let mut f_full = vec![0.0; m];
        for p in 0..m {
            for e in 0..s {
                f_small[e * m + p] = inst.small_cost(PointId(p as u32), CommodityId(e as u16));
            }
            f_full[p] = inst.large_cost(PointId(p as u32));
        }
        let legacy = matches!(mode, Targets::Legacy);
        let mut targets = match mode {
            Targets::FullScans => None,
            Targets::Coherent => Some(OpeningTargetIndex::for_instance(inst, &f_small, &f_full)),
            Targets::Order(order) => Some(OpeningTargetIndex::with_order(
                inst, &f_small, &f_full, order,
            )),
            Targets::Legacy => Some(OpeningTargetIndex::for_instance_legacy(
                inst, &f_small, &f_full,
            )),
        };
        let mut past_index = PastIndex::new(m, s);
        if let Some(t) = &mut targets {
            if !legacy {
                // Share the target index's spatial layout with the shrink
                // walk so it can skip whole blocks, and fan the per-arrival
                // block scans out over a worker pool once they are long
                // enough to amortize it. Both are engine-invisible: results
                // and skip/scan statistics stay bit-identical.
                past_index.attach_layout(t.layout_handle());
                let threads = omfl_par::default_threads();
                if m >= PAR_SCAN_MIN_POINTS && threads > 1 {
                    t.set_scan_pool(Some(Arc::new(TaskPool::new(threads))));
                }
            }
        }
        Self {
            inst,
            sol: Solution::new(),
            past: Vec::new(),
            index: FacilityIndex::new(m, s),
            past_index,
            b_small: vec![0.0; m * s],
            b_large: vec![0.0; m],
            f_small,
            f_full,
            dist,
            dist_row: vec![0.0; m],
            dist_row_loc: None,
            moved_scratch: Vec::new(),
            cover_scratch: Vec::new(),
            frozen_reference: legacy,
            partial_rows_min: PARTIAL_ROW_MIN_POINTS,
            shrink_row: vec![0.0; m],
            shrink_row_loc: None,
            targets,
            last_t3: Vec::new(),
            last_t4: (f64::INFINITY, PointId(0)),
            last_targets_valid: false,
            scratch: ServeScratch::default(),
            dual_sum: 0.0,
        }
    }

    /// Folds a fresh opening into the facility index — through a borrowed
    /// distance row in incremental mode, per-call in scan mode (the PR 3
    /// cost profile). Values are identical either way.
    fn note_opening(&mut self, e: Option<CommodityId>, at: PointId, fid: FacilityId) {
        if self.targets.is_some() {
            let row = backend_row(
                &mut self.dist,
                self.inst,
                at,
                &mut self.shrink_row,
                &mut self.shrink_row_loc,
            );
            match e {
                Some(e) => self.index.note_small_opening_with_row(row, e, fid),
                None => self.index.note_large_opening_with_row(row, fid),
            }
        } else {
            match e {
                Some(e) => self.index.note_small_opening(self.inst, e, at, fid),
                None => self.index.note_large_opening(self.inst, at, fid),
            }
        }
    }

    /// The instance the algorithm runs on.
    pub fn instance(&self) -> &Instance {
        self.inst
    }

    /// Frozen dual state of all served requests (for the validator and the
    /// dual lower bound).
    pub fn past_requests(&self) -> &[PastRequest] {
        &self.past
    }

    /// `Σ_r Σ_e a_{re}` over all served requests.
    pub fn dual_sum(&self) -> f64 {
        self.dual_sum
    }

    /// The incrementally maintained bid matrices `(B, B̂)` — `B[m][e]` flat
    /// at `e·|M| + m` (commodity-major), `B̂[m]` per point. Exposed for
    /// invariant tests: both
    /// must stay non-negative (up to float noise) and below `f^{e}_m` /
    /// `f^{S}_m`; the independent recomputation lives in
    /// [`crate::validate::check_bid_feasibility`].
    pub fn bids(&self) -> (&[f64], &[f64]) {
        (&self.b_small, &self.b_large)
    }

    /// The dual-feasibility lower bound on OPT from Corollary 17: the duals
    /// scaled by `γ = 1 / (5 √|S| H_n)` are dual-feasible, so
    /// `γ · Σ a ≤ OPT`.
    pub fn scaled_dual_lower_bound(&self) -> f64 {
        let n = self.past.len();
        if n == 0 {
            return 0.0;
        }
        let gamma = 1.0 / (5.0 * (self.inst.num_commodities() as f64).sqrt() * harmonic(n));
        gamma * self.dual_sum
    }

    /// The facility index (for diagnostics and the refresh-boundary tests).
    pub fn facility_index(&self) -> &FacilityIndex {
        &self.index
    }

    /// The t3/t4 opening targets the last arrival raced against:
    /// per-member `(value, location)` t3 pairs (parallel to the request's
    /// ascending commodities) and the t4 pair. `None` when the last arrival
    /// took the zero-distance large fast path (no targets are computed
    /// there — the race ends at delta 0 before any target is read).
    ///
    /// This is the lockstep hook for `tests/tests/index_bounds.rs`: the
    /// incremental engine's recorded targets must equal a scan-mode
    /// engine's fresh scans bit for bit at every arrival.
    pub fn last_opening_targets(&self) -> Option<(&[OpeningTarget], OpeningTarget)> {
        if self.last_targets_valid {
            Some((&self.last_t3, self.last_t4))
        } else {
            None
        }
    }

    /// `(blocks pruned, blocks scanned)` across the opening-target index's
    /// queries; `None` in scan mode.
    pub fn opening_target_stats(&self) -> Option<(u64, u64)> {
        self.targets.as_ref().map(|t| t.stats())
    }

    /// `(blocks skipped, blocks scanned)` by the past-index shrink walks
    /// (both 0 unless the block layout is attached, i.e. incremental mode).
    pub fn past_index_stats(&self) -> (u64, u64) {
        self.past_index.stats()
    }

    /// `(hits, misses, evictions)` of the blocked distance-row cache;
    /// `None` for the dense and per-call backends.
    pub fn distance_cache_stats(&self) -> Option<(u64, u64, u64)> {
        match &self.dist {
            DistanceBackend::Blocked(c) => Some(c.stats()),
            _ => None,
        }
    }

    /// Coverage-fallback promotions of the blocked row cache: partial rows
    /// a full-row consumer (an opening's shrink pass) forced up to a full
    /// fill. `None` for the dense and per-call backends.
    pub fn row_fallback_promotions(&self) -> Option<u64> {
        match &self.dist {
            DistanceBackend::Blocked(c) => Some(c.fallback_promotions()),
            _ => None,
        }
    }

    /// Whether arrivals are served through kd-bounded partial row fills and
    /// the sharded freeze walk: blocked backend + radius-bounded layout, at
    /// least [`PARTIAL_ROW_MIN_POINTS`] points (below that a bulk full fill
    /// is faster than pointwise coverage fills), and not the frozen PR 5
    /// reference path.
    pub fn partial_rows_active(&self) -> bool {
        !self.frozen_reference
            && self.inst.num_points() >= self.partial_rows_min
            && matches!(self.dist, DistanceBackend::Blocked(_))
            && self
                .targets
                .as_ref()
                .is_some_and(|t| t.partial_rows_supported())
    }

    /// Test/bench hook: overrides the [`PARTIAL_ROW_MIN_POINTS`] floor so
    /// lockstep suites can engage (or suppress) the partial-row serve path
    /// on CI-sized metrics. Either side of the threshold is bit-identical
    /// — the floor is purely a performance crossover.
    pub fn set_partial_row_threshold(&mut self, min_points: usize) {
        self.partial_rows_min = min_points;
    }

    /// Nearest open facility offering commodity `e` (small-for-`e` or large)
    /// — an `O(1)` cache lookup, tie-identical to the retired linear scan.
    fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        self.index.nearest_offering(e, from)
    }

    /// Nearest open large facility — an `O(1)` cache lookup.
    fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        self.index.nearest_large(from)
    }

    /// Applies cap shrinkage for past requests after a *small* facility for
    /// `e` opened at `at`.
    ///
    /// The [`PastIndex`] narrows the walk to members whose location-bucket
    /// cap bound exceeds the new distance; candidates come back in the
    /// ascending `(past index, slot)` order the full history walk used, so
    /// the `B` updates happen in the identical floating-point order.
    fn post_open_small(&mut self, e: CommodityId, at: PointId) {
        let m = self.inst.num_points();
        let mut shrank = false;
        for (pi, slot) in self.past_index.small_shrink_candidates(self.inst, e, at) {
            let pr = &self.past[pi as usize];
            let dj = self.dist.point(self.inst, at, pr.location);
            let old = pr.caps[slot as usize];
            if dj < old {
                let loc = pr.location;
                shrank = true;
                let drow = backend_row(
                    &mut self.dist,
                    self.inst,
                    loc,
                    &mut self.shrink_row,
                    &mut self.shrink_row_loc,
                );
                let row = &mut self.b_small[e.index() * m..(e.index() + 1) * m];
                for (b, &dpj) in row.iter_mut().zip(drow) {
                    // delta = (old − dpj)⁺ − (dj − dpj)⁺ vanishes exactly
                    // when dpj ≥ old (dj < old), so the skip is bit-exact.
                    if dpj < old {
                        let delta = (old - dpj).max(0.0) - (dj - dpj).max(0.0);
                        *b -= delta;
                    }
                }
                self.past[pi as usize].caps[slot as usize] = dj;
            }
        }
        // `B[·][e]` shrank: the block bounds went stale low (still sound);
        // one rebuild per pass restores tight pruning.
        if shrank {
            if let Some(t) = &mut self.targets {
                t.rebuild_small(
                    e,
                    &self.f_small[e.index() * m..(e.index() + 1) * m],
                    &self.b_small[e.index() * m..(e.index() + 1) * m],
                );
            }
        }
    }

    /// Applies cap shrinkage after a *large* facility opened at `at`:
    /// it joins `F̂` and every `F(e)`. Same bucketed narrowing as
    /// [`Self::post_open_small`], walking candidate requests in ascending
    /// past order.
    fn post_open_large(&mut self, at: PointId) {
        let m = self.inst.num_points();
        let mut shrank_large = false;
        let mut shrank_small: Vec<CommodityId> = Vec::new();
        for pi in self.past_index.large_shrink_candidates(self.inst, at) {
            let pi = pi as usize;
            let loc = self.past[pi].location;
            let dj = self.dist.point(self.inst, at, loc);
            let any_shrink =
                dj < self.past[pi].cap_total || self.past[pi].caps.iter().any(|&c| dj < c);
            if !any_shrink {
                continue;
            }
            let drow = backend_row(
                &mut self.dist,
                self.inst,
                loc,
                &mut self.shrink_row,
                &mut self.shrink_row_loc,
            );
            // Large-facility cap.
            let old_total = self.past[pi].cap_total;
            if dj < old_total {
                shrank_large = true;
                for (b, &dpj) in self.b_large.iter_mut().zip(drow) {
                    if dpj < old_total {
                        let delta = (old_total - dpj).max(0.0) - (dj - dpj).max(0.0);
                        *b -= delta;
                    }
                }
                self.past[pi].cap_total = dj;
            }
            // Per-commodity caps (a large facility offers every commodity).
            for slot in 0..self.past[pi].commodities.len() {
                let old = self.past[pi].caps[slot];
                if dj < old {
                    let e = self.past[pi].commodities[slot];
                    shrank_small.push(e);
                    let row = &mut self.b_small[e.index() * m..(e.index() + 1) * m];
                    for (b, &dpj) in row.iter_mut().zip(drow) {
                        if dpj < old {
                            let delta = (old - dpj).max(0.0) - (dj - dpj).max(0.0);
                            *b -= delta;
                        }
                    }
                    self.past[pi].caps[slot] = dj;
                }
            }
        }
        // Budgets shrank: stale-low block bounds stay sound, but one
        // rebuild per affected row restores tight pruning.
        if let Some(t) = &mut self.targets {
            if shrank_large {
                t.rebuild_large(&self.f_full, &self.b_large);
            }
            shrank_small.sort_unstable();
            shrank_small.dedup();
            for e in shrank_small {
                t.rebuild_small(
                    e,
                    &self.f_small[e.index() * m..(e.index() + 1) * m],
                    &self.b_small[e.index() * m..(e.index() + 1) * m],
                );
            }
        }
    }

    /// Freezes the served request's duals into the bid matrices.
    ///
    /// Only members with a positive cap touch the bid rows, and an addition
    /// `(cap − d)⁺` is non-zero exactly for locations with `d < cap` — so
    /// the incremental path skips the zero terms bit-exactly (`x + 0.0 == x`
    /// for every value `B` can take: additions of positive terms and exact
    /// cancellations never produce `-0.0`) and logs precisely the locations
    /// whose budgets moved as the opening-target repair set.
    fn freeze(&mut self, request: &Request, members: &[CommodityId], duals: &[f64]) {
        let loc = request.location();
        let pi = self.past.len() as u32;
        let mut caps = Vec::with_capacity(members.len());
        for (&e, &a) in members.iter().zip(duals) {
            let d_fe = self
                .nearest_offering(e, loc)
                .map(|(_, d)| d)
                .unwrap_or(f64::INFINITY);
            caps.push(a.min(d_fe));
        }
        let total: f64 = duals.iter().sum();
        let d_fhat = self
            .nearest_large(loc)
            .map(|(_, d)| d)
            .unwrap_or(f64::INFINITY);
        let cap_total = total.min(d_fhat);
        if caps.iter().any(|&c| c > 0.0) || cap_total > 0.0 {
            // The fast path and zero-dual arrivals never reach this row
            // borrow — their caps are all zero.
            self.freeze_bids(loc, members, &caps, cap_total);
        }
        self.dual_sum += total;
        self.past_index
            .push_request(pi, loc, members, &caps, cap_total);
        self.past.push(PastRequest {
            location: loc,
            commodities: members.to_vec(),
            duals: duals.to_vec(),
            caps,
            cap_total,
        });
    }

    /// The bid-reinvestment additions of [`Self::freeze`], split out so the
    /// distance row is borrowed only when some cap is positive.
    ///
    /// On the partial-row serve path ([`Self::partial_rows_active`]) the
    /// walk is [`OpeningTargetIndex::freeze_reinvest`]: sharded over the
    /// worker pool, fed the backend's row when a full one is already
    /// materialized and the metric's certified f32 screening brackets
    /// otherwise — bit-identical updates either way, and a partial row
    /// stays partial. Below the threshold (and on the frozen reference
    /// path) the serial [`OpeningTargetIndex::budget_move_candidates`]
    /// candidate-list walk over a full row stays faster; scan mode keeps
    /// the full contiguous walk.
    fn freeze_bids(&mut self, loc: PointId, members: &[CommodityId], caps: &[f64], cap_total: f64) {
        let m = self.inst.num_points();
        if self.partial_rows_active() {
            if let Some(t) = &mut self.targets {
                let full_row: Option<&[f64]> = match &self.dist {
                    DistanceBackend::Dense(d) => Some(&d[loc.index() * m..(loc.index() + 1) * m]),
                    DistanceBackend::Blocked(c) => c.cached_row(loc.0),
                    DistanceBackend::PerCall => None,
                };
                t.freeze_reinvest(
                    self.inst,
                    loc,
                    full_row,
                    members,
                    caps,
                    cap_total,
                    &mut self.b_small,
                    &mut self.b_large,
                    &self.f_small,
                    &self.f_full,
                );
                return;
            }
        }
        let dist_row = backend_row(
            &mut self.dist,
            self.inst,
            loc,
            &mut self.dist_row,
            &mut self.dist_row_loc,
        );
        let (b_small, b_large, targets) = (&mut self.b_small, &mut self.b_large, &mut self.targets);
        let (f_small, f_full) = (&self.f_small, &self.f_full);
        let moved = &mut self.moved_scratch;
        for (&e, &cap) in members.iter().zip(caps) {
            if cap > 0.0 {
                let row = &mut b_small[e.index() * m..(e.index() + 1) * m];
                match targets {
                    Some(t) => {
                        let f_row = &f_small[e.index() * m..(e.index() + 1) * m];
                        t.budget_move_candidates(dist_row, cap, moved);
                        for &p in moved.iter() {
                            let p = p as usize;
                            let d = dist_row[p];
                            if d < cap {
                                let b = &mut row[p];
                                *b += cap - d;
                                t.note_small_bump(e, PointId(p as u32), (f_row[p] - *b).max(0.0));
                            }
                        }
                    }
                    None => {
                        for (b, &d) in row.iter_mut().zip(dist_row) {
                            *b += (cap - d).max(0.0);
                        }
                    }
                }
            }
        }
        if cap_total > 0.0 {
            match targets {
                Some(t) => {
                    t.budget_move_candidates(dist_row, cap_total, moved);
                    for &p in moved.iter() {
                        let p = p as usize;
                        let d = dist_row[p];
                        if d < cap_total {
                            let b = &mut b_large[p];
                            *b += cap_total - d;
                            t.note_large_bump(PointId(p as u32), (f_full[p] - *b).max(0.0));
                        }
                    }
                }
                None => {
                    for (b, &d) in b_large.iter_mut().zip(dist_row) {
                        *b += (cap_total - d).max(0.0);
                    }
                }
            }
        }
    }
}

/// `a` is tight against target `t` (reached within tolerance).
#[inline]
fn tight(value: f64, target: f64) -> bool {
    value >= target - EPS * (1.0 + target.abs())
}

/// The verbatim opening-target scan: `min_p (f[p] − b[p])⁺ + d[p]` with
/// strict-`<` ascending-`p` tie-breaking — the reference the opening-target
/// index must reproduce bit for bit, and the whole story in scan mode.
#[inline]
fn scan_target(f_row: &[f64], b_row: &[f64], dist_row: &[f64]) -> (f64, PointId) {
    let mut best = f64::INFINITY;
    let mut best_m = PointId(0);
    for (p, ((&f, &b), &d)) in f_row.iter().zip(b_row).zip(dist_row).enumerate() {
        let v = (f - b).max(0.0) + d;
        if v < best {
            best = v;
            best_m = PointId(p as u32);
        }
    }
    (best, best_m)
}

impl OnlineAlgorithm for PdOmflp<'_> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        request.validate(self.inst)?;
        let loc = request.location();
        let mpts = self.inst.num_points();

        // Per-arrival buffers are reused across requests (the scratch is
        // moved out so the borrow checker lets the helpers take &mut self).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.members.clear();
        scratch.members.extend(request.demand().iter());
        let k = scratch.members.len();

        // Fast path: a large facility at distance zero. The continuous
        // process then ends before any dual grows — the first event fires at
        // delta = 0 and large-connect has top priority — so every target
        // computed below would be discarded unread. Serving directly is
        // bit-identical (duals all zero, caps all zero, no bid updates) and
        // skips the O(|M|) per-arrival work entirely; on hotspot-style
        // workloads this is the majority of arrivals once a large opens.
        if k > 0 {
            if let Some((fid, d)) = self.index.nearest_large(loc) {
                if d == 0.0 {
                    self.last_targets_valid = false;
                    scratch.a.clear();
                    scratch.a.resize(k, 0.0);
                    scratch.fids.clear();
                    scratch.fids.push(fid);
                    let start_con = self.sol.construction_cost();
                    let assignment = self.sol.assign(self.inst, request.clone(), &scratch.fids);
                    let connection_cost = assignment.connection_cost;
                    let assigned_to = assignment.facilities.clone();
                    self.freeze(request, &scratch.members, &scratch.a);
                    self.scratch = scratch;
                    return Ok(ServeOutcome {
                        opened: Vec::new(),
                        assigned_to,
                        connection_cost,
                        construction_cost: self.sol.construction_cost() - start_con,
                        served_by_large: true,
                    });
                }
            }
        }

        // Distance row d(m, r), borrowed zero-copy from the backend and
        // reused everywhere this arrival. Scan mode drops the reuse tag
        // first — the per-call refill is the PR 3 cost profile it exists
        // to preserve.
        if self.targets.is_none() {
            self.dist_row_loc = None;
        }
        let inst = self.inst;
        // Radius-bounded index over the blocked cache: fill only the
        // entries this arrival's scans can read. Seed the reps (the bound
        // pass reads exactly those), predict the scan cover from the
        // prepared bounds, extend the row to it — the pruned scans then
        // see verbatim backend values everywhere they look, so targets,
        // stats and all downstream state are bit-identical to a full fill.
        // Any later full-row consumer (an opening's shrink pass) promotes
        // the partial row through the cache's coverage fallback.
        let dist_row: &[f64] = if self.partial_rows_active() {
            let (Some(t), DistanceBackend::Blocked(c)) = (&mut self.targets, &mut self.dist) else {
                unreachable!("partial_rows_active checked the index and the backend")
            };
            let cover = &mut self.cover_scratch;
            t.seed_cover_ids(cover);
            let seeded = c.partial_row_with(loc.0, cover, |p| inst.distance(PointId(p), loc));
            // One pass of per-block distance bounds for this arrival,
            // shared by every t3/t4 argmin below and the freeze walk.
            t.prepare_query_at(Some(loc), seeded);
            t.query_scan_cover(&scratch.members, cover);
            c.partial_row_with(loc.0, cover, |p| inst.distance(PointId(p), loc))
        } else {
            let row = backend_row(
                &mut self.dist,
                inst,
                loc,
                &mut self.dist_row,
                &mut self.dist_row_loc,
            );
            // One pass of per-block distance bounds for this arrival,
            // shared by every t3/t4 argmin below and the freeze walk.
            if let Some(t) = &mut self.targets {
                t.prepare_query_at(Some(loc), row);
            }
            row
        };

        // Per-commodity targets t1 (connect) / t3 (temp open) and joint
        // targets t2 (connect large) / t4 (open large). All constant during
        // the arrival (see module docs). t3/t4 come from the opening-target
        // index's block-pruned scan when it is engaged; scan mode runs the
        // full strict-`<` scans.
        scratch.t1.clear();
        scratch.t1.resize(k, f64::INFINITY);
        scratch.t1_fac.clear();
        scratch.t1_fac.resize(k, None);
        scratch.t3.clear();
        scratch.t3.resize(k, f64::INFINITY);
        scratch.t3_loc.clear();
        scratch.t3_loc.resize(k, PointId(0));
        for (i, &e) in scratch.members.iter().enumerate() {
            if let Some((fid, d)) = self.index.nearest_offering(e, loc) {
                scratch.t1[i] = d;
                scratch.t1_fac[i] = Some(fid);
            }
            let f_row = &self.f_small[e.index() * mpts..(e.index() + 1) * mpts];
            let b_row = &self.b_small[e.index() * mpts..(e.index() + 1) * mpts];
            let (best, best_m) = match &mut self.targets {
                Some(t) => t.small_target(e, f_row, b_row, dist_row),
                None => scan_target(f_row, b_row, dist_row),
            };
            scratch.t3[i] = best;
            scratch.t3_loc[i] = best_m;
        }
        let (t4, t4_loc) = match &mut self.targets {
            Some(t) => t.large_target(&self.f_full, &self.b_large, dist_row),
            None => scan_target(&self.f_full, &self.b_large, dist_row),
        };
        let (t2, t2_fac) = match self.index.nearest_large(loc) {
            Some((fid, d)) => (d, Some(fid)),
            None => (f64::INFINITY, None),
        };

        // Record the race targets for the lockstep tests.
        self.last_t3.clear();
        self.last_t3.extend(
            scratch
                .t3
                .iter()
                .zip(&scratch.t3_loc)
                .map(|(&v, &p)| (v, p)),
        );
        self.last_t4 = (t4, t4_loc);
        self.last_targets_valid = true;

        // Event loop: raise unserved duals simultaneously. Unserved members
        // are visited in ascending index order, exactly like the collected
        // index list the pre-scratch version allocated per iteration.
        scratch.a.clear();
        scratch.a.resize(k, 0.0);
        scratch.outcome.clear();
        scratch.outcome.resize(k, None);
        let (t1, t1_fac) = (&scratch.t1, &scratch.t1_fac);
        let (t3, t3_loc) = (&scratch.t3, &scratch.t3_loc);
        let (a, outcome) = (&mut scratch.a, &mut scratch.outcome);
        let mut total: f64 = 0.0; // Σ_e a_{re}, frozen + growing
        let mut large_mode: Option<(Option<FacilityId>, PointId, bool)> = None; // (existing, open-at, is_open)
        loop {
            let u = outcome.iter().filter(|o| o.is_none()).count();
            if u == 0 {
                break;
            }
            // Next event distance.
            let mut delta = f64::INFINITY;
            for i in 0..k {
                if outcome[i].is_none() {
                    delta = delta.min(t1[i] - a[i]).min(t3[i] - a[i]);
                }
            }
            delta = delta
                .min((t2 - total) / u as f64)
                .min((t4 - total) / u as f64);
            debug_assert!(delta.is_finite(), "t3/t4 are always finite");
            let delta = delta.max(0.0);
            for i in 0..k {
                if outcome[i].is_none() {
                    a[i] += delta;
                }
            }
            total += delta * u as f64;

            // Priority: large-connect, large-open, small-connect, small-open.
            if tight(total, t2) {
                large_mode = Some((t2_fac, PointId(0), false));
                break;
            }
            if tight(total, t4) {
                large_mode = Some((None, t4_loc, true));
                break;
            }
            let mut progressed = false;
            for i in 0..k {
                if outcome[i].is_none() && tight(a[i], t1[i]) {
                    outcome[i] = Some(MemberServe::Existing(
                        t1_fac[i].expect("finite t1 implies a facility"),
                    ));
                    progressed = true;
                }
            }
            for i in 0..k {
                if outcome[i].is_none() && tight(a[i], t3[i]) {
                    outcome[i] = Some(MemberServe::Temp(t3_loc[i]));
                    progressed = true;
                }
            }
            debug_assert!(progressed, "event loop must make progress each iteration");
            if !progressed {
                // Defensive: force the cheapest pending target to fire so a
                // floating-point corner cannot hang the loop.
                let i = (0..k)
                    .filter(|&i| outcome[i].is_none())
                    .min_by(|&x, &y| {
                        let vx = t1[x].min(t3[x]) - a[x];
                        let vy = t1[y].min(t3[y]) - a[y];
                        vx.partial_cmp(&vy).expect("finite")
                    })
                    .expect("unserved non-empty");
                outcome[i] = Some(if t1[i] <= t3[i] {
                    MemberServe::Existing(t1_fac[i].expect("finite t1"))
                } else {
                    MemberServe::Temp(t3_loc[i])
                });
            }
        }

        // Realize the outcome.
        let start_con = self.sol.construction_cost();
        let mut opened = Vec::new();
        scratch.fids.clear();
        let (assigned, served_by_large): (&[FacilityId], bool) = match large_mode {
            Some((Some(fid), _, false)) => {
                scratch.fids.push(fid);
                (&scratch.fids, true)
            }
            Some((_, at, true)) => {
                let fid =
                    self.sol
                        .open_facility(self.inst, at, CommoditySet::full(self.inst.universe()));
                self.note_opening(None, at, fid);
                opened.push(fid);
                self.post_open_large(at);
                scratch.fids.push(fid);
                (&scratch.fids, true)
            }
            Some((None, _, false)) => unreachable!("large-connect requires a facility"),
            None => {
                // Small mode: open all temporary facilities, collect targets.
                for (i, &e) in scratch.members.iter().enumerate() {
                    match scratch.outcome[i].expect("all members served") {
                        MemberServe::Existing(fid) => scratch.fids.push(fid),
                        MemberServe::Temp(at) => {
                            let config = CommoditySet::singleton(self.inst.universe(), e)
                                .map_err(CoreError::Commodity)?;
                            let fid = self.sol.open_facility(self.inst, at, config);
                            self.note_opening(Some(e), at, fid);
                            opened.push(fid);
                            self.post_open_small(e, at);
                            scratch.fids.push(fid);
                        }
                    }
                }
                (&scratch.fids, false)
            }
        };
        let assignment = self.sol.assign(self.inst, request.clone(), assigned);
        let connection_cost = assignment.connection_cost;
        let assigned_to = assignment.facilities.clone();

        // Freeze duals into the bid matrices (after openings, so caps see
        // the new facility sets).
        self.freeze(request, &scratch.members, &scratch.a);

        self.scratch = scratch;
        Ok(ServeOutcome {
            opened,
            assigned_to,
            connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "pd-omflp"
    }

    /// The generic counters plus the PD-specific duals: the accumulated
    /// dual sum and the Corollary 17 lower bound on OPT — the fields the
    /// serve layer's live bound checks read off the snapshot handle.
    fn snapshot(&self) -> crate::algorithm::EngineSnapshot {
        let mut snap = crate::algorithm::EngineSnapshot::from_solution(&self.sol);
        snap.dual_sum = self.dual_sum;
        snap.dual_lower_bound = self.scaled_dual_lower_bound();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::run_online_verified;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn single_point_inst(s: u16) -> Instance {
        Instance::new(
            Box::new(LineMetric::single_point()),
            s,
            CostModel::ceil_sqrt(s),
        )
        .unwrap()
    }

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn first_request_opens_small_facility() {
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        let out = alg.serve(&req(&inst, 0, &[3])).unwrap();
        assert_eq!(out.opened.len(), 1);
        assert!(!out.served_by_large);
        assert_eq!(alg.solution().num_small_facilities(), 1);
        // Small facility cost under ceil-sqrt is 1; zero distance.
        assert!((alg.solution().total_cost() - 1.0).abs() < 1e-9);
        // The dual reached f^{e}_m = 1.
        assert!((alg.past_requests()[0].duals[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem2_gadget_switches_to_large_facility() {
        // |S| = 16, sqrt = 4, g(σ) = ceil(|σ|/4): distinct singleton requests
        // on one point. PD opens small facilities until the accumulated bids
        // pay for the large facility (f^S = 4), then switches; afterwards
        // everything is served for free.
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        for e in 0..16u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        alg.solution().verify(&inst).unwrap();
        assert_eq!(
            alg.solution().num_large_facilities(),
            1,
            "exactly one large facility must open"
        );
        let smalls = alg.solution().num_small_facilities();
        assert!(
            (3..=5).contains(&smalls),
            "≈√S small facilities before the switch, got {smalls}"
        );
        // Total cost ≈ smalls·1 + 4; OPT for all of S is 4 ⇒ ratio O(1)·√S-ish.
        let cost = alg.solution().total_cost();
        assert!(cost <= 10.0, "cost {cost} should be ≈ √S + f^S");
    }

    #[test]
    fn served_by_large_after_large_exists() {
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        for e in 0..16u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        // A fresh request is served by the (distance 0) large facility with
        // zero dual growth.
        let out = alg.serve(&req(&inst, 0, &[0, 5, 9])).unwrap();
        assert!(out.served_by_large);
        assert!(out.opened.is_empty());
        assert_eq!(out.connection_cost, 0.0);
    }

    #[test]
    fn connect_to_existing_small_facility_when_close() {
        // Two points at distance 0.1; singleton cost is 5. The second
        // request should connect (paying 0.1) rather than open (paying 5).
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 0.1]).unwrap()),
            4,
            CostModel::power(4, 1.0, 5.0),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        alg.serve(&req(&inst, 0, &[2])).unwrap();
        let before = alg.solution().facilities().len();
        let out = alg.serve(&req(&inst, 1, &[2])).unwrap();
        assert_eq!(alg.solution().facilities().len(), before, "no new facility");
        assert!((out.connection_cost - 0.1).abs() < 1e-9);
    }

    #[test]
    fn multi_commodity_request_is_fully_covered() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 2.0, 5.0]).unwrap()),
            6,
            CostModel::power(6, 1.0, 1.5),
        )
        .unwrap();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2, 3]),
            req(&inst, 2, &[0, 4, 5]),
            req(&inst, 1, &[0, 1, 2, 3, 4, 5]),
        ];
        let mut alg = PdOmflp::new(&inst);
        run_online_verified(&mut alg, &inst, &reqs).unwrap();
        assert_eq!(alg.solution().num_requests(), 4);
    }

    #[test]
    fn corollary8_cost_at_most_three_dual_sums() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(8, 10.0).unwrap()),
            8,
            CostModel::power(8, 1.0, 2.0),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        let mut reqs = Vec::new();
        for i in 0..20u32 {
            let loc = (i * 3) % 8;
            let ids = [(i % 8) as u16, ((i * 5 + 1) % 8) as u16];
            reqs.push(req(&inst, loc, &ids));
        }
        run_online_verified(&mut alg, &inst, &reqs).unwrap();
        let cost = alg.solution().total_cost();
        assert!(
            cost <= 3.0 * alg.dual_sum() + 1e-6,
            "Corollary 8 violated: cost {cost} > 3·Σa = {}",
            3.0 * alg.dual_sum()
        );
    }

    #[test]
    fn dual_lower_bound_is_positive_and_below_cost() {
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        for e in 0..8u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        let lb = alg.scaled_dual_lower_bound();
        assert!(lb > 0.0);
        assert!(lb <= alg.solution().total_cost() + 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(5, 4.0).unwrap()),
            5,
            CostModel::power(5, 1.0, 1.0),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..12u32)
            .map(|i| req(&inst, i % 5, &[(i % 5) as u16, ((i + 2) % 5) as u16]))
            .collect();
        let run = |_| {
            let mut alg = PdOmflp::new(&inst);
            for r in &reqs {
                alg.serve(r).unwrap();
            }
            (
                alg.solution().total_cost(),
                alg.solution().facilities().len(),
                alg.dual_sum(),
            )
        };
        assert_eq!(run(0), run(1));
    }
}
