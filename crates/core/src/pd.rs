//! PD-OMFLP — the deterministic primal–dual online algorithm (Algorithm 1,
//! paper §3), `O(√|S|·log n)`-competitive.
//!
//! # How the continuous process is simulated
//!
//! On arrival of request `r`, the paper raises all unserved dual variables
//! `a_{re}` simultaneously until one of four constraint families becomes
//! tight:
//!
//! 1. `a_{re} = d(F(e), r)` — connect `e` to the nearest open facility
//!    offering `e`;
//! 2. `Σ_{e∈sr} a_{re} = d(F̂, r)` — connect the whole request to the nearest
//!    open *large* facility;
//! 3. `(a_{re} − d(m,r))⁺ + B[m][e] = f^{e}_m` — open a *temporary* small
//!    facility for `e` at `m`;
//! 4. `(Σ_e a_{re} − d(m,r))⁺ + B̂[m] = f^{S}_m` — open a large facility at
//!    `m` and serve everything there.
//!
//! `B[m][e] = Σ_j (min{a_{je}, d(F(e), j)} − d(m,j))⁺` and
//! `B̂[m] = Σ_j (min{Σ_e a_{je}, d(F̂, j)} − d(m,j))⁺` are the *reinvested
//! bids* of earlier requests. During a single arrival no open-facility set
//! changes (temporary facilities do not count as open; a large opening ends
//! the arrival), so every target above is a constant computed once per
//! arrival and the continuous race reduces to a discrete event loop.
//!
//! Between arrivals the bid caps `c_{je} = min(a_{je}, d(F(e), j))` only
//! shrink (facilities are never closed), so `B`/`B̂` are maintained
//! incrementally: additions when a request's duals freeze, subtractions when
//! a newly opened facility lowers a cap.
//!
//! Tie-breaking is deterministic and documented: large-connect before
//! large-open before small-connect before small-open; among commodities,
//! ascending id; among locations, ascending point id (via strict `<` when
//! scanning minima).

use crate::algorithm::{OnlineAlgorithm, ServeOutcome};
use crate::instance::Instance;
use crate::request::Request;
use crate::solution::{FacilityId, Solution};
use crate::{harmonic, CoreError, EPS};
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_metric::PointId;

/// Frozen per-request state kept for bid reinvestment.
#[derive(Debug, Clone)]
pub struct PastRequest {
    /// Where the request appeared.
    pub location: PointId,
    /// The demanded commodities, ascending.
    pub commodities: Vec<CommodityId>,
    /// Frozen dual values `a_{re}`, parallel to `commodities`.
    pub duals: Vec<f64>,
    /// Current caps `c_{re} = min(a_{re}, d(F(e), r))`, parallel to
    /// `commodities`; shrink when new facilities open.
    pub caps: Vec<f64>,
    /// Current cap `ĉ_r = min(Σ_e a_{re}, d(F̂, r))`.
    pub cap_total: f64,
}

impl PastRequest {
    /// `Σ_e a_{re}` — the request's total dual investment.
    pub fn dual_sum(&self) -> f64 {
        self.duals.iter().sum()
    }
}

/// The deterministic primal–dual algorithm PD-OMFLP.
pub struct PdOmflp<'a> {
    inst: &'a Instance,
    sol: Solution,
    past: Vec<PastRequest>,
    /// For each commodity, `(past request index, member slot)` of earlier
    /// requests demanding it — the update set when a small facility opens.
    past_by_e: Vec<Vec<(u32, u16)>>,
    /// Open small facilities offering commodity `e`.
    small_by_e: Vec<Vec<FacilityId>>,
    /// Open large facilities.
    large_facs: Vec<FacilityId>,
    /// `B[m][e]`, flat `m * |S| + e`.
    b_small: Vec<f64>,
    /// `B̂[m]`.
    b_large: Vec<f64>,
    /// Cached `f^{e}_m`, flat `m * |S| + e`.
    f_small: Vec<f64>,
    /// Cached `f^{S}_m`.
    f_full: Vec<f64>,
    /// Scratch: `d(m, r)` for the current arrival.
    dist_row: Vec<f64>,
    /// Running `Σ_r Σ_e a_{re}` for the Corollary 8 check.
    dual_sum: f64,
}

/// Per-member outcome inside one arrival.
#[derive(Clone, Copy, Debug)]
enum MemberServe {
    /// Connected to an existing facility (constraint 1).
    Existing(FacilityId),
    /// Temporary small facility at this location (constraint 3).
    Temp(PointId),
}

impl<'a> PdOmflp<'a> {
    /// Creates the algorithm over an instance. Precomputes the per-location
    /// small and large facility costs (`O(|M|·|S|)` memory — the same order
    /// as the bid matrix the analysis requires).
    pub fn new(inst: &'a Instance) -> Self {
        let m = inst.num_points();
        let s = inst.num_commodities();
        let mut f_small = vec![0.0; m * s];
        let mut f_full = vec![0.0; m];
        for p in 0..m {
            for e in 0..s {
                f_small[p * s + e] = inst.small_cost(PointId(p as u32), CommodityId(e as u16));
            }
            f_full[p] = inst.large_cost(PointId(p as u32));
        }
        Self {
            inst,
            sol: Solution::new(),
            past: Vec::new(),
            past_by_e: vec![Vec::new(); s],
            small_by_e: vec![Vec::new(); s],
            large_facs: Vec::new(),
            b_small: vec![0.0; m * s],
            b_large: vec![0.0; m],
            f_small,
            f_full,
            dist_row: vec![0.0; m],
            dual_sum: 0.0,
        }
    }

    /// The instance the algorithm runs on.
    pub fn instance(&self) -> &Instance {
        self.inst
    }

    /// Frozen dual state of all served requests (for the validator and the
    /// dual lower bound).
    pub fn past_requests(&self) -> &[PastRequest] {
        &self.past
    }

    /// `Σ_r Σ_e a_{re}` over all served requests.
    pub fn dual_sum(&self) -> f64 {
        self.dual_sum
    }

    /// The incrementally maintained bid matrices `(B, B̂)` — `B[m][e]` flat
    /// at `m·|S| + e`, `B̂[m]` per point. Exposed for invariant tests: both
    /// must stay non-negative (up to float noise) and below `f^{e}_m` /
    /// `f^{S}_m`; the independent recomputation lives in
    /// [`crate::validate::check_bid_feasibility`].
    pub fn bids(&self) -> (&[f64], &[f64]) {
        (&self.b_small, &self.b_large)
    }

    /// The dual-feasibility lower bound on OPT from Corollary 17: the duals
    /// scaled by `γ = 1 / (5 √|S| H_n)` are dual-feasible, so
    /// `γ · Σ a ≤ OPT`.
    pub fn scaled_dual_lower_bound(&self) -> f64 {
        let n = self.past.len();
        if n == 0 {
            return 0.0;
        }
        let gamma = 1.0 / (5.0 * (self.inst.num_commodities() as f64).sqrt() * harmonic(n));
        gamma * self.dual_sum
    }

    /// Nearest open facility offering commodity `e` (small-for-`e` or large).
    fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        let consider = |best: &mut Option<(FacilityId, f64)>, fid: FacilityId, d: f64| match *best {
            Some((_, bd)) if bd <= d => {}
            _ => *best = Some((fid, d)),
        };
        for &fid in &self.small_by_e[e.index()] {
            let d = self
                .inst
                .distance(from, self.sol.facilities()[fid.index()].location);
            consider(&mut best, fid, d);
        }
        for &fid in &self.large_facs {
            let d = self
                .inst
                .distance(from, self.sol.facilities()[fid.index()].location);
            consider(&mut best, fid, d);
        }
        best
    }

    /// Nearest open large facility.
    fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        let mut best: Option<(FacilityId, f64)> = None;
        for &fid in &self.large_facs {
            let d = self
                .inst
                .distance(from, self.sol.facilities()[fid.index()].location);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((fid, d)),
            }
        }
        best
    }

    /// Applies cap shrinkage for past requests after a *small* facility for
    /// `e` opened at `at`.
    fn post_open_small(&mut self, e: CommodityId, at: PointId) {
        let s = self.inst.num_commodities();
        let m = self.inst.num_points();
        for &(pi, slot) in &self.past_by_e[e.index()] {
            let pr = &self.past[pi as usize];
            let dj = self.inst.distance(at, pr.location);
            let old = pr.caps[slot as usize];
            if dj < old {
                let loc = pr.location;
                for p in 0..m {
                    let dpj = self.inst.distance(PointId(p as u32), loc);
                    let delta = (old - dpj).max(0.0) - (dj - dpj).max(0.0);
                    self.b_small[p * s + e.index()] -= delta;
                }
                self.past[pi as usize].caps[slot as usize] = dj;
            }
        }
    }

    /// Applies cap shrinkage after a *large* facility opened at `at`:
    /// it joins `F̂` and every `F(e)`.
    fn post_open_large(&mut self, at: PointId) {
        let s = self.inst.num_commodities();
        let m = self.inst.num_points();
        for pi in 0..self.past.len() {
            let loc = self.past[pi].location;
            let dj = self.inst.distance(at, loc);
            // Large-facility cap.
            let old_total = self.past[pi].cap_total;
            if dj < old_total {
                for p in 0..m {
                    let dpj = self.inst.distance(PointId(p as u32), loc);
                    let delta = (old_total - dpj).max(0.0) - (dj - dpj).max(0.0);
                    self.b_large[p] -= delta;
                }
                self.past[pi].cap_total = dj;
            }
            // Per-commodity caps (a large facility offers every commodity).
            for slot in 0..self.past[pi].commodities.len() {
                let old = self.past[pi].caps[slot];
                if dj < old {
                    let e = self.past[pi].commodities[slot];
                    for p in 0..m {
                        let dpj = self.inst.distance(PointId(p as u32), loc);
                        let delta = (old - dpj).max(0.0) - (dj - dpj).max(0.0);
                        self.b_small[p * s + e.index()] -= delta;
                    }
                    self.past[pi].caps[slot] = dj;
                }
            }
        }
    }

    /// Freezes the served request's duals into the bid matrices.
    fn freeze(&mut self, request: &Request, members: &[CommodityId], duals: &[f64]) {
        let s = self.inst.num_commodities();
        let m = self.inst.num_points();
        let loc = request.location();
        let pi = self.past.len() as u32;
        let mut caps = Vec::with_capacity(members.len());
        for (slot, (&e, &a)) in members.iter().zip(duals).enumerate() {
            let d_fe = self
                .nearest_offering(e, loc)
                .map(|(_, d)| d)
                .unwrap_or(f64::INFINITY);
            let cap = a.min(d_fe);
            caps.push(cap);
            if cap > 0.0 {
                for p in 0..m {
                    let add = (cap - self.dist_row[p]).max(0.0);
                    self.b_small[p * s + e.index()] += add;
                }
            }
            self.past_by_e[e.index()].push((pi, slot as u16));
        }
        let total: f64 = duals.iter().sum();
        let d_fhat = self
            .nearest_large(loc)
            .map(|(_, d)| d)
            .unwrap_or(f64::INFINITY);
        let cap_total = total.min(d_fhat);
        if cap_total > 0.0 {
            for p in 0..m {
                self.b_large[p] += (cap_total - self.dist_row[p]).max(0.0);
            }
        }
        self.dual_sum += total;
        self.past.push(PastRequest {
            location: loc,
            commodities: members.to_vec(),
            duals: duals.to_vec(),
            caps,
            cap_total,
        });
    }
}

/// `a` is tight against target `t` (reached within tolerance).
#[inline]
fn tight(value: f64, target: f64) -> bool {
    value >= target - EPS * (1.0 + target.abs())
}

impl OnlineAlgorithm for PdOmflp<'_> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        request.validate(self.inst)?;
        let loc = request.location();
        let s = self.inst.num_commodities();
        let mpts = self.inst.num_points();
        let members: Vec<CommodityId> = request.demand().iter().collect();
        let k = members.len();

        // Distance row d(m, r), reused everywhere this arrival.
        for p in 0..mpts {
            self.dist_row[p] = self.inst.distance(PointId(p as u32), loc);
        }

        // Per-commodity targets t1 (connect) / t3 (temp open) and joint
        // targets t2 (connect large) / t4 (open large). All constant during
        // the arrival (see module docs).
        let mut t1 = vec![f64::INFINITY; k];
        let mut t1_fac: Vec<Option<FacilityId>> = vec![None; k];
        let mut t3 = vec![f64::INFINITY; k];
        let mut t3_loc = vec![PointId(0); k];
        for (i, &e) in members.iter().enumerate() {
            if let Some((fid, d)) = self.nearest_offering(e, loc) {
                t1[i] = d;
                t1_fac[i] = Some(fid);
            }
            let mut best = f64::INFINITY;
            let mut best_m = PointId(0);
            for p in 0..mpts {
                let v = (self.f_small[p * s + e.index()] - self.b_small[p * s + e.index()])
                    .max(0.0)
                    + self.dist_row[p];
                if v < best {
                    best = v;
                    best_m = PointId(p as u32);
                }
            }
            t3[i] = best;
            t3_loc[i] = best_m;
        }
        let (t2, t2_fac) = match self.nearest_large(loc) {
            Some((fid, d)) => (d, Some(fid)),
            None => (f64::INFINITY, None),
        };
        let mut t4 = f64::INFINITY;
        let mut t4_loc = PointId(0);
        for p in 0..mpts {
            let v = (self.f_full[p] - self.b_large[p]).max(0.0) + self.dist_row[p];
            if v < t4 {
                t4 = v;
                t4_loc = PointId(p as u32);
            }
        }

        // Event loop: raise unserved duals simultaneously.
        let mut a = vec![0.0f64; k];
        let mut outcome: Vec<Option<MemberServe>> = vec![None; k];
        let mut total: f64 = 0.0; // Σ_e a_{re}, frozen + growing
        let mut large_mode: Option<(Option<FacilityId>, PointId, bool)> = None; // (existing, open-at, is_open)
        loop {
            let unserved: Vec<usize> = (0..k).filter(|&i| outcome[i].is_none()).collect();
            let u = unserved.len();
            if u == 0 {
                break;
            }
            // Next event distance.
            let mut delta = f64::INFINITY;
            for &i in &unserved {
                delta = delta.min(t1[i] - a[i]).min(t3[i] - a[i]);
            }
            delta = delta
                .min((t2 - total) / u as f64)
                .min((t4 - total) / u as f64);
            debug_assert!(delta.is_finite(), "t3/t4 are always finite");
            let delta = delta.max(0.0);
            for &i in &unserved {
                a[i] += delta;
            }
            total += delta * u as f64;

            // Priority: large-connect, large-open, small-connect, small-open.
            if tight(total, t2) {
                large_mode = Some((t2_fac, PointId(0), false));
                break;
            }
            if tight(total, t4) {
                large_mode = Some((None, t4_loc, true));
                break;
            }
            let mut progressed = false;
            for &i in &unserved {
                if outcome[i].is_none() && tight(a[i], t1[i]) {
                    outcome[i] = Some(MemberServe::Existing(
                        t1_fac[i].expect("finite t1 implies a facility"),
                    ));
                    progressed = true;
                }
            }
            for &i in &unserved {
                if outcome[i].is_none() && tight(a[i], t3[i]) {
                    outcome[i] = Some(MemberServe::Temp(t3_loc[i]));
                    progressed = true;
                }
            }
            debug_assert!(progressed, "event loop must make progress each iteration");
            if !progressed {
                // Defensive: force the cheapest pending target to fire so a
                // floating-point corner cannot hang the loop.
                let (&i, _) = unserved
                    .iter()
                    .zip(std::iter::repeat(()))
                    .min_by(|(&x, _), (&y, _)| {
                        let vx = t1[x].min(t3[x]) - a[x];
                        let vy = t1[y].min(t3[y]) - a[y];
                        vx.partial_cmp(&vy).expect("finite")
                    })
                    .expect("unserved non-empty");
                outcome[i] = Some(if t1[i] <= t3[i] {
                    MemberServe::Existing(t1_fac[i].expect("finite t1"))
                } else {
                    MemberServe::Temp(t3_loc[i])
                });
            }
        }

        // Realize the outcome.
        let start_con = self.sol.construction_cost();
        let mut opened = Vec::new();
        let (assigned, served_by_large) = match large_mode {
            Some((Some(fid), _, false)) => (vec![fid], true),
            Some((_, at, true)) => {
                let fid =
                    self.sol
                        .open_facility(self.inst, at, CommoditySet::full(self.inst.universe()));
                self.large_facs.push(fid);
                opened.push(fid);
                self.post_open_large(at);
                (vec![fid], true)
            }
            Some((None, _, false)) => unreachable!("large-connect requires a facility"),
            None => {
                // Small mode: open all temporary facilities, collect targets.
                let mut fids = Vec::with_capacity(k);
                for (i, &e) in members.iter().enumerate() {
                    match outcome[i].expect("all members served") {
                        MemberServe::Existing(fid) => fids.push(fid),
                        MemberServe::Temp(at) => {
                            let config = CommoditySet::singleton(self.inst.universe(), e)
                                .map_err(CoreError::Commodity)?;
                            let fid = self.sol.open_facility(self.inst, at, config);
                            self.small_by_e[e.index()].push(fid);
                            opened.push(fid);
                            self.post_open_small(e, at);
                            fids.push(fid);
                        }
                    }
                }
                (fids, false)
            }
        };
        let assignment = self.sol.assign(self.inst, request.clone(), &assigned);
        let connection_cost = assignment.connection_cost;
        let assigned_to = assignment.facilities.clone();

        // Freeze duals into the bid matrices (after openings, so caps see
        // the new facility sets).
        self.freeze(request, &members, &a);

        Ok(ServeOutcome {
            opened,
            assigned_to,
            connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "pd-omflp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::run_online_verified;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn single_point_inst(s: u16) -> Instance {
        Instance::new(
            Box::new(LineMetric::single_point()),
            s,
            CostModel::ceil_sqrt(s),
        )
        .unwrap()
    }

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn first_request_opens_small_facility() {
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        let out = alg.serve(&req(&inst, 0, &[3])).unwrap();
        assert_eq!(out.opened.len(), 1);
        assert!(!out.served_by_large);
        assert_eq!(alg.solution().num_small_facilities(), 1);
        // Small facility cost under ceil-sqrt is 1; zero distance.
        assert!((alg.solution().total_cost() - 1.0).abs() < 1e-9);
        // The dual reached f^{e}_m = 1.
        assert!((alg.past_requests()[0].duals[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem2_gadget_switches_to_large_facility() {
        // |S| = 16, sqrt = 4, g(σ) = ceil(|σ|/4): distinct singleton requests
        // on one point. PD opens small facilities until the accumulated bids
        // pay for the large facility (f^S = 4), then switches; afterwards
        // everything is served for free.
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        for e in 0..16u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        alg.solution().verify(&inst).unwrap();
        assert_eq!(
            alg.solution().num_large_facilities(),
            1,
            "exactly one large facility must open"
        );
        let smalls = alg.solution().num_small_facilities();
        assert!(
            (3..=5).contains(&smalls),
            "≈√S small facilities before the switch, got {smalls}"
        );
        // Total cost ≈ smalls·1 + 4; OPT for all of S is 4 ⇒ ratio O(1)·√S-ish.
        let cost = alg.solution().total_cost();
        assert!(cost <= 10.0, "cost {cost} should be ≈ √S + f^S");
    }

    #[test]
    fn served_by_large_after_large_exists() {
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        for e in 0..16u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        // A fresh request is served by the (distance 0) large facility with
        // zero dual growth.
        let out = alg.serve(&req(&inst, 0, &[0, 5, 9])).unwrap();
        assert!(out.served_by_large);
        assert!(out.opened.is_empty());
        assert_eq!(out.connection_cost, 0.0);
    }

    #[test]
    fn connect_to_existing_small_facility_when_close() {
        // Two points at distance 0.1; singleton cost is 5. The second
        // request should connect (paying 0.1) rather than open (paying 5).
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 0.1]).unwrap()),
            4,
            CostModel::power(4, 1.0, 5.0),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        alg.serve(&req(&inst, 0, &[2])).unwrap();
        let before = alg.solution().facilities().len();
        let out = alg.serve(&req(&inst, 1, &[2])).unwrap();
        assert_eq!(alg.solution().facilities().len(), before, "no new facility");
        assert!((out.connection_cost - 0.1).abs() < 1e-9);
    }

    #[test]
    fn multi_commodity_request_is_fully_covered() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 2.0, 5.0]).unwrap()),
            6,
            CostModel::power(6, 1.0, 1.5),
        )
        .unwrap();
        let reqs = vec![
            req(&inst, 0, &[0, 1]),
            req(&inst, 1, &[1, 2, 3]),
            req(&inst, 2, &[0, 4, 5]),
            req(&inst, 1, &[0, 1, 2, 3, 4, 5]),
        ];
        let mut alg = PdOmflp::new(&inst);
        run_online_verified(&mut alg, &inst, &reqs).unwrap();
        assert_eq!(alg.solution().num_requests(), 4);
    }

    #[test]
    fn corollary8_cost_at_most_three_dual_sums() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(8, 10.0).unwrap()),
            8,
            CostModel::power(8, 1.0, 2.0),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        let mut reqs = Vec::new();
        for i in 0..20u32 {
            let loc = (i * 3) % 8;
            let ids = [(i % 8) as u16, ((i * 5 + 1) % 8) as u16];
            reqs.push(req(&inst, loc, &ids));
        }
        run_online_verified(&mut alg, &inst, &reqs).unwrap();
        let cost = alg.solution().total_cost();
        assert!(
            cost <= 3.0 * alg.dual_sum() + 1e-6,
            "Corollary 8 violated: cost {cost} > 3·Σa = {}",
            3.0 * alg.dual_sum()
        );
    }

    #[test]
    fn dual_lower_bound_is_positive_and_below_cost() {
        let inst = single_point_inst(16);
        let mut alg = PdOmflp::new(&inst);
        for e in 0..8u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        let lb = alg.scaled_dual_lower_bound();
        assert!(lb > 0.0);
        assert!(lb <= alg.solution().total_cost() + 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(5, 4.0).unwrap()),
            5,
            CostModel::power(5, 1.0, 1.0),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..12u32)
            .map(|i| req(&inst, i % 5, &[(i % 5) as u16, ((i + 2) % 5) as u16]))
            .collect();
        let run = |_| {
            let mut alg = PdOmflp::new(&inst);
            for r in &reqs {
                alg.serve(r).unwrap();
            }
            (
                alg.solution().total_cost(),
                alg.solution().facilities().len(),
                alg.dual_sum(),
            )
        };
        assert_eq!(run(0), run(1));
    }
}
