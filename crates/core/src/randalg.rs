//! RAND-OMFLP — the randomized online algorithm (Algorithm 2, paper §4),
//! `O(√|S| · log n / log log n)`-competitive in expectation.
//!
//! # Cost classes
//!
//! For a configuration `τ` (here: each singleton `{e}` and the full set `S`),
//! the distinct values of `f^τ_m` rounded *down* to powers of two form the
//! classes `C^τ_1 < C^τ_2 < …`; class `i` owns the locations whose rounded
//! cost is `C^τ_i`, and `d(C^τ_i, r)` is the distance from `r` to the nearest
//! such location. Rounding costs the competitive ratio at most a factor 2
//! (paper §4.1).
//!
//! # Budgets and probabilities
//!
//! On arrival of `r`:
//!
//! * `X(r,e) = min( d(F(e), r), min_i (C^{e}_i + d(C^{e}_i, r)) )` — the
//!   cheapest way to serve `e` with small facilities;
//! * `X(r) = Σ_{e∈sr} X(r,e)`; `Z(r)` is the analogous large-facility value;
//! * for every class `i` and `e ∈ sr`, a small facility `{e}` opens at the
//!   class-`i` point nearest `r` with probability
//!   `(d(C^{e}_{i−1},r) − d(C^{e}_i,r)) / C^{e}_i · X(r,e)/X(r)`, where
//!   `d(C^{e}_0, r) := min(X(r), Z(r))`;
//! * a large facility of class `i` opens at the nearest class-`i` point with
//!   probability `(d(C^{S}_{i−1},r) − d(C^{S}_i,r)) / C^{S}_i`.
//!
//! # Feasibility fallback (documented deviation)
//!
//! Algorithm 2 specifies opening probabilities but leaves the service
//! guarantee implicit (in Meyerson's single-commodity ancestor the first
//! request opens with probability `min(1, d/f) = 1`). We clamp all
//! probabilities into `[0, 1]` and, after the coin flips, serve the request
//! as cheaply as possible with open facilities; if some demanded commodity
//! is not offered anywhere, we execute the deterministic plan realizing
//! `min{X(r), Z(r)}` (open the arg-min small facilities when `X ≤ Z`,
//! else the arg-min large facility). This adds at most `min{X, Z}` — the
//! quantity the analysis already charges per request — so the expected cost
//! changes by at most a constant factor. See DESIGN.md §4.

use crate::algorithm::{OnlineAlgorithm, ServeOutcome};
use crate::index::FacilityIndex;
use crate::instance::Instance;
use crate::request::Request;
use crate::solution::{FacilityId, Solution};
use crate::CoreError;
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_metric::PointId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One cost class: a rounded cost value and the locations in the class.
#[derive(Debug, Clone)]
struct CostClass {
    /// `C_i`: the cost rounded down to a power of two.
    cost: f64,
    /// Locations whose rounded cost equals `cost`.
    points: Vec<PointId>,
}

/// Builds the ascending class list for a cost vector (one entry per point).
fn build_classes(costs: &[f64]) -> Vec<CostClass> {
    let mut rounded: Vec<(f64, u32)> = costs
        .iter()
        .enumerate()
        .map(|(p, &c)| {
            debug_assert!(c > 0.0, "facility costs must be positive");
            (pow2_round_down(c), p as u32)
        })
        .collect();
    rounded.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut classes: Vec<CostClass> = Vec::new();
    for (c, p) in rounded {
        match classes.last_mut() {
            Some(cl) if cl.cost == c => cl.points.push(PointId(p)),
            _ => classes.push(CostClass {
                cost: c,
                points: vec![PointId(p)],
            }),
        }
    }
    classes
}

/// Largest power of two `≤ x` (for positive finite `x`).
fn pow2_round_down(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite());
    2f64.powi(x.log2().floor() as i32)
}

/// The plan that realizes a budget value: connect to an open facility or
/// open at a specific location.
#[derive(Debug, Clone, Copy)]
enum Plan {
    /// An open facility already realizes the budget; nothing to open.
    Connect,
    /// Open at this location to realize the budget.
    Open(PointId),
}

/// The randomized algorithm RAND-OMFLP.
pub struct RandOmflp<'a, R: Rng = StdRng> {
    inst: &'a Instance,
    rng: R,
    sol: Solution,
    /// Classes for each singleton configuration `{e}`.
    small_classes: Vec<Vec<CostClass>>,
    /// Classes for the full configuration `S`.
    large_classes: Vec<CostClass>,
    /// Nearest-open-facility caches (see [`crate::index`]), refreshed once
    /// per opening instead of scanned per query.
    index: FacilityIndex,
    fallback_opens: usize,
}

impl<'a> RandOmflp<'a, StdRng> {
    /// Creates the algorithm with a seeded [`StdRng`] (experiments must be
    /// reproducible, so there is deliberately no entropy-seeded constructor).
    pub fn new(inst: &'a Instance, seed: u64) -> Self {
        Self::with_rng(inst, StdRng::seed_from_u64(seed))
    }
}

impl<'a, R: Rng> RandOmflp<'a, R> {
    /// Creates the algorithm with an explicit RNG.
    pub fn with_rng(inst: &'a Instance, rng: R) -> Self {
        let m = inst.num_points();
        let s = inst.num_commodities();
        let mut small_classes = Vec::with_capacity(s);
        let mut costs = vec![0.0; m];
        for e in 0..s {
            for (p, c) in costs.iter_mut().enumerate() {
                *c = inst.small_cost(PointId(p as u32), CommodityId(e as u16));
            }
            small_classes.push(build_classes(&costs));
        }
        for (p, c) in costs.iter_mut().enumerate() {
            *c = inst.large_cost(PointId(p as u32));
        }
        let large_classes = build_classes(&costs);
        Self {
            inst,
            rng,
            sol: Solution::new(),
            small_classes,
            large_classes,
            index: FacilityIndex::new(m, s),
            fallback_opens: 0,
        }
    }

    /// Number of requests that needed the deterministic feasibility fallback.
    pub fn fallback_opens(&self) -> usize {
        self.fallback_opens
    }

    fn nearest_in(&self, points: &[PointId], from: PointId) -> (PointId, f64) {
        debug_assert!(!points.is_empty());
        let mut best = (points[0], self.inst.distance(from, points[0]));
        for &p in &points[1..] {
            let d = self.inst.distance(from, p);
            if d < best.1 {
                best = (p, d);
            }
        }
        best
    }

    fn nearest_offering(&self, e: CommodityId, from: PointId) -> Option<(FacilityId, f64)> {
        self.index.nearest_offering(e, from)
    }

    fn nearest_large(&self, from: PointId) -> Option<(FacilityId, f64)> {
        self.index.nearest_large(from)
    }

    /// Budget `X(r,e)` (or `Z(r)` when `classes` are the large classes):
    /// value, realizing plan, and the per-class distances `d(C_i, r)`.
    fn budget(
        &self,
        classes: &[CostClass],
        existing: Option<(FacilityId, f64)>,
        from: PointId,
    ) -> (f64, Plan, Vec<(PointId, f64)>) {
        let mut class_near = Vec::with_capacity(classes.len());
        let mut best_open = f64::INFINITY;
        let mut best_open_at = PointId(0);
        for cl in classes {
            let (p, d) = self.nearest_in(&cl.points, from);
            class_near.push((p, d));
            if cl.cost + d < best_open {
                best_open = cl.cost + d;
                best_open_at = p;
            }
        }
        match existing {
            Some((_, d)) if d <= best_open => (d, Plan::Connect, class_near),
            _ => (best_open, Plan::Open(best_open_at), class_near),
        }
    }

    fn open_small(&mut self, e: CommodityId, at: PointId, opened: &mut Vec<FacilityId>) {
        let config = CommoditySet::singleton(self.inst.universe(), e)
            .expect("commodity in instance universe");
        let fid = self.sol.open_facility(self.inst, at, config);
        self.index.note_small_opening(self.inst, e, at, fid);
        opened.push(fid);
    }

    fn open_large(&mut self, at: PointId, opened: &mut Vec<FacilityId>) {
        let fid = self
            .sol
            .open_facility(self.inst, at, CommoditySet::full(self.inst.universe()));
        self.index.note_large_opening(self.inst, at, fid);
        opened.push(fid);
    }
}

impl<R: Rng> OnlineAlgorithm for RandOmflp<'_, R> {
    fn serve(&mut self, request: &Request) -> Result<ServeOutcome, CoreError> {
        request.validate(self.inst)?;
        let loc = request.location();
        let members: Vec<CommodityId> = request.demand().iter().collect();

        // Budgets.
        let mut x_parts = Vec::with_capacity(members.len());
        let mut x_total = 0.0;
        for &e in &members {
            let existing = self.nearest_offering(e, loc);
            let (v, plan, near) = self.budget(&self.small_classes[e.index()], existing, loc);
            x_total += v;
            x_parts.push((v, plan, near));
        }
        let (z, z_plan, z_near) = self.budget(&self.large_classes, self.nearest_large(loc), loc);
        let d0 = x_total.min(z);

        // Coin flips. Class 0's "distance" is the virtual d(C_0, r) = d0.
        let start_con = self.sol.construction_cost();
        let mut opened = Vec::new();
        for (i, &e) in members.iter().enumerate() {
            let (_, _, ref near) = x_parts[i];
            let share = if x_total > 0.0 {
                x_parts[i].0 / x_total
            } else {
                0.0
            };
            if share == 0.0 {
                continue;
            }
            let mut prev_d = d0;
            // Borrow checker: snapshot (cost, point, dist) triples first.
            let flips: Vec<(f64, PointId, f64)> = self.small_classes[e.index()]
                .iter()
                .zip(near)
                .map(|(cl, &(p, d))| (cl.cost, p, d))
                .collect();
            for (cost, p, d) in flips {
                let pr = ((prev_d - d) / cost * share).clamp(0.0, 1.0);
                if pr > 0.0 && self.rng.gen::<f64>() < pr {
                    self.open_small(e, p, &mut opened);
                }
                prev_d = d;
            }
        }
        {
            let mut prev_d = d0;
            let flips: Vec<(f64, PointId, f64)> = self
                .large_classes
                .iter()
                .zip(&z_near)
                .map(|(cl, &(p, d))| (cl.cost, p, d))
                .collect();
            for (cost, p, d) in flips {
                let pr = ((prev_d - d) / cost).clamp(0.0, 1.0);
                if pr > 0.0 && self.rng.gen::<f64>() < pr {
                    self.open_large(p, &mut opened);
                }
                prev_d = d;
            }
        }

        // Serve as cheaply as possible; fall back to the deterministic plan
        // for commodities no open facility offers.
        let mut missing: Vec<usize> = (0..members.len())
            .filter(|&i| self.nearest_offering(members[i], loc).is_none())
            .collect();
        if !missing.is_empty() {
            self.fallback_opens += 1;
            if x_total <= z {
                for &i in &missing {
                    match x_parts[i].1 {
                        Plan::Open(at) => self.open_small(members[i], at, &mut opened),
                        // A Connect plan means a facility existed at budget
                        // time; it still exists now.
                        Plan::Connect => {}
                    }
                }
            } else {
                match z_plan {
                    Plan::Open(at) => self.open_large(at, &mut opened),
                    Plan::Connect => {}
                }
            }
            missing.clear();
        }
        debug_assert!(missing.is_empty());

        let mut assigned = Vec::with_capacity(members.len());
        let mut all_via_large = true;
        for &e in &members {
            let (fid, _) = self
                .nearest_offering(e, loc)
                .expect("fallback guarantees coverage");
            let is_large =
                self.sol.facilities()[fid.index()].config.len() == self.inst.num_commodities();
            all_via_large &= is_large;
            assigned.push(fid);
        }
        let assignment = self.sol.assign(self.inst, request.clone(), &assigned);
        let served_by_large = all_via_large && assignment.facilities.len() == 1;

        Ok(ServeOutcome {
            opened,
            assigned_to: assignment.facilities.clone(),
            connection_cost: assignment.connection_cost,
            construction_cost: self.sol.construction_cost() - start_con,
            served_by_large,
        })
    }

    fn solution(&self) -> &Solution {
        &self.sol
    }

    fn name(&self) -> &'static str {
        "rand-omflp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::run_online_verified;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(pow2_round_down(1.0), 1.0);
        assert_eq!(pow2_round_down(1.9), 1.0);
        assert_eq!(pow2_round_down(2.0), 2.0);
        assert_eq!(pow2_round_down(5.0), 4.0);
        assert_eq!(pow2_round_down(0.7), 0.5);
    }

    #[test]
    fn classes_group_by_rounded_cost() {
        // Costs 1.0, 1.5, 3.0, 4.0 -> classes {1: [p0, p1], 2: [p2], 4: [p3]}.
        let classes = build_classes(&[1.0, 1.5, 3.0, 4.0]);
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].cost, 1.0);
        assert_eq!(classes[0].points, vec![PointId(0), PointId(1)]);
        assert_eq!(classes[1].cost, 2.0);
        assert_eq!(classes[2].cost, 4.0);
    }

    #[test]
    fn first_request_is_always_served() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            16,
            CostModel::ceil_sqrt(16),
        )
        .unwrap();
        for seed in 0..20 {
            let mut alg = RandOmflp::new(&inst, seed);
            let out = alg.serve(&req(&inst, 0, &[2])).unwrap();
            assert!(!out.assigned_to.is_empty());
            alg.solution().verify(&inst).unwrap();
        }
    }

    #[test]
    fn always_feasible_on_random_mixed_workload() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(6, 12.0).unwrap()),
            8,
            CostModel::power(8, 1.0, 2.0),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..40u32)
            .map(|i| {
                req(
                    &inst,
                    (i * 7 + 1) % 6,
                    &[(i % 8) as u16, ((i * 3 + 1) % 8) as u16],
                )
            })
            .collect();
        for seed in [1u64, 7, 42] {
            let mut alg = RandOmflp::new(&inst, seed);
            run_online_verified(&mut alg, &inst, &reqs).unwrap();
            assert_eq!(alg.solution().num_requests(), 40);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(4, 5.0).unwrap()),
            4,
            CostModel::power(4, 1.0, 1.0),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..15u32)
            .map(|i| req(&inst, i % 4, &[(i % 4) as u16]))
            .collect();
        let run = |seed| {
            let mut alg = RandOmflp::new(&inst, seed);
            for r in &reqs {
                alg.serve(r).unwrap();
            }
            (
                alg.solution().total_cost(),
                alg.solution().facilities().len(),
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn theorem2_gadget_expected_cost_near_sqrt_s() {
        // |S| = 64, one point: singleton requests. Expected ALG cost should
        // be Θ(√S) = Θ(8): ≈ 8 small facilities plus one large (cost 8)
        // opened with probability ~1/8 per request.
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            64,
            CostModel::ceil_sqrt(64),
        )
        .unwrap();
        let mut total = 0.0;
        let trials = 30;
        for seed in 0..trials {
            let mut alg = RandOmflp::new(&inst, seed);
            for e in 0..8u16 {
                alg.serve(&req(&inst, 0, &[e])).unwrap();
            }
            alg.solution().verify(&inst).unwrap();
            total += alg.solution().total_cost();
        }
        let mean = total / trials as f64;
        // OPT = 1; the lower bound says any algorithm pays Ω(√S) = Ω(8)·OPT
        // here in expectation over the adversary's S'. With the fixed
        // commodity set 0..8, cost must be within a small constant of 8.
        assert!(
            (4.0..40.0).contains(&mean),
            "expected Θ(√S) = Θ(8), got mean {mean}"
        );
    }

    #[test]
    fn large_facility_eventually_serves_everything_on_point() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            16,
            CostModel::ceil_sqrt(16),
        )
        .unwrap();
        let mut alg = RandOmflp::new(&inst, 3);
        // Request each commodity several times: once enough mass flows,
        // either smalls cover all of 0..16 or a large opened; later requests
        // must be free (distance 0, everything covered).
        for round in 0..4 {
            for e in 0..16u16 {
                alg.serve(&req(&inst, 0, &[e])).unwrap();
            }
            let _ = round;
        }
        let cost_before = alg.solution().total_cost();
        let out = alg.serve(&req(&inst, 0, &[0, 7, 15])).unwrap();
        assert_eq!(out.construction_cost, 0.0);
        assert_eq!(out.connection_cost, 0.0);
        assert_eq!(alg.solution().total_cost(), cost_before);
    }
}
