//! Requests: a location plus a demanded commodity set (paper §1.1).

use crate::{instance::Instance, CoreError};
use omfl_commodity::CommoditySet;
use omfl_metric::PointId;

/// Index of a request in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The request index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single online request `r` at a point demanding `sr ⊆ S`.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    location: PointId,
    demand: CommoditySet,
}

impl Request {
    /// Creates a request. Panics if the demand is empty — the model requires
    /// `sr ≠ ∅`; use [`Request::try_new`] for fallible construction.
    pub fn new(location: PointId, demand: CommoditySet) -> Self {
        Self::try_new(location, demand).expect("request demand must be non-empty")
    }

    /// Fallible constructor: rejects empty demands.
    pub fn try_new(location: PointId, demand: CommoditySet) -> Result<Self, CoreError> {
        if demand.is_empty() {
            return Err(CoreError::BadRequest(
                "request must demand at least one commodity".into(),
            ));
        }
        Ok(Self { location, demand })
    }

    /// Where the request appears.
    #[inline]
    pub fn location(&self) -> PointId {
        self.location
    }

    /// The demanded commodity set `sr`.
    #[inline]
    pub fn demand(&self) -> &CommoditySet {
        &self.demand
    }

    /// Validates the request against an instance (point range, universe).
    pub fn validate(&self, inst: &Instance) -> Result<(), CoreError> {
        inst.check_point(self.location)?;
        if self.demand.universe_size() != inst.universe().size() {
            return Err(CoreError::BadRequest(format!(
                "request demand universe {} does not match instance universe {}",
                self.demand.universe_size(),
                inst.universe().size()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::cost::CostModel;
    use omfl_commodity::Universe;
    use omfl_metric::line::LineMetric;

    #[test]
    fn empty_demand_rejected() {
        let u = Universe::new(3).unwrap();
        let err = Request::try_new(PointId(0), CommoditySet::empty(u)).unwrap_err();
        assert!(matches!(err, CoreError::BadRequest(_)));
    }

    #[test]
    fn validate_against_instance() {
        let inst = Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 1.0),
        )
        .unwrap();
        let u = inst.universe();
        let ok = Request::new(PointId(1), CommoditySet::from_ids(u, &[0, 2]).unwrap());
        ok.validate(&inst).unwrap();

        let bad_point = Request::new(PointId(5), CommoditySet::from_ids(u, &[0]).unwrap());
        assert!(bad_point.validate(&inst).is_err());

        let other_u = Universe::new(4).unwrap();
        let bad_universe = Request::new(PointId(0), CommoditySet::from_ids(other_u, &[0]).unwrap());
        assert!(bad_universe.validate(&inst).is_err());
    }

    #[test]
    fn accessors() {
        let u = Universe::new(3).unwrap();
        let r = Request::new(PointId(2), CommoditySet::from_ids(u, &[1]).unwrap());
        assert_eq!(r.location(), PointId(2));
        assert_eq!(r.demand().len(), 1);
        assert_eq!(RequestId(4).index(), 4);
    }
}
