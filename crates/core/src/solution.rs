//! Solutions: opened facilities plus request assignments, with independent
//! cost accounting and feasibility verification.
//!
//! Per the paper's cost model (§1.1), the connection cost of a request is the
//! sum of distances to the *distinct facilities* it is connected to — if two
//! demanded commodities are served by the same facility, that distance is
//! paid once; if two different facilities happen to share a point, it is
//! paid twice.

use crate::{instance::Instance, request::Request, CoreError, EPS};
use omfl_commodity::CommoditySet;
use omfl_metric::PointId;

/// Identifier of an opened facility, dense in opening order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FacilityId(pub u32);

impl FacilityId {
    /// The facility index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An opened facility: location + configuration + the construction cost paid.
#[derive(Debug, Clone)]
pub struct Facility {
    /// Dense id in opening order.
    pub id: FacilityId,
    /// Location `m ∈ M`.
    pub location: PointId,
    /// Offered configuration `σ ⊆ S`.
    pub config: CommoditySet,
    /// Construction cost `f^σ_m` paid when opening.
    pub cost: f64,
    /// Index of the request whose arrival triggered the opening.
    pub opened_at: usize,
}

/// One request together with the facilities serving it.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The request as it arrived.
    pub request: Request,
    /// Distinct facilities the request is connected to.
    pub facilities: Vec<FacilityId>,
    /// Connection cost: `Σ d(r, facility)` over `facilities`.
    pub connection_cost: f64,
}

/// A (partial or complete) OMFLP solution under construction by an online
/// algorithm, or produced by an offline solver.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    facilities: Vec<Facility>,
    assignments: Vec<Assignment>,
    construction_cost: f64,
    connection_cost: f64,
}

impl Solution {
    /// An empty solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a facility, paying `inst.facility_cost`. Returns its id.
    pub fn open_facility(
        &mut self,
        inst: &Instance,
        location: PointId,
        config: CommoditySet,
    ) -> FacilityId {
        let cost = inst.facility_cost(location, &config);
        let id = FacilityId(self.facilities.len() as u32);
        self.construction_cost += cost;
        self.facilities.push(Facility {
            id,
            location,
            config,
            cost,
            opened_at: self.assignments.len(),
        });
        id
    }

    /// Records the assignment of `request` to `facilities` (deduplicated
    /// here; order is preserved for the first occurrence of each id) and
    /// accumulates the connection cost.
    pub fn assign(
        &mut self,
        inst: &Instance,
        request: Request,
        facilities: &[FacilityId],
    ) -> &Assignment {
        let mut dedup: Vec<FacilityId> = Vec::with_capacity(facilities.len());
        for &f in facilities {
            if !dedup.contains(&f) {
                dedup.push(f);
            }
        }
        let connection_cost: f64 = dedup
            .iter()
            .map(|f| inst.distance(request.location(), self.facilities[f.index()].location))
            .sum();
        self.connection_cost += connection_cost;
        self.assignments.push(Assignment {
            request,
            facilities: dedup,
            connection_cost,
        });
        self.assignments.last().expect("just pushed")
    }

    /// All opened facilities in opening order.
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }

    /// All assignments in arrival order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Total construction cost paid so far.
    pub fn construction_cost(&self) -> f64 {
        self.construction_cost
    }

    /// Total connection cost paid so far.
    pub fn connection_cost(&self) -> f64 {
        self.connection_cost
    }

    /// Construction + connection cost.
    pub fn total_cost(&self) -> f64 {
        self.construction_cost + self.connection_cost
    }

    /// Number of requests served.
    pub fn num_requests(&self) -> usize {
        self.assignments.len()
    }

    /// Number of *small* facilities (single-commodity configurations).
    pub fn num_small_facilities(&self) -> usize {
        self.facilities
            .iter()
            .filter(|f| f.config.len() == 1)
            .count()
    }

    /// Number of *large* facilities (full-universe configurations).
    pub fn num_large_facilities(&self) -> usize {
        let s = self
            .facilities
            .first()
            .map(|f| f.config.universe_size() as usize);
        match s {
            Some(full) => self
                .facilities
                .iter()
                .filter(|f| f.config.len() == full)
                .count(),
            None => 0,
        }
    }

    /// Verifies feasibility and cost accounting from first principles:
    ///
    /// 1. every facility's recorded cost equals `f^σ_m` and `σ ≠ ∅`;
    /// 2. every request's demand is covered by the union of its assigned
    ///    facilities' configurations;
    /// 3. per-assignment connection costs and the running totals match a
    ///    from-scratch recomputation.
    pub fn verify(&self, inst: &Instance) -> Result<(), CoreError> {
        let mut construction = 0.0;
        for f in &self.facilities {
            inst.check_point(f.location)?;
            if f.config.is_empty() {
                return Err(CoreError::Infeasible(format!(
                    "facility {:?} has an empty configuration",
                    f.id
                )));
            }
            let c = inst.facility_cost(f.location, &f.config);
            if (c - f.cost).abs() > EPS * (1.0 + c.abs()) {
                return Err(CoreError::Infeasible(format!(
                    "facility {:?} recorded cost {} but f^σ_m = {c}",
                    f.id, f.cost
                )));
            }
            construction += c;
        }
        let mut connection = 0.0;
        for (i, a) in self.assignments.iter().enumerate() {
            a.request.validate(inst)?;
            let mut covered = CommoditySet::empty(inst.universe());
            let mut cc = 0.0;
            let mut seen: Vec<FacilityId> = Vec::with_capacity(a.facilities.len());
            for &fid in &a.facilities {
                if fid.index() >= self.facilities.len() {
                    return Err(CoreError::Infeasible(format!(
                        "assignment {i} references unknown facility {fid:?}"
                    )));
                }
                if seen.contains(&fid) {
                    return Err(CoreError::Infeasible(format!(
                        "assignment {i} references facility {fid:?} twice"
                    )));
                }
                seen.push(fid);
                let f = &self.facilities[fid.index()];
                covered
                    .union_with(&f.config)
                    .map_err(CoreError::Commodity)?;
                cc += inst.distance(a.request.location(), f.location);
            }
            if !a.request.demand().is_subset_of(&covered) {
                return Err(CoreError::Infeasible(format!(
                    "assignment {i}: demand {:?} not covered by assigned facilities (covered {:?})",
                    a.request.demand(),
                    covered
                )));
            }
            if (cc - a.connection_cost).abs() > EPS * (1.0 + cc.abs()) {
                return Err(CoreError::Infeasible(format!(
                    "assignment {i}: recorded connection cost {} but recomputed {cc}",
                    a.connection_cost
                )));
            }
            connection += cc;
        }
        if (construction - self.construction_cost).abs() > EPS * (1.0 + construction.abs()) {
            return Err(CoreError::Infeasible(format!(
                "construction total {} does not match recomputed {construction}",
                self.construction_cost
            )));
        }
        if (connection - self.connection_cost).abs() > EPS * (1.0 + connection.abs()) {
            return Err(CoreError::Infeasible(format!(
                "connection total {} does not match recomputed {connection}",
                self.connection_cost
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn inst() -> Instance {
        Instance::new(
            Box::new(LineMetric::new(vec![0.0, 1.0, 3.0]).unwrap()),
            3,
            CostModel::power(3, 1.0, 2.0),
        )
        .unwrap()
    }

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn open_and_assign_accumulate_costs() {
        let inst = inst();
        let mut sol = Solution::new();
        let u = inst.universe();
        let f0 = sol.open_facility(&inst, PointId(0), CommoditySet::from_ids(u, &[0]).unwrap());
        let f1 = sol.open_facility(
            &inst,
            PointId(2),
            CommoditySet::from_ids(u, &[1, 2]).unwrap(),
        );
        assert!((sol.construction_cost() - (2.0 + 2.0 * 2f64.sqrt())).abs() < 1e-12);

        sol.assign(&inst, req(&inst, 1, &[0, 1]), &[f0, f1]);
        // d(1, 0) + d(1, 2) = 1 + 2 = 3.
        assert!((sol.connection_cost() - 3.0).abs() < 1e-12);
        sol.verify(&inst).unwrap();
    }

    #[test]
    fn duplicate_facility_ids_are_deduped_in_assignment() {
        let inst = inst();
        let mut sol = Solution::new();
        let u = inst.universe();
        let f = sol.open_facility(&inst, PointId(0), CommoditySet::full(u));
        let a = sol.assign(&inst, req(&inst, 2, &[0, 1, 2]), &[f, f, f]);
        assert_eq!(a.facilities.len(), 1);
        assert!((a.connection_cost - 3.0).abs() < 1e-12);
        sol.verify(&inst).unwrap();
    }

    #[test]
    fn two_facilities_same_point_pay_twice() {
        let inst = inst();
        let mut sol = Solution::new();
        let u = inst.universe();
        let f0 = sol.open_facility(&inst, PointId(0), CommoditySet::from_ids(u, &[0]).unwrap());
        let f1 = sol.open_facility(&inst, PointId(0), CommoditySet::from_ids(u, &[1]).unwrap());
        let a = sol.assign(&inst, req(&inst, 1, &[0, 1]), &[f0, f1]);
        assert!(
            (a.connection_cost - 2.0).abs() < 1e-12,
            "distance paid per facility"
        );
        sol.verify(&inst).unwrap();
    }

    #[test]
    fn verify_catches_uncovered_demand() {
        let inst = inst();
        let mut sol = Solution::new();
        let u = inst.universe();
        let f = sol.open_facility(&inst, PointId(0), CommoditySet::from_ids(u, &[0]).unwrap());
        sol.assign(&inst, req(&inst, 0, &[0, 1]), &[f]);
        let err = sol.verify(&inst).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible(_)));
    }

    #[test]
    fn facility_counters() {
        let inst = inst();
        let mut sol = Solution::new();
        let u = inst.universe();
        sol.open_facility(&inst, PointId(0), CommoditySet::from_ids(u, &[0]).unwrap());
        sol.open_facility(&inst, PointId(1), CommoditySet::full(u));
        sol.open_facility(
            &inst,
            PointId(2),
            CommoditySet::from_ids(u, &[1, 2]).unwrap(),
        );
        assert_eq!(sol.num_small_facilities(), 1);
        assert_eq!(sol.num_large_facilities(), 1);
        assert_eq!(sol.facilities().len(), 3);
    }

    #[test]
    fn empty_solution_verifies() {
        let inst = inst();
        let sol = Solution::new();
        sol.verify(&inst).unwrap();
        assert_eq!(sol.total_cost(), 0.0);
        assert_eq!(sol.num_requests(), 0);
        assert_eq!(sol.num_large_facilities(), 0);
    }
}
