//! The §1.1 "different cost model" reduction.
//!
//! The paper's primary model counts the connection cost to a facility once
//! per request, even when the facility serves several of its commodities.
//! The alternative model charges per served commodity; the paper observes it
//! "can be easily simulated in our model by replacing each request with
//! `sr ⊆ S` by `|sr|` many requests demanding a single commodity", growing
//! the sequence by at most a factor `|S|` and the competitive ratio by at
//! most a factor 2 when `|S|` is polynomial in `n`.
//!
//! [`split_into_singletons`] performs exactly that transform; the
//! `model-split` experiment measures the resulting cost inflation.

use crate::request::Request;

/// Replaces every request by `|sr|` singleton requests at the same location,
/// preserving arrival order (commodities of one request stay adjacent, in
/// ascending commodity order).
pub fn split_into_singletons(requests: &[Request]) -> Vec<Request> {
    let mut out = Vec::with_capacity(requests.len());
    for r in requests {
        let u = omfl_commodity::Universe::new(r.demand().universe_size())
            .expect("request demands live in a non-empty universe");
        for e in r.demand().iter() {
            let s = omfl_commodity::CommoditySet::singleton(u, e)
                .expect("member of the demand is in range");
            out.push(Request::new(r.location(), s));
        }
    }
    out
}

/// Total number of singleton requests the split will produce.
pub fn split_len(requests: &[Request]) -> usize {
    requests.iter().map(|r| r.demand().len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::{CommoditySet, Universe};
    use omfl_metric::PointId;

    fn req(loc: u32, ids: &[u16]) -> Request {
        let u = Universe::new(8).unwrap();
        Request::new(PointId(loc), CommoditySet::from_ids(u, ids).unwrap())
    }

    #[test]
    fn splits_preserve_order_and_location() {
        let reqs = vec![req(0, &[3, 1]), req(2, &[5])];
        let split = split_into_singletons(&reqs);
        assert_eq!(split.len(), 3);
        assert_eq!(split_len(&reqs), 3);
        // First request's commodities in ascending order (1 then 3).
        assert_eq!(split[0].location(), PointId(0));
        assert_eq!(split[0].demand().first().unwrap().0, 1);
        assert_eq!(split[1].demand().first().unwrap().0, 3);
        assert_eq!(split[2].location(), PointId(2));
        assert_eq!(split[2].demand().first().unwrap().0, 5);
        for r in &split {
            assert_eq!(r.demand().len(), 1);
        }
    }

    #[test]
    fn singleton_requests_pass_through_unchanged_in_count() {
        let reqs = vec![req(0, &[0]), req(1, &[7])];
        assert_eq!(split_into_singletons(&reqs).len(), 2);
    }
}
