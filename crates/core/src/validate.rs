//! Independent validation of PD-OMFLP's dual invariants.
//!
//! The checker reconstructs everything from the algorithm's frozen dual
//! state and the final solution, trusting none of the incremental bid
//! matrices:
//!
//! * **bid feasibility** (the invariant behind Lemmas 6/7): for every
//!   location `m` and commodity `e`,
//!   `Σ_j (min{a_{je}, d(F(e), j)} − d(m,j))⁺ ≤ f^{e}_m`, and the analogue
//!   for large facilities with `f^{S}_m`;
//! * **Corollary 8**: total cost ≤ 3·Σ duals;
//! * **Corollary 17** (dual feasibility after scaling by
//!   `γ = 1/(5√|S|·H_n)`): for every `m` and every configuration `σ`,
//!   `Σ_r (Σ_{e∈sr∩σ} γ·a_{re} − d(m,r))⁺ ≤ f^σ_m`. Checking all `2^|S|`
//!   configurations is exponential, so [`check_scaled_dual_feasible`] does
//!   it exactly for `|S| ≤ max_exact_s` and otherwise checks all singletons,
//!   the full set, and sampled configurations.

use crate::algorithm::OnlineAlgorithm;
use crate::pd::PdOmflp;
use crate::{harmonic, EPS};
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_metric::PointId;

/// Checks the maintained-bid invariant `B[m][e] ≤ f^{e}_m` and
/// `B̂[m] ≤ f^{S}_m` by recomputing the bids from scratch.
pub fn check_bid_feasibility(alg: &PdOmflp<'_>) -> Result<(), String> {
    let inst = alg.instance();
    let s = inst.num_commodities();
    let mpts = inst.num_points();

    // Final facility sets per commodity and large, from the solution.
    let mut locs_by_e: Vec<Vec<PointId>> = vec![Vec::new(); s];
    let mut large_locs: Vec<PointId> = Vec::new();
    for f in alg.solution().facilities() {
        if f.config.len() == s {
            large_locs.push(f.location);
        }
        for e in f.config.iter() {
            locs_by_e[e.index()].push(f.location);
        }
    }

    let nearest = |locs: &[PointId], from: PointId| -> f64 {
        locs.iter()
            .map(|&l| inst.distance(from, l))
            .fold(f64::INFINITY, f64::min)
    };

    for p in 0..mpts {
        let m = PointId(p as u32);
        // Large-facility bids.
        let mut bhat = 0.0;
        for j in alg.past_requests() {
            let cap = j.dual_sum().min(nearest(&large_locs, j.location));
            bhat += (cap - inst.distance(m, j.location)).max(0.0);
        }
        let f_full = inst.large_cost(m);
        if bhat > f_full + tol(f_full) {
            return Err(format!(
                "large-bid invariant violated at {m}: B̂ = {bhat} > f^S_m = {f_full}"
            ));
        }
        // Small-facility bids.
        for (e, locs) in locs_by_e.iter().enumerate() {
            let ec = CommodityId(e as u16);
            let mut b = 0.0;
            for j in alg.past_requests() {
                if let Some(slot) = j.commodities.iter().position(|&c| c == ec) {
                    let cap = j.duals[slot].min(nearest(locs, j.location));
                    b += (cap - inst.distance(m, j.location)).max(0.0);
                }
            }
            let fe = inst.small_cost(m, ec);
            if b > fe + tol(fe) {
                return Err(format!(
                    "small-bid invariant violated at {m}, commodity {ec}: B = {b} > f = {fe}"
                ));
            }
        }
    }
    Ok(())
}

/// Checks Corollary 8: the algorithm's total cost is at most `3 Σ_r Σ_e a_{re}`.
pub fn check_corollary8(alg: &PdOmflp<'_>) -> Result<(), String> {
    let cost = alg.solution().total_cost();
    let bound = 3.0 * alg.dual_sum();
    if cost > bound + tol(bound) {
        return Err(format!(
            "Corollary 8 violated: total cost {cost} > 3·Σa = {bound}"
        ));
    }
    Ok(())
}

/// Checks Corollary 17: the duals scaled by `γ = 1/(5√|S|·H_n)` are feasible
/// for the simplified dual program.
///
/// Exact over all `2^|S| − 1` configurations when `|S| ≤ max_exact_s`
/// (recommended ≤ 12); otherwise singletons + full set + `samples` random
/// configurations from a deterministic stream.
pub fn check_scaled_dual_feasible(
    alg: &PdOmflp<'_>,
    max_exact_s: u16,
    samples: usize,
) -> Result<(), String> {
    let inst = alg.instance();
    let s = inst.universe();
    let n = alg.past_requests().len();
    if n == 0 {
        return Ok(());
    }
    let gamma = 1.0 / (5.0 * (s.len() as f64).sqrt() * harmonic(n));

    let check_sigma = |sigma: &CommoditySet| -> Result<(), String> {
        for p in 0..inst.num_points() {
            let m = PointId(p as u32);
            let f = inst.facility_cost(m, sigma);
            let mut lhs = 0.0;
            for j in alg.past_requests() {
                let mut inv = 0.0;
                for (slot, &e) in j.commodities.iter().enumerate() {
                    if sigma.contains(e) {
                        inv += gamma * j.duals[slot];
                    }
                }
                lhs += (inv - inst.distance(m, j.location)).max(0.0);
            }
            if lhs > f + tol(f) {
                return Err(format!(
                    "Corollary 17 violated at {m}, σ = {sigma:?}: LHS {lhs} > f^σ_m = {f}"
                ));
            }
        }
        Ok(())
    };

    if s.size() <= max_exact_s {
        for mask in 1u64..(1u64 << s.size()) {
            let sigma = CommoditySet::from_mask(s, mask).expect("mask in range");
            check_sigma(&sigma)?;
        }
        return Ok(());
    }
    // Large universe: singletons, full set, and sampled configurations.
    for e in s.ids() {
        let sigma = CommoditySet::singleton(s, e).expect("in range");
        check_sigma(&sigma)?;
    }
    check_sigma(&CommoditySet::full(s))?;
    let mut state = 0x5EED_5EED_u64;
    for _ in 0..samples {
        let mut sigma = CommoditySet::empty(s);
        for e in s.ids() {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            if (z ^ (z >> 31)) & 1 == 1 {
                sigma.insert(e).expect("in range");
            }
        }
        if !sigma.is_empty() {
            check_sigma(&sigma)?;
        }
    }
    Ok(())
}

/// Runs every PD validity check: solution feasibility, bid invariants,
/// Corollary 8 and scaled dual feasibility.
pub fn check_all(alg: &PdOmflp<'_>) -> Result<(), String> {
    alg.solution()
        .verify(alg.instance())
        .map_err(|e| e.to_string())?;
    check_bid_feasibility(alg)?;
    check_corollary8(alg)?;
    check_scaled_dual_feasible(alg, 10, 32)
}

fn tol(x: f64) -> f64 {
    1e-7 + 1e-7 * x.abs() + EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::OnlineAlgorithm;
    use crate::instance::Instance;
    use crate::request::Request;
    use omfl_commodity::cost::CostModel;
    use omfl_metric::line::LineMetric;

    fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
        Request::new(
            PointId(loc),
            CommoditySet::from_ids(inst.universe(), ids).unwrap(),
        )
    }

    #[test]
    fn all_checks_pass_on_theorem2_gadget() {
        let inst = Instance::new(
            Box::new(LineMetric::single_point()),
            9,
            CostModel::ceil_sqrt(9),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        for e in 0..9u16 {
            alg.serve(&req(&inst, 0, &[e])).unwrap();
        }
        check_all(&alg).unwrap();
    }

    #[test]
    fn all_checks_pass_on_line_with_bundles() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(6, 9.0).unwrap()),
            6,
            CostModel::power(6, 1.0, 2.0),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        for i in 0..25u32 {
            let ids = [
                (i % 6) as u16,
                ((i * 2 + 1) % 6) as u16,
                ((i * 5) % 6) as u16,
            ];
            alg.serve(&req(&inst, (i * 3) % 6, &ids)).unwrap();
        }
        check_all(&alg).unwrap();
    }

    #[test]
    fn checks_pass_with_affine_costs() {
        let inst = Instance::new(
            Box::new(LineMetric::uniform(4, 3.0).unwrap()),
            5,
            CostModel::affine(5, 4.0, 0.5),
        )
        .unwrap();
        let mut alg = PdOmflp::new(&inst);
        for i in 0..18u32 {
            alg.serve(&req(&inst, i % 4, &[(i % 5) as u16, ((i + 3) % 5) as u16]))
                .unwrap();
        }
        check_all(&alg).unwrap();
    }
}
