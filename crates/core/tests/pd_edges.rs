//! Edge-case tests for PD-OMFLP and RAND-OMFLP that the unit suites don't
//! reach: degenerate metrics, extreme demands, large (heap-bitset)
//! universes, and repeated identical requests.

use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::{run_online_verified, OnlineAlgorithm};
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::request::Request;
use omfl_core::validate;
use omfl_metric::dense::DenseMetric;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;

fn req(inst: &Instance, loc: u32, ids: &[u16]) -> Request {
    Request::new(
        PointId(loc),
        CommoditySet::from_ids(inst.universe(), ids).unwrap(),
    )
}

#[test]
fn full_universe_demand_goes_large_immediately() {
    // A request demanding all of S: constraint (4) must fire before |S|
    // small facilities do (Condition 1 makes the large facility cheaper
    // than |S| singletons).
    let inst = Instance::new(
        Box::new(LineMetric::single_point()),
        9,
        CostModel::power(9, 1.0, 1.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    let out = pd
        .serve(&req(&inst, 0, &[0, 1, 2, 3, 4, 5, 6, 7, 8]))
        .unwrap();
    assert!(out.served_by_large);
    assert_eq!(pd.solution().num_large_facilities(), 1);
    // Cost = f^S = 3 (sqrt(9) · 1).
    assert!((pd.solution().total_cost() - 3.0).abs() < 1e-9);
    validate::check_all(&pd).unwrap();
}

#[test]
fn repeated_identical_requests_amortize() {
    let inst = Instance::new(
        Box::new(LineMetric::single_point()),
        4,
        CostModel::power(4, 1.0, 5.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    let r = req(&inst, 0, &[1, 2]);
    pd.serve(&r).unwrap();
    let after_first = pd.solution().total_cost();
    for _ in 0..20 {
        pd.serve(&r).unwrap();
    }
    // Everything colocated: after the first request no further cost accrues.
    assert_eq!(pd.solution().total_cost(), after_first);
    validate::check_all(&pd).unwrap();
}

#[test]
fn zero_distance_duplicate_points() {
    // Two distinct points at the same coordinate: facilities at either are
    // interchangeable; the validator must accept whichever PD picks.
    let inst = Instance::new(
        Box::new(LineMetric::new(vec![3.0, 3.0]).unwrap()),
        3,
        CostModel::power(3, 1.0, 2.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    run_online_verified(
        &mut pd,
        &inst,
        &[
            req(&inst, 0, &[0]),
            req(&inst, 1, &[0]),
            req(&inst, 0, &[1, 2]),
        ],
    )
    .unwrap();
    validate::check_all(&pd).unwrap();
}

#[test]
fn uniform_metric_forces_facility_per_area_decision() {
    // Uniform metric (every pair at distance 10): there is no geometry to
    // exploit; PD must still be feasible and bounded by 3·duals.
    let inst = Instance::new(
        Box::new(DenseMetric::uniform(5, 10.0).unwrap()),
        4,
        CostModel::power(4, 1.0, 2.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    let reqs: Vec<Request> = (0..15u32)
        .map(|i| req(&inst, i % 5, &[(i % 4) as u16]))
        .collect();
    let cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
    assert!(cost <= 3.0 * pd.dual_sum() + 1e-6);
    validate::check_all(&pd).unwrap();
}

#[test]
fn large_heap_bitset_universe() {
    // |S| = 200 forces the heap bitset representation end to end.
    let inst = Instance::new(
        Box::new(LineMetric::new(vec![0.0, 2.0]).unwrap()),
        200,
        CostModel::power(200, 1.0, 1.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    let reqs: Vec<Request> = (0..30u32)
        .map(|i| {
            req(
                &inst,
                i % 2,
                &[(i * 7 % 200) as u16, ((i * 13 + 128) % 200) as u16],
            )
        })
        .collect();
    run_online_verified(&mut pd, &inst, &reqs).unwrap();

    let mut rn = RandOmflp::new(&inst, 9);
    run_online_verified(&mut rn, &inst, &reqs).unwrap();
}

#[test]
fn singleton_universe_degenerates_to_classic_ofl() {
    let inst = Instance::new(
        Box::new(LineMetric::new(vec![0.0, 1.0, 5.0]).unwrap()),
        1,
        CostModel::power(1, 2.0, 3.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    let reqs: Vec<Request> = (0..12u32).map(|i| req(&inst, i % 3, &[0])).collect();
    let cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
    assert!(cost > 0.0);
    // Small and large facilities coincide when |S| = 1.
    for f in pd.solution().facilities() {
        assert_eq!(f.config.len(), 1);
    }
    validate::check_all(&pd).unwrap();
}

#[test]
fn far_apart_clusters_get_separate_facilities() {
    // Two clusters separated by a gap far exceeding facility costs: PD must
    // open facilities in both (connecting across costs 1000).
    let inst = Instance::new(
        Box::new(LineMetric::new(vec![0.0, 0.5, 1000.0, 1000.5]).unwrap()),
        2,
        CostModel::power(2, 1.0, 2.0),
    )
    .unwrap();
    let mut pd = PdOmflp::new(&inst);
    let reqs = vec![
        req(&inst, 0, &[0]),
        req(&inst, 1, &[0]),
        req(&inst, 2, &[0]),
        req(&inst, 3, &[0]),
    ];
    let cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
    assert!(
        cost < 100.0,
        "no request should ever connect across the gap (cost {cost})"
    );
    let locations: std::collections::HashSet<u32> = pd
        .solution()
        .facilities()
        .iter()
        .map(|f| f.location.0)
        .collect();
    assert!(
        locations.iter().any(|&l| l <= 1) && locations.iter().any(|&l| l >= 2),
        "facilities must exist on both sides of the gap: {locations:?}"
    );
}

#[test]
fn rand_with_constant_costs_single_class() {
    // All locations share one cost: exactly one class per configuration;
    // the class machinery must not degenerate.
    let inst = Instance::new(
        Box::new(LineMetric::uniform(6, 12.0).unwrap()),
        4,
        CostModel::power(4, 1.0, 2.0),
    )
    .unwrap();
    for seed in 0..5 {
        let mut rn = RandOmflp::new(&inst, seed);
        let reqs: Vec<Request> = (0..20u32)
            .map(|i| req(&inst, i % 6, &[(i % 4) as u16]))
            .collect();
        run_online_verified(&mut rn, &inst, &reqs).unwrap();
    }
}
