//! Blocked distance caching: a fixed-budget LRU over whole metric rows.
//!
//! A dense `|M|²` distance matrix is the fastest substrate for the hot
//! per-arrival row reads the engines do, but it stops being affordable
//! around a few thousand points (8 MiB at 1024, 2 GiB at 16384, 80 GiB at
//! 100k). [`BlockedRowCache`] keeps the *row* locality of the dense matrix
//! under a fixed memory budget: distance rows (`d(·, q)` for one anchor
//! point `q`, contiguous in the other point) are materialized on first use
//! via [`crate::Metric::fill_row`] and recycled least-recently-used when the
//! budget is exhausted.
//!
//! Request streams with any locality — hotspots, bursts, drifting modes, the
//! Zipf location mixes of the workload catalog — touch a small working set
//! of anchor rows, so reads hit cached contiguous memory instead of paying a
//! virtual metric call per distance.
//!
//! # Bit-identity
//!
//! Cached entries are the **verbatim** results of the metric's own
//! `distance(PointId(p), q)` calls (that is the [`crate::Metric::fill_row`]
//! contract), and eviction plus recomputation reproduces them exactly
//! (metrics are pure functions of the point pair). Reading through the cache
//! is therefore bit-identical to calling the metric — the property the PD
//! engine's differential suite pins down.
//!
//! # Partial rows
//!
//! At huge `|M|` even one streamed [`crate::Metric::fill_row`] per cold
//! anchor is the dominant serve cost, and the engine's pruned scans read
//! only a sliver of each row. [`BlockedRowCache::partial_row_with`]
//! therefore fills *only the entries a caller names*, tracking validity in
//! a per-slot coverage bitset ([`RowFill::Partial`]). The invariants:
//!
//! * **Covered entries are verbatim.** Every covered entry was produced by
//!   the same pure `distance(PointId(p), q)` the full fill would have used,
//!   so a partial row and a full row *agree bit-for-bit on every covered
//!   index* — which is why coverage may be extended incrementally across
//!   arrivals without ever invalidating what is already there (stale
//!   coverage is sound: values are pure functions of the point pair).
//! * **Uncovered entries are garbage by discipline.** Callers of
//!   [`BlockedRowCache::partial_row_with`] promise to read only indices
//!   they (or an earlier caller) named. Debug builds back the discipline
//!   with a NaN fill of fresh partial slots.
//! * **Full-row consumers trigger the fallback.** [`BlockedRowCache::row_with`]
//!   on a partially covered slot promotes it with one full `fill` — the
//!   "first out-of-coverage read" fallback — counted in
//!   [`BlockedRowCache::fallback_promotions`] and as a miss (it pays a
//!   fill). [`BlockedRowCache::cached_row`] returns only fully covered
//!   rows, so point probes can never observe garbage.
//!
//! # Memory envelope
//!
//! `capacity_rows = clamp(budget_bytes / (8·|M|), 1, |M|)`, total cached
//! float storage at most `budget_bytes` (one row may exceed the budget on
//! purpose: caching degrades gracefully to "the most recent row" rather
//! than disabling itself). The map and stamps add `O(capacity_rows)` words;
//! coverage bitsets add at most 1/64 of the row budget on top. The
//! degenerate `|M| = 0` metric has no rows: capacity is 0 and reads
//! return the empty row instead of dividing by zero.

use std::collections::HashMap;

/// How much of a cached row is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowFill {
    /// Every entry holds the verbatim metric value.
    Full,
    /// Only the entries named by `partial_row_with` callers are valid; the
    /// rest are garbage until a full-row consumer forces promotion.
    Partial,
}

/// Default per-cache memory budget for cached rows: 64 MiB. At 4096 points
/// (32 KiB rows) that is a 2048-row working set — half the rows, recycled
/// LRU; at 100k points it holds an ~80-row working set.
pub const DEFAULT_ROW_CACHE_BYTES: usize = 64 << 20;

/// Fixed-budget LRU cache of metric distance rows (see module docs).
#[derive(Debug, Clone)]
pub struct BlockedRowCache {
    /// Points per row (`|M|`).
    points: usize,
    /// Maximum simultaneously cached rows.
    capacity: usize,
    /// Row storage, slot `i` at `i·points..(i+1)·points`; grown one slot at
    /// a time so an oversized budget never allocates up front.
    data: Vec<f64>,
    /// Anchor point of each occupied slot.
    slot_loc: Vec<u32>,
    /// LRU stamp of each occupied slot.
    slot_tick: Vec<u64>,
    /// Per-slot coverage: `None` = fully filled, `Some(bits)` = partial
    /// (bit `p` set ⇔ entry `p` holds the verbatim metric value).
    slot_cover: Vec<Option<Box<[u64]>>>,
    /// Anchor point → slot.
    map: HashMap<u32, u32>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Partial slots promoted to full by a full-row consumer (the
    /// out-of-coverage fallback events).
    promotions: u64,
}

impl BlockedRowCache {
    /// A cache for rows of `points` entries under `budget_bytes` of row
    /// storage. At least one row is always cacheable — except in the
    /// degenerate zero-point metric, where there are no rows at all: the
    /// cache comes up with capacity 0 and every read returns the empty row
    /// (serve tenants may construct their engine before any location
    /// exists, and must not panic here).
    pub fn new(points: usize, budget_bytes: usize) -> Self {
        let capacity = if points == 0 {
            0
        } else {
            let row_bytes = points * std::mem::size_of::<f64>();
            (budget_bytes / row_bytes).clamp(1, points)
        };
        Self {
            points,
            capacity,
            data: Vec::new(),
            slot_loc: Vec::new(),
            slot_tick: Vec::new(),
            slot_cover: Vec::new(),
            map: HashMap::with_capacity(capacity.min(4096)),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            promotions: 0,
        }
    }

    /// A cache with the [`DEFAULT_ROW_CACHE_BYTES`] budget.
    pub fn with_default_budget(points: usize) -> Self {
        Self::new(points, DEFAULT_ROW_CACHE_BYTES)
    }

    /// Points per row.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Maximum simultaneously cached rows under the budget.
    pub fn capacity_rows(&self) -> usize {
        self.capacity
    }

    /// Currently cached rows.
    pub fn cached_rows(&self) -> usize {
        self.slot_loc.len()
    }

    /// `(hits, misses, evictions)` since construction. A hit is a read that
    /// found usable coverage (including a coverage *extension*); a miss pays
    /// a fill (a fresh slot, or a partial slot promoted to full).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// How often a partially covered row was promoted to a full fill by a
    /// full-row consumer — the out-of-coverage fallback events.
    pub fn fallback_promotions(&self) -> u64 {
        self.promotions
    }

    /// Coverage state of anchor `loc`'s row, if cached.
    pub fn row_fill(&self, loc: u32) -> Option<RowFill> {
        self.map.get(&loc).map(|&slot| {
            if self.slot_cover[slot as usize].is_some() {
                RowFill::Partial
            } else {
                RowFill::Full
            }
        })
    }

    /// The cached row for anchor `loc`, if present **and fully covered** —
    /// does not touch LRU state, so point probes between row fills stay
    /// cheap and pure. Partial rows are reported as absent: a probe for an
    /// arbitrary index must never observe an uncovered (garbage) entry, and
    /// the caller's per-point metric fallback is bit-identical anyway.
    #[inline]
    pub fn cached_row(&self, loc: u32) -> Option<&[f64]> {
        self.map.get(&loc).and_then(|&slot| {
            if self.slot_cover[slot as usize].is_some() {
                return None;
            }
            let start = slot as usize * self.points;
            Some(&self.data[start..start + self.points])
        })
    }

    /// Grow-or-evict slot acquisition for a missed anchor (`tick` already
    /// advanced, miss already counted). Returns the slot index; the caller
    /// sets the coverage state and fills the data.
    fn acquire_slot(&mut self, loc: u32) -> usize {
        let slot = if self.slot_loc.len() < self.capacity {
            // Grow a fresh slot.
            self.data.resize(self.data.len() + self.points, 0.0);
            self.slot_loc.push(loc);
            self.slot_tick.push(self.tick);
            self.slot_cover.push(None);
            self.slot_loc.len() - 1
        } else {
            // Evict the least recently used slot. The linear min-scan is
            // O(capacity_rows) per miss, but a miss already pays an
            // O(points) row fill and capacity_rows ≤ points, so the fill
            // dominates; an intrusive LRU list would only matter for tiny
            // rows.
            let victim = self
                .slot_tick
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            self.evictions += 1;
            self.map.remove(&self.slot_loc[victim]);
            self.slot_loc[victim] = loc;
            self.slot_tick[victim] = self.tick;
            victim
        };
        self.map.insert(loc, slot as u32);
        slot
    }

    /// The row for anchor `loc`, filling it via `fill` on a miss (the
    /// callback receives the row buffer and must write every entry with the
    /// verbatim metric results). Returns the cached slice — always fully
    /// covered: a partially covered slot is *promoted* here with one full
    /// `fill` (the out-of-coverage fallback; counted as a miss plus a
    /// [`Self::fallback_promotions`] event). Promotion is sound because
    /// covered entries already hold the verbatim values the full fill
    /// rewrites them with.
    pub fn row_with(&mut self, loc: u32, fill: impl FnOnce(&mut [f64])) -> &[f64] {
        if self.points == 0 {
            // Zero-point metric: the only row is the empty row, and caching
            // it would require a slot the capacity-0 cache does not have.
            return &[];
        }
        self.tick += 1;
        let slot = match self.map.get(&loc) {
            Some(&slot) => {
                let slot = slot as usize;
                self.slot_tick[slot] = self.tick;
                if self.slot_cover[slot].is_some() {
                    // Fallback: a full-row consumer hit a partial row.
                    self.misses += 1;
                    self.promotions += 1;
                    self.slot_cover[slot] = None;
                    let start = slot * self.points;
                    fill(&mut self.data[start..start + self.points]);
                } else {
                    self.hits += 1;
                }
                slot
            }
            None => {
                self.misses += 1;
                let slot = self.acquire_slot(loc);
                self.slot_cover[slot] = None;
                let start = slot * self.points;
                fill(&mut self.data[start..start + self.points]);
                slot
            }
        };
        let start = slot * self.points;
        &self.data[start..start + self.points]
    }

    /// The row for anchor `loc` with *at least* the entries `ids` covered,
    /// filling missing ones via `fill_at(p) = distance(PointId(p), loc)`.
    /// A cold anchor gets a fresh [`RowFill::Partial`] slot; a cached one
    /// (full or partial) keeps everything it has and only extends. Entries
    /// outside the accumulated coverage are garbage — callers promise to
    /// read only indices named here (by this call or an earlier one for the
    /// same slot), and debug builds poison fresh partial slots with NaN to
    /// make a violation loud.
    pub fn partial_row_with(
        &mut self,
        loc: u32,
        ids: &[u32],
        mut fill_at: impl FnMut(u32) -> f64,
    ) -> &[f64] {
        if self.points == 0 {
            return &[];
        }
        self.tick += 1;
        let slot = match self.map.get(&loc) {
            Some(&slot) => {
                let slot = slot as usize;
                self.hits += 1;
                self.slot_tick[slot] = self.tick;
                if let Some(cover) = self.slot_cover[slot].as_mut() {
                    let start = slot * self.points;
                    let data = &mut self.data[start..start + self.points];
                    for &p in ids {
                        let (w, bit) = (p as usize / 64, p % 64);
                        if cover[w] & (1u64 << bit) == 0 {
                            data[p as usize] = fill_at(p);
                            cover[w] |= 1u64 << bit;
                        }
                    }
                }
                // A fully covered slot already holds every entry verbatim.
                slot
            }
            None => {
                self.misses += 1;
                let slot = self.acquire_slot(loc);
                let start = slot * self.points;
                let data = &mut self.data[start..start + self.points];
                #[cfg(debug_assertions)]
                data.fill(f64::NAN);
                let mut cover = vec![0u64; self.points.div_ceil(64)].into_boxed_slice();
                for &p in ids {
                    let (w, bit) = (p as usize / 64, p % 64);
                    if cover[w] & (1u64 << bit) == 0 {
                        data[p as usize] = fill_at(p);
                        cover[w] |= 1u64 << bit;
                    }
                }
                self.slot_cover[slot] = Some(cover);
                slot
            }
        };
        let start = slot * self.points;
        &self.data[start..start + self.points]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineMetric;
    use crate::{Metric, PointId};

    fn fill_from(m: &LineMetric, q: u32) -> impl Fn(&mut [f64]) + '_ {
        move |out| m.fill_row(PointId(q), out)
    }

    #[test]
    fn capacity_respects_budget_and_floors_at_one_row() {
        let c = BlockedRowCache::new(1024, 1024 * 8 * 3);
        assert_eq!(c.capacity_rows(), 3);
        let c = BlockedRowCache::new(1024, 0);
        assert_eq!(c.capacity_rows(), 1);
        // Never more slots than rows exist.
        let c = BlockedRowCache::new(4, usize::MAX / 16);
        assert_eq!(c.capacity_rows(), 4);
    }

    #[test]
    fn zero_points_yields_an_empty_capacity_cache() {
        // Serve tenants can build their engine before any location exists;
        // the degenerate metric must not divide by zero or panic on reads.
        let mut c = BlockedRowCache::new(0, DEFAULT_ROW_CACHE_BYTES);
        assert_eq!(c.points(), 0);
        assert_eq!(c.capacity_rows(), 0);
        assert_eq!(c.cached_rows(), 0);
        assert!(c.cached_row(0).is_none());
        let row = c.row_with(0, |_| panic!("no row to fill"));
        assert!(row.is_empty());
        assert_eq!(c.stats(), (0, 0, 0));
    }

    #[test]
    fn rows_match_the_metric_bit_for_bit() {
        let m = LineMetric::new(vec![0.0, 1.5, 4.0, 9.5]).unwrap();
        let mut c = BlockedRowCache::new(4, 2 * 4 * 8);
        for q in [0u32, 3, 1, 3, 0] {
            let row = c.row_with(q, fill_from(&m, q)).to_vec();
            for (p, &d) in row.iter().enumerate() {
                assert_eq!(
                    d.to_bits(),
                    m.distance(PointId(p as u32), PointId(q)).to_bits(),
                    "row {q} entry {p}"
                );
            }
        }
    }

    #[test]
    fn lru_evicts_the_stalest_row() {
        let m = LineMetric::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let mut c = BlockedRowCache::new(4, 2 * 4 * 8); // two slots
        c.row_with(0, fill_from(&m, 0));
        c.row_with(1, fill_from(&m, 1));
        c.row_with(0, fill_from(&m, 0)); // refresh 0 → 1 is now LRU
        c.row_with(2, fill_from(&m, 2)); // evicts 1
        assert!(c.cached_row(0).is_some());
        assert!(c.cached_row(1).is_none());
        assert!(c.cached_row(2).is_some());
        let (hits, misses, evictions) = c.stats();
        assert_eq!((hits, misses, evictions), (1, 3, 1));
    }

    #[test]
    fn refill_after_eviction_reproduces_the_row() {
        let m = LineMetric::new(vec![0.0, 2.0, 7.0]).unwrap();
        let mut c = BlockedRowCache::new(3, 8 * 3); // single slot
        let before = c.row_with(1, fill_from(&m, 1)).to_vec();
        c.row_with(2, fill_from(&m, 2)); // evicts row 1
        let after = c.row_with(1, fill_from(&m, 1)).to_vec();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&before), bits(&after));
    }

    fn fill_at_from(m: &LineMetric, q: u32) -> impl Fn(u32) -> f64 + '_ {
        move |p| m.distance(PointId(p), PointId(q))
    }

    #[test]
    fn partial_rows_cover_exactly_the_named_ids_verbatim() {
        let m = LineMetric::new((0..100).map(|i| i as f64 * 1.3).collect()).unwrap();
        let mut c = BlockedRowCache::new(100, 100 * 8 * 2);
        let ids = [0u32, 7, 63, 64, 65, 99];
        let row = c.partial_row_with(5, &ids, fill_at_from(&m, 5));
        for &p in &ids {
            assert_eq!(
                row[p as usize].to_bits(),
                m.distance(PointId(p), PointId(5)).to_bits(),
                "covered entry {p} must be verbatim"
            );
        }
        assert_eq!(c.row_fill(5), Some(RowFill::Partial));
        assert!(
            c.cached_row(5).is_none(),
            "point probes must never see a partial row"
        );
        assert_eq!(c.stats(), (0, 1, 0));
    }

    #[test]
    fn partial_coverage_accumulates_without_refilling() {
        let m = LineMetric::new((0..64).map(|i| (i * i) as f64).collect()).unwrap();
        let mut c = BlockedRowCache::new(64, 64 * 8);
        c.partial_row_with(3, &[1, 2], fill_at_from(&m, 3));
        // Second call: already-covered ids must not be recomputed (the fill
        // closure panics if consulted for them), new ids extend coverage.
        let row = c.partial_row_with(3, &[2, 40], |p| {
            assert_eq!(p, 40, "only the uncovered id may be filled");
            m.distance(PointId(p), PointId(3))
        });
        assert_eq!(
            row[40].to_bits(),
            m.distance(PointId(40), PointId(3)).to_bits()
        );
        let (hits, misses, _) = c.stats();
        assert_eq!((hits, misses), (1, 1), "the extension is a hit");
    }

    #[test]
    fn out_of_coverage_full_read_falls_back_to_a_full_fill() {
        // The coverage-fallback path: a full-row consumer (row_with) lands
        // on a partial slot and must promote it with one full fill, after
        // which every entry — covered before or not — is verbatim.
        let m = LineMetric::new((0..50).map(|i| i as f64 * 0.7 - 3.0).collect()).unwrap();
        let mut c = BlockedRowCache::new(50, 50 * 8 * 2);
        c.partial_row_with(9, &[0, 49], fill_at_from(&m, 9));
        assert_eq!(c.fallback_promotions(), 0);
        let row = c.row_with(9, fill_from(&m, 9)).to_vec();
        for (p, &d) in row.iter().enumerate() {
            assert_eq!(
                d.to_bits(),
                m.distance(PointId(p as u32), PointId(9)).to_bits(),
                "promoted entry {p}"
            );
        }
        assert_eq!(c.fallback_promotions(), 1);
        assert_eq!(c.row_fill(9), Some(RowFill::Full));
        assert!(c.cached_row(9).is_some(), "promoted rows probe normally");
        // Promotion pays a fill, so it counts as a miss, not a hit.
        let (hits, misses, _) = c.stats();
        assert_eq!((hits, misses), (0, 2));
        // And a later partial request on the now-full row is a plain hit.
        c.partial_row_with(9, &[17], |_| panic!("full row needs no fill"));
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn eviction_drops_partial_coverage() {
        let m = LineMetric::new((0..32).map(|i| i as f64).collect()).unwrap();
        let mut c = BlockedRowCache::new(32, 32 * 8); // single slot
        c.partial_row_with(1, &[5], fill_at_from(&m, 1));
        c.row_with(2, fill_from(&m, 2)); // evicts the partial slot
        assert_eq!(c.row_fill(1), None);
        assert_eq!(c.row_fill(2), Some(RowFill::Full));
        // Re-materializing the evicted anchor starts from scratch and
        // reproduces the same verbatim values.
        let row = c.partial_row_with(1, &[5], fill_at_from(&m, 1));
        assert_eq!(
            row[5].to_bits(),
            m.distance(PointId(5), PointId(1)).to_bits()
        );
        assert_eq!(c.row_fill(1), Some(RowFill::Partial));
    }
}
