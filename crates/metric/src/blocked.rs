//! Blocked distance caching: a fixed-budget LRU over whole metric rows.
//!
//! A dense `|M|²` distance matrix is the fastest substrate for the hot
//! per-arrival row reads the engines do, but it stops being affordable
//! around a few thousand points (8 MiB at 1024, 2 GiB at 16384, 80 GiB at
//! 100k). [`BlockedRowCache`] keeps the *row* locality of the dense matrix
//! under a fixed memory budget: distance rows (`d(·, q)` for one anchor
//! point `q`, contiguous in the other point) are materialized on first use
//! via [`crate::Metric::fill_row`] and recycled least-recently-used when the
//! budget is exhausted.
//!
//! Request streams with any locality — hotspots, bursts, drifting modes, the
//! Zipf location mixes of the workload catalog — touch a small working set
//! of anchor rows, so reads hit cached contiguous memory instead of paying a
//! virtual metric call per distance.
//!
//! # Bit-identity
//!
//! Cached entries are the **verbatim** results of the metric's own
//! `distance(PointId(p), q)` calls (that is the [`crate::Metric::fill_row`]
//! contract), and eviction plus recomputation reproduces them exactly
//! (metrics are pure functions of the point pair). Reading through the cache
//! is therefore bit-identical to calling the metric — the property the PD
//! engine's differential suite pins down.
//!
//! # Memory envelope
//!
//! `capacity_rows = clamp(budget_bytes / (8·|M|), 1, |M|)`, total cached
//! float storage at most `budget_bytes` (one row may exceed the budget on
//! purpose: caching degrades gracefully to "the most recent row" rather
//! than disabling itself). The map and stamps add `O(capacity_rows)` words.
//! The degenerate `|M| = 0` metric has no rows: capacity is 0 and reads
//! return the empty row instead of dividing by zero.

use std::collections::HashMap;

/// Default per-cache memory budget for cached rows: 64 MiB. At 4096 points
/// (32 KiB rows) that is a 2048-row working set — half the rows, recycled
/// LRU; at 100k points it holds an ~80-row working set.
pub const DEFAULT_ROW_CACHE_BYTES: usize = 64 << 20;

/// Fixed-budget LRU cache of metric distance rows (see module docs).
#[derive(Debug, Clone)]
pub struct BlockedRowCache {
    /// Points per row (`|M|`).
    points: usize,
    /// Maximum simultaneously cached rows.
    capacity: usize,
    /// Row storage, slot `i` at `i·points..(i+1)·points`; grown one slot at
    /// a time so an oversized budget never allocates up front.
    data: Vec<f64>,
    /// Anchor point of each occupied slot.
    slot_loc: Vec<u32>,
    /// LRU stamp of each occupied slot.
    slot_tick: Vec<u64>,
    /// Anchor point → slot.
    map: HashMap<u32, u32>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BlockedRowCache {
    /// A cache for rows of `points` entries under `budget_bytes` of row
    /// storage. At least one row is always cacheable — except in the
    /// degenerate zero-point metric, where there are no rows at all: the
    /// cache comes up with capacity 0 and every read returns the empty row
    /// (serve tenants may construct their engine before any location
    /// exists, and must not panic here).
    pub fn new(points: usize, budget_bytes: usize) -> Self {
        let capacity = if points == 0 {
            0
        } else {
            let row_bytes = points * std::mem::size_of::<f64>();
            (budget_bytes / row_bytes).clamp(1, points)
        };
        Self {
            points,
            capacity,
            data: Vec::new(),
            slot_loc: Vec::new(),
            slot_tick: Vec::new(),
            map: HashMap::with_capacity(capacity.min(4096)),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A cache with the [`DEFAULT_ROW_CACHE_BYTES`] budget.
    pub fn with_default_budget(points: usize) -> Self {
        Self::new(points, DEFAULT_ROW_CACHE_BYTES)
    }

    /// Points per row.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Maximum simultaneously cached rows under the budget.
    pub fn capacity_rows(&self) -> usize {
        self.capacity
    }

    /// Currently cached rows.
    pub fn cached_rows(&self) -> usize {
        self.slot_loc.len()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// The cached row for anchor `loc`, if present — does not touch LRU
    /// state, so point probes between row fills stay cheap and pure.
    #[inline]
    pub fn cached_row(&self, loc: u32) -> Option<&[f64]> {
        self.map.get(&loc).map(|&slot| {
            let start = slot as usize * self.points;
            &self.data[start..start + self.points]
        })
    }

    /// The row for anchor `loc`, filling it via `fill` on a miss (the
    /// callback receives the row buffer and must write every entry with the
    /// verbatim metric results). Returns the cached slice.
    pub fn row_with(&mut self, loc: u32, fill: impl FnOnce(&mut [f64])) -> &[f64] {
        if self.points == 0 {
            // Zero-point metric: the only row is the empty row, and caching
            // it would require a slot the capacity-0 cache does not have.
            return &[];
        }
        self.tick += 1;
        let slot = match self.map.get(&loc) {
            Some(&slot) => {
                self.hits += 1;
                self.slot_tick[slot as usize] = self.tick;
                slot as usize
            }
            None => {
                self.misses += 1;
                let slot = if self.slot_loc.len() < self.capacity {
                    // Grow a fresh slot.
                    self.data.resize(self.data.len() + self.points, 0.0);
                    self.slot_loc.push(loc);
                    self.slot_tick.push(self.tick);
                    self.slot_loc.len() - 1
                } else {
                    // Evict the least recently used slot. The linear
                    // min-scan is O(capacity_rows) per miss, but a miss
                    // already pays an O(points) row fill and
                    // capacity_rows ≤ points, so the fill dominates; an
                    // intrusive LRU list would only matter for tiny rows.
                    let victim = self
                        .slot_tick
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &t)| t)
                        .map(|(i, _)| i)
                        .expect("capacity >= 1");
                    self.evictions += 1;
                    self.map.remove(&self.slot_loc[victim]);
                    self.slot_loc[victim] = loc;
                    self.slot_tick[victim] = self.tick;
                    victim
                };
                self.map.insert(loc, slot as u32);
                let start = slot * self.points;
                fill(&mut self.data[start..start + self.points]);
                slot
            }
        };
        let start = slot * self.points;
        &self.data[start..start + self.points]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineMetric;
    use crate::{Metric, PointId};

    fn fill_from(m: &LineMetric, q: u32) -> impl Fn(&mut [f64]) + '_ {
        move |out| m.fill_row(PointId(q), out)
    }

    #[test]
    fn capacity_respects_budget_and_floors_at_one_row() {
        let c = BlockedRowCache::new(1024, 1024 * 8 * 3);
        assert_eq!(c.capacity_rows(), 3);
        let c = BlockedRowCache::new(1024, 0);
        assert_eq!(c.capacity_rows(), 1);
        // Never more slots than rows exist.
        let c = BlockedRowCache::new(4, usize::MAX / 16);
        assert_eq!(c.capacity_rows(), 4);
    }

    #[test]
    fn zero_points_yields_an_empty_capacity_cache() {
        // Serve tenants can build their engine before any location exists;
        // the degenerate metric must not divide by zero or panic on reads.
        let mut c = BlockedRowCache::new(0, DEFAULT_ROW_CACHE_BYTES);
        assert_eq!(c.points(), 0);
        assert_eq!(c.capacity_rows(), 0);
        assert_eq!(c.cached_rows(), 0);
        assert!(c.cached_row(0).is_none());
        let row = c.row_with(0, |_| panic!("no row to fill"));
        assert!(row.is_empty());
        assert_eq!(c.stats(), (0, 0, 0));
    }

    #[test]
    fn rows_match_the_metric_bit_for_bit() {
        let m = LineMetric::new(vec![0.0, 1.5, 4.0, 9.5]).unwrap();
        let mut c = BlockedRowCache::new(4, 2 * 4 * 8);
        for q in [0u32, 3, 1, 3, 0] {
            let row = c.row_with(q, fill_from(&m, q)).to_vec();
            for (p, &d) in row.iter().enumerate() {
                assert_eq!(
                    d.to_bits(),
                    m.distance(PointId(p as u32), PointId(q)).to_bits(),
                    "row {q} entry {p}"
                );
            }
        }
    }

    #[test]
    fn lru_evicts_the_stalest_row() {
        let m = LineMetric::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let mut c = BlockedRowCache::new(4, 2 * 4 * 8); // two slots
        c.row_with(0, fill_from(&m, 0));
        c.row_with(1, fill_from(&m, 1));
        c.row_with(0, fill_from(&m, 0)); // refresh 0 → 1 is now LRU
        c.row_with(2, fill_from(&m, 2)); // evicts 1
        assert!(c.cached_row(0).is_some());
        assert!(c.cached_row(1).is_none());
        assert!(c.cached_row(2).is_some());
        let (hits, misses, evictions) = c.stats();
        assert_eq!((hits, misses, evictions), (1, 3, 1));
    }

    #[test]
    fn refill_after_eviction_reproduces_the_row() {
        let m = LineMetric::new(vec![0.0, 2.0, 7.0]).unwrap();
        let mut c = BlockedRowCache::new(3, 8 * 3); // single slot
        let before = c.row_with(1, fill_from(&m, 1)).to_vec();
        c.row_with(2, fill_from(&m, 2)); // evicts row 1
        let after = c.row_with(1, fill_from(&m, 1)).to_vec();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&before), bits(&after));
    }
}
