//! Explicit distance-matrix metrics.
//!
//! `DenseMetric` is both a general-purpose metric (any finite metric can be
//! expressed this way) and the materialized form other metrics can be
//! converted into when O(1) lookups matter more than memory
//! (see [`DenseMetric::from_metric`]).

use crate::{check_finite_nonneg, Metric, MetricError, PointId};

/// A finite metric given by an `n × n` distance matrix (row-major).
#[derive(Debug, Clone)]
pub struct DenseMetric {
    d: Vec<f64>,
    n: usize,
}

impl DenseMetric {
    /// Builds from a full row-major matrix and validates all metric axioms
    /// exactly (O(n³) triangle check — intended for moderate n).
    pub fn new(matrix: Vec<f64>, n: usize) -> Result<Self, MetricError> {
        let m = Self::new_unchecked(matrix, n)?;
        m.validate()?;
        Ok(m)
    }

    /// Builds without the O(n³) triangle check; still validates shape,
    /// finiteness, non-negativity, symmetry and zero diagonal.
    pub fn new_unchecked(matrix: Vec<f64>, n: usize) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::Empty);
        }
        if matrix.len() != n * n {
            return Err(MetricError::Malformed(format!(
                "matrix has {} entries, expected {}",
                matrix.len(),
                n * n
            )));
        }
        for (i, &v) in matrix.iter().enumerate() {
            check_finite_nonneg(v, &format!("d[{},{}]", i / n, i % n))?;
        }
        let m = Self { d: matrix, n };
        for a in 0..n {
            if m.d[a * n + a] != 0.0 {
                return Err(MetricError::AxiomViolation(format!(
                    "d({a},{a}) = {} must be 0",
                    m.d[a * n + a]
                )));
            }
            for b in (a + 1)..n {
                if m.d[a * n + b] != m.d[b * n + a] {
                    return Err(MetricError::AxiomViolation(format!(
                        "asymmetry: d({a},{b}) = {} but d({b},{a}) = {}",
                        m.d[a * n + b],
                        m.d[b * n + a]
                    )));
                }
            }
        }
        Ok(m)
    }

    /// Validates the triangle inequality exactly, with a small relative slack
    /// for floating-point noise.
    pub fn validate(&self) -> Result<(), MetricError> {
        let n = self.n;
        for a in 0..n {
            for b in 0..n {
                let dab = self.d[a * n + b];
                for c in 0..n {
                    let via = self.d[a * n + c] + self.d[c * n + b];
                    if dab > via * (1.0 + 1e-9) + 1e-12 {
                        return Err(MetricError::AxiomViolation(format!(
                            "triangle: d({a},{b}) = {dab} > d({a},{c}) + d({c},{b}) = {via}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Materializes any metric into a dense matrix (O(n²) queries).
    pub fn from_metric(m: &dyn Metric) -> Result<Self, MetricError> {
        let n = m.len();
        if n == 0 {
            return Err(MetricError::Empty);
        }
        let mut d = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                d[a * n + b] = m.distance(PointId(a as u32), PointId(b as u32));
            }
        }
        Self::new_unchecked(d, n)
    }

    /// The uniform metric: every pair of distinct points at distance `gap`.
    pub fn uniform(n: usize, gap: f64) -> Result<Self, MetricError> {
        check_finite_nonneg(gap, "gap")?;
        if n == 0 {
            return Err(MetricError::Empty);
        }
        let mut d = vec![gap; n * n];
        for a in 0..n {
            d[a * n + a] = 0.0;
        }
        Self::new_unchecked(d, n)
    }
}

impl Metric for DenseMetric {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.d[a.index() * self.n + b.index()]
    }

    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        // Strided gather d[p][q], not a copy of row q: `new_unchecked`
        // matrices are not guaranteed symmetric, and the contract is
        // bit-identity with the per-call loop.
        let (n, qi) = (self.n, q.index());
        for (p, slot) in out.iter_mut().enumerate() {
            *slot = self.d[p * n + qi];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineMetric;

    #[test]
    fn valid_triangle_metric_accepted() {
        // Points 0-1-2 on a path with weights 1 and 2.
        let m = DenseMetric::new(vec![0.0, 1.0, 3.0, 1.0, 0.0, 2.0, 3.0, 2.0, 0.0], 3).unwrap();
        assert_eq!(m.distance(PointId(0), PointId(2)), 3.0);
    }

    #[test]
    fn triangle_violation_rejected() {
        // d(0,2) = 10 > d(0,1) + d(1,2) = 3.
        let err =
            DenseMetric::new(vec![0.0, 1.0, 10.0, 1.0, 0.0, 2.0, 10.0, 2.0, 0.0], 3).unwrap_err();
        assert!(matches!(err, MetricError::AxiomViolation(_)));
    }

    #[test]
    fn asymmetry_rejected() {
        let err = DenseMetric::new_unchecked(vec![0.0, 1.0, 2.0, 0.0], 2).unwrap_err();
        assert!(matches!(err, MetricError::AxiomViolation(_)));
    }

    #[test]
    fn nonzero_diagonal_rejected() {
        let err = DenseMetric::new_unchecked(vec![1.0, 1.0, 1.0, 0.0], 2).unwrap_err();
        assert!(matches!(err, MetricError::AxiomViolation(_)));
    }

    #[test]
    fn negative_distance_rejected() {
        let err = DenseMetric::new_unchecked(vec![0.0, -1.0, -1.0, 0.0], 2).unwrap_err();
        assert!(matches!(err, MetricError::InvalidValue(_)));
    }

    #[test]
    fn wrong_shape_rejected() {
        let err = DenseMetric::new_unchecked(vec![0.0; 5], 2).unwrap_err();
        assert!(matches!(err, MetricError::Malformed(_)));
    }

    #[test]
    fn from_metric_round_trips_a_line() {
        let line = LineMetric::new(vec![0.0, 2.0, 7.0]).unwrap();
        let dense = DenseMetric::from_metric(&line).unwrap();
        for a in line.points() {
            for b in line.points() {
                assert_eq!(line.distance(a, b), dense.distance(a, b));
            }
        }
        dense.validate().unwrap();
    }

    #[test]
    fn uniform_metric() {
        let m = DenseMetric::uniform(4, 3.0).unwrap();
        m.validate().unwrap();
        assert_eq!(m.distance(PointId(1), PointId(3)), 3.0);
        assert_eq!(m.distance(PointId(2), PointId(2)), 0.0);
    }
}
