//! Point sets in d-dimensional real space under L1, L2, or L∞ norms.
//!
//! Used by the clustered / uniform plane workloads that stand in for the
//! paper's "clients appear at locations in the network" scenario when a
//! geometric embedding is more natural than a graph.

use crate::{check_finite, Metric, MetricError, PointId};

/// Which norm induces the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Manhattan distance, `Σ|aᵢ−bᵢ|`.
    L1,
    /// Euclidean distance, `√(Σ(aᵢ−bᵢ)²)`.
    L2,
    /// Chebyshev distance, `max|aᵢ−bᵢ|`.
    LInf,
}

/// A finite set of points in ℝ^dim with a chosen norm.
///
/// Coordinates are stored twice: row-major (`point * dim + axis`) for the
/// scalar [`Metric::distance`] path, and column-major (`axis * len + point`)
/// for the bulk [`Metric::fill_row`] override, whose inner loops then stream
/// one contiguous coordinate column per axis — the layout the
/// autovectorizer wants. The duplication costs `8·dim·len` bytes (512 KiB
/// at 16384 2-D points), far below any distance cache built on top.
#[derive(Debug, Clone)]
pub struct EuclideanMetric {
    coords: Vec<f64>,
    /// `coords` transposed: `coords_t[axis * len + p] == coords[p * dim + axis]`.
    coords_t: Vec<f64>,
    dim: usize,
    norm: Norm,
}

impl EuclideanMetric {
    /// Builds a metric from per-point coordinate rows (all of length `dim`).
    pub fn new(points: &[Vec<f64>], norm: Norm) -> Result<Self, MetricError> {
        if points.is_empty() {
            return Err(MetricError::Empty);
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(MetricError::Malformed(
                "points must have at least one coordinate".into(),
            ));
        }
        let mut coords = Vec::with_capacity(points.len() * dim);
        for (i, row) in points.iter().enumerate() {
            if row.len() != dim {
                return Err(MetricError::Malformed(format!(
                    "point {i} has {} coordinates, expected {dim}",
                    row.len()
                )));
            }
            for (j, &c) in row.iter().enumerate() {
                check_finite(c, &format!("point[{i}][{j}]"))?;
                coords.push(c);
            }
        }
        let n = points.len();
        let mut coords_t = vec![0.0; coords.len()];
        for p in 0..n {
            for axis in 0..dim {
                coords_t[axis * n + p] = coords[p * dim + axis];
            }
        }
        Ok(Self {
            coords,
            coords_t,
            dim,
            norm,
        })
    }

    /// Builds a 2-D L2 metric from `(x, y)` pairs — the common case.
    pub fn plane(points: &[(f64, f64)]) -> Result<Self, MetricError> {
        let rows: Vec<Vec<f64>> = points.iter().map(|&(x, y)| vec![x, y]).collect();
        Self::new(&rows, Norm::L2)
    }

    /// An `w × h` unit grid under the chosen norm (row-major point ids).
    pub fn grid(w: usize, h: usize, norm: Norm) -> Result<Self, MetricError> {
        if w == 0 || h == 0 {
            return Err(MetricError::Empty);
        }
        let mut rows = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                rows.push(vec![x as f64, y as f64]);
            }
        }
        Self::new(&rows, norm)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The norm in use.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// Coordinates of a point.
    pub fn coords(&self, p: PointId) -> &[f64] {
        let i = p.index() * self.dim;
        &self.coords[i..i + self.dim]
    }
}

impl Metric for EuclideanMetric {
    fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    fn distance(&self, a: PointId, b: PointId) -> f64 {
        let pa = self.coords(a);
        let pb = self.coords(b);
        match self.norm {
            Norm::L1 => pa.iter().zip(pb).map(|(x, y)| (x - y).abs()).sum(),
            Norm::L2 => pa
                .iter()
                .zip(pb)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Norm::LInf => pa
                .iter()
                .zip(pb)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    /// Bulk row fill over the column-major coordinate copy: one streaming
    /// pass per axis accumulating into `out`, then (for L2) one sqrt pass.
    ///
    /// Bit-identity with the per-call loop: per point, the accumulator
    /// starts at 0.0 and folds the axes in ascending order with the exact
    /// same operations (`+= (x−y)²` / `+= |x−y|` / `max`), which is
    /// precisely the fold [`EuclideanMetric::distance`] performs — only the
    /// loop nest is interchanged, and per-point operation order is what
    /// determines the float result.
    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        let n = self.len();
        assert!(out.len() <= n, "row buffer longer than the space");
        let qb = q.index() * self.dim;
        out.fill(0.0);
        match self.norm {
            Norm::L2 => {
                for axis in 0..self.dim {
                    let qa = self.coords[qb + axis];
                    let col = &self.coords_t[axis * n..axis * n + out.len()];
                    for (slot, &c) in out.iter_mut().zip(col) {
                        let d = c - qa;
                        *slot += d * d;
                    }
                }
                for slot in out.iter_mut() {
                    *slot = slot.sqrt();
                }
            }
            Norm::L1 => {
                for axis in 0..self.dim {
                    let qa = self.coords[qb + axis];
                    let col = &self.coords_t[axis * n..axis * n + out.len()];
                    for (slot, &c) in out.iter_mut().zip(col) {
                        *slot += (c - qa).abs();
                    }
                }
            }
            Norm::LInf => {
                for axis in 0..self.dim {
                    let qa = self.coords[qb + axis];
                    let col = &self.coords_t[axis * n..axis * n + out.len()];
                    for (slot, &c) in out.iter_mut().zip(col) {
                        *slot = slot.max((c - qa).abs());
                    }
                }
            }
        }
    }

    /// Z-order (Morton) curve over per-axis quantized coordinates: each axis
    /// is scaled to an integer grid over its bounding box and the bits are
    /// interleaved, so consecutive ranks share coordinate prefixes — nearby
    /// in space. Ties (coincident or sub-grid points) break by point id, so
    /// the order is deterministic.
    fn coherent_order(&self) -> Option<Vec<u32>> {
        let n = self.len();
        // One interleaved u128 key: cap per-axis resolution so dim axes fit.
        let bits = (128 / self.dim).clamp(1, 16) as u32;
        let levels = (1u64 << bits) - 1;
        // Per-axis affine map onto [0, levels].
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for p in 0..n {
            for (axis, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let c = self.coords[p * self.dim + axis];
                *l = l.min(c);
                *h = h.max(c);
            }
        }
        let scale: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { levels as f64 / (h - l) } else { 0.0 })
            .collect();
        let mut quantized = vec![0u64; self.dim];
        let mut keyed: Vec<(u128, u32)> = (0..n)
            .map(|p| {
                for (axis, q) in quantized.iter_mut().enumerate() {
                    let c = self.coords[p * self.dim + axis];
                    *q = (((c - lo[axis]) * scale[axis]).round() as u64).min(levels);
                }
                let mut code: u128 = 0;
                for b in (0..bits).rev() {
                    for &q in &quantized {
                        code = (code << 1) | u128::from((q >> b) & 1);
                    }
                }
                (code, p as u32)
            })
            .collect();
        keyed.sort_unstable();
        Some(keyed.into_iter().map(|(_, p)| p).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    #[test]
    fn l2_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::L2).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn l1_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::L1).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linf_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::LInf).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plane_constructor() {
        let m = EuclideanMetric::plane(&[(0.0, 0.0), (3.0, 4.0)]).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.distance(PointId(0), PointId(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn grid_has_expected_size_and_spacing() {
        let m = EuclideanMetric::grid(3, 2, Norm::L1).unwrap();
        assert_eq!(m.len(), 6);
        // (0,0) to (2,1): |2| + |1| = 3.
        assert!((m.distance(PointId(0), PointId(5)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_ragged_rows_and_empty() {
        assert!(matches!(
            EuclideanMetric::new(&[vec![0.0], vec![0.0, 1.0]], Norm::L2),
            Err(MetricError::Malformed(_))
        ));
        assert_eq!(
            EuclideanMetric::new(&[], Norm::L2).unwrap_err(),
            MetricError::Empty
        );
        assert!(matches!(
            EuclideanMetric::new(&[vec![f64::NAN]], Norm::L2),
            Err(MetricError::InvalidValue(_))
        ));
    }

    #[test]
    fn zero_distance_on_same_point() {
        let m = EuclideanMetric::plane(&[(2.5, -1.0)]).unwrap();
        assert_eq!(m.distance(PointId(0), PointId(0)), 0.0);
    }

    /// Awkward coordinates (negative, irrational spacing, 3-D) across all
    /// three norms: the bulk fill must reproduce the per-call loop bit for
    /// bit, including on partial rows.
    #[test]
    fn bulk_fill_row_is_bit_identical_to_per_call() {
        let mut pts = Vec::new();
        let mut state = 0x5EEDu64;
        for _ in 0..37 {
            let mut row = Vec::new();
            for _ in 0..3 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                row.push(((state % 20000) as f64 - 10000.0) * 0.37);
            }
            pts.push(row);
        }
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let m = EuclideanMetric::new(&pts, norm).unwrap();
            for q in [0u32, 7, 36] {
                for len in [1usize, 17, 37] {
                    let mut bulk = vec![f64::NAN; len];
                    m.fill_row(PointId(q), &mut bulk);
                    for (p, &d) in bulk.iter().enumerate() {
                        assert_eq!(
                            d.to_bits(),
                            m.distance(PointId(p as u32), PointId(q)).to_bits(),
                            "norm {norm:?}, row {q}, entry {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn coherent_order_is_a_spatially_local_permutation() {
        let m = EuclideanMetric::grid(16, 16, Norm::L2).unwrap();
        let order = m.coherent_order().expect("euclidean metrics have one");
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..256).collect::<Vec<u32>>(),
            "must be a permutation"
        );
        // Z-order on a 16x16 grid: consecutive ranks are close (the curve
        // never jumps more than a quadrant), so the mean adjacent-pair
        // distance must beat row-major id order's (which pays the row wrap).
        let adjacent = |ids: &[u32]| -> f64 {
            ids.windows(2)
                .map(|w| m.distance(PointId(w[0]), PointId(w[1])))
                .sum::<f64>()
                / (ids.len() - 1) as f64
        };
        let identity: Vec<u32> = (0..256).collect();
        assert!(
            adjacent(&order) <= adjacent(&identity),
            "Z-order must not be less coherent than id order on a grid"
        );
        // Determinism: two calls agree exactly.
        assert_eq!(order, m.coherent_order().unwrap());
    }
}
