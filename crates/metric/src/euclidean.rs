//! Point sets in d-dimensional real space under L1, L2, or L∞ norms.
//!
//! Used by the clustered / uniform plane workloads that stand in for the
//! paper's "clients appear at locations in the network" scenario when a
//! geometric embedding is more natural than a graph.

use crate::{check_finite, simd, KdCoords, Metric, MetricError, PointId};

/// Which norm induces the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Manhattan distance, `Σ|aᵢ−bᵢ|`.
    L1,
    /// Euclidean distance, `√(Σ(aᵢ−bᵢ)²)`.
    L2,
    /// Chebyshev distance, `max|aᵢ−bᵢ|`.
    LInf,
}

/// A finite set of points in ℝ^dim with a chosen norm.
///
/// Coordinates are stored twice: row-major (`point * dim + axis`) for the
/// scalar [`Metric::distance`] path, and column-major (`axis * len + point`)
/// for the bulk [`Metric::fill_row`] override, whose inner loops then stream
/// one contiguous coordinate column per axis — the layout the
/// autovectorizer wants. The duplication costs `8·dim·len` bytes (512 KiB
/// at 16384 2-D points), far below any distance cache built on top.
#[derive(Debug, Clone)]
pub struct EuclideanMetric {
    coords: Vec<f64>,
    /// `coords` transposed: `coords_t[axis * len + p] == coords[p * dim + axis]`.
    coords_t: Vec<f64>,
    /// `coords_t` narrowed to f32 — the screening store behind
    /// [`Metric::screen_distances`]. Half the bandwidth of the exact
    /// columns; never used to produce a distance value directly, only
    /// certified `[lo, hi]` brackets (see `screen_distances`).
    screen_t: Vec<f32>,
    /// Per-axis absolute slack covering the worst-case error of an f32
    /// coordinate difference: `4·ε₃₂·max|coord|` on that axis. (Narrowing
    /// each coordinate costs ≤ ε₃₂/2·|c| ≤ ε₃₂/2·M each, and the f32
    /// subtraction rounds once more at ≤ ε₃₂/2·|Δ| ≤ ε₃₂·M — about
    /// 2·ε₃₂·M in total, stored doubled for margin.)
    screen_slack: Vec<f64>,
    dim: usize,
    norm: Norm,
}

/// Relative margin absorbing the f64 rounding of the screen's own
/// accumulation (and of the exact path it brackets): a handful of ulps per
/// axis, generously covered at 1e-12.
const SCREEN_REL_SLACK: f64 = 1e-12;

impl EuclideanMetric {
    /// Builds a metric from per-point coordinate rows (all of length `dim`).
    pub fn new(points: &[Vec<f64>], norm: Norm) -> Result<Self, MetricError> {
        if points.is_empty() {
            return Err(MetricError::Empty);
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(MetricError::Malformed(
                "points must have at least one coordinate".into(),
            ));
        }
        let mut coords = Vec::with_capacity(points.len() * dim);
        for (i, row) in points.iter().enumerate() {
            if row.len() != dim {
                return Err(MetricError::Malformed(format!(
                    "point {i} has {} coordinates, expected {dim}",
                    row.len()
                )));
            }
            for (j, &c) in row.iter().enumerate() {
                check_finite(c, &format!("point[{i}][{j}]"))?;
                coords.push(c);
            }
        }
        let n = points.len();
        let mut coords_t = vec![0.0; coords.len()];
        for p in 0..n {
            for axis in 0..dim {
                coords_t[axis * n + p] = coords[p * dim + axis];
            }
        }
        let screen_t: Vec<f32> = coords_t.iter().map(|&c| c as f32).collect();
        let screen_slack: Vec<f64> = (0..dim)
            .map(|axis| {
                let max_abs = coords_t[axis * n..(axis + 1) * n]
                    .iter()
                    .fold(0.0f64, |m, &c| m.max(c.abs()));
                4.0 * f64::from(f32::EPSILON) * max_abs
            })
            .collect();
        Ok(Self {
            coords,
            coords_t,
            screen_t,
            screen_slack,
            dim,
            norm,
        })
    }

    /// Builds a 2-D L2 metric from `(x, y)` pairs — the common case.
    pub fn plane(points: &[(f64, f64)]) -> Result<Self, MetricError> {
        let rows: Vec<Vec<f64>> = points.iter().map(|&(x, y)| vec![x, y]).collect();
        Self::new(&rows, Norm::L2)
    }

    /// An `w × h` unit grid under the chosen norm (row-major point ids).
    pub fn grid(w: usize, h: usize, norm: Norm) -> Result<Self, MetricError> {
        if w == 0 || h == 0 {
            return Err(MetricError::Empty);
        }
        let mut rows = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                rows.push(vec![x as f64, y as f64]);
            }
        }
        Self::new(&rows, norm)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The norm in use.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// Coordinates of a point.
    pub fn coords(&self, p: PointId) -> &[f64] {
        let i = p.index() * self.dim;
        &self.coords[i..i + self.dim]
    }
}

impl Metric for EuclideanMetric {
    fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    fn distance(&self, a: PointId, b: PointId) -> f64 {
        let pa = self.coords(a);
        let pb = self.coords(b);
        match self.norm {
            Norm::L1 => pa.iter().zip(pb).map(|(x, y)| (x - y).abs()).sum(),
            Norm::L2 => pa
                .iter()
                .zip(pb)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Norm::LInf => pa
                .iter()
                .zip(pb)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    /// Bulk row fill over the column-major coordinate copy: one streaming
    /// pass per axis accumulating into `out`, then (for L2) one sqrt pass.
    /// The per-axis passes run through the runtime-dispatched SIMD kernels
    /// in [`crate::simd`] (AVX/SSE2, scalar off x86-64).
    ///
    /// Bit-identity with the per-call loop: per point, the accumulator
    /// starts at 0.0 and folds the axes in ascending order with the exact
    /// same operations (`+= (x−y)²` / `+= |x−y|` / `max`), which is
    /// precisely the fold [`EuclideanMetric::distance`] performs — only the
    /// loop nest is interchanged, and per-point operation order is what
    /// determines the float result. The SIMD kernels preserve this because
    /// each lane applies the identical scalar operation sequence to one
    /// point (no FMA, no reassociation — see the `simd` module docs).
    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        let n = self.len();
        assert!(out.len() <= n, "row buffer longer than the space");
        let qb = q.index() * self.dim;
        out.fill(0.0);
        match self.norm {
            Norm::L2 => {
                for axis in 0..self.dim {
                    let qa = self.coords[qb + axis];
                    let col = &self.coords_t[axis * n..axis * n + out.len()];
                    simd::accumulate_squared(out, col, qa);
                }
                simd::sqrt_in_place(out);
            }
            Norm::L1 => {
                for axis in 0..self.dim {
                    let qa = self.coords[qb + axis];
                    let col = &self.coords_t[axis * n..axis * n + out.len()];
                    simd::accumulate_abs(out, col, qa);
                }
            }
            Norm::LInf => {
                for axis in 0..self.dim {
                    let qa = self.coords[qb + axis];
                    let col = &self.coords_t[axis * n..axis * n + out.len()];
                    simd::fold_max_abs(out, col, qa);
                }
            }
        }
    }

    /// Z-order (Morton) curve over per-axis quantized coordinates: each axis
    /// is scaled to an integer grid over its bounding box and the bits are
    /// interleaved, so consecutive ranks share coordinate prefixes — nearby
    /// in space. Ties (coincident or sub-grid points) break by point id, so
    /// the order is deterministic.
    fn coherent_order(&self) -> Option<Vec<u32>> {
        let n = self.len();
        // One interleaved u128 key: cap per-axis resolution so dim axes fit.
        let bits = (128 / self.dim).clamp(1, 16) as u32;
        let levels = (1u64 << bits) - 1;
        // Per-axis affine map onto [0, levels].
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for p in 0..n {
            for (axis, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let c = self.coords[p * self.dim + axis];
                *l = l.min(c);
                *h = h.max(c);
            }
        }
        let scale: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { levels as f64 / (h - l) } else { 0.0 })
            .collect();
        let mut quantized = vec![0u64; self.dim];
        let mut keyed: Vec<(u128, u32)> = (0..n)
            .map(|p| {
                for (axis, q) in quantized.iter_mut().enumerate() {
                    let c = self.coords[p * self.dim + axis];
                    *q = (((c - lo[axis]) * scale[axis]).round() as u64).min(levels);
                }
                let mut code: u128 = 0;
                for b in (0..bits).rev() {
                    for &q in &quantized {
                        code = (code << 1) | u128::from((q >> b) & 1);
                    }
                }
                (code, p as u32)
            })
            .collect();
        keyed.sort_unstable();
        Some(keyed.into_iter().map(|(_, p)| p).collect())
    }

    /// The stored coordinates themselves. `isometric` only under L2, where
    /// an ascending-axis L2 fold over them *is* [`EuclideanMetric::distance`];
    /// L1/L∞ coordinates are spatially correlated with the metric (good for
    /// partitioning) but an L2 fold over them is not the metric distance.
    fn kd_coords(&self) -> Option<KdCoords> {
        Some(KdCoords {
            coords: self.coords.clone(),
            dim: self.dim,
            isometric: self.norm == Norm::L2,
        })
    }

    /// f32-store screening with certified brackets.
    ///
    /// Per axis, the screened absolute difference `a = |fl₃₂(c_p) − fl₃₂(c_q)|`
    /// (computed in f32, widened) differs from the exact `|c_p − c_q|` by at
    /// most the stored per-axis slack, so `[max(a−s, 0), a+s]` brackets the
    /// exact axis term. The norm fold over these per-axis brackets is
    /// monotone in every argument, hence brackets the exact fold; a final
    /// relative margin absorbs the f64 rounding of both folds. The result
    /// is `lo ≤ distance(q, p) ≤ hi` — *guaranteed*, so callers may prune
    /// on these bounds and stay bit-identical after exact confirmation.
    ///
    /// Under L2 — the norm the freeze walk screens per block on the hot
    /// path — the loop nest is interchanged to axis-outer: candidates'
    /// column entries are gathered into a contiguous chunk and each axis
    /// runs through [`crate::simd::screen_accumulate_squared`]
    /// (AVX/SSE2/scalar). Per candidate the accumulation folds the axes in
    /// the same ascending order with lane-identical arithmetic, so the
    /// brackets are bit-identical to the candidate-outer loop at every
    /// dispatch tier.
    fn screen_distances(&self, q: PointId, others: &[u32], lo: &mut [f64], hi: &mut [f64]) -> bool {
        assert!(others.len() <= lo.len() && others.len() <= hi.len());
        let n = self.len();
        if self.norm == Norm::L2 {
            let k = others.len();
            let (lo, hi) = (&mut lo[..k], &mut hi[..k]);
            lo.fill(0.0);
            hi.fill(0.0);
            let mut col = [0.0f32; SCREEN_CHUNK];
            let mut start = 0usize;
            while start < k {
                let end = (start + SCREEN_CHUNK).min(k);
                let c = end - start;
                for axis in 0..self.dim {
                    let base = axis * n;
                    let qv = self.screen_t[base + q.index()];
                    for (slot, &p) in col[..c].iter_mut().zip(&others[start..end]) {
                        *slot = self.screen_t[base + p as usize];
                    }
                    simd::screen_accumulate_squared(
                        &mut lo[start..end],
                        &mut hi[start..end],
                        &col[..c],
                        qv,
                        self.screen_slack[axis],
                    );
                }
                for (l, h) in lo[start..end].iter_mut().zip(hi[start..end].iter_mut()) {
                    *l = (l.sqrt() * (1.0 - SCREEN_REL_SLACK)).max(0.0);
                    *h = h.sqrt() * (1.0 + SCREEN_REL_SLACK);
                }
                start = end;
            }
            return true;
        }
        for ((&p, lo), hi) in others.iter().zip(lo.iter_mut()).zip(hi.iter_mut()) {
            let p = p as usize;
            let (mut alo, mut ahi) = (0.0f64, 0.0f64);
            for axis in 0..self.dim {
                let base = axis * n;
                let a = f64::from(self.screen_t[base + p] - self.screen_t[base + q.index()]).abs();
                let s = self.screen_slack[axis];
                let al = (a - s).max(0.0);
                let ah = a + s;
                match self.norm {
                    Norm::L1 => {
                        alo += al;
                        ahi += ah;
                    }
                    _ => {
                        alo = alo.max(al);
                        ahi = ahi.max(ah);
                    }
                }
            }
            *lo = (alo * (1.0 - SCREEN_REL_SLACK)).max(0.0);
            *hi = ahi * (1.0 + SCREEN_REL_SLACK);
        }
        true
    }
}

/// Candidates per gather chunk of the axis-outer L2 screening pass: the
/// block sizes it screens (16 or 64 locations) fit in one chunk, and the
/// fixed-size buffer keeps the trait method allocation-free for any caller.
const SCREEN_CHUNK: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    #[test]
    fn l2_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::L2).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn l1_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::L1).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linf_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::LInf).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plane_constructor() {
        let m = EuclideanMetric::plane(&[(0.0, 0.0), (3.0, 4.0)]).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.distance(PointId(0), PointId(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn grid_has_expected_size_and_spacing() {
        let m = EuclideanMetric::grid(3, 2, Norm::L1).unwrap();
        assert_eq!(m.len(), 6);
        // (0,0) to (2,1): |2| + |1| = 3.
        assert!((m.distance(PointId(0), PointId(5)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_ragged_rows_and_empty() {
        assert!(matches!(
            EuclideanMetric::new(&[vec![0.0], vec![0.0, 1.0]], Norm::L2),
            Err(MetricError::Malformed(_))
        ));
        assert_eq!(
            EuclideanMetric::new(&[], Norm::L2).unwrap_err(),
            MetricError::Empty
        );
        assert!(matches!(
            EuclideanMetric::new(&[vec![f64::NAN]], Norm::L2),
            Err(MetricError::InvalidValue(_))
        ));
    }

    #[test]
    fn zero_distance_on_same_point() {
        let m = EuclideanMetric::plane(&[(2.5, -1.0)]).unwrap();
        assert_eq!(m.distance(PointId(0), PointId(0)), 0.0);
    }

    /// Awkward coordinates (negative, irrational spacing, 3-D) across all
    /// three norms: the bulk fill must reproduce the per-call loop bit for
    /// bit, including on partial rows.
    #[test]
    fn bulk_fill_row_is_bit_identical_to_per_call() {
        let mut pts = Vec::new();
        let mut state = 0x5EEDu64;
        for _ in 0..37 {
            let mut row = Vec::new();
            for _ in 0..3 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                row.push(((state % 20000) as f64 - 10000.0) * 0.37);
            }
            pts.push(row);
        }
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let m = EuclideanMetric::new(&pts, norm).unwrap();
            for q in [0u32, 7, 36] {
                for len in [1usize, 17, 37] {
                    let mut bulk = vec![f64::NAN; len];
                    m.fill_row(PointId(q), &mut bulk);
                    for (p, &d) in bulk.iter().enumerate() {
                        assert_eq!(
                            d.to_bits(),
                            m.distance(PointId(p as u32), PointId(q)).to_bits(),
                            "norm {norm:?}, row {q}, entry {p}"
                        );
                    }
                }
            }
        }
    }

    /// The same adversarial point cloud as the bulk-fill test: the SIMD
    /// dispatch must be invisible — rows computed with the explicit kernels
    /// and with the scalar fallback agree bit for bit.
    #[test]
    fn simd_toggle_never_changes_row_bits() {
        let mut pts = Vec::new();
        let mut state = 0xA5EDu64;
        for _ in 0..53 {
            let mut row = Vec::new();
            for _ in 0..3 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                row.push(((state % 20000) as f64 - 10000.0) * 0.59);
            }
            pts.push(row);
        }
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let m = EuclideanMetric::new(&pts, norm).unwrap();
            for q in [0u32, 11, 52] {
                let mut on = vec![f64::NAN; 53];
                m.fill_row(PointId(q), &mut on);
                simd::set_simd_enabled(false);
                let mut off = vec![f64::NAN; 53];
                m.fill_row(PointId(q), &mut off);
                simd::set_simd_enabled(true);
                for (p, (a, b)) in on.iter().zip(&off).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "norm {norm:?}, row {q}, entry {p}"
                    );
                }
            }
        }
    }

    /// Screening brackets must contain the exact distance for every pair,
    /// including coincident points and large-magnitude coordinates where
    /// f32 narrowing loses real bits.
    #[test]
    fn screen_bounds_bracket_exact_distances() {
        let mut pts = Vec::new();
        let mut state = 0xBEEFu64;
        for i in 0..64 {
            let mut row = Vec::new();
            for _ in 0..2 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix tiny offsets with 1e8-scale magnitudes: the f32 store
                // cannot represent these exactly, so the slack must carry.
                let v = ((state % 65536) as f64 - 32768.0) * 0.001;
                row.push(if i % 3 == 0 { v * 1.0e8 } else { v });
            }
            pts.push(row);
        }
        // A duplicate point exercises the d = 0 corner.
        pts.push(pts[0].clone());
        let others: Vec<u32> = (0..pts.len() as u32).collect();
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let m = EuclideanMetric::new(&pts, norm).unwrap();
            let mut lo = vec![f64::NAN; others.len()];
            let mut hi = vec![f64::NAN; others.len()];
            for q in [0u32, 9, 64] {
                assert!(m.screen_distances(PointId(q), &others, &mut lo, &mut hi));
                for (i, &p) in others.iter().enumerate() {
                    let d = m.distance(PointId(q), PointId(p));
                    assert!(
                        lo[i] <= d && d <= hi[i],
                        "norm {norm:?}: screen [{}, {}] misses d({q},{p}) = {d}",
                        lo[i],
                        hi[i]
                    );
                    assert!(lo[i] >= 0.0);
                }
            }
        }
    }

    #[test]
    fn kd_coords_are_isometric_exactly_for_l2() {
        let pts = unit_square();
        for (norm, iso) in [(Norm::L1, false), (Norm::L2, true), (Norm::LInf, false)] {
            let m = EuclideanMetric::new(&pts, norm).unwrap();
            let kd = m.kd_coords().expect("euclidean metrics embed");
            assert_eq!(kd.dim, 2);
            assert_eq!(kd.coords.len(), 8);
            assert_eq!(kd.isometric, iso);
            if iso {
                // Ascending-axis L2 fold over the coords == distance, bitwise.
                for a in 0..4usize {
                    for b in 0..4usize {
                        let mut acc = 0.0f64;
                        for axis in 0..2 {
                            let d = kd.coords[a * 2 + axis] - kd.coords[b * 2 + axis];
                            acc += d * d;
                        }
                        assert_eq!(
                            acc.sqrt().to_bits(),
                            m.distance(PointId(a as u32), PointId(b as u32)).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn coherent_order_is_a_spatially_local_permutation() {
        let m = EuclideanMetric::grid(16, 16, Norm::L2).unwrap();
        let order = m.coherent_order().expect("euclidean metrics have one");
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..256).collect::<Vec<u32>>(),
            "must be a permutation"
        );
        // Z-order on a 16x16 grid: consecutive ranks are close (the curve
        // never jumps more than a quadrant), so the mean adjacent-pair
        // distance must beat row-major id order's (which pays the row wrap).
        let adjacent = |ids: &[u32]| -> f64 {
            ids.windows(2)
                .map(|w| m.distance(PointId(w[0]), PointId(w[1])))
                .sum::<f64>()
                / (ids.len() - 1) as f64
        };
        let identity: Vec<u32> = (0..256).collect();
        assert!(
            adjacent(&order) <= adjacent(&identity),
            "Z-order must not be less coherent than id order on a grid"
        );
        // Determinism: two calls agree exactly.
        assert_eq!(order, m.coherent_order().unwrap());
    }
}
