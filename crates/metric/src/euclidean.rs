//! Point sets in d-dimensional real space under L1, L2, or L∞ norms.
//!
//! Used by the clustered / uniform plane workloads that stand in for the
//! paper's "clients appear at locations in the network" scenario when a
//! geometric embedding is more natural than a graph.

use crate::{check_finite, Metric, MetricError, PointId};

/// Which norm induces the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Manhattan distance, `Σ|aᵢ−bᵢ|`.
    L1,
    /// Euclidean distance, `√(Σ(aᵢ−bᵢ)²)`.
    L2,
    /// Chebyshev distance, `max|aᵢ−bᵢ|`.
    LInf,
}

/// A finite set of points in ℝ^dim with a chosen norm.
///
/// Coordinates are stored row-major in a flat buffer (`point * dim + axis`)
/// to keep distance evaluation cache-friendly.
#[derive(Debug, Clone)]
pub struct EuclideanMetric {
    coords: Vec<f64>,
    dim: usize,
    norm: Norm,
}

impl EuclideanMetric {
    /// Builds a metric from per-point coordinate rows (all of length `dim`).
    pub fn new(points: &[Vec<f64>], norm: Norm) -> Result<Self, MetricError> {
        if points.is_empty() {
            return Err(MetricError::Empty);
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(MetricError::Malformed(
                "points must have at least one coordinate".into(),
            ));
        }
        let mut coords = Vec::with_capacity(points.len() * dim);
        for (i, row) in points.iter().enumerate() {
            if row.len() != dim {
                return Err(MetricError::Malformed(format!(
                    "point {i} has {} coordinates, expected {dim}",
                    row.len()
                )));
            }
            for (j, &c) in row.iter().enumerate() {
                check_finite(c, &format!("point[{i}][{j}]"))?;
                coords.push(c);
            }
        }
        Ok(Self { coords, dim, norm })
    }

    /// Builds a 2-D L2 metric from `(x, y)` pairs — the common case.
    pub fn plane(points: &[(f64, f64)]) -> Result<Self, MetricError> {
        let rows: Vec<Vec<f64>> = points.iter().map(|&(x, y)| vec![x, y]).collect();
        Self::new(&rows, Norm::L2)
    }

    /// An `w × h` unit grid under the chosen norm (row-major point ids).
    pub fn grid(w: usize, h: usize, norm: Norm) -> Result<Self, MetricError> {
        if w == 0 || h == 0 {
            return Err(MetricError::Empty);
        }
        let mut rows = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                rows.push(vec![x as f64, y as f64]);
            }
        }
        Self::new(&rows, norm)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The norm in use.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// Coordinates of a point.
    pub fn coords(&self, p: PointId) -> &[f64] {
        let i = p.index() * self.dim;
        &self.coords[i..i + self.dim]
    }
}

impl Metric for EuclideanMetric {
    fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    fn distance(&self, a: PointId, b: PointId) -> f64 {
        let pa = self.coords(a);
        let pb = self.coords(b);
        match self.norm {
            Norm::L1 => pa.iter().zip(pb).map(|(x, y)| (x - y).abs()).sum(),
            Norm::L2 => pa
                .iter()
                .zip(pb)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Norm::LInf => pa
                .iter()
                .zip(pb)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    #[test]
    fn l2_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::L2).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn l1_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::L1).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linf_diagonal_of_unit_square() {
        let m = EuclideanMetric::new(&unit_square(), Norm::LInf).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plane_constructor() {
        let m = EuclideanMetric::plane(&[(0.0, 0.0), (3.0, 4.0)]).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.distance(PointId(0), PointId(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn grid_has_expected_size_and_spacing() {
        let m = EuclideanMetric::grid(3, 2, Norm::L1).unwrap();
        assert_eq!(m.len(), 6);
        // (0,0) to (2,1): |2| + |1| = 3.
        assert!((m.distance(PointId(0), PointId(5)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_ragged_rows_and_empty() {
        assert!(matches!(
            EuclideanMetric::new(&[vec![0.0], vec![0.0, 1.0]], Norm::L2),
            Err(MetricError::Malformed(_))
        ));
        assert_eq!(
            EuclideanMetric::new(&[], Norm::L2).unwrap_err(),
            MetricError::Empty
        );
        assert!(matches!(
            EuclideanMetric::new(&[vec![f64::NAN]], Norm::L2),
            Err(MetricError::InvalidValue(_))
        ));
    }

    #[test]
    fn zero_distance_on_same_point() {
        let m = EuclideanMetric::plane(&[(2.5, -1.0)]).unwrap();
        assert_eq!(m.distance(PointId(0), PointId(0)), 0.0);
    }
}
