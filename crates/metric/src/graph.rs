//! Shortest-path metrics over weighted undirected graphs.
//!
//! This is the substrate for the paper's motivating scenario: "a provider of
//! services in a network infrastructure" (§1). Points are network nodes and
//! the metric is the shortest-path closure, computed once at construction
//! via Dijkstra from every node (binary heap, CSR adjacency).

use crate::{check_finite_nonneg, Metric, MetricError, PointId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A weighted undirected graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbor node ids.
    targets: Vec<u32>,
    /// Edge weights, parallel to `targets`.
    weights: Vec<f64>,
    n: usize,
}

impl Graph {
    /// Builds a graph from an undirected edge list `(u, v, w)`.
    ///
    /// Self-loops are rejected; parallel edges are allowed (the lighter one
    /// wins implicitly during shortest-path computation).
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::Empty);
        }
        let mut degree = vec![0u32; n];
        for &(u, v, w) in edges {
            for x in [u, v] {
                if x as usize >= n {
                    return Err(MetricError::PointOutOfRange { point: x, len: n });
                }
            }
            if u == v {
                return Err(MetricError::Malformed(format!("self-loop at node {u}")));
            }
            check_finite_nonneg(w, &format!("weight({u},{v})"))?;
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let m2 = edges.len() * 2;
        let mut targets = vec![0u32; m2];
        let mut weights = vec![0.0f64; m2];
        let mut cursor = offsets.clone();
        for &(u, v, w) in edges {
            for (a, b) in [(u, v), (v, u)] {
                let slot = cursor[a as usize] as usize;
                targets[slot] = b;
                weights[slot] = w;
                cursor[a as usize] += 1;
            }
        }
        Ok(Self {
            offsets,
            targets,
            weights,
            n,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Single-source shortest paths (Dijkstra). `f64::INFINITY` marks
    /// unreachable nodes.
    pub fn dijkstra(&self, source: u32) -> Vec<f64> {
        #[derive(PartialEq)]
        struct Entry {
            dist: f64,
            node: u32,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance via reversed comparison; distances are
                // finite non-NaN by construction.
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .expect("distances are not NaN")
                    .then(other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist = vec![f64::INFINITY; self.n];
        dist[source as usize] = 0.0;
        let mut heap = BinaryHeap::with_capacity(self.n);
        heap.push(Entry {
            dist: 0.0,
            node: source,
        });
        while let Some(Entry { dist: d, node: u }) = heap.pop() {
            if d > dist[u as usize] {
                continue; // stale entry
            }
            for (v, w) in self.neighbors(u) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Entry { dist: nd, node: v });
                }
            }
        }
        dist
    }
}

/// The shortest-path metric of a connected weighted graph.
///
/// All-pairs distances are materialized at construction (`n` Dijkstra runs,
/// O(n·(m + n log n))), giving O(1) queries thereafter.
#[derive(Debug, Clone)]
pub struct GraphMetric {
    apsp: Vec<f64>,
    n: usize,
    /// Greedy nearest-neighbor chain over the closure (see
    /// [`Metric::coherent_order`]); precomputed here because consumers ask
    /// per engine construction and the `O(n²)` walk belongs with the other
    /// one-time closure work, not on any measured path.
    coherent: Vec<u32>,
}

impl GraphMetric {
    /// Computes the metric closure of `graph`. Fails if disconnected.
    ///
    /// The closure is **exactly symmetrized**: per-source Dijkstra sums can
    /// disagree between directions in the last ulp (float addition is not
    /// associative along reversed paths), so the upper triangle is copied
    /// over the lower one. The result is still a shortest-path metric to
    /// the same accuracy, is bitwise symmetric — `d(a, b) == d(b, a)`
    /// exactly — and makes a distance *row* equal a distance *column*, so
    /// [`Metric::fill_row`] can hand out contiguous memory instead of a
    /// cache-hostile strided gather.
    pub fn new(graph: &Graph) -> Result<Self, MetricError> {
        let n = graph.node_count();
        let mut apsp = vec![0.0; n * n];
        for s in 0..n as u32 {
            let dist = graph.dijkstra(s);
            for (t, &d) in dist.iter().enumerate() {
                if !d.is_finite() {
                    return Err(MetricError::Disconnected {
                        from: s,
                        to: t as u32,
                    });
                }
                apsp[s as usize * n + t] = d;
            }
        }
        for s in 0..n {
            for t in (s + 1)..n {
                apsp[t * n + s] = apsp[s * n + t];
            }
        }
        let coherent = Self::nearest_neighbor_chain(&apsp, n);
        Ok(Self { apsp, n, coherent })
    }

    /// Greedy nearest-neighbor chain from node 0: repeatedly append the
    /// unvisited node closest to the last one (ties to the smallest id).
    /// Consecutive ranks are then short hops, so fixed-size runs of the
    /// order have small covering radii — the property block-partitioned
    /// indexes exploit. Deterministic by construction.
    fn nearest_neighbor_chain(apsp: &[f64], n: usize) -> Vec<u32> {
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut cur = 0usize;
        visited[0] = true;
        order.push(0u32);
        for _ in 1..n {
            let row = &apsp[cur * n..(cur + 1) * n];
            let mut best = usize::MAX;
            let mut bd = f64::INFINITY;
            for (t, (&d, &v)) in row.iter().zip(&visited).enumerate() {
                if !v && d < bd {
                    bd = d;
                    best = t;
                }
            }
            visited[best] = true;
            order.push(best as u32);
            cur = best;
        }
        order
    }

    /// Convenience: build straight from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Result<Self, MetricError> {
        Self::new(&Graph::from_edges(n, edges)?)
    }

    /// A cycle of `n` nodes with unit edges.
    pub fn ring(n: usize) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::Empty);
        }
        if n == 1 {
            return Self::from_edges(1, &[]);
        }
        let mut edges = Vec::with_capacity(n);
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32, 1.0));
        }
        Self::from_edges(n, &edges)
    }

    /// A star: node 0 is the hub, spokes have the given weight.
    pub fn star(n_leaves: usize, spoke: f64) -> Result<Self, MetricError> {
        let n = n_leaves + 1;
        let edges: Vec<(u32, u32, f64)> = (1..n as u32).map(|i| (0, i, spoke)).collect();
        Self::from_edges(n, &edges)
    }
}

impl Metric for GraphMetric {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.apsp[a.index() * self.n + b.index()]
    }

    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        // The closure is exactly symmetric by construction, so the
        // contiguous row q IS the column q — a straight copy is
        // bit-identical to the per-call loop.
        let start = q.index() * self.n;
        out.copy_from_slice(&self.apsp[start..start + out.len()]);
    }

    fn coherent_order(&self) -> Option<Vec<u32>> {
        Some(self.coherent.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dijkstra_on_path_graph() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]).unwrap();
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 7.0]);
    }

    #[test]
    fn dijkstra_prefers_lighter_parallel_edge() {
        let g = Graph::from_edges(2, &[(0, 1, 5.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(g.dijkstra(0)[1], 2.0);
    }

    #[test]
    fn shortcut_beats_long_path() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.5)]).unwrap();
        let m = GraphMetric::new(&g).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 1.5).abs() < 1e-12);
        assert!((m.distance(PointId(0), PointId(2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let err = GraphMetric::from_edges(3, &[(0, 1, 1.0)]).unwrap_err();
        assert!(matches!(err, MetricError::Disconnected { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(2, &[(0, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, MetricError::Malformed(_)));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = Graph::from_edges(2, &[(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, MetricError::PointOutOfRange { .. }));
    }

    #[test]
    fn negative_weight_rejected() {
        let err = Graph::from_edges(2, &[(0, 1, -1.0)]).unwrap_err();
        assert!(matches!(err, MetricError::InvalidValue(_)));
    }

    #[test]
    fn ring_distances_wrap_around() {
        let m = GraphMetric::ring(6).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 3.0).abs() < 1e-12);
        assert!((m.distance(PointId(0), PointId(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_distances() {
        let m = GraphMetric::star(3, 2.0).unwrap();
        assert!((m.distance(PointId(0), PointId(1)) - 2.0).abs() < 1e-12);
        assert!((m.distance(PointId(1), PointId(2)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_ring() {
        let m = GraphMetric::ring(1).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn coherent_order_walks_the_ring_in_sequence() {
        let m = GraphMetric::ring(8).unwrap();
        let order = m.coherent_order().unwrap();
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>(), "must be a permutation");
        // On a unit ring the greedy chain from 0 hugs neighbors: every hop
        // has distance 1 (ties to the smaller id pick 1, 2, 3, ...).
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn metric_closure_satisfies_triangle() {
        let m = GraphMetric::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 3.0),
                (2, 3, 1.0),
                (3, 4, 2.0),
                (4, 0, 2.5),
                (1, 3, 1.2),
            ],
        )
        .unwrap();
        let dense = crate::dense::DenseMetric::from_metric(&m).unwrap();
        dense.validate().unwrap();
    }
}
