//! Finite metric spaces for facility-location problems.
//!
//! The OMFLP model (paper §1.1) places requests and facilities at points of a
//! finite metric space `M`. This crate provides the metric substrate:
//!
//! * [`line::LineMetric`] — points on the real line (the paper's lower bounds
//!   already hold on line metrics, Corollary 3);
//! * [`euclidean::EuclideanMetric`] — point sets in d-dimensional space with
//!   L1/L2/L∞ norms;
//! * [`dense::DenseMetric`] — an explicit distance matrix, validated against
//!   the metric axioms;
//! * [`graph::GraphMetric`] — shortest-path closure of a weighted graph (the
//!   "network infrastructure" of the paper's motivating scenario);
//! * [`tree::TreeMetric`] — shortest paths on a weighted tree.
//!
//! All distances are non-negative `f64`; identity of indiscernibles is
//! relaxed to `d(a, a) = 0` (distinct points at distance zero are allowed,
//! matching the paper where multiple facilities may share a point).

pub mod blocked;
pub mod dense;
pub mod euclidean;
pub mod graph;
pub mod line;
pub mod simd;
pub mod tree;
pub mod validate;

use std::fmt;

/// A coordinate embedding of the point set, for kd-tree consumers.
///
/// Returned by [`Metric::kd_coords`] when the metric's points live in (or
/// embed into) a low-dimensional real space. `coords` is row-major
/// (`point * dim + axis`), one row per point in id order.
///
/// `isometric` asserts that the **L2 distance over these coordinates,
/// folded over axes in ascending order exactly as
/// [`euclidean::EuclideanMetric::distance`] does, is bit-identical to
/// [`Metric::distance`]**. Consumers may then substitute their own L2
/// computation over the coordinates for `distance` calls with no float
/// divergence (up to the documented per-op rounding of any *different*
/// fold they choose). When `isometric` is `false` the coordinates are only
/// spatially correlated with the metric (e.g. an L1/L∞ norm over the same
/// points) — good enough to build partitions, never for distance values.
#[derive(Debug, Clone)]
pub struct KdCoords {
    /// Row-major coordinates, `len * dim` entries, all finite.
    pub coords: Vec<f64>,
    /// Dimension of the embedding (≥ 1).
    pub dim: usize,
    /// See the type docs: ascending-axis L2 over `coords` equals `distance`.
    pub isometric: bool,
}

/// Index of a point of the finite metric space.
///
/// Points are dense indices `0..metric.len()`; the newtype prevents mixing
/// them up with commodity or request indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointId(pub u32);

impl PointId {
    /// The point index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors produced while constructing or validating metric spaces.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// The space has no points.
    Empty,
    /// A coordinate or edge weight is NaN, infinite, or negative.
    InvalidValue(String),
    /// The triangle inequality (or symmetry / zero diagonal) is violated.
    AxiomViolation(String),
    /// A point index is out of range.
    PointOutOfRange { point: u32, len: usize },
    /// The underlying graph is disconnected, so some distances are undefined.
    Disconnected { from: u32, to: u32 },
    /// Structural problem in the input (e.g. a tree with a cycle).
    Malformed(String),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::Empty => write!(f, "metric space must contain at least one point"),
            MetricError::InvalidValue(s) => write!(f, "invalid numeric value: {s}"),
            MetricError::AxiomViolation(s) => write!(f, "metric axiom violated: {s}"),
            MetricError::PointOutOfRange { point, len } => {
                write!(
                    f,
                    "point index {point} out of range for space of {len} points"
                )
            }
            MetricError::Disconnected { from, to } => {
                write!(f, "graph is disconnected: no path from {from} to {to}")
            }
            MetricError::Malformed(s) => write!(f, "malformed input: {s}"),
        }
    }
}

impl std::error::Error for MetricError {}

/// A finite metric space.
///
/// Implementations must guarantee, for all in-range points:
/// `distance(a, b) >= 0`, `distance(a, a) == 0`,
/// `distance(a, b) == distance(b, a)`, and the triangle inequality
/// (up to floating-point rounding; see [`validate`]).
pub trait Metric: Send + Sync {
    /// Number of points in the space.
    fn len(&self) -> usize;

    /// Distance between two points. Panics if either index is out of range.
    fn distance(&self, a: PointId, b: PointId) -> f64;

    /// Fills `out[p] = distance(PointId(p), q)` for `p` in `0..out.len()`.
    ///
    /// This is the bulk primitive behind row caches
    /// ([`blocked::BlockedRowCache`]) and the engines' per-arrival distance
    /// rows. Implementations may override it with a faster gather (e.g. a
    /// slice walk over a stored matrix) but must produce **bit-identical**
    /// values to the per-call loop — callers rely on cached rows being
    /// indistinguishable from calling [`Metric::distance`]. Panics if
    /// `out.len() > self.len()` or `q` is out of range.
    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        for (p, slot) in out.iter_mut().enumerate() {
            *slot = self.distance(PointId(p as u32), q);
        }
    }

    /// A spatially coherent ordering of the point ids, or `None` when the
    /// metric has no cheap one (callers fall back to identity order).
    ///
    /// The returned vector is a permutation of `0..len` such that points
    /// adjacent in the order tend to be close in the metric — the locality
    /// lever behind block-partitioned indexes (a run of consecutive entries
    /// then has a small covering radius, so triangle-inequality distance
    /// bounds over the run are tight). Sorted lines return position order,
    /// Euclidean point sets a Z-order (Morton) curve, graphs a greedy
    /// nearest-neighbor chain over the shortest-path closure, trees a DFS
    /// preorder (subtrees stay contiguous).
    ///
    /// Contract: the order must be **deterministic** (same metric → same
    /// permutation, bit for bit), and implementors returning `Some` assert
    /// that their `distance` satisfies the triangle inequality up to a few
    /// ulps of relative rounding error — consumers that derive pruning
    /// bounds from representatives and covering radii budget only for
    /// float-level violations, not for approximately-metric data. Metrics
    /// that merely *validate* the axioms under a tolerance (e.g. an
    /// arbitrary dense matrix) must return `None`.
    fn coherent_order(&self) -> Option<Vec<u32>> {
        None
    }

    /// `true` if the space has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all point ids of the space.
    fn points(&self) -> PointIter {
        PointIter {
            next: 0,
            len: self.len() as u32,
        }
    }

    /// The nearest point to `from` among `candidates`, with its distance.
    ///
    /// Returns `None` when `candidates` is empty. Ties break to the earliest
    /// candidate, so the result is deterministic.
    fn nearest_among(&self, from: PointId, candidates: &[PointId]) -> Option<(PointId, f64)> {
        let mut best: Option<(PointId, f64)> = None;
        for &c in candidates {
            let d = self.distance(from, c);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((c, d)),
            }
        }
        best
    }

    /// A coordinate embedding of the points for kd-tree partitioning, or
    /// `None` when the metric has no cheap low-dimensional one (graphs,
    /// arbitrary dense matrices). See [`KdCoords`] for the contract; the
    /// embedding must be deterministic, like [`Metric::coherent_order`].
    fn kd_coords(&self) -> Option<KdCoords> {
        None
    }

    /// Certified low-precision distance screening: on success, fills
    /// `lo[i] ≤ distance(q, others[i]) ≤ hi[i]` for every candidate and
    /// returns `true`. The bounds are typically computed from a reduced
    /// (f32) coordinate store with a per-axis error slack, so they are
    /// cheap but **guaranteed to bracket the exact f64 value** — callers
    /// prune candidates whose bounds prove them non-optimal and confirm the
    /// survivors with [`Metric::distance`], keeping every downstream result
    /// bit-identical to a full exact pass.
    ///
    /// The default returns `false` (no screening available); callers must
    /// then fall back to exact distances for all candidates.
    fn screen_distances(
        &self,
        _q: PointId,
        _others: &[u32],
        _lo: &mut [f64],
        _hi: &mut [f64],
    ) -> bool {
        false
    }

    /// Diameter of the space (maximum pairwise distance). O(n²).
    fn diameter(&self) -> f64 {
        let n = self.len();
        let mut best = 0.0_f64;
        for a in 0..n {
            for b in (a + 1)..n {
                let d = self.distance(PointId(a as u32), PointId(b as u32));
                if d > best {
                    best = d;
                }
            }
        }
        best
    }
}

impl Metric for Box<dyn Metric> {
    fn len(&self) -> usize {
        self.as_ref().len()
    }

    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.as_ref().distance(a, b)
    }

    fn fill_row(&self, q: PointId, out: &mut [f64]) {
        // Forward so a concrete override (dense/graph slice gathers) is one
        // virtual call per row, not one per entry.
        self.as_ref().fill_row(q, out)
    }

    fn coherent_order(&self) -> Option<Vec<u32>> {
        self.as_ref().coherent_order()
    }

    fn kd_coords(&self) -> Option<KdCoords> {
        self.as_ref().kd_coords()
    }

    fn screen_distances(&self, q: PointId, others: &[u32], lo: &mut [f64], hi: &mut [f64]) -> bool {
        self.as_ref().screen_distances(q, others, lo, hi)
    }
}

/// Iterator over the point ids `0..len` of a metric space.
#[derive(Debug, Clone)]
pub struct PointIter {
    next: u32,
    len: u32,
}

impl Iterator for PointIter {
    type Item = PointId;

    fn next(&mut self) -> Option<PointId> {
        if self.next < self.len {
            let p = PointId(self.next);
            self.next += 1;
            Some(p)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PointIter {}

/// Checks that `v` is a finite, non-negative coordinate/weight.
pub(crate) fn check_finite_nonneg(v: f64, what: &str) -> Result<(), MetricError> {
    if !v.is_finite() {
        return Err(MetricError::InvalidValue(format!(
            "{what} = {v} is not finite"
        )));
    }
    if v < 0.0 {
        return Err(MetricError::InvalidValue(format!(
            "{what} = {v} is negative"
        )));
    }
    Ok(())
}

/// Checks that `v` is a finite coordinate (may be negative, e.g. line positions).
pub(crate) fn check_finite(v: f64, what: &str) -> Result<(), MetricError> {
    if !v.is_finite() {
        return Err(MetricError::InvalidValue(format!(
            "{what} = {v} is not finite"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineMetric;

    #[test]
    fn point_iter_yields_all_points() {
        let m = LineMetric::new(vec![0.0, 1.0, 5.0]).unwrap();
        let pts: Vec<u32> = m.points().map(|p| p.0).collect();
        assert_eq!(pts, vec![0, 1, 2]);
        assert_eq!(m.points().len(), 3);
    }

    #[test]
    fn nearest_among_breaks_ties_to_earliest() {
        let m = LineMetric::new(vec![0.0, 2.0, -2.0]).unwrap();
        // Both candidates at distance 2 from point 0; earliest (p1) wins.
        let (p, d) = m
            .nearest_among(PointId(0), &[PointId(1), PointId(2)])
            .unwrap();
        assert_eq!(p, PointId(1));
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_among_empty_candidates_is_none() {
        let m = LineMetric::new(vec![0.0]).unwrap();
        assert!(m.nearest_among(PointId(0), &[]).is_none());
    }

    #[test]
    fn diameter_of_line() {
        let m = LineMetric::new(vec![-1.0, 4.0, 2.0]).unwrap();
        assert!((m.diameter() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn boxed_metric_delegates() {
        let m: Box<dyn Metric> = Box::new(LineMetric::new(vec![0.0, 3.0]).unwrap());
        assert_eq!(m.len(), 2);
        assert!((m.distance(PointId(0), PointId(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_impls() {
        assert_eq!(PointId(7).to_string(), "p7");
        let e = MetricError::PointOutOfRange { point: 9, len: 3 };
        assert!(e.to_string().contains("out of range"));
    }
}
