//! Points on the real line.
//!
//! The paper's lower bounds (Theorem 2 on a single point, Corollary 3 on a
//! line) use exactly this class of metrics, so line metrics are the primary
//! adversarial substrate.

use crate::{check_finite, KdCoords, Metric, MetricError, PointId};

/// A finite metric of points on ℝ with `d(a, b) = |x_a − x_b|`.
#[derive(Debug, Clone)]
pub struct LineMetric {
    positions: Vec<f64>,
    /// Point ids sorted by position; used by [`LineMetric::nearest_sorted`].
    by_position: Vec<u32>,
}

impl LineMetric {
    /// Builds a line metric from point positions (any order, duplicates allowed).
    pub fn new(positions: Vec<f64>) -> Result<Self, MetricError> {
        if positions.is_empty() {
            return Err(MetricError::Empty);
        }
        for (i, &x) in positions.iter().enumerate() {
            check_finite(x, &format!("position[{i}]"))?;
        }
        let mut by_position: Vec<u32> = (0..positions.len() as u32).collect();
        by_position.sort_by(|&a, &b| {
            positions[a as usize]
                .partial_cmp(&positions[b as usize])
                .expect("positions are finite")
                .then(a.cmp(&b))
        });
        Ok(Self {
            positions,
            by_position,
        })
    }

    /// `n` points evenly spaced on `[0, span]`.
    pub fn uniform(n: usize, span: f64) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::Empty);
        }
        check_finite(span, "span")?;
        if span < 0.0 {
            return Err(MetricError::InvalidValue(format!(
                "span = {span} is negative"
            )));
        }
        let step = if n > 1 { span / (n as f64 - 1.0) } else { 0.0 };
        Self::new((0..n).map(|i| i as f64 * step).collect())
    }

    /// A single point at the origin (the Theorem 2 lower-bound space).
    pub fn single_point() -> Self {
        Self::new(vec![0.0]).expect("one finite point is always valid")
    }

    /// The position of a point.
    pub fn position(&self, p: PointId) -> f64 {
        self.positions[p.index()]
    }

    /// All positions, in point-id order.
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// Nearest point of the whole space to coordinate `x`, via binary search
    /// on the sorted order — O(log n) instead of the trait's linear scan.
    pub fn nearest_to_coord(&self, x: f64) -> (PointId, f64) {
        debug_assert!(!self.by_position.is_empty());
        let idx = self
            .by_position
            .partition_point(|&p| self.positions[p as usize] < x);
        let mut best = (PointId(self.by_position[0]), f64::INFINITY);
        for cand in [idx.wrapping_sub(1), idx] {
            if let Some(&p) = self.by_position.get(cand) {
                let d = (self.positions[p as usize] - x).abs();
                if d < best.1 || (d == best.1 && p < best.0 .0) {
                    best = (PointId(p), d);
                }
            }
        }
        best
    }
}

impl Metric for LineMetric {
    fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        (self.positions[a.index()] - self.positions[b.index()]).abs()
    }

    /// Position order (already maintained for [`LineMetric::nearest_to_coord`]):
    /// consecutive ranks are metric neighbors, the best possible 1-D order.
    fn coherent_order(&self) -> Option<Vec<u32>> {
        Some(self.by_position.clone())
    }

    /// The positions as a 1-D embedding. Isometric: in round-to-nearest
    /// IEEE arithmetic `√(fl(r·r)) = |r|` exactly for the one-axis L2 fold
    /// (absent overflow/deep-subnormal squares, which the magnitude guard
    /// rules out), so the Euclidean-style fold reproduces `|x_a − x_b|` bit
    /// for bit.
    fn kd_coords(&self) -> Option<KdCoords> {
        let max_abs = self.positions.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        Some(KdCoords {
            coords: self.positions.clone(),
            dim: 1,
            isometric: max_abs < 1.0e150,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_absolute_differences() {
        let m = LineMetric::new(vec![1.0, -2.0, 4.5]).unwrap();
        assert_eq!(m.distance(PointId(0), PointId(1)), 3.0);
        assert_eq!(m.distance(PointId(1), PointId(2)), 6.5);
        assert_eq!(m.distance(PointId(2), PointId(2)), 0.0);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert_eq!(LineMetric::new(vec![]).unwrap_err(), MetricError::Empty);
        assert!(matches!(
            LineMetric::new(vec![0.0, f64::NAN]),
            Err(MetricError::InvalidValue(_))
        ));
        assert!(matches!(
            LineMetric::new(vec![f64::INFINITY]),
            Err(MetricError::InvalidValue(_))
        ));
    }

    #[test]
    fn uniform_spacing() {
        let m = LineMetric::uniform(5, 8.0).unwrap();
        assert_eq!(m.len(), 5);
        assert!((m.distance(PointId(0), PointId(4)) - 8.0).abs() < 1e-12);
        assert!((m.distance(PointId(0), PointId(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_single_point_has_zero_span() {
        let m = LineMetric::uniform(1, 100.0).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.position(PointId(0)), 0.0);
    }

    #[test]
    fn single_point_space() {
        let m = LineMetric::single_point();
        assert_eq!(m.len(), 1);
        assert_eq!(m.distance(PointId(0), PointId(0)), 0.0);
    }

    #[test]
    fn nearest_to_coord_matches_linear_scan() {
        let m = LineMetric::new(vec![3.0, -1.0, 7.0, 3.0, 0.5]).unwrap();
        for &x in &[-5.0, -1.0, 0.0, 0.6, 2.9, 3.0, 3.1, 6.9, 7.0, 100.0] {
            let (p, d) = m.nearest_to_coord(x);
            // Linear reference: smallest distance, ties to smallest id.
            let mut best = (PointId(0), f64::INFINITY);
            for q in m.points() {
                let dd = (m.position(q) - x).abs();
                if dd < best.1 {
                    best = (q, dd);
                }
            }
            assert!((d - best.1).abs() < 1e-12, "x = {x}");
            assert!((m.position(p) - x).abs() <= best.1 + 1e-12, "x = {x}");
        }
    }

    #[test]
    fn duplicate_positions_are_allowed() {
        let m = LineMetric::new(vec![2.0, 2.0]).unwrap();
        assert_eq!(m.distance(PointId(0), PointId(1)), 0.0);
    }
}
