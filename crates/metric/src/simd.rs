//! Explicit SIMD kernels for the bulk distance primitives.
//!
//! The column-streaming loops behind [`crate::euclidean::EuclideanMetric`]'s
//! `fill_row` are pure element-wise maps: per point, subtract one broadcast
//! query coordinate, square (or take the absolute value), and accumulate —
//! then, for L2, one square-root pass. LLVM already autovectorizes those
//! loops, but only for the *baseline* target features (SSE2 on x86-64), so
//! half the vector width of every AVX machine goes unused. This module
//! provides the same four kernels as explicit `std::arch` intrinsics behind
//! a runtime dispatch: AVX when the CPU reports it, SSE2 otherwise, and a
//! plain scalar loop on every other architecture (or when SIMD is switched
//! off, see [`set_simd_enabled`]).
//!
//! # The bit-identity contract
//!
//! Every kernel must produce **bit-identical** results to its scalar loop —
//! the repo-wide `fill_row` contract (cached rows must be indistinguishable
//! from per-call `distance`). The vector forms qualify because each lane
//! processes one point with exactly the scalar operation sequence:
//!
//! * `sub`/`mul`/`add` lanes are the same IEEE-754 double operations as
//!   their scalar counterparts — no reassociation, and **no FMA**: a fused
//!   `d·d + acc` rounds once instead of twice and would change low bits, so
//!   these kernels never use it;
//! * `sqrt` is correctly rounded by IEEE-754 (vector and scalar alike), so
//!   `_mm*_sqrt_pd` equals `f64::sqrt` bit for bit;
//! * `max` is only applied to non-negative finite values (absolute
//!   differences), where `_mm*_max_pd` and `f64::max` agree exactly (the
//!   `-0.0`/NaN corner cases that distinguish them cannot occur).
//!
//! The lane count therefore only changes *which iteration* handles a point,
//! never the arithmetic applied to it. `tests` pins every kernel against
//! the scalar loop on adversarial values, and the euclidean metric's
//! `bulk_fill_row_is_bit_identical_to_per_call` test locks the whole row
//! path to `distance` under every dispatch tier.

use std::sync::atomic::{AtomicBool, Ordering};

/// Global SIMD switch, default on. Results are bit-identical either way —
/// the toggle exists so paired benches can time the scalar (pre-SIMD) code
/// path for an honest baseline, and so a misbehaving platform can be ruled
/// out without a rebuild. Racing toggles are benign for the same reason:
/// both paths compute the same bits.
static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the explicit SIMD kernels process-wide.
pub fn set_simd_enabled(on: bool) {
    SIMD_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the explicit SIMD kernels are currently enabled.
pub fn simd_enabled() -> bool {
    SIMD_ENABLED.load(Ordering::Relaxed)
}

/// Which kernel tier [`active_dispatch`] resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// 4 × f64 lanes (`__m256d`), runtime-detected.
    Avx,
    /// 2 × f64 lanes (`__m128d`), the x86-64 baseline.
    Sse2,
    /// The plain scalar loops (non-x86 targets, or SIMD disabled).
    Scalar,
}

/// The kernel tier the current process would use right now.
pub fn active_dispatch() -> Dispatch {
    if !simd_enabled() {
        return Dispatch::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            Dispatch::Avx
        } else {
            Dispatch::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Dispatch::Scalar
    }
}

/// `out[i] += (col[i] − q)²` — the L2 axis accumulation.
pub fn accumulate_squared(out: &mut [f64], col: &[f64], q: f64) {
    debug_assert_eq!(out.len(), col.len());
    match active_dispatch() {
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx => unsafe { accumulate_squared_avx(out, col, q) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { accumulate_squared_sse2(out, col, q) },
        _ => {
            for (slot, &c) in out.iter_mut().zip(col) {
                let d = c - q;
                *slot += d * d;
            }
        }
    }
}

/// `out[i] += |col[i] − q|` — the L1 axis accumulation.
pub fn accumulate_abs(out: &mut [f64], col: &[f64], q: f64) {
    debug_assert_eq!(out.len(), col.len());
    match active_dispatch() {
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx => unsafe { accumulate_abs_avx(out, col, q) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { accumulate_abs_sse2(out, col, q) },
        _ => {
            for (slot, &c) in out.iter_mut().zip(col) {
                *slot += (c - q).abs();
            }
        }
    }
}

/// `out[i] = max(out[i], |col[i] − q|)` — the L∞ axis fold.
pub fn fold_max_abs(out: &mut [f64], col: &[f64], q: f64) {
    debug_assert_eq!(out.len(), col.len());
    match active_dispatch() {
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx => unsafe { fold_max_abs_avx(out, col, q) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { fold_max_abs_sse2(out, col, q) },
        _ => {
            for (slot, &c) in out.iter_mut().zip(col) {
                *slot = slot.max((c - q).abs());
            }
        }
    }
}

/// The L2 screening axis accumulation over the f32 store:
///
/// ```text
/// a  = |f64(col[i] − q)|          (the subtraction in f32, then widened)
/// lo[i] += max(a − slack, 0)²
/// hi[i] += (a + slack)²
/// ```
///
/// One pass per axis builds the squared bracket accumulators behind
/// [`crate::Metric::screen_distances`]. The f32 subtraction happens in the
/// narrow type *before* widening — exactly the scalar expression — and the
/// widening conversion is exact, so the lane arithmetic is the scalar
/// sequence verbatim (`max` against non-NaN arguments; a `−0.0` from
/// `a == slack` squares to the same `+0.0` either way).
pub fn screen_accumulate_squared(lo: &mut [f64], hi: &mut [f64], col: &[f32], q: f32, slack: f64) {
    debug_assert!(lo.len() == col.len() && hi.len() == col.len());
    match active_dispatch() {
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx => unsafe { screen_accumulate_squared_avx(lo, hi, col, q, slack) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { screen_accumulate_squared_sse2(lo, hi, col, q, slack) },
        _ => {
            for ((l, h), &c) in lo.iter_mut().zip(hi.iter_mut()).zip(col) {
                let a = f64::from(c - q).abs();
                let al = (a - slack).max(0.0);
                let ah = a + slack;
                *l += al * al;
                *h += ah * ah;
            }
        }
    }
}

/// `out[i] = √out[i]` — the L2 finishing pass.
pub fn sqrt_in_place(out: &mut [f64]) {
    match active_dispatch() {
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx => unsafe { sqrt_in_place_avx(out) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { sqrt_in_place_sse2(out) },
        _ => {
            for slot in out.iter_mut() {
                *slot = slot.sqrt();
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The intrinsic bodies. Every tail element falls through to the exact
    //! scalar expression, and every vector op is lane-wise identical to it
    //! (see the module docs for why that makes the results bit-identical).
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn accumulate_squared_avx(out: &mut [f64], col: &[f64], q: f64) {
        let n = out.len();
        let qv = _mm256_set1_pd(q);
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm256_sub_pd(_mm256_loadu_pd(col.as_ptr().add(i)), qv);
            let acc = _mm256_loadu_pd(out.as_ptr().add(i));
            _mm256_storeu_pd(
                out.as_mut_ptr().add(i),
                _mm256_add_pd(acc, _mm256_mul_pd(d, d)),
            );
            i += 4;
        }
        for j in i..n {
            let d = col[j] - q;
            out[j] += d * d;
        }
    }

    pub(super) unsafe fn accumulate_squared_sse2(out: &mut [f64], col: &[f64], q: f64) {
        let n = out.len();
        let qv = _mm_set1_pd(q);
        let mut i = 0;
        while i + 2 <= n {
            let d = _mm_sub_pd(_mm_loadu_pd(col.as_ptr().add(i)), qv);
            let acc = _mm_loadu_pd(out.as_ptr().add(i));
            _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_add_pd(acc, _mm_mul_pd(d, d)));
            i += 2;
        }
        for j in i..n {
            let d = col[j] - q;
            out[j] += d * d;
        }
    }

    /// Clears the sign bit — exactly `f64::abs`.
    #[inline]
    unsafe fn abs256(x: __m256d) -> __m256d {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
    }

    #[inline]
    unsafe fn abs128(x: __m128d) -> __m128d {
        _mm_andnot_pd(_mm_set1_pd(-0.0), x)
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn accumulate_abs_avx(out: &mut [f64], col: &[f64], q: f64) {
        let n = out.len();
        let qv = _mm256_set1_pd(q);
        let mut i = 0;
        while i + 4 <= n {
            let d = abs256(_mm256_sub_pd(_mm256_loadu_pd(col.as_ptr().add(i)), qv));
            let acc = _mm256_loadu_pd(out.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_add_pd(acc, d));
            i += 4;
        }
        for j in i..n {
            out[j] += (col[j] - q).abs();
        }
    }

    pub(super) unsafe fn accumulate_abs_sse2(out: &mut [f64], col: &[f64], q: f64) {
        let n = out.len();
        let qv = _mm_set1_pd(q);
        let mut i = 0;
        while i + 2 <= n {
            let d = abs128(_mm_sub_pd(_mm_loadu_pd(col.as_ptr().add(i)), qv));
            let acc = _mm_loadu_pd(out.as_ptr().add(i));
            _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_add_pd(acc, d));
            i += 2;
        }
        for j in i..n {
            out[j] += (col[j] - q).abs();
        }
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn fold_max_abs_avx(out: &mut [f64], col: &[f64], q: f64) {
        let n = out.len();
        let qv = _mm256_set1_pd(q);
        let mut i = 0;
        while i + 4 <= n {
            let d = abs256(_mm256_sub_pd(_mm256_loadu_pd(col.as_ptr().add(i)), qv));
            let acc = _mm256_loadu_pd(out.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_max_pd(acc, d));
            i += 4;
        }
        for j in i..n {
            out[j] = out[j].max((col[j] - q).abs());
        }
    }

    pub(super) unsafe fn fold_max_abs_sse2(out: &mut [f64], col: &[f64], q: f64) {
        let n = out.len();
        let qv = _mm_set1_pd(q);
        let mut i = 0;
        while i + 2 <= n {
            let d = abs128(_mm_sub_pd(_mm_loadu_pd(col.as_ptr().add(i)), qv));
            let acc = _mm_loadu_pd(out.as_ptr().add(i));
            _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_max_pd(acc, d));
            i += 2;
        }
        for j in i..n {
            out[j] = out[j].max((col[j] - q).abs());
        }
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn screen_accumulate_squared_avx(
        lo: &mut [f64],
        hi: &mut [f64],
        col: &[f32],
        q: f32,
        slack: f64,
    ) {
        let n = col.len();
        let qv = _mm_set1_ps(q);
        let sv = _mm256_set1_pd(slack);
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // f32 subtraction first, then the exact widening — the scalar
            // `f64::from(c − q)` order of operations.
            let d32 = _mm_sub_ps(_mm_loadu_ps(col.as_ptr().add(i)), qv);
            let a = abs256(_mm256_cvtps_pd(d32));
            let al = _mm256_max_pd(_mm256_sub_pd(a, sv), zero);
            let ah = _mm256_add_pd(a, sv);
            let lacc = _mm256_loadu_pd(lo.as_ptr().add(i));
            let hacc = _mm256_loadu_pd(hi.as_ptr().add(i));
            _mm256_storeu_pd(
                lo.as_mut_ptr().add(i),
                _mm256_add_pd(lacc, _mm256_mul_pd(al, al)),
            );
            _mm256_storeu_pd(
                hi.as_mut_ptr().add(i),
                _mm256_add_pd(hacc, _mm256_mul_pd(ah, ah)),
            );
            i += 4;
        }
        for j in i..n {
            let a = f64::from(col[j] - q).abs();
            let al = (a - slack).max(0.0);
            let ah = a + slack;
            lo[j] += al * al;
            hi[j] += ah * ah;
        }
    }

    pub(super) unsafe fn screen_accumulate_squared_sse2(
        lo: &mut [f64],
        hi: &mut [f64],
        col: &[f32],
        q: f32,
        slack: f64,
    ) {
        let n = col.len();
        let qv = _mm_set1_ps(q);
        let sv = _mm_set1_pd(slack);
        let zero = _mm_setzero_pd();
        let mut i = 0;
        while i + 2 <= n {
            let d32 = _mm_sub_ps(_mm_setr_ps(col[i], col[i + 1], 0.0, 0.0), qv);
            let a = abs128(_mm_cvtps_pd(d32));
            let al = _mm_max_pd(_mm_sub_pd(a, sv), zero);
            let ah = _mm_add_pd(a, sv);
            let lacc = _mm_loadu_pd(lo.as_ptr().add(i));
            let hacc = _mm_loadu_pd(hi.as_ptr().add(i));
            _mm_storeu_pd(lo.as_mut_ptr().add(i), _mm_add_pd(lacc, _mm_mul_pd(al, al)));
            _mm_storeu_pd(hi.as_mut_ptr().add(i), _mm_add_pd(hacc, _mm_mul_pd(ah, ah)));
            i += 2;
        }
        for j in i..n {
            let a = f64::from(col[j] - q).abs();
            let al = (a - slack).max(0.0);
            let ah = a + slack;
            lo[j] += al * al;
            hi[j] += ah * ah;
        }
    }

    #[target_feature(enable = "avx")]
    pub(super) unsafe fn sqrt_in_place_avx(out: &mut [f64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(
                out.as_mut_ptr().add(i),
                _mm256_sqrt_pd(_mm256_loadu_pd(out.as_ptr().add(i))),
            );
            i += 4;
        }
        for v in out[i..n].iter_mut() {
            *v = v.sqrt();
        }
    }

    pub(super) unsafe fn sqrt_in_place_sse2(out: &mut [f64]) {
        let n = out.len();
        let mut i = 0;
        while i + 2 <= n {
            _mm_storeu_pd(
                out.as_mut_ptr().add(i),
                _mm_sqrt_pd(_mm_loadu_pd(out.as_ptr().add(i))),
            );
            i += 2;
        }
        for v in out[i..n].iter_mut() {
            *v = v.sqrt();
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::*;

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic awkward doubles: mixed signs, subnormal-ish scales,
    /// exact ties, values whose squares lose bits.
    fn awkward(n: usize, salt: u64) -> Vec<f64> {
        let mut st = 0x5EED ^ salt;
        (0..n)
            .map(|i| {
                st ^= st << 13;
                st ^= st >> 7;
                st ^= st << 17;
                let v = ((st % 20000) as f64 - 10000.0) * 0.000_312_5;
                if i % 11 == 0 {
                    0.0
                } else if i % 7 == 0 {
                    -v * 1.0e8
                } else {
                    v
                }
            })
            .collect()
    }

    fn scalar_sq(out: &mut [f64], col: &[f64], q: f64) {
        for (slot, &c) in out.iter_mut().zip(col) {
            let d = c - q;
            *slot += d * d;
        }
    }

    fn scalar_abs(out: &mut [f64], col: &[f64], q: f64) {
        for (slot, &c) in out.iter_mut().zip(col) {
            *slot += (c - q).abs();
        }
    }

    fn scalar_max(out: &mut [f64], col: &[f64], q: f64) {
        for (slot, &c) in out.iter_mut().zip(col) {
            *slot = slot.max((c - q).abs());
        }
    }

    #[test]
    fn kernels_are_bit_identical_to_scalar_loops() {
        // Odd lengths exercise every vector tail; accumulators start from a
        // prior pass's values, not zero, to catch ordering mistakes.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 64, 129] {
            let col = awkward(n, 1);
            let seed = awkward(n, 2);
            for q in [-3.75, 0.0, 1.0e9, 2.5e-5] {
                let mut a = seed.clone();
                let mut b = seed.clone();
                accumulate_squared(&mut a, &col, q);
                scalar_sq(&mut b, &col, q);
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));

                let mut a = seed.clone();
                let mut b = seed.clone();
                accumulate_abs(&mut a, &col, q);
                scalar_abs(&mut b, &col, q);
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));

                let mut a: Vec<f64> = seed.iter().map(|v| v.abs()).collect();
                let mut b = a.clone();
                fold_max_abs(&mut a, &col, q);
                scalar_max(&mut b, &col, q);
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));

                let mut a: Vec<f64> = seed.iter().map(|v| v * v).collect();
                let mut b = a.clone();
                sqrt_in_place(&mut a);
                for slot in b.iter_mut() {
                    *slot = slot.sqrt();
                }
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    fn scalar_screen(lo: &mut [f64], hi: &mut [f64], col: &[f32], q: f32, slack: f64) {
        for ((l, h), &c) in lo.iter_mut().zip(hi.iter_mut()).zip(col) {
            let a = f64::from(c - q).abs();
            let al = (a - slack).max(0.0);
            let ah = a + slack;
            *l += al * al;
            *h += ah * ah;
        }
    }

    #[test]
    fn screen_kernel_is_bit_identical_to_its_scalar_loop() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 64, 129] {
            let col: Vec<f32> = awkward(n, 4).iter().map(|&v| v as f32).collect();
            let seed_lo = awkward(n, 5);
            let seed_hi = awkward(n, 6);
            // A slack equal to some |c − q| exercises the a − s == 0 corner.
            for (q, slack) in [(-3.75f32, 1.0e-4), (0.0, 0.0), (1.0e9, 128.0)] {
                let slack_exact = col
                    .first()
                    .map_or(slack, |&c| f64::from(c - q).abs().min(slack));
                for s in [slack, slack_exact] {
                    let (mut al, mut ah) = (seed_lo.clone(), seed_hi.clone());
                    let (mut bl, mut bh) = (seed_lo.clone(), seed_hi.clone());
                    screen_accumulate_squared(&mut al, &mut ah, &col, q, s);
                    scalar_screen(&mut bl, &mut bh, &col, q, s);
                    assert!(al.iter().zip(&bl).all(|(x, y)| x.to_bits() == y.to_bits()));
                    assert!(ah.iter().zip(&bh).all(|(x, y)| x.to_bits() == y.to_bits()));
                }
            }
        }
    }

    #[test]
    fn disabling_simd_changes_nothing_but_the_dispatch() {
        let col = awkward(97, 3);
        let mut on = vec![0.0; 97];
        accumulate_squared(&mut on, &col, 0.125);
        sqrt_in_place(&mut on);
        set_simd_enabled(false);
        assert_eq!(active_dispatch(), Dispatch::Scalar);
        let mut off = vec![0.0; 97];
        accumulate_squared(&mut off, &col, 0.125);
        sqrt_in_place(&mut off);
        set_simd_enabled(true);
        assert!(on.iter().zip(&off).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn dispatch_reports_a_real_tier() {
        // On x86-64 the baseline guarantees at least SSE2.
        let d = active_dispatch();
        if cfg!(target_arch = "x86_64") {
            assert_ne!(d, Dispatch::Scalar);
        } else {
            assert_eq!(d, Dispatch::Scalar);
        }
    }
}
