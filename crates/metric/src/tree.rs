//! Shortest-path metrics on weighted trees.
//!
//! Tree metrics matter for OMFLP because hierarchical facility cost models
//! (Svitkina–Tardos, discussed in the paper's related work) and many network
//! topologies are trees. Distances are answered in O(log n)-ish time via
//! binary-lifting LCA over root distances, without materializing the O(n²)
//! matrix.

use crate::{check_finite_nonneg, Metric, MetricError, PointId};

/// A rooted weighted tree with distances `d(a,b) = depth(a) + depth(b) −
/// 2·depth(lca(a,b))`.
#[derive(Debug, Clone)]
pub struct TreeMetric {
    parent: Vec<Vec<u32>>, // parent[k][v] = 2^k-th ancestor of v
    depth_hops: Vec<u32>,  // depth in edges
    depth_w: Vec<f64>,     // weighted distance from root
    /// DFS preorder from the root (subtrees contiguous), recorded during
    /// construction for [`Metric::coherent_order`].
    preorder: Vec<u32>,
    n: usize,
}

impl TreeMetric {
    /// Builds from `parents[v] = Some((parent, weight))` for every non-root
    /// node; exactly one node must be the root (`None`).
    pub fn new(parents: &[Option<(u32, f64)>]) -> Result<Self, MetricError> {
        let n = parents.len();
        if n == 0 {
            return Err(MetricError::Empty);
        }
        let mut root = None;
        for (v, p) in parents.iter().enumerate() {
            match p {
                None => {
                    if root.replace(v as u32).is_some() {
                        return Err(MetricError::Malformed("multiple roots".into()));
                    }
                }
                Some((pv, w)) => {
                    if *pv as usize >= n {
                        return Err(MetricError::PointOutOfRange { point: *pv, len: n });
                    }
                    if *pv as usize == v {
                        return Err(MetricError::Malformed(format!(
                            "node {v} is its own parent"
                        )));
                    }
                    check_finite_nonneg(*w, &format!("weight({v})"))?;
                }
            }
        }
        let root = root.ok_or_else(|| MetricError::Malformed("no root".into()))?;

        // Topological order from the root; detects cycles / disconnection.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, p) in parents.iter().enumerate() {
            if let Some((pv, _)) = p {
                children[*pv as usize].push(v as u32);
            }
        }
        let mut depth_hops = vec![u32::MAX; n];
        let mut depth_w = vec![0.0; n];
        let mut stack = vec![root];
        depth_hops[root as usize] = 0;
        let mut seen = 1usize;
        let mut preorder = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            preorder.push(u);
            for &c in &children[u as usize] {
                if depth_hops[c as usize] != u32::MAX {
                    return Err(MetricError::Malformed(format!("cycle through node {c}")));
                }
                depth_hops[c as usize] = depth_hops[u as usize] + 1;
                let w = parents[c as usize].expect("non-root has parent").1;
                depth_w[c as usize] = depth_w[u as usize] + w;
                stack.push(c);
                seen += 1;
            }
        }
        if seen != n {
            return Err(MetricError::Malformed(
                "tree is disconnected (some nodes unreachable from the root)".into(),
            ));
        }

        // Binary lifting table.
        let max_depth = depth_hops.iter().copied().max().unwrap_or(0);
        let levels = (32 - max_depth.leading_zeros()).max(1) as usize;
        let mut parent_tbl = vec![vec![root; n]; levels];
        for (v, par) in parents.iter().enumerate() {
            parent_tbl[0][v] = match par {
                Some((p, _)) => *p,
                None => root,
            };
        }
        for k in 1..levels {
            for v in 0..n {
                let half = parent_tbl[k - 1][v];
                parent_tbl[k][v] = parent_tbl[k - 1][half as usize];
            }
        }
        Ok(Self {
            parent: parent_tbl,
            depth_hops,
            depth_w,
            preorder,
            n,
        })
    }

    /// A path (caterpillar spine) of `n` nodes with the given edge weights
    /// (`weights.len() == n − 1`).
    pub fn path(weights: &[f64]) -> Result<Self, MetricError> {
        let n = weights.len() + 1;
        let mut parents = vec![None; n];
        for (i, &w) in weights.iter().enumerate() {
            parents[i + 1] = Some((i as u32, w));
        }
        Self::new(&parents)
    }

    /// A complete binary tree of the given number of nodes, unit weights,
    /// node 0 as root.
    pub fn complete_binary(n: usize) -> Result<Self, MetricError> {
        let mut parents = vec![None; n.max(1)];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = Some((((v - 1) / 2) as u32, 1.0));
        }
        Self::new(&parents)
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: PointId, b: PointId) -> PointId {
        let (mut u, mut v) = (a.0, b.0);
        if self.depth_hops[u as usize] < self.depth_hops[v as usize] {
            std::mem::swap(&mut u, &mut v);
        }
        // Lift u to v's depth.
        let mut diff = self.depth_hops[u as usize] - self.depth_hops[v as usize];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.parent[k][u as usize];
            }
            diff >>= 1;
            k += 1;
        }
        if u == v {
            return PointId(u);
        }
        for k in (0..self.parent.len()).rev() {
            if self.parent[k][u as usize] != self.parent[k][v as usize] {
                u = self.parent[k][u as usize];
                v = self.parent[k][v as usize];
            }
        }
        PointId(self.parent[0][u as usize])
    }
}

impl Metric for TreeMetric {
    fn len(&self) -> usize {
        self.n
    }

    fn distance(&self, a: PointId, b: PointId) -> f64 {
        let l = self.lca(a, b);
        self.depth_w[a.index()] + self.depth_w[b.index()] - 2.0 * self.depth_w[l.index()]
    }

    /// DFS preorder: a subtree occupies a contiguous run, so runs of the
    /// order stay within few tree edges of each other.
    fn coherent_order(&self) -> Option<Vec<u32>> {
        Some(self.preorder.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_distances() {
        let m = TreeMetric::path(&[1.0, 2.0, 4.0]).unwrap();
        assert!((m.distance(PointId(0), PointId(3)) - 7.0).abs() < 1e-12);
        assert!((m.distance(PointId(1), PointId(3)) - 6.0).abs() < 1e-12);
        assert_eq!(m.distance(PointId(2), PointId(2)), 0.0);
    }

    #[test]
    fn lca_in_binary_tree() {
        //        0
        //      1   2
        //    3  4 5  6
        let m = TreeMetric::complete_binary(7).unwrap();
        assert_eq!(m.lca(PointId(3), PointId(4)), PointId(1));
        assert_eq!(m.lca(PointId(3), PointId(6)), PointId(0));
        assert_eq!(m.lca(PointId(5), PointId(2)), PointId(2));
        assert!((m.distance(PointId(3), PointId(4)) - 2.0).abs() < 1e-12);
        assert!((m.distance(PointId(3), PointId(6)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn matches_graph_metric_on_same_tree() {
        let parents = vec![
            None,
            Some((0, 1.5)),
            Some((0, 2.0)),
            Some((1, 0.5)),
            Some((1, 3.0)),
            Some((2, 1.0)),
        ];
        let tm = TreeMetric::new(&parents).unwrap();
        let edges: Vec<(u32, u32, f64)> = parents
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|(pv, w)| (v as u32, pv, w)))
            .collect();
        let gm = crate::graph::GraphMetric::from_edges(6, &edges).unwrap();
        for a in tm.points() {
            for b in tm.points() {
                assert!(
                    (tm.distance(a, b) - gm.distance(a, b)).abs() < 1e-9,
                    "mismatch at ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn rejects_multiple_roots_no_root_cycle() {
        assert!(matches!(
            TreeMetric::new(&[None, None]),
            Err(MetricError::Malformed(_))
        ));
        assert!(matches!(
            TreeMetric::new(&[Some((1, 1.0)), Some((0, 1.0))]),
            Err(MetricError::Malformed(_))
        ));
        // Cycle among non-roots: 1 -> 2 -> 1, root 0 separate.
        assert!(matches!(
            TreeMetric::new(&[None, Some((2, 1.0)), Some((1, 1.0))]),
            Err(MetricError::Malformed(_))
        ));
    }

    #[test]
    fn single_node_tree() {
        let m = TreeMetric::new(&[None]).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.distance(PointId(0), PointId(0)), 0.0);
    }
}
