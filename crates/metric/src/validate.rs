//! Metric-axiom validation utilities.
//!
//! Exact validation is O(n³); for large spaces [`check_axioms_sampled`]
//! probes random triples with a deterministic PRNG so test failures
//! reproduce. Both are used by the property-test suites of downstream
//! crates.

use crate::{Metric, MetricError, PointId};

/// Exhaustively checks non-negativity, zero diagonal, symmetry and the
/// triangle inequality. O(n³) — use for n up to a few hundred.
pub fn check_axioms_exact(m: &dyn Metric) -> Result<(), MetricError> {
    let n = m.len();
    if n == 0 {
        return Err(MetricError::Empty);
    }
    for a in 0..n as u32 {
        let da = m.distance(PointId(a), PointId(a));
        if da != 0.0 {
            return Err(MetricError::AxiomViolation(format!(
                "d({a},{a}) = {da} != 0"
            )));
        }
        for b in 0..n as u32 {
            let dab = m.distance(PointId(a), PointId(b));
            if !dab.is_finite() || dab < 0.0 {
                return Err(MetricError::InvalidValue(format!("d({a},{b}) = {dab}")));
            }
            let dba = m.distance(PointId(b), PointId(a));
            if (dab - dba).abs() > symmetric_tol(dab, dba) {
                return Err(MetricError::AxiomViolation(format!(
                    "asymmetry: d({a},{b}) = {dab}, d({b},{a}) = {dba}"
                )));
            }
        }
    }
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            let dab = m.distance(PointId(a), PointId(b));
            for c in 0..n as u32 {
                let via = m.distance(PointId(a), PointId(c)) + m.distance(PointId(c), PointId(b));
                if dab > via + triangle_tol(dab, via) {
                    return Err(MetricError::AxiomViolation(format!(
                        "triangle: d({a},{b}) = {dab} > {via} via {c}"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Checks `samples` random triples using a SplitMix64 stream seeded by
/// `seed`, plus the full diagonal and a symmetric sample. Suitable for large
/// spaces where O(n³) is infeasible.
pub fn check_axioms_sampled(m: &dyn Metric, samples: usize, seed: u64) -> Result<(), MetricError> {
    let n = m.len();
    if n == 0 {
        return Err(MetricError::Empty);
    }
    for a in 0..n as u32 {
        let da = m.distance(PointId(a), PointId(a));
        if da != 0.0 {
            return Err(MetricError::AxiomViolation(format!(
                "d({a},{a}) = {da} != 0"
            )));
        }
    }
    let mut state = seed;
    let mut next = move || {
        // SplitMix64: deterministic, dependency-free.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..samples {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        let c = (next() % n as u64) as u32;
        let dab = m.distance(PointId(a), PointId(b));
        let dba = m.distance(PointId(b), PointId(a));
        if !dab.is_finite() || dab < 0.0 {
            return Err(MetricError::InvalidValue(format!("d({a},{b}) = {dab}")));
        }
        if (dab - dba).abs() > symmetric_tol(dab, dba) {
            return Err(MetricError::AxiomViolation(format!(
                "asymmetry: d({a},{b}) = {dab}, d({b},{a}) = {dba}"
            )));
        }
        let via = m.distance(PointId(a), PointId(c)) + m.distance(PointId(c), PointId(b));
        if dab > via + triangle_tol(dab, via) {
            return Err(MetricError::AxiomViolation(format!(
                "triangle: d({a},{b}) = {dab} > {via} via {c}"
            )));
        }
    }
    Ok(())
}

fn symmetric_tol(x: f64, y: f64) -> f64 {
    1e-12 + 1e-9 * x.abs().max(y.abs())
}

fn triangle_tol(x: f64, y: f64) -> f64 {
    1e-12 + 1e-9 * x.abs().max(y.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMetric;
    use crate::euclidean::{EuclideanMetric, Norm};
    use crate::line::LineMetric;

    #[test]
    fn line_passes_exact() {
        let m = LineMetric::new(vec![0.0, 1.0, 2.5, -3.0]).unwrap();
        check_axioms_exact(&m).unwrap();
    }

    #[test]
    fn grid_passes_exact_under_all_norms() {
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let m = EuclideanMetric::grid(4, 3, norm).unwrap();
            check_axioms_exact(&m).unwrap();
        }
    }

    #[test]
    fn broken_matrix_fails_exact() {
        // new_unchecked skips the triangle check, so the violation survives
        // until check_axioms_exact sees it.
        let m = DenseMetric::new_unchecked(vec![0.0, 1.0, 9.0, 1.0, 0.0, 1.0, 9.0, 1.0, 0.0], 3)
            .unwrap();
        assert!(check_axioms_exact(&m).is_err());
    }

    #[test]
    fn sampled_check_is_deterministic() {
        let m = EuclideanMetric::grid(10, 10, Norm::L2).unwrap();
        check_axioms_sampled(&m, 5_000, 42).unwrap();
        check_axioms_sampled(&m, 5_000, 42).unwrap();
    }

    #[test]
    fn sampled_check_catches_gross_violations() {
        // A "metric" with a hugely violating pair; with enough samples the
        // sampler must hit pair (0, 2) or a triple exposing it.
        let m = DenseMetric::new_unchecked(vec![0.0, 1.0, 50.0, 1.0, 0.0, 1.0, 50.0, 1.0, 0.0], 3)
            .unwrap();
        assert!(check_axioms_sampled(&m, 10_000, 7).is_err());
    }
}
