//! Property tests: every generated metric satisfies the metric axioms, and
//! the specialized fast paths agree with reference implementations.

use omfl_metric::dense::DenseMetric;
use omfl_metric::euclidean::{EuclideanMetric, Norm};
use omfl_metric::graph::{Graph, GraphMetric};
use omfl_metric::line::LineMetric;
use omfl_metric::tree::TreeMetric;
use omfl_metric::validate::check_axioms_exact;
use omfl_metric::{Metric, PointId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn line_metrics_satisfy_axioms(positions in prop::collection::vec(-50.0..50.0f64, 1..12)) {
        let m = LineMetric::new(positions).unwrap();
        check_axioms_exact(&m).unwrap();
    }

    #[test]
    fn euclidean_metrics_satisfy_axioms(
        pts in prop::collection::vec((0.0..30.0f64, 0.0..30.0f64), 1..10),
        norm_idx in 0usize..3,
    ) {
        let norm = [Norm::L1, Norm::L2, Norm::LInf][norm_idx];
        let rows: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let m = EuclideanMetric::new(&rows, norm).unwrap();
        check_axioms_exact(&m).unwrap();
    }

    #[test]
    fn graph_metric_closure_satisfies_axioms(
        n in 2usize..9,
        extra in prop::collection::vec((0u32..8, 0u32..8, 0.1..5.0f64), 0..10),
    ) {
        // Spanning chain guarantees connectivity; extra edges are filtered
        // to valid non-loops.
        let mut edges: Vec<(u32, u32, f64)> =
            (1..n as u32).map(|i| (i - 1, i, 1.0)).collect();
        for (a, b, w) in extra {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b {
                edges.push((a, b, w));
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let m = GraphMetric::new(&g).unwrap();
        check_axioms_exact(&m).unwrap();
    }

    #[test]
    fn tree_metric_agrees_with_graph_metric(
        weights in prop::collection::vec(0.1..4.0f64, 1..10),
        shape in prop::collection::vec(0usize..8, 1..10),
    ) {
        // Random tree: node v+1 attaches to a previous node (shape[v] % (v+1)).
        // weights and shape are drawn independently; use the common prefix.
        let n = weights.len().min(shape.len()) + 1;
        let mut parents = vec![None; n];
        let mut edges = Vec::new();
        for v in 1..n {
            let p = (shape[v - 1] % v) as u32;
            parents[v] = Some((p, weights[v - 1]));
            edges.push((v as u32, p, weights[v - 1]));
        }
        let tm = TreeMetric::new(&parents).unwrap();
        let gm = GraphMetric::from_edges(n, &edges).unwrap();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let (ta, gb) = (tm.distance(PointId(a), PointId(b)), gm.distance(PointId(a), PointId(b)));
                prop_assert!((ta - gb).abs() < 1e-9 * (1.0 + gb), "({a},{b}): {ta} vs {gb}");
            }
        }
    }

    #[test]
    fn dense_from_metric_round_trips(positions in prop::collection::vec(-20.0..20.0f64, 1..10)) {
        let line = LineMetric::new(positions).unwrap();
        let dense = DenseMetric::from_metric(&line).unwrap();
        dense.validate().unwrap();
        for a in line.points() {
            for b in line.points() {
                prop_assert_eq!(line.distance(a, b), dense.distance(a, b));
            }
        }
    }

    #[test]
    fn nearest_to_coord_matches_linear_scan(
        positions in prop::collection::vec(-20.0..20.0f64, 1..12),
        x in -25.0..25.0f64,
    ) {
        let m = LineMetric::new(positions).unwrap();
        let (_, d) = m.nearest_to_coord(x);
        let best = m
            .points()
            .map(|p| (m.position(p) - x).abs())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - best).abs() < 1e-12);
    }

    #[test]
    fn nearest_among_is_a_minimum(
        positions in prop::collection::vec(-20.0..20.0f64, 2..12),
        from in 0u32..12,
        cands in prop::collection::vec(0u32..12, 1..6),
    ) {
        let m = LineMetric::new(positions).unwrap();
        let n = m.len() as u32;
        let from = PointId(from % n);
        let cands: Vec<PointId> = cands.iter().map(|&c| PointId(c % n)).collect();
        let (p, d) = m.nearest_among(from, &cands).unwrap();
        prop_assert!(cands.contains(&p));
        for &c in &cands {
            prop_assert!(d <= m.distance(from, c) + 1e-12);
        }
    }
}
