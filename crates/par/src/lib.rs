//! Parallel execution utilities for the experiment harness.
//!
//! Monte-Carlo estimation of RAND-OMFLP's *expected* competitive ratio needs
//! dozens of independent trials per parameter point; this crate provides a
//! dependency-free scoped parallel map with a work-stealing scheduler,
//! deterministic per-task seeding (SplitMix64 — results must not depend on
//! thread scheduling), and the mean/CI reduction the tables report.
//!
//! # Scheduling history (why work-stealing deques)
//!
//! Version 1 pulled indices from an atomic counter and wrote each result
//! through a mutex-guarded `Vec<Option<R>>`; under small per-item work the
//! shared result lock became the bottleneck. Version 2 assigned balanced
//! contiguous chunks up front (lock-free, order-preserving), but static
//! assignment stalls on skewed workloads: when a few slow items land in one
//! chunk — exactly what happens in catalog sweeps where one
//! (family, engine, trial) cell dominates — every other worker drains its
//! chunk and idles while one worker serializes the tail.
//!
//! The current scheduler keeps version 2's per-thread result buffers and
//! adds stealing: each worker starts with its contiguous chunk in a private
//! deque, pops work from the front, and when empty steals *half* a victim's
//! remaining items from the back. Results carry their original item index
//! and are written into the output slot for that index after the join, so
//! the output is in input order **regardless of which thread computed what**
//! — `parallel_map(items, 1, f) == parallel_map(items, k, f)` bit for bit,
//! for every `k`. Own-deque pops lock an uncontended mutex (tens of
//! nanoseconds); contention only ever happens while some deque is being
//! stolen from, which is rare for coarse items.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Applies `f` to every index/item pair, spreading work over `threads` OS
/// threads with work stealing. Results are returned in input order
/// regardless of scheduling.
///
/// `threads = 0` or `1` runs inline (useful under a debugger and in tests).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Seed each deque with a balanced contiguous chunk (the first `rem`
    // workers take one extra item). With uniform per-item work nobody ever
    // steals and this behaves exactly like the chunk-static scheduler.
    let base = n / threads;
    let rem = n % threads;
    let mut deques: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(threads);
    let mut start = 0;
    for w in 0..threads {
        let len = base + usize::from(w < rem);
        deques.push(Mutex::new((start..start + len).collect()));
        start += len;
    }
    debug_assert_eq!(start, n);

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Steals in transit: incremented while loot sits in neither deque
    // (between a victim's split_off and the thief's extend). Workers only
    // retire once every deque is empty AND nothing is in transit — without
    // this, a worker sweeping during that window would exit early and the
    // remaining backlog could serialize onto whoever holds it.
    let in_flight = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let f = &f;
            let deques = &deques;
            let in_flight = &in_flight;
            handles.push(scope.spawn(move || {
                let mut buf: Vec<(usize, R)> = Vec::new();
                loop {
                    // Fast path: own deque front (uncontended unless a thief
                    // holds the lock for a back-steal).
                    let task = deques[w].lock().expect("deque poisoned").pop_front();
                    if let Some(i) = task {
                        buf.push((i, f(i, &items[i])));
                        continue;
                    }
                    // Steal: scan victims round-robin from our right; take
                    // half their backlog from the back.
                    let mut stolen = false;
                    for v in (0..threads).map(|k| (w + 1 + k) % threads) {
                        if v == w {
                            continue;
                        }
                        let mut victim = deques[v].lock().expect("deque poisoned");
                        let take = victim.len().div_ceil(2);
                        if take == 0 {
                            continue;
                        }
                        let split = victim.len() - take;
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        let loot: Vec<usize> = victim.split_off(split).into();
                        drop(victim);
                        deques[w].lock().expect("deque poisoned").extend(loot);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        stolen = true;
                        break;
                    }
                    if stolen {
                        continue;
                    }
                    // Empty sweep. If a steal is mid-transit its loot will
                    // land in a deque momentarily — re-scan instead of
                    // retiring. No task is ever produced after start-up, so
                    // "all deques empty and nothing in transit" means every
                    // remaining item is already being executed.
                    if in_flight.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
                buf
            }));
        }
        // Per-thread buffers land in the per-index output slots, so the
        // assembled Vec is in input order no matter who computed what.
        for h in handles {
            for (i, r) in h.join().expect("worker threads must not panic") {
                debug_assert!(slots[i].is_none(), "item {i} computed twice");
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item executed exactly once"))
        .collect()
}

/// One caught task panic inside a [`TaskPool::run`] fan-out: which index
/// panicked and the stringified payload (`panic!` message when it was a
/// string, a placeholder otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The task index whose closure invocation panicked.
    pub index: usize,
    /// The panic payload rendered as a string.
    pub message: String,
}

/// The typed failure of a [`TaskPool::run`] fan-out: at least one task
/// panicked. Every *other* index still executed exactly once (panics are
/// caught per task, never allowed to unwind a worker), and the pool itself
/// remains fully usable for subsequent `run` calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Every caught panic of the fan-out, in the order they were recorded.
    pub panics: Vec<TaskPanic>,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} pool task(s) panicked:", self.panics.len())?;
        for p in &self.panics {
            write!(f, " [task {}: {}]", p.index, p.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for PoolError {}

/// Renders a caught panic payload for [`TaskPanic::message`].
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A persistent pool for *within-task* parallelism: fan a closure over
/// `0..ntasks` indices, block until all complete, reuse the same OS threads
/// for the next fan-out.
///
/// [`parallel_map`] spawns a scope per call, which is fine for coarse
/// experiment cells but far too heavy for a hot path that fans out many
/// times per arrival (the per-block argmin shards run in the tens of
/// microseconds). `TaskPool` keeps `threads − 1` workers parked on a
/// condvar; [`TaskPool::run`] publishes one task per call, participates
/// with the calling thread, and returns only when every index has executed.
///
/// The pool provides **execution** only — no results, no ordering. Callers
/// that need deterministic output write into disjoint per-index slots (see
/// [`ShardWriter`]) and merge sequentially afterwards; with that pattern,
/// results are bit-identical whether the pool has 1 participant or 16.
/// With `threads ≤ 1` (or on a machine without spare cores) `run` executes
/// inline on the caller, exercising the exact same code path minus the
/// handoff.
///
/// The pool is `Sync` and built to be **shared long-lived** (e.g. one pool
/// multiplexing many serve shards): concurrent [`TaskPool::run`] calls from
/// different threads serialize on a submit lock — each fan-out runs to
/// completion before the next starts, no indices are lost or cross-executed.
/// `run` is *not* reentrant: calling it from inside a task of the same pool
/// deadlocks on that lock (fan out once per level instead).
pub struct TaskPool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    /// Serializes submitters; see the struct docs.
    submit: Mutex<()>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between tasks.
    work_cv: Condvar,
    /// The submitter parks here until `finished == ntasks`.
    done_cv: Condvar,
}

struct PoolState {
    /// Bumped once per `run`; a worker mid-claim compares epochs so a stale
    /// wake-up can never execute indices of a later task.
    epoch: u64,
    task: Option<RawTask>,
    ntasks: usize,
    next: usize,
    finished: usize,
    /// Panics caught while executing indices of the current epoch. Drained
    /// by the submitter into the [`PoolError`] its `run` returns; reset at
    /// the next submission.
    panics: Vec<TaskPanic>,
    shutdown: bool,
}

/// Lifetime-erased pointer to the current task closure. Safety: `run`
/// blocks until `finished == ntasks`, so the pointee outlives every
/// dereference; workers only dereference it for indices claimed under the
/// mutex while the epoch matches.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn(usize) + Sync));
unsafe impl Send for RawTask {}

impl TaskPool {
    /// Builds a pool with `threads` total participants (the caller counts
    /// as one, so `threads − 1` workers are spawned; `threads ≤ 1` spawns
    /// none and `run` executes inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                task: None,
                ntasks: 0,
                next: 0,
                finished: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
            submit: Mutex::new(()),
        }
    }

    /// Total participants (caller + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(i)` for every `i in 0..ntasks`, each exactly once, and
    /// returns when all have completed.
    ///
    /// Panics in `f` are caught *per task*: the remaining indices still
    /// execute, no worker thread dies, the pool's mutex is never poisoned,
    /// and `run` reports every caught panic as a typed [`PoolError`]. The
    /// pool stays fully usable after an `Err` — the next `run` starts from
    /// a clean slate. (Before this hardening a panicking task killed its
    /// worker mid-fan-out and every later `run` deadlocked or panicked;
    /// that footgun is gone.)
    pub fn run<F: Fn(usize) + Sync>(&self, ntasks: usize, f: F) -> Result<(), PoolError> {
        if ntasks == 0 {
            return Ok(());
        }
        if self.workers.is_empty() || ntasks == 1 {
            let mut panics = Vec::new();
            for i in 0..ntasks {
                if let Err(p) = std::panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                    panics.push(TaskPanic {
                        index: i,
                        message: payload_message(&*p),
                    });
                }
            }
            return if panics.is_empty() {
                Ok(())
            } else {
                Err(PoolError { panics })
            };
        }
        // One fan-out at a time: a second submitter parking here (instead
        // of racing the epoch bump) is what makes sharing one pool across
        // long-lived shards safe. Submitters never panic while holding this
        // lock (their own task panics are caught below), so recovering a
        // poisoned guard — impossible since the hardening, but cheap — is
        // strictly better than turning every later run into a panic.
        let _submit = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // Safety: see RawTask — we block below until every index finished.
        let raw = RawTask(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
                as *const _
        });
        let mut st = self.shared.state.lock().expect("pool poisoned");
        st.epoch += 1;
        st.task = Some(raw);
        st.ntasks = ntasks;
        st.next = 0;
        st.finished = 0;
        st.panics.clear();
        let epoch = st.epoch;
        self.shared.work_cv.notify_all();
        // Participate: claim indices until none remain. The catch mirrors
        // the workers': a panicking index is recorded and counted finished,
        // so the fan-out always converges.
        while st.next < st.ntasks {
            let i = st.next;
            st.next += 1;
            drop(st);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| f(i))).err();
            st = self.shared.state.lock().expect("pool poisoned");
            st.finished += 1;
            if let Some(p) = caught {
                let message = payload_message(&*p);
                st.panics.push(TaskPanic { index: i, message });
            }
        }
        while st.finished < st.ntasks {
            st = self.shared.done_cv.wait(st).expect("pool poisoned");
        }
        debug_assert_eq!(st.epoch, epoch);
        st.task = None;
        if st.panics.is_empty() {
            Ok(())
        } else {
            Err(PoolError {
                panics: std::mem::take(&mut st.panics),
            })
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut st = shared.state.lock().expect("pool poisoned");
    loop {
        // Park until there is claimable work (or shutdown).
        while !(st.shutdown || st.task.is_some() && st.next < st.ntasks) {
            st = shared.work_cv.wait(st).expect("pool poisoned");
        }
        if st.shutdown {
            return;
        }
        let raw = st.task.expect("checked above");
        let epoch = st.epoch;
        while st.epoch == epoch && st.next < st.ntasks {
            let i = st.next;
            st.next += 1;
            drop(st);
            // Safety: index claimed under the mutex for the matching epoch;
            // the submitter keeps the closure alive until all indices finish.
            // The catch keeps a panicking task from unwinding the worker:
            // the panic is recorded for the submitter's PoolError, the index
            // counts as finished, and this thread keeps serving fan-outs.
            let caught =
                std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*raw.0)(i) })).err();
            st = shared.state.lock().expect("pool poisoned");
            st.finished += 1;
            if let Some(p) = caught {
                let message = payload_message(&*p);
                if st.epoch == epoch {
                    st.panics.push(TaskPanic { index: i, message });
                }
            }
            if st.finished == st.ntasks && st.epoch == epoch {
                shared.done_cv.notify_all();
            }
        }
    }
}

/// Disjoint parallel writes into one slice, chunked by a fixed length.
///
/// The safe-Rust obstacle to "each pool task writes its own shard of this
/// buffer" is that `&mut [T]` cannot be shared across closures; this wrapper
/// hands out raw chunk views instead. The caller promises (unsafe contract
/// on [`ShardWriter::chunk`]) that no chunk index is accessed concurrently
/// from two threads — which the [`TaskPool`] guarantees when each task `i`
/// touches only chunk `i`.
pub struct ShardWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ShardWriter<'_, T> {}
unsafe impl<T: Send> Sync for ShardWriter<'_, T> {}

impl<'a, T> ShardWriter<'a, T> {
    /// Wraps `slice`, to be written in chunks of `chunk` elements (the last
    /// chunk may be shorter). `chunk` must be positive.
    pub fn new(slice: &'a mut [T], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk length must be positive");
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            chunk,
            _marker: PhantomData,
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    /// Mutable view of chunk `i`.
    ///
    /// # Safety
    ///
    /// Each chunk index must be accessed by at most one thread at a time —
    /// in the intended pattern, pool task `i` calls `chunk(i)` and nothing
    /// else, so the views are disjoint by construction.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn chunk(&self, i: usize) -> &mut [T] {
        let start = i * self.chunk;
        assert!(start < self.len, "chunk {i} out of range");
        let len = self.chunk.min(self.len - start);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

/// Disjoint parallel writes into one slice at *scattered* indices.
///
/// [`ShardWriter`] covers the contiguous-chunk pattern; some fan-outs
/// partition a buffer by an index function instead — e.g. the sharded
/// freeze walk writes bid slots keyed by spatial block membership, where
/// each block's points are scattered through the flat `commodity × point`
/// arrays but every index still belongs to exactly one shard. The caller
/// promises (unsafe contract on [`ScatterWriter::slot`]) that no index is
/// accessed from two threads concurrently.
pub struct ScatterWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ScatterWriter<'_, T> {}
unsafe impl<T: Send> Sync for ScatterWriter<'_, T> {}

impl<'a, T> ScatterWriter<'a, T> {
    /// Wraps `slice` for scattered disjoint writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Elements in the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable view of element `i`.
    ///
    /// # Safety
    ///
    /// Each index must be accessed by at most one thread at a time. The
    /// intended pattern derives the index set of each pool task from a
    /// partition (task `s` owns exactly the indices `f(i) == s` for a pure
    /// function `f`), making the views disjoint by construction.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, i: usize) -> &mut T {
        assert!(i < self.len, "slot {i} out of range");
        &mut *self.ptr.add(i)
    }
}

/// A reasonable default worker count: the `OMFL_THREADS` environment
/// variable when set to a positive integer (the knob CI's determinism
/// matrix drives — results must be bit-identical at every value), else
/// available parallelism capped at 8 (experiment tasks are
/// memory-bandwidth-bound; more threads stop helping).
pub fn default_threads() -> usize {
    let raw = std::env::var("OMFL_THREADS").ok();
    threads_from(raw.as_deref())
}

/// The parsing half of [`default_threads`], with the raw configuration
/// value injected instead of read from the process environment: a positive
/// integer wins, anything else (unset, zero, garbage) falls back to
/// available parallelism capped at 8.
///
/// This is the seam tests and embedders use — mutating `OMFL_THREADS` via
/// `set_var` races every concurrent `default_threads()` reader in the
/// process (and is `unsafe` on current toolchains for exactly that
/// reason), so nothing in this workspace writes the variable at runtime.
pub fn threads_from(raw: Option<&str>) -> usize {
    if let Some(n) = raw
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Deterministic per-task seed derivation (SplitMix64 over `(base, task)`),
/// so trial `i` sees the same RNG stream no matter which thread runs it.
pub fn seed_for(base: u64, task: u64) -> u64 {
    let mut z = base ^ task.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Summary`] over a non-empty sample.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "summarize needs at least one sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let std = var.sqrt();
    let ci95 = 1.96 * std / (n as f64).sqrt();
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in samples {
        min = min.min(x);
        max = max.max(x);
    }
    Summary {
        n,
        mean,
        std,
        ci95,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..500).collect();
        let seq = parallel_map(&items, 1, |i, &x| seed_for(x, i as u64));
        let par = parallel_map(&items, 8, |i, &x| seed_for(x, i as u64));
        assert_eq!(seq, par);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Regression for the chunked rewrite: every thread count must yield
        // byte-identical output, including counts that don't divide n.
        let items: Vec<u64> = (0..331).collect();
        let reference = parallel_map(&items, 1, |i, &x| seed_for(x, i as u64));
        for threads in [2, 3, 5, 8, 16, 331, 1000] {
            let out = parallel_map(&items, threads, |i, &x| seed_for(x, i as u64));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later items are much heavier, so workers finish out of order and
        // stealing kicks in; assembly must still be in index order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |_, &x| {
            let spins = if x >= 56 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = seed_for(acc, x);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, *x);
        }
    }

    #[test]
    fn skewed_front_loaded_work_is_bit_identical_across_thread_counts() {
        // All the heavy items land in what would be the first static chunk —
        // the adversarial case for the old scheduler and the case where
        // stealing actually redistributes. Results must not care.
        let items: Vec<u64> = (0..96).collect();
        let work = |i: usize, x: u64| {
            let spins = if x < 12 { 50_000 } else { 5 };
            let mut acc = seed_for(x, i as u64);
            for _ in 0..spins {
                acc = seed_for(acc, x);
            }
            acc
        };
        let reference: Vec<u64> = items.iter().enumerate().map(|(i, &x)| work(i, x)).collect();
        for threads in [2, 3, 7, 16] {
            let out = parallel_map(&items, threads, |i, &x| work(i, x));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn seed_for_values_are_pinned() {
        // The scheduler rewrite must not reshuffle which (base, task) pair a
        // trial sees: seed derivation is a pure function of the pair, pinned
        // here so any accidental re-indexing in a future scheduler change
        // fails loudly instead of silently changing every table.
        assert_eq!(seed_for(0, 0), 0x0000_0000_0000_0000);
        assert_eq!(seed_for(0, 1), 0xE220_A839_7B1D_CDAF);
        assert_eq!(seed_for(1, 0), 0x5692_161D_100B_05E5);
        assert_eq!(seed_for(42, 7), 0x53AD_348A_F3DD_AF4B);
        assert_eq!(seed_for(2020, 3), 0xB38A_0D62_2D28_23D6);
        assert_eq!(seed_for(u64::MAX, u64::MAX), 0xE4D9_7177_1B65_2C20);
        assert_eq!(seed_for(0xDEAD_BEEF, 123_456_789), 0x9EB9_DDA0_7692_25F7);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map::<u32, u32, _>(&[], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn seeds_differ_across_tasks_and_bases() {
        assert_ne!(seed_for(1, 0), seed_for(1, 1));
        assert_ne!(seed_for(1, 0), seed_for(2, 0));
        assert_eq!(seed_for(7, 3), seed_for(7, 3));
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!((s.min, s.max), (2.0, 2.0));
    }

    #[test]
    fn summary_known_values() {
        let s = summarize(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(s.n, 2);
    }

    #[test]
    fn single_sample_summary() {
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn task_pool_runs_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            let pool = TaskPool::new(threads);
            for ntasks in [0usize, 1, 2, 3, 16, 100] {
                let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
                pool.run(ntasks, |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::SeqCst),
                        1,
                        "threads {threads}, ntasks {ntasks}, index {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn task_pool_is_reusable_with_uneven_work() {
        let pool = TaskPool::new(4);
        for round in 0..50u64 {
            let acc: Vec<AtomicUsize> = (0..13).map(|_| AtomicUsize::new(0)).collect();
            pool.run(13, |i| {
                // Skew the work so claims interleave differently per round.
                let spins = if i % 5 == 0 { 2000 } else { 3 };
                let mut x = seed_for(round, i as u64);
                for _ in 0..spins {
                    x = seed_for(x, i as u64);
                }
                acc[i].store((x as usize).max(1), Ordering::SeqCst);
            })
            .unwrap();
            assert!(acc.iter().all(|a| a.load(Ordering::SeqCst) > 0));
        }
    }

    #[test]
    fn task_pool_serializes_concurrent_submitters() {
        // One pool shared by several long-lived submitters (the serve-shard
        // pattern): every submission must execute all of its indices exactly
        // once, with no cross-execution between overlapping fan-outs.
        let pool = TaskPool::new(4);
        let submitters = 6usize;
        let rounds = 25usize;
        let ntasks = 17usize;
        let hits: Vec<Vec<AtomicUsize>> = (0..submitters)
            .map(|_| (0..ntasks).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        std::thread::scope(|scope| {
            for s in 0..submitters {
                let pool = &pool;
                let hits = &hits;
                scope.spawn(move || {
                    for round in 0..rounds {
                        pool.run(ntasks, |i| {
                            // A pinch of skew so claims interleave.
                            let mut x = seed_for(round as u64, i as u64);
                            for _ in 0..(i % 7) * 50 {
                                x = seed_for(x, i as u64);
                            }
                            std::hint::black_box(x);
                            hits[s][i].fetch_add(1, Ordering::SeqCst);
                        })
                        .unwrap();
                    }
                });
            }
        });
        for (s, row) in hits.iter().enumerate() {
            for (i, h) in row.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), rounds, "submitter {s}, index {i}");
            }
        }
    }

    #[test]
    fn shard_writer_partitions_exactly() {
        let mut buf = vec![0u64; 103];
        let writer = ShardWriter::new(&mut buf, 10);
        assert_eq!(writer.num_chunks(), 11);
        let pool = TaskPool::new(3);
        pool.run(writer.num_chunks(), |i| {
            // Safety: task i touches only chunk i.
            let chunk = unsafe { writer.chunk(i) };
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 10 + j) as u64 + 1;
            }
        })
        .unwrap();
        for (k, &v) in buf.iter().enumerate() {
            assert_eq!(v, k as u64 + 1);
        }
    }

    #[test]
    fn scatter_writer_disjoint_indices_partition_exactly() {
        // Interleaved ownership: task s owns indices with k % nshards == s —
        // scattered through the buffer, disjoint across tasks.
        let nshards = 4;
        let mut buf = vec![0u64; 103];
        let writer = ScatterWriter::new(&mut buf);
        assert_eq!(writer.len(), 103);
        assert!(!writer.is_empty());
        let pool = TaskPool::new(3);
        pool.run(nshards, |s| {
            for k in (s..103).step_by(nshards) {
                // Safety: k % nshards == s, so no other task touches k.
                unsafe { *writer.slot(k) = k as u64 + 1 };
            }
        })
        .unwrap();
        for (k, &v) in buf.iter().enumerate() {
            assert_eq!(v, k as u64 + 1);
        }
    }

    /// Silences the default panic hook for payloads produced by these
    /// deliberately panicking tests, so `cargo test` output stays readable.
    /// Other payloads still reach the previous hook.
    fn quiet_expected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied());
                let quiet = msg.is_some_and(|s| s.contains("deliberate test panic"));
                if !quiet {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn task_pool_survives_task_panics_and_reports_them_typed() {
        quiet_expected_panics();
        for threads in [1usize, 2, 4, 7] {
            let pool = TaskPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..24).map(|_| AtomicUsize::new(0)).collect();
            let err = pool
                .run(24, |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                    if i % 7 == 3 {
                        panic!("deliberate test panic at {i}");
                    }
                })
                .unwrap_err();
            // Every index ran exactly once, panicking or not.
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "threads {threads}, index {i}");
            }
            let mut panicked: Vec<usize> = err.panics.iter().map(|p| p.index).collect();
            panicked.sort_unstable();
            assert_eq!(panicked, vec![3, 10, 17], "threads {threads}");
            assert!(err.panics.iter().all(|p| p.message.contains("deliberate")));
            assert!(err.to_string().contains("panicked"));

            // The footgun regression: the pool must stay usable after the
            // panicking fan-out — same workers, clean slate.
            for _ in 0..3 {
                let ok: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
                pool.run(16, |i| {
                    ok[i].fetch_add(1, Ordering::SeqCst);
                })
                .expect("pool recovered");
                assert!(ok.iter().all(|h| h.load(Ordering::SeqCst) == 1));
            }
        }
    }

    #[test]
    fn task_pool_panic_from_the_submitting_thread_is_caught_too() {
        quiet_expected_panics();
        // ntasks == 1 executes inline on the caller; the catch must cover
        // that path as well as the fan-out path.
        let pool = TaskPool::new(4);
        let err = pool
            .run(1, |_| panic!("deliberate test panic inline"))
            .unwrap_err();
        assert_eq!(err.panics.len(), 1);
        assert_eq!(err.panics[0].index, 0);
        pool.run(8, |_| {}).expect("pool still fine");
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn default_threads_honors_omfl_threads_env() {
        // The parse logic is exercised through the injectable seam — the
        // old version mutated `OMFL_THREADS` with set_var/remove_var, and
        // any concurrently running test constructing a pool via
        // default_threads() could observe the transient 0/"lots" values.
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        // Garbage, zero, and unset fall back to the hardware default.
        let hw = threads_from(None);
        assert!((1..=8).contains(&hw));
        assert_eq!(threads_from(Some("0")), hw);
        assert_eq!(threads_from(Some("lots")), hw);
        assert_eq!(threads_from(Some("")), hw);
        // And the env-reading wrapper is the seam applied to the real
        // variable (read-only: no mutation, no race).
        let raw = std::env::var("OMFL_THREADS").ok();
        assert_eq!(default_threads(), threads_from(raw.as_deref()));
    }
}
