//! Parallel execution utilities for the experiment harness.
//!
//! Monte-Carlo estimation of RAND-OMFLP's *expected* competitive ratio needs
//! dozens of independent trials per parameter point; this crate provides a
//! dependency-free scoped parallel map (std scoped threads over contiguous
//! chunks), deterministic per-task seeding (SplitMix64 — results must not
//! depend on thread scheduling), and the mean/CI reduction the tables
//! report.
//!
//! # Why chunks instead of a shared result buffer
//!
//! An earlier version pulled indices from an atomic counter and wrote each
//! result through a mutex-guarded `Vec<Option<R>>`; under small per-item
//! work the lock became the bottleneck (every item paid a lock/unlock).
//! Now each worker owns one contiguous index range, produces its results in
//! a private `Vec`, and returns it from `spawn` — the only synchronization
//! is the final join, and output order is index order by construction, so
//! `parallel_map(items, 1, f) == parallel_map(items, k, f)` for every `k`.

/// Applies `f` to every index/item pair, spreading work over `threads` OS
/// threads. Results are returned in input order regardless of scheduling.
///
/// `threads = 0` or `1` runs inline (useful under a debugger and in tests).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Balanced contiguous chunks: the first `rem` workers take one extra
    // item, so chunk sizes differ by at most one.
    let base = n / threads;
    let rem = n % threads;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < rem);
            let range = start..start + len;
            start += len;
            let f = &f;
            handles.push(scope.spawn(move || range.map(|i| f(i, &items[i])).collect::<Vec<R>>()));
        }
        for h in handles {
            out.extend(h.join().expect("worker threads must not panic"));
        }
    });
    out
}

/// A reasonable default worker count: available parallelism capped at 8
/// (experiment tasks are memory-bandwidth-bound; more threads stop helping).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Deterministic per-task seed derivation (SplitMix64 over `(base, task)`),
/// so trial `i` sees the same RNG stream no matter which thread runs it.
pub fn seed_for(base: u64, task: u64) -> u64 {
    let mut z = base ^ task.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Summary`] over a non-empty sample.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "summarize needs at least one sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let std = var.sqrt();
    let ci95 = 1.96 * std / (n as f64).sqrt();
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in samples {
        min = min.min(x);
        max = max.max(x);
    }
    Summary {
        n,
        mean,
        std,
        ci95,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..500).collect();
        let seq = parallel_map(&items, 1, |i, &x| seed_for(x, i as u64));
        let par = parallel_map(&items, 8, |i, &x| seed_for(x, i as u64));
        assert_eq!(seq, par);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Regression for the chunked rewrite: every thread count must yield
        // byte-identical output, including counts that don't divide n.
        let items: Vec<u64> = (0..331).collect();
        let reference = parallel_map(&items, 1, |i, &x| seed_for(x, i as u64));
        for threads in [2, 3, 5, 8, 16, 331, 1000] {
            let out = parallel_map(&items, threads, |i, &x| seed_for(x, i as u64));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later items are much heavier, so chunks finish out of order; the
        // join must still reassemble results in index order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |_, &x| {
            let spins = if x >= 56 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = seed_for(acc, x);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, *x);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map::<u32, u32, _>(&[], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn seeds_differ_across_tasks_and_bases() {
        assert_ne!(seed_for(1, 0), seed_for(1, 1));
        assert_ne!(seed_for(1, 0), seed_for(2, 0));
        assert_eq!(seed_for(7, 3), seed_for(7, 3));
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!((s.min, s.max), (2.0, 2.0));
    }

    #[test]
    fn summary_known_values() {
        let s = summarize(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(s.n, 2);
    }

    #[test]
    fn single_sample_summary() {
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
