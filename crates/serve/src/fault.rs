//! Deterministic fault injection for the serve layer's chaos harness.
//!
//! A [`FaultPlan`] names, ahead of a run, exactly which arrivals misbehave
//! and how: a tenant panics mid-serve at a chosen `(tenant, arrival)`
//! point, returns an injected engine error, stalls for a fixed duration
//! (exercising deadline shedding), or the *consumer* stalls before a
//! chosen micro-batch (forcing ring-full backpressure episodes). Because
//! the plan is a pure value — no randomness at fire time, no dependence on
//! thread scheduling — a faulted run is reproducible, and the chaos suite
//! can assert the strong property the serve layer promises: **healthy
//! tenants are bit-identical with and without the injected faults**, at
//! any shard/thread/micro-batch configuration.
//!
//! The seeded constructor ([`FaultPlan::seeded`]) derives fault points
//! from a seed via the same SplitMix64 the workload catalog uses, so chaos
//! tests can sweep many distinct plans without hand-picking coordinates.

use omfl_par::seed_for;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// The marker every injected panic message carries, so panic hooks and
/// assertions can tell deliberate chaos from real bugs.
pub const INJECTED_PANIC_MARKER: &str = "injected-fault";

/// A deterministic fault schedule for one serve run. Build with the
/// fluent `*_at` methods or [`seeded`](FaultPlan::seeded); pass to
/// [`Server::serve_with_faults`](crate::Server::serve_with_faults).
///
/// An empty plan (the [`Default`]) injects nothing —
/// `serve_with_faults(.., &FaultPlan::default())` is exactly `serve`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panics: BTreeSet<(u32, u32)>,
    errors: BTreeSet<(u32, u32)>,
    stalls: BTreeMap<(u32, u32), Duration>,
    batch_stalls: BTreeMap<u64, Duration>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a panic into tenant `tenant`'s serve of its arrival
    /// `arrival` (per-tenant request index). The panic unwinds out of the
    /// engine exactly like a real engine bug would.
    pub fn panic_at(mut self, tenant: u32, arrival: u32) -> Self {
        self.panics.insert((tenant, arrival));
        self
    }

    /// Injects a synthetic engine error (a `CoreError::BadRequest`) at the
    /// given point — the non-unwinding fault path.
    pub fn error_at(mut self, tenant: u32, arrival: u32) -> Self {
        self.errors.insert((tenant, arrival));
        self
    }

    /// Stalls tenant `tenant`'s serve of arrival `arrival` by `dur` — the
    /// stall is *inside* the timed serve section, so it counts against a
    /// configured per-tenant micro-batch deadline (a simulated slow
    /// tenant, the deadline shedding trigger).
    pub fn stall_at(mut self, tenant: u32, arrival: u32, dur: Duration) -> Self {
        self.stalls.insert((tenant, arrival), dur);
        self
    }

    /// Stalls the *consumer* for `dur` before it drains micro-batch
    /// `batch` (0-based), letting the producer run the ring full — a
    /// forced backpressure episode.
    pub fn stall_batch(mut self, batch: u64, dur: Duration) -> Self {
        self.batch_stalls.insert(batch, dur);
        self
    }

    /// A seeded plan: `panics` distinct panic points drawn from the fleet
    /// shape via SplitMix64. Tenants with empty streams are never picked.
    /// A pure function of `(seed, tenant_lens, panics)`.
    pub fn seeded(seed: u64, tenant_lens: &[usize], panics: usize) -> Self {
        let eligible: Vec<u32> = tenant_lens
            .iter()
            .enumerate()
            .filter(|(_, &len)| len > 0)
            .map(|(t, _)| t as u32)
            .collect();
        let mut plan = Self::new();
        if eligible.is_empty() {
            return plan;
        }
        let mut draw = 0u64;
        while plan.panics.len() < panics.min(eligible.len()) {
            let t = eligible[(seed_for(seed, 2 * draw) % eligible.len() as u64) as usize];
            let len = tenant_lens[t as usize] as u64;
            let i = (seed_for(seed, 2 * draw + 1) % len) as u32;
            // One fault per tenant keeps "which tenants are quarantined"
            // a deterministic function of the plan alone, not of how the
            // first fault races a would-be second one on the same tenant.
            if !plan.panics.iter().any(|&(pt, _)| pt == t) {
                plan.panics.insert((t, i));
            }
            draw += 1;
        }
        plan
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.errors.is_empty()
            && self.stalls.is_empty()
            && self.batch_stalls.is_empty()
    }

    /// Should this serve invocation panic?
    pub fn should_panic(&self, tenant: u32, arrival: u32) -> bool {
        self.panics.contains(&(tenant, arrival))
    }

    /// Should this serve invocation fail with an injected engine error?
    pub fn should_error(&self, tenant: u32, arrival: u32) -> bool {
        self.errors.contains(&(tenant, arrival))
    }

    /// The injected stall for this serve invocation, if any.
    pub fn stall_for(&self, tenant: u32, arrival: u32) -> Option<Duration> {
        self.stalls.get(&(tenant, arrival)).copied()
    }

    /// The injected consumer stall before draining this micro-batch.
    pub fn batch_stall(&self, batch: u64) -> Option<Duration> {
        self.batch_stalls.get(&batch).copied()
    }

    /// Every planned panic point, in `(tenant, arrival)` order — what a
    /// chaos test compares the run's quarantine list against.
    pub fn panic_points(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.panics.iter().copied()
    }

    /// Every planned injected-error point, in `(tenant, arrival)` order.
    pub fn error_points(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.errors.iter().copied()
    }

    /// Tenants faulted by panic or injected error — the set a chaos test
    /// excludes when asserting healthy tenants are bit-identical.
    pub fn faulted_tenants(&self) -> BTreeSet<u32> {
        self.panics
            .iter()
            .chain(self.errors.iter())
            .map(|&(t, _)| t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_pure_functions_of_their_inputs() {
        let lens = [40, 0, 51, 62, 73];
        let a = FaultPlan::seeded(7, &lens, 3);
        let b = FaultPlan::seeded(7, &lens, 3);
        assert_eq!(
            a.panic_points().collect::<Vec<_>>(),
            b.panic_points().collect::<Vec<_>>()
        );
        assert_eq!(a.panic_points().count(), 3);
        for (t, i) in a.panic_points() {
            assert_ne!(t, 1, "traffic-less tenants are never faulted");
            assert!((i as usize) < lens[t as usize]);
        }
        // One fault per tenant.
        assert_eq!(a.faulted_tenants().len(), 3);
        // A different seed yields a different plan (with overwhelming
        // probability for this shape; pinned here as a regression canary).
        let c = FaultPlan::seeded(8, &lens, 3);
        assert_ne!(
            a.panic_points().collect::<Vec<_>>(),
            c.panic_points().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_fleets_and_zero_requests_yield_empty_plans() {
        assert!(FaultPlan::seeded(1, &[], 4).is_empty());
        assert!(FaultPlan::seeded(1, &[0, 0], 4).is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn builders_register_and_queries_answer() {
        let plan = FaultPlan::new()
            .panic_at(2, 5)
            .error_at(1, 3)
            .stall_at(0, 1, Duration::from_millis(9))
            .stall_batch(4, Duration::from_millis(2));
        assert!(!plan.is_empty());
        assert!(plan.should_panic(2, 5));
        assert!(!plan.should_panic(2, 6));
        assert!(plan.should_error(1, 3));
        assert_eq!(plan.stall_for(0, 1), Some(Duration::from_millis(9)));
        assert_eq!(plan.stall_for(0, 2), None);
        assert_eq!(plan.batch_stall(4), Some(Duration::from_millis(2)));
        assert_eq!(plan.batch_stall(3), None);
        assert_eq!(
            plan.faulted_tenants().into_iter().collect::<Vec<_>>(),
            vec![1, 2]
        );
    }
}
