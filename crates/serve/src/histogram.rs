//! Log-scale latency histogram for per-arrival serve times.
//!
//! Power-of-two nanosecond buckets: bucket `b` covers `[2^(b-1), 2^b)` ns
//! (bucket 0 is `0..1` ns; bucket 63 absorbs everything from `2^62` up, so
//! its reported bound is `u64::MAX` rather than `2^63` — the only bucket
//! whose upper edge is not a power of two, because samples up to
//! `u64::MAX` land in it). 64 buckets cover every representable `u64`
//! duration, recording is two instructions, and merging shard-local
//! histograms is a vector add — so the serve hot loop pays almost nothing
//! for p50/p99 output. Quantiles are reported as the upper bound of the
//! containing bucket, i.e. with a factor-2 resolution, which is plenty for
//! a latency cell whose interesting failures are order-of-magnitude
//! regressions.

const BUCKETS: usize = 64;

/// A fixed-size log2 histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
        }
    }

    /// Records one latency sample in nanoseconds. Counters saturate instead
    /// of wrapping: a histogram fed for years (or merged from hostile
    /// inputs) degrades to a pinned count, never to a debug-build overflow
    /// panic on the serve hot path.
    pub fn record(&mut self, ns: u64) {
        let b = (u64::BITS - ns.leading_zeros()) as usize; // 0 -> 0, 1 -> 1, ...
        let slot = &mut self.buckets[b.min(BUCKETS - 1)];
        *slot = slot.saturating_add(1);
        self.count = self.count.saturating_add(1);
    }

    /// Folds another histogram (e.g. a shard's) into this one. Saturating,
    /// like [`record`](Self::record).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound in nanoseconds
    /// of the bucket containing it; 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket is saturated: `record` clamps every sample
                // with 63+ significant bits into it, so the only honest
                // upper bound is `u64::MAX` — `1 << 63` would sit *below* a
                // `u64::MAX` sample.
                return match b {
                    0 => 1,
                    63 => u64::MAX,
                    b => 1u64 << b,
                };
            }
        }
        u64::MAX
    }

    /// Median latency upper bound in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency upper bound in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
    }

    #[test]
    fn quantiles_bound_their_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 128) -> upper bound 128
        }
        h.record(1_000_000); // bucket upper bound 2^20
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50_ns(), 128);
        assert_eq!(h.quantile_ns(0.98), 128);
        assert_eq!(h.p99_ns(), 128, "the 99th of 100 samples is still fast");
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for (i, ns) in [0u64, 1, 7, 300, 5_000, u64::MAX].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*ns);
            whole.record(*ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile_ns(q), whole.quantile_ns(q));
        }
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.quantile_ns(0.0), 1);
        // The top bucket's bound must not undercut its own samples: a
        // `u64::MAX` latency needs a bound of `u64::MAX`, not `1 << 63`.
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn saturated_counters_pin_instead_of_wrapping() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        let mut b = a.clone();
        // Drive both to the brink by self-merging doublings, then collide.
        for _ in 0..63 {
            let snap = a.clone();
            a.merge(&snap);
        }
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.count(), u64::MAX, "count pins at the ceiling");
        assert_eq!(b.p50_ns(), 128, "quantiles stay sane at saturation");
    }

    #[test]
    fn top_bucket_bound_covers_its_whole_range() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64 << 62, (1 << 63) - 1, 1 << 63, u64::MAX] {
            h.record(ns);
            assert!(
                h.quantile_ns(1.0) >= ns,
                "quantile bound {} fell below recorded sample {ns}",
                h.quantile_ns(1.0)
            );
        }
    }
}
