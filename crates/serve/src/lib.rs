//! Multi-tenant serve loop: many independent engine instances (tenants)
//! multiplexed over one [`omfl_par::TaskPool`].
//!
//! The paper's engines serve one request stream each; a provider runs
//! *many* such streams at once — one engine per tenant/region — and cares
//! about aggregate throughput, tail latency and live state visibility.
//! This crate is that serving layer:
//!
//! - **Ingest**: arrivals enter as `(tenant, request index)` pairs through
//!   a bounded [`ArrivalRing`] in micro-batches; a full ring blocks the
//!   producer (backpressure, with a bounded retry budget rather than an
//!   indefinite hang) and the blocking episodes are first-class bench
//!   output.
//! - **Sharding**: tenant `t` is owned by shard `t % shards`, forever.
//!   Shards run as tasks on a shared long-lived [`TaskPool`] (one
//!   [`TaskPool::run`] per micro-batch), so a fleet of servers can
//!   multiplex one pool; each shard serves its tenants' arrivals in batch
//!   order, preserving every tenant's stream order.
//! - **Snapshots**: after each micro-batch a shard publishes a cheap
//!   [`EngineSnapshot`] per touched tenant through a [`SnapshotHandle`],
//!   so metrics and bound checks read consistent state without ever
//!   taking an engine lock on the serve path.
//! - **Fault isolation**: each tenant serve runs under
//!   [`catch_unwind`](std::panic::catch_unwind). A panicking (or erroring,
//!   or verification-failing) tenant is **quarantined** — its remaining
//!   arrivals are skipped, its last snapshot is republished with
//!   [`valid`](EngineSnapshot::valid) cleared, and the fault is reported
//!   as a typed [`Quarantine`] in the [`ServeReport`] — while every
//!   healthy tenant continues bit-identically. Tenant mutexes are
//!   poison-recovering throughout: a reader asking for a poisoned
//!   tenant's handle gets [`ServeError::TenantPoisoned`], never a panic.
//! - **Determinism**: the deterministic [`ServeReport`] (per-tenant
//!   reports, healthy-tenant aggregates, digest) is bit-identical for a
//!   given arrival order at *any* shard count, thread count or
//!   micro-batch size, because per-tenant serve order is the canonical
//!   stream order regardless of how batches are cut. Wall-clock results
//!   (throughput, latency percentiles, backpressure, shed counts) live in
//!   the separate [`ServeTelemetry`] — the same split as the sweep
//!   harness's `SweepCell` vs `TimedCell`. Deadline shedding
//!   ([`ServeConfig::deadline`]) is wall-clock-driven and therefore
//!   *opt-in*: with it disabled (the default) results are deterministic;
//!   with it enabled, which arrivals are shed depends on machine speed.
//!
//! [`EngineSnapshot`]: omfl_core::algorithm::EngineSnapshot
//! [`TaskPool`]: omfl_par::TaskPool
//! [`TaskPool::run`]: omfl_par::TaskPool::run

pub mod fault;
pub mod histogram;
pub mod ring;
pub mod snapshot;

pub use fault::{FaultPlan, INJECTED_PANIC_MARKER};
pub use histogram::LatencyHistogram;
pub use ring::{Arrival, ArrivalRing, PushBudget, PushOutcome};
pub use snapshot::SnapshotHandle;

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::CoreError;
use omfl_par::TaskPool;
use omfl_sim::{boxed_engine, ArrivalSource, Engine, SimReport, StreamingMetrics};
use omfl_workload::Scenario;
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Errors from building or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// An engine failed while serving or its solution failed verification;
    /// the tenant index says whose. (The serve loop itself quarantines
    /// such tenants instead of failing; this variant remains for callers
    /// that treat any quarantine as fatal.)
    Tenant(usize, CoreError),
    /// A tenant's mutex was poisoned by a panic that escaped containment —
    /// returned to readers instead of propagating the panic.
    TenantPoisoned {
        /// Which tenant's lock was poisoned.
        tenant: usize,
    },
    /// The engine kind cannot be constructed as a long-lived boxed tenant
    /// engine (the projected baselines borrow owned sub-instances).
    UnsupportedEngine(&'static str),
    /// More tenants than the `u32` arrival encoding can address.
    TooManyTenants(usize),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Tenant(t, e) => write!(f, "tenant {t}: {e}"),
            ServeError::TenantPoisoned { tenant } => {
                write!(f, "tenant {tenant}: mutex poisoned by an uncontained panic")
            }
            ServeError::UnsupportedEngine(name) => {
                write!(f, "engine {name} cannot run as a boxed tenant engine")
            }
            ServeError::TooManyTenants(n) => write!(f, "{n} tenants exceed u32 addressing"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Tenant(_, e) => Some(e),
            _ => None,
        }
    }
}

/// Why a tenant was quarantined. Stringly-typed payloads keep the reason
/// `Clone + Eq` (a `CoreError` is neither) — chaos tests compare reasons
/// structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The tenant's serve panicked; the payload message is preserved.
    Panic {
        /// The panic payload, downcast to a string when possible.
        message: String,
    },
    /// The engine returned an error serving an arrival.
    EngineError {
        /// The rendered `CoreError`.
        error: String,
    },
    /// The finished solution failed post-run verification.
    VerifyFailed {
        /// The rendered verification error.
        error: String,
    },
    /// The tenant's mutex was found poisoned (a panic escaped containment
    /// somewhere); the state is untrusted even though no fault was seen.
    Poisoned,
}

/// One quarantined tenant: who, where in its stream, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// The quarantined tenant.
    pub tenant: usize,
    /// Per-tenant arrival index at which the fault fired — `None` when the
    /// fault was not tied to a single arrival (verification, poison).
    pub arrival: Option<u32>,
    /// The typed reason.
    pub reason: QuarantineReason,
}

/// Serve-loop knobs. The defaults suit tests; benches size them
/// explicitly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard count (clamped to ≥ 1). Tenant `t` is owned by shard
    /// `t % shards`; more shards than tenants leaves some idle.
    pub shards: usize,
    /// Arrivals per micro-batch drained from the ring (clamped to ≥ 1).
    /// Also the snapshot-publication granularity.
    pub micro_batch: usize,
    /// Ring capacity — the backpressure bound on ingest runahead.
    pub queue_capacity: usize,
    /// Per-tenant serve-time budget *per micro-batch*: once a tenant has
    /// spent this much wall-clock serving inside one micro-batch, its
    /// remaining arrivals in that batch are shed (skipped, counted in
    /// [`ServeTelemetry::shed`]) so one slow tenant cannot hold a shard —
    /// and every tenant behind it — hostage. `None` (the default)
    /// disables shedding; **results are only deterministic when it is
    /// off**, because which arrivals exceed a wall-clock budget depends
    /// on machine speed.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            micro_batch: 64,
            queue_capacity: 1024,
            deadline: None,
        }
    }
}

/// The deterministic outcome of one serve run: per-tenant reports in
/// tenant order, aggregates and a digest over the *healthy* (never
/// quarantined) tenants, and the typed quarantine list. Bit-identical
/// across shard counts, thread counts and micro-batch sizes for a fixed
/// arrival order and fault plan — the CI gate compares `digest` across
/// configurations, and the chaos gate compares a faulted run's `digest`
/// against a clean run's [`digest_over`](Self::digest_over) the same
/// healthy subset.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Engine kind every tenant ran.
    pub engine: &'static str,
    /// One report per tenant, in tenant order — a quarantined tenant's
    /// report is frozen at its pre-fault state (and its solution is
    /// unverified; trust nothing past the fault).
    pub tenants: Vec<SimReport>,
    /// Tenants quarantined during the run, in tenant order.
    pub quarantined: Vec<Quarantine>,
    /// Total arrivals served across *healthy* tenants.
    pub arrivals: usize,
    /// Aggregate construction + connection cost over healthy tenants.
    pub total_cost: f64,
    /// Aggregate construction part (healthy tenants).
    pub construction_cost: f64,
    /// Aggregate connection part (healthy tenants).
    pub connection_cost: f64,
    /// Facilities opened across healthy tenants.
    pub facilities: usize,
    /// Large facilities among them.
    pub large_facilities: usize,
    /// FNV-1a fold of every deterministic per-tenant field (costs as exact
    /// bit patterns) over the healthy tenants, for cheap
    /// cross-configuration identity checks.
    pub digest: u64,
}

/// Wall-clock measurements of one serve run — deliberately outside
/// [`ServeReport`] so determinism checks never compare timings.
#[derive(Debug, Clone)]
pub struct ServeTelemetry {
    /// End-to-end wall time of the serve loop.
    pub wall_secs: f64,
    /// Aggregate arrivals per second (`arrivals / wall_secs`).
    pub arrivals_per_sec: f64,
    /// Median per-arrival serve latency (log2-bucket upper bound, ns).
    pub latency_p50_ns: u64,
    /// 99th-percentile per-arrival serve latency (ns).
    pub latency_p99_ns: u64,
    /// Producer blocking episodes on the full ring.
    pub backpressure_waits: u64,
    /// `true` if the producer's bounded retry budget ran out and ingest
    /// abandoned the tail of the stream (a wedged consumer; the served
    /// prefix is still reported faithfully).
    pub ingest_gave_up: bool,
    /// Arrivals shed per tenant by the micro-batch deadline
    /// ([`ServeConfig::deadline`]); all zero when shedding is off.
    pub shed: Vec<u64>,
    /// Shards the run used.
    pub shards: usize,
    /// Worker threads in the pool it ran on (plus the caller).
    pub pool_threads: usize,
}

struct TenantState<'a> {
    scenario: &'a Scenario,
    engine: Box<dyn OnlineAlgorithm + Send + 'a>,
    metrics: StreamingMetrics,
    histogram: LatencyHistogram,
    handle: SnapshotHandle,
    quarantine: Option<Quarantine>,
    shed: u64,
    /// Micro-batch the deadline accounting below refers to; lazily reset
    /// when a batch first touches the tenant.
    batch_epoch: u64,
    /// Serve time this tenant has spent inside `batch_epoch`.
    batch_spent: Duration,
}

impl TenantState<'_> {
    /// Quarantines the tenant (first fault wins) and freezes its published
    /// snapshot: readers keep the last good numbers, flagged invalid.
    fn quarantine(&mut self, q: Quarantine) {
        if self.quarantine.is_none() {
            self.quarantine = Some(q);
            self.handle.publish(self.handle.read().invalidated());
        }
    }
}

/// Locks a tenant, recovering from poison. The boolean reports whether the
/// lock *was* poisoned — the serve path turns that into a
/// [`QuarantineReason::Poisoned`] quarantine, readers into
/// [`ServeError::TenantPoisoned`]; nobody panics on it. Recovery is sound
/// because every engine mutation on the serve path runs under
/// `catch_unwind` *inside* the guard: a panic is contained before
/// unwinding can poison the mutex, so a poisoned lock means some
/// non-serve-path panic and the state is quarantined rather than trusted.
fn lock_tenant<'t, 'a>(
    tenant: &'t Mutex<TenantState<'a>>,
) -> (MutexGuard<'t, TenantState<'a>>, bool) {
    match tenant.lock() {
        Ok(guard) => (guard, false),
        Err(poisoned) => (poisoned.into_inner(), true),
    }
}

/// Best-effort string form of a panic payload (`&str` and `String`
/// payloads; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A multi-tenant server: one long-lived engine per scenario, sharded over
/// a task pool. Build with [`Server::new`], grab [`SnapshotHandle`]s, then
/// [`Server::serve`] a canonical arrival stream to completion.
pub struct Server<'a> {
    engine_kind: Engine,
    tenants: Vec<Mutex<TenantState<'a>>>,
}

impl<'a> Server<'a> {
    /// Builds one boxed engine per scenario. Fails for engine kinds that
    /// cannot live as boxed tenants (see [`ServeError::UnsupportedEngine`]).
    pub fn new(scenarios: &'a [Scenario], engine: Engine) -> Result<Self, ServeError> {
        if scenarios.len() > u32::MAX as usize {
            return Err(ServeError::TooManyTenants(scenarios.len()));
        }
        let tenants = scenarios
            .iter()
            .map(|scenario| {
                let boxed = boxed_engine(scenario, engine)
                    .ok_or(ServeError::UnsupportedEngine(engine.name()))?;
                Ok(Mutex::new(TenantState {
                    scenario,
                    engine: boxed,
                    metrics: StreamingMetrics::with_capacity(scenario.requests.len()),
                    histogram: LatencyHistogram::new(),
                    handle: SnapshotHandle::new(),
                    quarantine: None,
                    shed: 0,
                    batch_epoch: 0,
                    batch_spent: Duration::ZERO,
                }))
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(Self {
            engine_kind: engine,
            tenants,
        })
    }

    /// Tenants multiplexed by this server.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The snapshot handle for one tenant. Handles are cheap clones of a
    /// shared slot: take them before serving and read them from any thread
    /// while the run is in flight (or after — they keep the final state).
    ///
    /// Returns [`ServeError::TenantPoisoned`] — instead of panicking — if
    /// the tenant's mutex was poisoned by an uncontained panic.
    pub fn snapshot_handle(&self, tenant: usize) -> Result<SnapshotHandle, ServeError> {
        let (state, poisoned) = lock_tenant(&self.tenants[tenant]);
        if poisoned {
            return Err(ServeError::TenantPoisoned { tenant });
        }
        Ok(state.handle.clone())
    }

    /// Runs the serve loop to completion over a canonical arrival stream,
    /// consuming the server (engines finish into reports).
    ///
    /// A producer thread feeds the ring from `source` in micro-batches;
    /// the calling thread drains micro-batches and dispatches each across
    /// shards via `pool.run`. An arrival `(t, i)` must satisfy
    /// `t < num_tenants()` and index a request of tenant `t`'s scenario in
    /// ascending per-tenant order — [`ArrivalSource`] guarantees this.
    ///
    /// Tenant faults (panics, engine errors, verification failures) do
    /// not fail the run: the faulted tenant is quarantined and reported in
    /// [`ServeReport::quarantined`] while healthy tenants finish
    /// bit-identically to a run without the fault.
    pub fn serve(
        self,
        source: &ArrivalSource,
        cfg: &ServeConfig,
        pool: &TaskPool,
    ) -> Result<(ServeReport, ServeTelemetry), ServeError> {
        self.serve_with_faults(source, cfg, pool, &FaultPlan::default())
    }

    /// [`serve`](Self::serve) under a deterministic [`FaultPlan`] — the
    /// chaos harness's entry point. An empty plan makes this identical to
    /// `serve`; injected panics/errors quarantine their tenant exactly as
    /// real ones would, injected stalls exercise deadline shedding, and
    /// consumer batch stalls force ring-full backpressure.
    pub fn serve_with_faults(
        self,
        source: &ArrivalSource,
        cfg: &ServeConfig,
        pool: &TaskPool,
        faults: &FaultPlan,
    ) -> Result<(ServeReport, ServeTelemetry), ServeError> {
        let shards = cfg.shards.max(1);
        let micro_batch = cfg.micro_batch.max(1);
        let deadline = cfg.deadline;
        let ring = ArrivalRing::new(cfg.queue_capacity);
        let tenants = &self.tenants;
        let ingest_gave_up = AtomicBool::new(false);

        let started = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let budget = PushBudget::default();
                for chunk in source.order().chunks(micro_batch) {
                    let out = ring.push_batch_bounded(chunk, &budget);
                    if out.gave_up {
                        ingest_gave_up.store(true, Ordering::Relaxed);
                        return; // wedged consumer; the enqueued prefix drains
                    }
                    if out.pushed < chunk.len() {
                        return; // consumer closed the ring early
                    }
                }
                ring.close();
            });

            let mut batch: Vec<Arrival> = Vec::with_capacity(micro_batch);
            let mut batch_no = 0u64;
            while ring.drain_into(&mut batch, micro_batch) {
                if let Some(stall) = faults.batch_stall(batch_no) {
                    std::thread::sleep(stall); // let the producer fill the ring
                }
                let this_batch = batch_no;
                batch_no += 1;
                let ran = pool.run(shards, |s| {
                    let mut touched = [0u64; 4]; // bitmap for up to 256 tenants
                    for &(t32, i) in batch.iter() {
                        let t = t32 as usize;
                        if t % shards != s {
                            continue;
                        }
                        let (mut tenant, poisoned) = lock_tenant(&tenants[t]);
                        if poisoned {
                            tenant.quarantine(Quarantine {
                                tenant: t,
                                arrival: None,
                                reason: QuarantineReason::Poisoned,
                            });
                        }
                        if tenant.quarantine.is_some() {
                            continue;
                        }
                        if let Some(budget) = deadline {
                            if tenant.batch_epoch != this_batch {
                                tenant.batch_epoch = this_batch;
                                tenant.batch_spent = Duration::ZERO;
                            } else if tenant.batch_spent >= budget {
                                tenant.shed += 1;
                                continue;
                            }
                        }
                        let scenario = tenant.scenario;
                        let request = &scenario.requests[i as usize];
                        let stall = faults.stall_for(t32, i);
                        let inject_panic = faults.should_panic(t32, i);
                        let inject_error = faults.should_error(t32, i);
                        let t0 = Instant::now();
                        // The catch_unwind sits *inside* the held guard, so
                        // a panicking engine never poisons the tenant mutex:
                        // containment, not recovery, is the first line.
                        let served = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(d) = stall {
                                std::thread::sleep(d);
                            }
                            if inject_panic {
                                panic!("{INJECTED_PANIC_MARKER}: tenant {t} arrival {i}");
                            }
                            if inject_error {
                                return Err(CoreError::BadRequest(format!(
                                    "{INJECTED_PANIC_MARKER}: tenant {t} arrival {i}"
                                )));
                            }
                            tenant.engine.serve(request)
                        }));
                        match served {
                            Ok(Ok(out)) => {
                                let spent = t0.elapsed();
                                let total = tenant.engine.solution().total_cost();
                                tenant.histogram.record(spent.as_nanos() as u64);
                                tenant.metrics.observe(&out, total);
                                if deadline.is_some() {
                                    tenant.batch_spent += spent;
                                }
                                if let Some(w) = touched.get_mut(t / 64) {
                                    *w |= 1 << (t % 64);
                                } else {
                                    let snap = tenant.engine.snapshot();
                                    tenant.handle.publish(snap);
                                }
                            }
                            Ok(Err(e)) => tenant.quarantine(Quarantine {
                                tenant: t,
                                arrival: Some(i),
                                reason: QuarantineReason::EngineError {
                                    error: e.to_string(),
                                },
                            }),
                            Err(payload) => tenant.quarantine(Quarantine {
                                tenant: t,
                                arrival: Some(i),
                                reason: QuarantineReason::Panic {
                                    message: panic_message(&*payload),
                                },
                            }),
                        }
                    }
                    // Publish once per touched tenant per micro-batch, not
                    // per arrival — snapshot freshness is batch-granular. A
                    // tenant quarantined later in the same batch keeps its
                    // frozen invalid snapshot instead.
                    for (w, &bits) in touched.iter().enumerate() {
                        let mut bits = bits;
                        while bits != 0 {
                            let t = w * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let (tenant, _) = lock_tenant(&tenants[t]);
                            if tenant.quarantine.is_none() {
                                let snap = tenant.engine.snapshot();
                                tenant.handle.publish(snap);
                            }
                        }
                    }
                });
                if let Err(e) = ran {
                    // Tenant panics are contained above; a panic escaping
                    // the shard closure itself is a serve-layer bug.
                    panic!("serve shard panicked outside tenant containment: {e}");
                }
                batch.clear();
                if !tenants.is_empty()
                    && tenants
                        .iter()
                        .all(|t| lock_tenant(t).0.quarantine.is_some())
                {
                    // Every tenant is quarantined: nothing left to serve.
                    // Unblock the producer; it gives up and the remaining
                    // queued arrivals drain as no-ops.
                    ring.close();
                }
            }
        });
        let wall_secs = started.elapsed().as_secs_f64();
        let (_, backpressure_waits) = ring.stats();

        let mut reports = Vec::with_capacity(self.tenants.len());
        let mut quarantined = Vec::new();
        let mut shed = Vec::with_capacity(self.tenants.len());
        let mut latency = LatencyHistogram::new();
        for (t, tenant) in self.tenants.into_iter().enumerate() {
            let mut state = match tenant.into_inner() {
                Ok(state) => state,
                Err(poisoned) => {
                    let mut state = poisoned.into_inner();
                    state.quarantine(Quarantine {
                        tenant: t,
                        arrival: None,
                        reason: QuarantineReason::Poisoned,
                    });
                    state
                }
            };
            shed.push(state.shed);
            if state.quarantine.is_none() {
                if let Err(e) = state.engine.solution().verify(state.scenario.instance()) {
                    state.quarantine(Quarantine {
                        tenant: t,
                        arrival: None,
                        reason: QuarantineReason::VerifyFailed {
                            error: e.to_string(),
                        },
                    });
                }
            }
            match state.quarantine.take() {
                Some(q) => quarantined.push(q),
                None => latency.merge(&state.histogram),
            }
            reports.push(state.metrics.finish(
                self.engine_kind,
                state.scenario,
                state.engine.solution(),
            ));
        }

        let report = ServeReport::from_tenants(self.engine_kind.name(), reports, quarantined);
        let telemetry = ServeTelemetry {
            wall_secs,
            arrivals_per_sec: report.arrivals as f64 / wall_secs.max(1e-12),
            latency_p50_ns: latency.p50_ns(),
            latency_p99_ns: latency.p99_ns(),
            backpressure_waits,
            ingest_gave_up: ingest_gave_up.load(Ordering::Relaxed),
            shed,
            shards,
            pool_threads: pool.threads(),
        };
        Ok((report, telemetry))
    }
}

impl ServeReport {
    /// Aggregates per-tenant reports in tenant order (the only order that
    /// makes float accumulation reproducible), folding only the healthy
    /// tenants into the aggregates and the digest.
    fn from_tenants(
        engine: &'static str,
        tenants: Vec<SimReport>,
        quarantined: Vec<Quarantine>,
    ) -> Self {
        let bad: BTreeSet<usize> = quarantined.iter().map(|q| q.tenant).collect();
        let mut report = ServeReport {
            engine,
            arrivals: 0,
            total_cost: 0.0,
            construction_cost: 0.0,
            connection_cost: 0.0,
            facilities: 0,
            large_facilities: 0,
            digest: 0,
            quarantined,
            tenants,
        };
        for (t, rep) in report.tenants.iter().enumerate() {
            if bad.contains(&t) {
                continue;
            }
            report.arrivals += rep.requests;
            report.total_cost += rep.total_cost;
            report.construction_cost += rep.construction_cost;
            report.connection_cost += rep.connection_cost;
            report.facilities += rep.facilities;
            report.large_facilities += rep.large_facilities;
        }
        report.digest = report.digest_over(|t| !bad.contains(&t));
        report
    }

    /// Whether `tenant` was quarantined during the run.
    pub fn is_quarantined(&self, tenant: usize) -> bool {
        self.quarantined.iter().any(|q| q.tenant == tenant)
    }

    /// The FNV-1a digest over the subset of tenants selected by `include`
    /// (by tenant index). `digest` is exactly
    /// `digest_over(|t| !is_quarantined(t))`; a chaos test compares a
    /// faulted run's `digest` against a *clean* run's `digest_over` of the
    /// same healthy subset to prove healthy tenants were bit-identical.
    /// Tenant indices and the subset size are folded in, so different
    /// subsets never collide trivially.
    pub fn digest_over(&self, include: impl Fn(usize) -> bool) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| h = (h ^ x).wrapping_mul(PRIME);
        mix(self
            .tenants
            .iter()
            .enumerate()
            .filter(|(t, _)| include(*t))
            .count() as u64);
        for (idx, t) in self.tenants.iter().enumerate() {
            if !include(idx) {
                continue;
            }
            mix(idx as u64);
            mix(t.requests as u64);
            mix(t.facilities as u64);
            mix(t.large_facilities as u64);
            mix(t.large_serves as u64);
            mix(t.total_cost.to_bits());
            mix(t.construction_cost.to_bits());
            mix(t.connection_cost.to_bits());
            mix(t.latency.mean.to_bits());
            mix(t.latency.p50.to_bits());
            mix(t.latency.p95.to_bits());
            mix(t.latency.max.to_bits());
            for &c in &t.cost_over_time {
                mix(c.to_bits());
            }
        }
        h
    }
}
