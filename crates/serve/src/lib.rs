//! Multi-tenant serve loop: many independent engine instances (tenants)
//! multiplexed over one [`omfl_par::TaskPool`].
//!
//! The paper's engines serve one request stream each; a provider runs
//! *many* such streams at once — one engine per tenant/region — and cares
//! about aggregate throughput, tail latency and live state visibility.
//! This crate is that serving layer:
//!
//! - **Ingest**: arrivals enter as `(tenant, request index)` pairs through
//!   a bounded [`ArrivalRing`] in micro-batches; a full ring blocks the
//!   producer (backpressure) and the blocking episodes are first-class
//!   bench output.
//! - **Sharding**: tenant `t` is owned by shard `t % shards`, forever.
//!   Shards run as tasks on a shared long-lived [`TaskPool`] (one
//!   [`TaskPool::run`] per micro-batch), so a fleet of servers can
//!   multiplex one pool; each shard serves its tenants' arrivals in batch
//!   order, preserving every tenant's stream order.
//! - **Snapshots**: after each micro-batch a shard publishes a cheap
//!   [`EngineSnapshot`] per touched tenant through a [`SnapshotHandle`],
//!   so metrics and bound checks read consistent state without ever
//!   taking an engine lock on the serve path.
//! - **Determinism**: the deterministic [`ServeReport`] (per-tenant
//!   reports, aggregate costs, digest) is bit-identical for a given
//!   arrival order at *any* shard count, thread count or micro-batch
//!   size, because per-tenant serve order is the canonical stream order
//!   regardless of how batches are cut. Wall-clock results (throughput,
//!   latency percentiles, backpressure) live in the separate
//!   [`ServeTelemetry`] — the same split as the sweep harness's
//!   `SweepCell` vs `TimedCell`.
//!
//! [`EngineSnapshot`]: omfl_core::algorithm::EngineSnapshot
//! [`TaskPool`]: omfl_par::TaskPool
//! [`TaskPool::run`]: omfl_par::TaskPool::run

pub mod histogram;
pub mod ring;
pub mod snapshot;

pub use histogram::LatencyHistogram;
pub use ring::{Arrival, ArrivalRing};
pub use snapshot::SnapshotHandle;

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::CoreError;
use omfl_par::TaskPool;
use omfl_sim::{boxed_engine, ArrivalSource, Engine, SimReport, StreamingMetrics};
use omfl_workload::Scenario;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Errors from building or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// An engine failed while serving or its solution failed verification;
    /// the tenant index says whose.
    Tenant(usize, CoreError),
    /// The engine kind cannot be constructed as a long-lived boxed tenant
    /// engine (the projected baselines borrow owned sub-instances).
    UnsupportedEngine(&'static str),
    /// More tenants than the `u32` arrival encoding can address.
    TooManyTenants(usize),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Tenant(t, e) => write!(f, "tenant {t}: {e}"),
            ServeError::UnsupportedEngine(name) => {
                write!(f, "engine {name} cannot run as a boxed tenant engine")
            }
            ServeError::TooManyTenants(n) => write!(f, "{n} tenants exceed u32 addressing"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Tenant(_, e) => Some(e),
            _ => None,
        }
    }
}

/// Serve-loop knobs. The defaults suit tests; benches size them
/// explicitly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard count (clamped to ≥ 1). Tenant `t` is owned by shard
    /// `t % shards`; more shards than tenants leaves some idle.
    pub shards: usize,
    /// Arrivals per micro-batch drained from the ring (clamped to ≥ 1).
    /// Also the snapshot-publication granularity.
    pub micro_batch: usize,
    /// Ring capacity — the backpressure bound on ingest runahead.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            micro_batch: 64,
            queue_capacity: 1024,
        }
    }
}

/// The deterministic outcome of one serve run: per-tenant reports in
/// tenant order plus tenant-order aggregates. Bit-identical across shard
/// counts, thread counts and micro-batch sizes for a fixed arrival order —
/// the CI gate compares `digest` across configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Engine kind every tenant ran.
    pub engine: &'static str,
    /// One finished report per tenant, in tenant order.
    pub tenants: Vec<SimReport>,
    /// Total arrivals served across tenants.
    pub arrivals: usize,
    /// Aggregate construction + connection cost.
    pub total_cost: f64,
    /// Aggregate construction part.
    pub construction_cost: f64,
    /// Aggregate connection part.
    pub connection_cost: f64,
    /// Facilities opened across tenants / of them large.
    pub facilities: usize,
    /// Large facilities among them.
    pub large_facilities: usize,
    /// FNV-1a fold of every deterministic field (costs as exact bit
    /// patterns), for cheap cross-configuration identity checks.
    pub digest: u64,
}

/// Wall-clock measurements of one serve run — deliberately outside
/// [`ServeReport`] so determinism checks never compare timings.
#[derive(Debug, Clone)]
pub struct ServeTelemetry {
    /// End-to-end wall time of the serve loop.
    pub wall_secs: f64,
    /// Aggregate arrivals per second (`arrivals / wall_secs`).
    pub arrivals_per_sec: f64,
    /// Median per-arrival serve latency (log2-bucket upper bound, ns).
    pub latency_p50_ns: u64,
    /// 99th-percentile per-arrival serve latency (ns).
    pub latency_p99_ns: u64,
    /// Producer blocking episodes on the full ring.
    pub backpressure_waits: u64,
    /// Shards the run used.
    pub shards: usize,
    /// Worker threads in the pool it ran on (plus the caller).
    pub pool_threads: usize,
}

struct TenantState<'a> {
    scenario: &'a Scenario,
    engine: Box<dyn OnlineAlgorithm + Send + 'a>,
    metrics: StreamingMetrics,
    histogram: LatencyHistogram,
    handle: SnapshotHandle,
    error: Option<CoreError>,
}

/// A multi-tenant server: one long-lived engine per scenario, sharded over
/// a task pool. Build with [`Server::new`], grab [`SnapshotHandle`]s, then
/// [`Server::serve`] a canonical arrival stream to completion.
pub struct Server<'a> {
    engine_kind: Engine,
    tenants: Vec<Mutex<TenantState<'a>>>,
}

impl<'a> Server<'a> {
    /// Builds one boxed engine per scenario. Fails for engine kinds that
    /// cannot live as boxed tenants (see [`ServeError::UnsupportedEngine`]).
    pub fn new(scenarios: &'a [Scenario], engine: Engine) -> Result<Self, ServeError> {
        if scenarios.len() > u32::MAX as usize {
            return Err(ServeError::TooManyTenants(scenarios.len()));
        }
        let tenants = scenarios
            .iter()
            .map(|scenario| {
                let boxed = boxed_engine(scenario, engine)
                    .ok_or(ServeError::UnsupportedEngine(engine.name()))?;
                Ok(Mutex::new(TenantState {
                    scenario,
                    engine: boxed,
                    metrics: StreamingMetrics::with_capacity(scenario.requests.len()),
                    histogram: LatencyHistogram::new(),
                    handle: SnapshotHandle::new(),
                    error: None,
                }))
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(Self {
            engine_kind: engine,
            tenants,
        })
    }

    /// Tenants multiplexed by this server.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The snapshot handle for one tenant. Handles are cheap clones of a
    /// shared slot: take them before serving and read them from any thread
    /// while the run is in flight (or after — they keep the final state).
    pub fn snapshot_handle(&self, tenant: usize) -> SnapshotHandle {
        self.tenants[tenant]
            .lock()
            .expect("tenant poisoned")
            .handle
            .clone()
    }

    /// Runs the serve loop to completion over a canonical arrival stream,
    /// consuming the server (engines finish into reports).
    ///
    /// A producer thread feeds the ring from `source` in micro-batches;
    /// the calling thread drains micro-batches and dispatches each across
    /// shards via `pool.run`. An arrival `(t, i)` must satisfy
    /// `t < num_tenants()` and index a request of tenant `t`'s scenario in
    /// ascending per-tenant order — [`ArrivalSource`] guarantees this.
    pub fn serve(
        self,
        source: &ArrivalSource,
        cfg: &ServeConfig,
        pool: &TaskPool,
    ) -> Result<(ServeReport, ServeTelemetry), ServeError> {
        let shards = cfg.shards.max(1);
        let micro_batch = cfg.micro_batch.max(1);
        let ring = ArrivalRing::new(cfg.queue_capacity);
        let tenants = &self.tenants;

        let started = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for chunk in source.order().chunks(micro_batch) {
                    if ring.push_batch(chunk) < chunk.len() {
                        return; // consumer stopped early; the prefix drains
                    }
                }
                ring.close();
            });

            let mut batch: Vec<Arrival> = Vec::with_capacity(micro_batch);
            while ring.drain_into(&mut batch, micro_batch) {
                pool.run(shards, |s| {
                    let mut touched = [0u64; 4]; // bitmap for up to 256 tenants
                    for &(t, i) in batch.iter() {
                        let t = t as usize;
                        if t % shards != s {
                            continue;
                        }
                        let mut tenant = tenants[t].lock().expect("tenant poisoned");
                        if tenant.error.is_some() {
                            continue;
                        }
                        let scenario = tenant.scenario;
                        let request = &scenario.requests[i as usize];
                        let t0 = Instant::now();
                        match tenant.engine.serve(request) {
                            Ok(out) => {
                                let total = tenant.engine.solution().total_cost();
                                tenant.histogram.record(t0.elapsed().as_nanos() as u64);
                                tenant.metrics.observe(&out, total);
                                if let Some(w) = touched.get_mut(t / 64) {
                                    *w |= 1 << (t % 64);
                                } else {
                                    let snap = tenant.engine.snapshot();
                                    tenant.handle.publish(snap);
                                }
                            }
                            Err(e) => tenant.error = Some(e),
                        }
                    }
                    // Publish once per touched tenant per micro-batch, not
                    // per arrival — snapshot freshness is batch-granular.
                    for (w, &bits) in touched.iter().enumerate() {
                        let mut bits = bits;
                        while bits != 0 {
                            let t = w * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let tenant = tenants[t].lock().expect("tenant poisoned");
                            let snap = tenant.engine.snapshot();
                            tenant.handle.publish(snap);
                        }
                    }
                });
                batch.clear();
                if tenants
                    .iter()
                    .any(|t| t.lock().expect("tenant poisoned").error.is_some())
                {
                    // Unblock the producer; it gives up, the remaining
                    // queued arrivals drain, and the error surfaces from
                    // the tenant states below.
                    ring.close();
                }
            }
        });
        let wall_secs = started.elapsed().as_secs_f64();
        let (_, backpressure_waits) = ring.stats();

        let mut reports = Vec::with_capacity(self.tenants.len());
        let mut latency = LatencyHistogram::new();
        for (t, tenant) in self.tenants.into_iter().enumerate() {
            let state = tenant.into_inner().expect("tenant poisoned");
            if let Some(e) = state.error {
                return Err(ServeError::Tenant(t, e));
            }
            state
                .engine
                .solution()
                .verify(state.scenario.instance())
                .map_err(|e| ServeError::Tenant(t, e))?;
            latency.merge(&state.histogram);
            reports.push(state.metrics.finish(
                self.engine_kind,
                state.scenario,
                state.engine.solution(),
            ));
        }

        let report = ServeReport::from_tenants(self.engine_kind.name(), reports);
        let telemetry = ServeTelemetry {
            wall_secs,
            arrivals_per_sec: report.arrivals as f64 / wall_secs.max(1e-12),
            latency_p50_ns: latency.p50_ns(),
            latency_p99_ns: latency.p99_ns(),
            backpressure_waits,
            shards,
            pool_threads: pool.threads(),
        };
        Ok((report, telemetry))
    }
}

impl ServeReport {
    /// Aggregates per-tenant reports in tenant order (the only order that
    /// makes float accumulation reproducible) and seals the digest.
    fn from_tenants(engine: &'static str, tenants: Vec<SimReport>) -> Self {
        let mut report = ServeReport {
            engine,
            arrivals: 0,
            total_cost: 0.0,
            construction_cost: 0.0,
            connection_cost: 0.0,
            facilities: 0,
            large_facilities: 0,
            digest: 0,
            tenants,
        };
        for t in &report.tenants {
            report.arrivals += t.requests;
            report.total_cost += t.total_cost;
            report.construction_cost += t.construction_cost;
            report.connection_cost += t.connection_cost;
            report.facilities += t.facilities;
            report.large_facilities += t.large_facilities;
        }
        report.digest = report.compute_digest();
        report
    }

    fn compute_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| h = (h ^ x).wrapping_mul(PRIME);
        mix(self.tenants.len() as u64);
        for t in &self.tenants {
            mix(t.requests as u64);
            mix(t.facilities as u64);
            mix(t.large_facilities as u64);
            mix(t.large_serves as u64);
            mix(t.total_cost.to_bits());
            mix(t.construction_cost.to_bits());
            mix(t.connection_cost.to_bits());
            mix(t.latency.mean.to_bits());
            mix(t.latency.p50.to_bits());
            mix(t.latency.p95.to_bits());
            mix(t.latency.max.to_bits());
            for &c in &t.cost_over_time {
                mix(c.to_bits());
            }
        }
        h
    }
}
